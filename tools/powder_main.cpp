// powder — command-line front end for the POWDER library.
//
//   powder optimize <in.blif> -o <out.blif> [options]   run POWDER
//   powder stats    <in.blif> [options]                 report metrics
//   powder gen      <circuit> -o <out.blif> [options]   emit a benchmark
//                   (<circuit> may be scale<N> for the synthetic N-gate
//                    windowed-mode workload, e.g. scale100000)
//   powder check    <a.blif> <b.blif> [options]         equivalence check
//   powder cleanup  <in.blif> -o <out.blif> [options]   redundancy removal
//   powder diff     <base.json> <cand.json> [options]   compare two
//                   --report-json files; exit 1 on regression
//   powder trajectory [--dir d] [-o out.json]           fold BENCH_*.json
//                   artifacts into one BENCH_trajectory.json
//
// Common options:
//   --lib <file.genlib>     cell library (default: built-in powder-lib2)
//   --probs <p0,p1,...>     primary-input signal probabilities
// Optimize options:
//   --delay-limit <factor>  delay constraint as factor of the initial
//                           delay (e.g. 1.0); unconstrained if omitted
//   --objective power|area  greedy objective (default power)
//   --power-model zero-delay|timed
//                           power model the greedy loop optimizes
//                           (default zero-delay: the paper's 2p(1-p)
//                           estimate; timed: event-driven, glitch-aware)
//   --glitch-pairs <n>      vector pairs per timed estimate (default 256)
//   --glitch-event-cap <n>  event budget per vector pair (0 = automatic)
//   --engine podem|sat|hybrid  permissibility proof engine
//   --patterns <n>          simulation patterns (default 2048)
//   --seed <n>              RNG seed
//   --resize                follow up with gate re-sizing
//   --redundancy            precede with redundancy removal
//   --deadline <seconds>    wall-clock budget; the run stops cleanly with
//                           a partial result when it expires
//   --threads <n>           harvest/proof pipeline threads (default 1;
//                           0 = one per hardware thread)
//   --windowed              partition the netlist into overlapping windows
//                           and optimize them independently (DESIGN.md §11;
//                           the scalable mode for 10^5+ gate netlists)
//   --window-size <n>       gates per window (default 512)
//   --window-overlap <n>    gates shared between neighbouring windows
//                           (default 64)
//   --window-order-seed <n> shuffle seed for the merge order (0 = natural
//                           topological order)
//   --report-json <path>    write the full report (incl. diagnostics) as JSON
//   --paranoid              netlist invariant checks after every commit and
//                           an end-of-run BDD equivalence guard
// Observability options (optimize):
//   --trace-out <path>      Chrome trace-event JSON of the run's spans
//                           (load in ui.perfetto.dev or chrome://tracing)
//   --metrics-out <path>    Prometheus text exposition of the run counters
//   --audit-out <path>      NDJSON decision audit log, one line per
//                           candidate considered
//   --progress              live NDJSON progress events on stderr
//   --progress-out <path>   live NDJSON progress events to a file; the file
//                           is written incrementally (tail -f friendly),
//                           NOT atomically like the other artifacts
//   --attribution-out <path> per-gate power attribution JSON: top-K gates
//                           before/after, per-cell and per-class ledgers
//   --attribution-top <k>   gates in the attribution top list (default 16)
// Diff options:
//   --power-threshold <pct>   fail if candidate power worsens by more than
//                             this percent (default 0.5)
//   --area-threshold <pct>    same for area (default 2.0)
//   --runtime-threshold <pct> also gate on cpu_seconds (off by default:
//                             runtime is noisy)
//   --base-audit / --cand-audit <path>   add audit decision histograms
//   --base-attribution / --cand-attribution <path>  add per-class gains
//   -o <path>               write the verdict JSON (default: stdout)
// Trajectory options:
//   --dir <path>            directory to scan for BENCH_*.json (default .)
//   -o <path>               output (default BENCH_trajectory.json in --dir)
// Recovery options (optimize, DESIGN.md §10):
//   --checkpoint-out <path> durable WAL: every committed substitution is
//                           fsync'd so a killed run can be resumed
//   --resume <path>         replay a checkpoint WAL onto the (identical)
//                           input netlist, then continue optimizing
//   --mem-limit <MB>        degrade and finally stop cleanly when resident
//                           memory crosses this limit
//   --watchdog <seconds>    requeue a stuck speculative proof job after
//                           this long (default 30)
// Global options:
//   --quiet                 suppress progress output (results still print)
//
// Progress lines go to stderr; primary results (stats, check verdicts,
// BLIF dumped to stdout) stay on stdout so pipelines keep working.
// All file artifacts are written atomically (temp + rename): a crashed or
// failed run never leaves a truncated output behind.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bdd/netlist_bdd.hpp"
#include "util/check.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/redundancy.hpp"
#include "opt/report_diff.hpp"
#include "opt/resize.hpp"
#include "powder.hpp"
#include "power/attribution.hpp"
#include "power/glitch.hpp"
#include "trace/progress.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

using namespace powder;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::string out_path;
  std::string lib_path;
  std::vector<double> probs;
  double delay_limit = -1.0;
  Objective objective = Objective::kPower;
  PowerModelKind power_model = PowerModelKind::kZeroDelay;
  int glitch_pairs = -1;        ///< -1 = keep the default
  long glitch_event_cap = -1;   ///< -1 = keep the default (0 = automatic)
  ProofEngine engine = ProofEngine::kHybrid;
  int patterns = 2048;
  std::uint64_t seed = 1;
  bool resize = false;
  bool redundancy = false;
  double deadline = -1.0;
  int threads = 1;
  bool windowed = false;
  bool funcred = false;
  int max_divisors = -1;  ///< -1 = keep the default (pair classes)
  int window_size = 512;
  int window_overlap = 64;
  std::uint64_t window_order_seed = 0;
  std::string report_json_path;
  std::string trace_out_path;
  std::string metrics_out_path;
  std::string audit_out_path;
  std::string checkpoint_out_path;
  std::string resume_path;
  long long mem_limit_mb = 0;
  double watchdog = -1.0;
  bool quiet = false;
  bool paranoid = false;
  bool progress_stderr = false;
  std::string progress_out_path;
  std::string attribution_out_path;
  int attribution_top = 16;
  // powder diff
  DiffThresholds diff_thresholds;
  std::string base_audit_path;
  std::string cand_audit_path;
  std::string base_attribution_path;
  std::string cand_attribution_path;
  // powder trajectory
  std::string trajectory_dir = ".";
};

bool g_quiet = false;

/// Progress/status output: stderr, suppressed by --quiet. Primary results
/// (stats report, check verdict, BLIF on stdout) do not go through here.
void progress(const char* fmt, ...) {
  if (g_quiet) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
}

/// Fails fast — before any expensive work — when an output path cannot be
/// created or written. A file newly created by the probe is removed again,
/// so a failing run does not leave empty artifacts around.
void check_writable(const std::string& path, const char* flag) {
  if (path.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  const bool existed = fs::exists(path, ec);
  {
    // Append mode: probing must not truncate an existing file.
    std::ofstream probe(path, std::ios::app);
    POWDER_CHECK_MSG(probe.good(),
                     flag << " path is not writable: " << path);
  }
  if (!existed) fs::remove(path, ec);
}

void usage() {
  std::fprintf(
      stderr,
      "usage: powder <optimize|stats|gen|check|cleanup|diff|trajectory> "
      "<files...> [-o out.blif] [--lib f.genlib]\n"
      "               [--delay-limit F] [--objective power|area] "
      "[--engine podem|sat|hybrid]\n"
      "               [--power-model zero-delay|timed] [--glitch-pairs N] "
      "[--glitch-event-cap N]\n"
      "               [--patterns N] [--seed N] [--probs p0,p1,...] "
      "[--resize] [--redundancy]\n"
      "               [--deadline SECONDS] [--threads N] "
      "[--report-json FILE] [--paranoid]\n"
      "               [--windowed] [--window-size N] [--window-overlap N] "
      "[--window-order-seed N]\n"
      "               [--funcred] [--max-divisors K]\n"
      "               [--trace-out FILE] [--metrics-out FILE] "
      "[--audit-out FILE] [--quiet]\n"
      "               [--progress] [--progress-out FILE] "
      "[--attribution-out FILE] [--attribution-top K]\n"
      "               [--checkpoint-out FILE] [--resume FILE] "
      "[--mem-limit MB] [--watchdog SECONDS]\n"
      "       powder diff <base.json> <cand.json> [--power-threshold PCT] "
      "[--area-threshold PCT]\n"
      "               [--runtime-threshold PCT] [--base-audit FILE] "
      "[--cand-audit FILE]\n"
      "               [--base-attribution FILE] [--cand-attribution FILE] "
      "[-o verdict.json]\n"
      "       powder trajectory [--dir DIR] [-o out.json]\n");
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) return std::nullopt;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "-o") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.out_path = v;
    } else if (arg == "--lib") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.lib_path = v;
    } else if (arg == "--delay-limit") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.delay_limit = std::stod(v);
    } else if (arg == "--objective") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "area") == 0)
        a.objective = Objective::kArea;
      else if (std::strcmp(v, "power") == 0)
        a.objective = Objective::kPower;
      else
        return std::nullopt;
    } else if (arg == "--power-model") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "zero-delay") == 0)
        a.power_model = PowerModelKind::kZeroDelay;
      else if (std::strcmp(v, "timed") == 0)
        a.power_model = PowerModelKind::kTimed;
      else
        return std::nullopt;
    } else if (arg == "--glitch-pairs") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.glitch_pairs = std::atoi(v);
    } else if (arg == "--glitch-event-cap") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.glitch_event_cap = std::atol(v);
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "podem") == 0)
        a.engine = ProofEngine::kPodem;
      else if (std::strcmp(v, "sat") == 0)
        a.engine = ProofEngine::kSat;
      else if (std::strcmp(v, "hybrid") == 0)
        a.engine = ProofEngine::kHybrid;
      else
        return std::nullopt;
    } else if (arg == "--patterns") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.patterns = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--probs") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) a.probs.push_back(std::stod(tok));
    } else if (arg == "--resize") {
      a.resize = true;
    } else if (arg == "--redundancy") {
      a.redundancy = true;
    } else if (arg == "--deadline") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.deadline = std::stod(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.threads = std::atoi(v);
    } else if (arg == "--windowed") {
      a.windowed = true;
    } else if (arg == "--funcred") {
      a.funcred = true;
    } else if (arg == "--max-divisors") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.max_divisors = std::atoi(v);
    } else if (arg == "--window-size") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.window_size = std::atoi(v);
    } else if (arg == "--window-overlap") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.window_overlap = std::atoi(v);
    } else if (arg == "--window-order-seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.window_order_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--report-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.report_json_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_out_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.metrics_out_path = v;
    } else if (arg == "--audit-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.audit_out_path = v;
    } else if (arg == "--progress") {
      a.progress_stderr = true;
    } else if (arg == "--progress-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.progress_out_path = v;
    } else if (arg == "--attribution-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.attribution_out_path = v;
    } else if (arg == "--attribution-top") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.attribution_top = std::atoi(v);
    } else if (arg == "--power-threshold") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.diff_thresholds.power_percent = std::stod(v);
    } else if (arg == "--area-threshold") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.diff_thresholds.area_percent = std::stod(v);
    } else if (arg == "--runtime-threshold") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.diff_thresholds.runtime_percent = std::stod(v);
      a.diff_thresholds.check_runtime = true;
    } else if (arg == "--base-audit") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.base_audit_path = v;
    } else if (arg == "--cand-audit") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.cand_audit_path = v;
    } else if (arg == "--base-attribution") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.base_attribution_path = v;
    } else if (arg == "--cand-attribution") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.cand_attribution_path = v;
    } else if (arg == "--dir") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trajectory_dir = v;
    } else if (arg == "--checkpoint-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.checkpoint_out_path = v;
    } else if (arg == "--resume") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.resume_path = v;
    } else if (arg == "--mem-limit") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.mem_limit_mb = std::atoll(v);
    } else if (arg == "--watchdog") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.watchdog = std::stod(v);
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--paranoid") {
      a.paranoid = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error::io("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CellLibrary load_library(const Args& a) {
  if (a.lib_path.empty()) return CellLibrary::standard();
  return CellLibrary::from_genlib(read_file(a.lib_path));
}

void print_stats(const Netlist& nl, const Args& a) {
  // Latch outputs are pseudo-PIs: the user's --probs cover the primary
  // inputs only, the reset-state fixed point fills in the rest.
  const std::vector<double> probs = expand_pi_probs(nl, a.probs);
  Simulator sim(nl, a.patterns, probs, a.seed);
  PowerEstimator est(&sim);
  const TimingAnalysis ta = analyze_timing(nl);
  GlitchOptions gopt;
  gopt.stimulus.prob = probs;
  gopt.num_vector_pairs = 128;
  const GlitchEstimate ge = estimate_glitch_power(nl, gopt);
  std::printf("circuit:          %s\n", nl.name().c_str());
  std::printf("inputs/outputs:   %d / %d\n", nl.num_inputs(),
              nl.num_outputs());
  if (nl.num_latches() > 0)
    std::printf("latches:          %d\n", nl.num_latches());
  std::printf("gates:            %d\n", nl.num_cells());
  std::printf("area:             %.0f\n", nl.total_area());
  std::printf("delay:            %.3f\n", ta.circuit_delay);
  std::printf("power (sum C*E):  %.4f\n", est.total_power());
  std::printf("glitch-aware:     %.4f  (glitch share %.1f%%)\n",
              ge.timed_power, 100.0 * ge.glitch_share());
}

int cmd_optimize(const Args& a) {
  // Fail fast on every output path before reading/optimizing anything: a
  // typo'd --trace-out must not surface after a minutes-long run.
  check_writable(a.out_path, "-o");
  check_writable(a.report_json_path, "--report-json");
  check_writable(a.trace_out_path, "--trace-out");
  check_writable(a.metrics_out_path, "--metrics-out");
  check_writable(a.audit_out_path, "--audit-out");
  check_writable(a.checkpoint_out_path, "--checkpoint-out");
  check_writable(a.progress_out_path, "--progress-out");
  check_writable(a.attribution_out_path, "--attribution-out");

  const CellLibrary lib = load_library(a);
  Netlist nl = read_blif(read_file(a.positional.at(0)), lib);
  const Netlist original = nl;

  // Observability sinks, all optional. A metrics registry is also created
  // for --report-json alone so the report gains its "metrics" field.
  std::optional<TraceSession> trace;
  if (!a.trace_out_path.empty()) trace.emplace();
  std::optional<MetricsRegistry> metrics;
  if (!a.metrics_out_path.empty() || !a.report_json_path.empty())
    metrics.emplace();
  // The audit log streams into an atomic writer: the destination path only
  // appears (via rename) once the run ends and the log is complete.
  std::optional<AtomicFileWriter> audit_w;
  std::optional<AuditLog> audit;
  if (!a.audit_out_path.empty()) {
    audit_w.emplace(a.audit_out_path);
    audit.emplace(&audit_w->stream());
  }
  // The progress stream is the one artifact written live (no temp+rename):
  // its whole point is being tail -f'able while the run is in flight.
  std::optional<std::ofstream> progress_file;
  std::optional<ProgressStream> prog;
  if (!a.progress_out_path.empty()) {
    progress_file.emplace(a.progress_out_path, std::ios::trunc);
    POWDER_CHECK_MSG(progress_file->good(), "--progress-out path is not "
                     "writable: " << a.progress_out_path);
    prog.emplace(&*progress_file);
  } else if (a.progress_stderr) {
    prog.emplace(&std::cerr);
  }
  std::optional<PowerAttribution> attr;
  if (!a.attribution_out_path.empty()) attr.emplace(a.attribution_top);
  TraceSession* const trace_ptr = trace ? &*trace : nullptr;

  if (a.redundancy) {
    TraceSpan span(trace_ptr, "redundancy_removal", "flow");
    const RedundancyRemovalReport rr = remove_redundancies(&nl);
    span.arg("pins_tied", rr.pins_tied);
    span.arg("gates_removed", rr.gates_removed);
    progress("redundancy: %d pins tied, %d gates removed\n", rr.pins_tied,
             rr.gates_removed);
  }

  auto builder = PowderOptions::builder()
                     .objective(a.objective)
                     .power_model(a.power_model)
                     .proof_engine(a.engine)
                     .patterns(a.patterns)
                     .seed(a.seed)
                     .pi_probs(a.probs)
                     .delay_limit_factor(a.delay_limit)
                     .deadline(a.deadline)
                     .threads(a.threads)
                     .windowed(a.windowed)
                     .window_size(a.window_size)
                     .window_overlap(a.window_overlap)
                     .window_order_seed(a.window_order_seed)
                     .funcred(a.funcred)
                     .check_invariants(a.paranoid)
                     .final_equivalence_check(a.paranoid)
                     .trace(trace_ptr)
                     .metrics(metrics ? &*metrics : nullptr)
                     .audit(audit ? &*audit : nullptr)
                     .progress(prog ? &*prog : nullptr)
                     .attribution(attr ? &*attr : nullptr)
                     .checkpoint_out(a.checkpoint_out_path)
                     .resume_from(a.resume_path)
                     .mem_limit_bytes(a.mem_limit_mb * 1024 * 1024);
  if (a.watchdog > 0) builder.watchdog_seconds(a.watchdog);
  if (a.max_divisors >= 0) builder.max_divisors(a.max_divisors);
  if (a.glitch_pairs >= 0) builder.glitch_vector_pairs(a.glitch_pairs);
  if (a.glitch_event_cap >= 0) builder.glitch_event_cap(a.glitch_event_cap);
  const PowderOptions opt = builder.build();
  if (!a.resume_path.empty())
    progress("powder: resuming from %s\n", a.resume_path.c_str());
  const PowderReport r = optimize(nl, opt);
  const PowderReport::Diagnostics& d = r.diagnostics;
  if (a.windowed)
    progress("powder: %ld window(s), %ld window commit(s), "
             "%ld boundary conflict(s), %ld rerun(s)\n",
             d.windowing.windows_built, d.windowing.window_commits,
             d.windowing.boundary_conflicts, d.windowing.window_reruns);
  if (a.power_model == PowerModelKind::kTimed)
    progress("powder: timed power model: %ld event re-sim(s), "
             "%ld overflow(s), final glitch share %.1f%%\n",
             d.power_model.timed_resims, d.power_model.event_overflows,
             100.0 * d.power_model.glitch_share);
  if (a.funcred)
    progress("powder: functional reduction merged %ld equivalent "
             "signal(s)\n",
             d.resub.funcred_merges);
  if (d.resub.harvest_truncated > 0)
    progress("powder: WARNING: %ld candidate(s) dropped because a harvest "
             "hit max_candidates; raise the cap to consider them\n",
             d.resub.harvest_truncated);
  if (d.resume_replayed > 0)
    progress("powder: replayed %lld checkpointed substitution(s)\n",
             static_cast<long long>(d.resume_replayed));
  if (d.checkpoint_frames > 0)
    progress("powder: checkpoint %s holds %lld commit frame(s)\n",
             a.checkpoint_out_path.c_str(),
             static_cast<long long>(d.checkpoint_frames));
  if (d.checkpoint_disabled)
    progress("powder: WARNING: checkpointing disabled after an I/O "
             "failure; the run continued without durability\n");
  if (d.degradation_events > 0)
    progress("powder: degradation ladder stepped %d time(s); see the "
             "audit log for the transition trail\n",
             d.degradation_events);
  if (d.mem_limit_hit)
    progress("powder: memory limit reached; result is partial\n");
  if (d.retries > 0 || d.watchdog_requeues > 0)
    progress("powder: %lld transient proof retr%s, %lld watchdog "
             "requeue(s)\n",
             static_cast<long long>(d.retries),
             d.retries == 1 ? "y" : "ies",
             static_cast<long long>(d.watchdog_requeues));
  progress(
      "powder: power %.3f -> %.3f (-%.1f%%), area %.0f -> %.0f, "
      "delay %.2f -> %.2f, %d substitutions, %.1fs (%d thread%s)\n",
      r.initial_power, r.final_power, r.power_reduction_percent(),
      r.initial_area, r.final_area, r.initial_delay, r.final_delay,
      r.substitutions_applied, r.cpu_seconds, d.threads_used,
      d.threads_used == 1 ? "" : "s");
  if (!a.report_json_path.empty()) {
    write_file_atomic(a.report_json_path, r.to_json() + "\n");
    progress("wrote %s\n", a.report_json_path.c_str());
  }
  if (d.deadline_hit)
    progress("powder: wall-clock deadline hit; result is partial\n");
  if (d.budget_exhausted)
    progress("powder: proof-effort budget exhausted; result is partial\n");
  if (d.guard_rollbacks > 0 || d.final_check_rollbacks > 0 ||
      d.apply_failures > 0)
    progress("powder: guard rolled back %d commit(s) (%d at end of run), "
             "%d apply failure(s)\n",
             d.guard_rollbacks + d.final_check_rollbacks,
             d.final_check_rollbacks, d.apply_failures);
  if (d.guard_failed) {
    std::fprintf(stderr,
                 "INTERNAL ERROR: equivalence guard could not restore a "
                 "known-good netlist\n");
    return 2;
  }

  if (a.resize) {
    TraceSpan span(trace_ptr, "resize", "flow");
    ResizeOptions ro;
    ro.pi_probs = a.probs;
    ro.delay_limit_factor = a.delay_limit < 0 ? -1.0 : a.delay_limit;
    const ResizeReport rr = resize_gates(&nl, ro);
    span.arg("downsized", rr.downsized);
    span.arg("upsized", rr.upsized);
    progress("resize: %d down / %d up, power %.3f -> %.3f\n", rr.downsized,
             rr.upsized, rr.initial_power, rr.final_power);
  }

  {
    TraceSpan span(trace_ptr, "final_equivalence_check", "flow");
    if (!functionally_equivalent(original, nl)) {
      std::fprintf(stderr, "INTERNAL ERROR: equivalence check failed\n");
      return 2;
    }
  }
  if (!a.out_path.empty()) {
    write_file_atomic(a.out_path, write_blif(nl));
    progress("wrote %s\n", a.out_path.c_str());
  }

  if (trace) {
    AtomicFileWriter out(a.trace_out_path);
    trace->write_chrome_json(out.stream());
    out.commit();
    progress("wrote %s (%llu events, %llu dropped)\n",
             a.trace_out_path.c_str(),
             static_cast<unsigned long long>(trace->events_recorded()),
             static_cast<unsigned long long>(trace->dropped()));
  }
  if (!a.metrics_out_path.empty()) {
    AtomicFileWriter out(a.metrics_out_path);
    metrics->write_prometheus(out.stream());
    out.commit();
    progress("wrote %s (%zu instruments)\n", a.metrics_out_path.c_str(),
             metrics->size());
  }
  if (audit) {
    audit_w->commit();
    progress("wrote %s (%lld decisions)\n", a.audit_out_path.c_str(),
             audit->records());
  }
  if (attr) {
    write_file_atomic(a.attribution_out_path, attr->to_json() + "\n");
    progress("wrote %s (%lld commits, %lld deltas observed)\n",
             a.attribution_out_path.c_str(), attr->commits_recorded(),
             attr->deltas_observed());
  }
  if (prog && !a.progress_out_path.empty())
    progress("wrote %s (%lld events, %lld heartbeats)\n",
             a.progress_out_path.c_str(), prog->events_written(),
             prog->heartbeats_written());
  return 0;
}

/// `powder diff base.json cand.json`: structured regression verdict.
/// Exit codes: 0 = ok, 1 = regression, 3 = unreadable/invalid inputs.
int cmd_diff(const Args& a) {
  check_writable(a.out_path, "-o");
  const std::string base = read_file(a.positional.at(0));
  const std::string cand = read_file(a.positional.at(1));
  const auto side_file = [&](const std::string& path) {
    return path.empty() ? std::string() : read_file(path);
  };
  const DiffResult r = diff_reports(
      base, cand, a.diff_thresholds, side_file(a.base_audit_path),
      side_file(a.cand_audit_path), side_file(a.base_attribution_path),
      side_file(a.cand_attribution_path));
  if (!r.ok) throw Error::input("diff: " + r.error);
  if (a.out_path.empty()) {
    std::printf("%s\n", r.verdict_json.c_str());
  } else {
    write_file_atomic(a.out_path, r.verdict_json + "\n");
    progress("wrote %s\n", a.out_path.c_str());
  }
  progress("powder diff: %s\n", r.regressed ? "REGRESSION" : "ok");
  return r.regressed ? 1 : 0;
}

/// `powder trajectory`: folds every BENCH_*.json in --dir into one
/// BENCH_trajectory.json perf-trajectory document.
int cmd_trajectory(const Args& a) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(a.trajectory_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || name.size() < 5 ||
        name.substr(name.size() - 5) != ".json")
      continue;
    if (name == "BENCH_trajectory.json") continue;  // don't fold ourselves
    files.emplace_back(name, read_file(entry.path().string()));
  }
  if (ec)
    throw Error::input("trajectory: cannot scan " + a.trajectory_dir + ": " +
                       ec.message());
  // Directory iteration order is filesystem-dependent; sort for determinism.
  std::sort(files.begin(), files.end());
  const std::string out_path =
      a.out_path.empty()
          ? (fs::path(a.trajectory_dir) / "BENCH_trajectory.json").string()
          : a.out_path;
  check_writable(out_path, "-o");
  write_file_atomic(out_path, fold_bench_trajectory(files) + "\n");
  progress("wrote %s (%zu bench file(s))\n", out_path.c_str(), files.size());
  return 0;
}

int cmd_stats(const Args& a) {
  const CellLibrary lib = load_library(a);
  const Netlist nl = read_blif(read_file(a.positional.at(0)), lib);
  print_stats(nl, a);
  return 0;
}

// "scaleN" names (e.g. scale100000) generate the synthetic N-gate
// netlist used by the windowed-mode scaling bench; returns -1 otherwise.
int parse_scale_gates(const std::string& name) {
  if (name.rfind("scale", 0) != 0 || name.size() <= 5) return -1;
  int gates = 0;
  for (std::size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    if (gates > 100'000'000) return -1;
    gates = gates * 10 + (name[i] - '0');
  }
  return gates;
}

int cmd_gen(const Args& a) {
  check_writable(a.out_path, "-o");
  const std::string& name = a.positional.at(0);
  const int scale_gates = parse_scale_gates(name);
  if (scale_gates >= 0) {
    if (scale_gates < 10)
      throw Error::input("scale<N> needs N >= 10 (one 10-gate tile), got " +
                         std::to_string(scale_gates));
    const Netlist nl = make_scale_netlist(scale_gates, a.seed);
    const std::string text = write_blif(nl);
    if (a.out_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      write_file_atomic(a.out_path, text);
      progress("wrote %s (%d gates)\n", a.out_path.c_str(), nl.num_cells());
    }
    return 0;
  }
  const CellLibrary lib = load_library(a);
  if (!is_known_benchmark(name)) {
    std::fprintf(stderr, "unknown benchmark '%s' (or scale<N>); known:",
                 name.c_str());
    for (const auto& n : table1_suite())
      std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  MapperOptions mopt;
  mopt.pi_probs = a.probs;
  const Netlist nl = map_aig(make_benchmark(name), lib, mopt);
  const std::string text = write_blif(nl);
  if (a.out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file_atomic(a.out_path, text);
    progress("wrote %s (%d gates)\n", a.out_path.c_str(), nl.num_cells());
  }
  return 0;
}

int cmd_check(const Args& a) {
  const CellLibrary lib = load_library(a);
  const Netlist n1 = read_blif(read_file(a.positional.at(0)), lib);
  const Netlist n2 = read_blif(read_file(a.positional.at(1)), lib);
  if (n1.num_inputs() != n2.num_inputs() ||
      n1.num_outputs() != n2.num_outputs()) {
    std::printf("NOT EQUIVALENT (interface mismatch)\n");
    return 1;
  }
  const bool eq = functionally_equivalent(n1, n2);
  std::printf("%s\n", eq ? "EQUIVALENT" : "NOT EQUIVALENT");
  return eq ? 0 : 1;
}

int cmd_cleanup(const Args& a) {
  check_writable(a.out_path, "-o");
  const CellLibrary lib = load_library(a);
  Netlist nl = read_blif(read_file(a.positional.at(0)), lib);
  const Netlist original = nl;
  const RedundancyRemovalReport rr = remove_redundancies(&nl);
  std::printf("redundancy removal: %d pins tied, %d gates removed, "
              "area -%.0f\n",
              rr.pins_tied, rr.gates_removed, rr.area_removed);
  if (!functionally_equivalent(original, nl)) {
    std::fprintf(stderr, "INTERNAL ERROR: equivalence check failed\n");
    return 2;
  }
  if (!a.out_path.empty()) {
    write_file_atomic(a.out_path, write_blif(nl));
    progress("wrote %s\n", a.out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Everything — including argument parsing, whose std::stod calls throw on
  // malformed numbers — runs under the top-level handler: any failure exits
  // nonzero with a one-line message instead of std::terminate.
  try {
    const auto args = parse_args(argc, argv);
    if (!args) {
      usage();
      return 1;
    }
    g_quiet = args->quiet;
    const auto need = [&](std::size_t n) {
      if (args->positional.size() < n) {
        usage();
        std::exit(1);
      }
    };
    if (args->command == "optimize") {
      need(1);
      return cmd_optimize(*args);
    }
    if (args->command == "stats") {
      need(1);
      return cmd_stats(*args);
    }
    if (args->command == "gen") {
      need(1);
      return cmd_gen(*args);
    }
    if (args->command == "check") {
      need(2);
      return cmd_check(*args);
    }
    if (args->command == "cleanup") {
      need(1);
      return cmd_cleanup(*args);
    }
    if (args->command == "diff") {
      need(2);
      return cmd_diff(*args);
    }
    if (args->command == "trajectory") {
      return cmd_trajectory(*args);
    }
    usage();
    return 1;
  } catch (const Error& e) {
    // Typed failures map to distinct exit codes so scripts can react
    // without parsing stderr: 3 = bad input, 4 = resource exhaustion,
    // 5 = proof engine, 6 = I/O. what() already carries the category.
    std::fprintf(stderr, "%s\n", e.what());
    switch (e.category()) {
      case ErrorCategory::kInput: return 3;
      case ErrorCategory::kResource: return 4;
      case ErrorCategory::kProofEngine: return 5;
      case ErrorCategory::kIo: return 6;
    }
    return 2;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
