// trace_check — validates a Chrome trace-event JSON file produced by
// `powder optimize --trace-out` (or any tool emitting the same format).
//
//   trace_check <trace.json>
//
// Exit 0 and "ok: N events" when the document is structurally valid;
// exit 1 with the first structural error otherwise. Traces from windowed
// runs are additionally checked for per-window span structure: every
// "window" span must carry its window id and nest inside an "iteration"
// span, and window spans on one thread may not partially overlap.
// Global-mode traces (zero window spans) pass that check trivially.
// Backs the `check-trace` CMake target's smoke test.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_check <trace.json>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  std::size_t num_events = 0;
  std::string error;
  if (!powder::validate_chrome_json(json, &num_events, &error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  std::size_t num_windows = 0;
  if (!powder::validate_window_nesting(json, &num_windows, &error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (num_windows > 0)
    std::printf("ok: %zu events, %zu window spans\n", num_events,
                num_windows);
  else
    std::printf("ok: %zu events\n", num_events);
  return 0;
}
