// trace_check — validates observability artifacts produced by
// `powder optimize`.
//
//   trace_check <trace.json>             Chrome trace-event JSON
//                                        (--trace-out)
//   trace_check --progress <prog.ndjson> live progress stream
//                                        (--progress-out)
//   trace_check --attribution <attr.json> power-attribution dump
//                                        (--attribution-out)
//
// Exit 0 with an "ok: ..." summary when the document is structurally
// valid; exit 1 with the first structural error otherwise.
//
// Trace mode additionally checks windowed-run span structure: every
// "window" span must carry its window id and nest inside an "iteration"
// span, and window spans on one thread may not partially overlap.
// Progress mode checks the NDJSON event-stream contract (schema_version,
// contiguous seq, monotone t_ms, run_start first / run_end last, at least
// one heartbeat). Attribution mode checks the schema and the exact
// contribution-sum and per-class-ledger reconciliation invariants.
// Backs the `check-trace` and `check-progress` CMake smoke targets.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "power/attribution.hpp"
#include "trace/progress.hpp"
#include "trace/trace.hpp"

namespace {

std::string slurp(const char* path, bool* ok) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path);
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

int check_trace(const char* path) {
  bool ok = false;
  const std::string json = slurp(path, &ok);
  if (!ok) return 1;
  std::size_t num_events = 0;
  std::string error;
  if (!powder::validate_chrome_json(json, &num_events, &error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path, error.c_str());
    return 1;
  }
  std::size_t num_windows = 0;
  if (!powder::validate_window_nesting(json, &num_windows, &error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path, error.c_str());
    return 1;
  }
  if (num_windows > 0)
    std::printf("ok: %zu events, %zu window spans\n", num_events,
                num_windows);
  else
    std::printf("ok: %zu events\n", num_events);
  return 0;
}

int check_progress(const char* path) {
  bool ok = false;
  const std::string text = slurp(path, &ok);
  if (!ok) return 1;
  const powder::ProgressValidation v =
      powder::validate_progress_stream(text);
  if (!v.ok) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path, v.error.c_str());
    return 1;
  }
  std::printf("ok: %lld events, %lld heartbeats, %lld phases, "
              "%lld window events\n",
              v.lines, v.heartbeats, v.phases, v.windows);
  return 0;
}

int check_attribution(const char* path) {
  bool ok = false;
  const std::string text = slurp(path, &ok);
  if (!ok) return 1;
  std::string error;
  if (!powder::validate_attribution_json(text, &error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("ok: attribution valid\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2) return check_trace(argv[1]);
  if (argc == 3 && std::strcmp(argv[1], "--progress") == 0)
    return check_progress(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "--attribution") == 0)
    return check_attribution(argv[2]);
  std::fprintf(stderr,
               "usage: trace_check <trace.json>\n"
               "       trace_check --progress <progress.ndjson>\n"
               "       trace_check --attribution <attribution.json>\n");
  return 1;
}
