// Mapped-BLIF in, optimized mapped-BLIF out — the way an ABC/Yosys flow
// would call POWDER as a post-mapping power pass.
//
//   $ ./blif_optimize in.blif out.blif [--delay-limit <factor>]
//   $ ./blif_optimize                  (demo mode: generates its own input)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"

using namespace powder;

int main(int argc, char** argv) {
  CellLibrary lib = CellLibrary::standard();

  std::string blif_text;
  std::string out_path;
  double delay_limit = -1.0;
  if (argc >= 3) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    blif_text = ss.str();
    out_path = argv[2];
    for (int i = 3; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--delay-limit")
        delay_limit = std::stod(argv[i + 1]);
  } else {
    std::printf("demo mode: generating mapped BLIF for 'spla'\n");
    blif_text = write_blif(map_aig(make_benchmark("spla"), lib));
    out_path = "spla_optimized.blif";
  }

  Netlist nl = read_blif(blif_text, lib);
  std::printf("input:  %d gates, area %.0f\n", nl.num_cells(),
              nl.total_area());

  const PowderReport r = optimize(
      nl, PowderOptions::builder().delay_limit_factor(delay_limit).build());
  std::printf("power:  %.3f -> %.3f (-%.1f%%), %d substitutions, %.1fs\n",
              r.initial_power, r.final_power, r.power_reduction_percent(),
              r.substitutions_applied, r.cpu_seconds);

  std::ofstream out(out_path);
  out << write_blif(nl);
  std::printf("output: %s (%d gates, area %.0f)\n", out_path.c_str(),
              nl.num_cells(), nl.total_area());
  return 0;
}
