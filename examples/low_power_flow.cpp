// The complete low-power synthesis flow of the paper's Figure 1 on one
// benchmark circuit:
//
//   function  ->  two-level minimization + factoring  ->  AIG
//             ->  power-driven technology mapping     ->  mapped netlist
//             ->  POWDER structural optimization      ->  final netlist
//
//   $ ./low_power_flow [circuit]       (default: duke2)

#include <cstdio>
#include <string>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "powder.hpp"
#include "timing/timing.hpp"

using namespace powder;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "duke2";
  if (!is_known_benchmark(name)) {
    std::printf("unknown circuit '%s'; try one of:", name.c_str());
    for (const auto& n : quick_suite()) std::printf(" %s", n.c_str());
    std::printf("\n");
    return 1;
  }
  CellLibrary lib = CellLibrary::standard();

  // Technology-independent synthesis + mapping.
  const Aig aig = make_benchmark(name);
  std::printf("%s: %d PIs, %d POs, %d AIG nodes\n", name.c_str(),
              aig.num_inputs(), aig.num_outputs(), aig.live_and_count());

  MapperOptions map_opt;
  map_opt.mode = MapMode::kPower;  // POSE-style low-power initial circuit
  Netlist nl = map_aig(aig, lib, map_opt);
  const Netlist initial = nl;
  const TimingAnalysis ta0 = analyze_timing(nl);
  std::printf("mapped:   %4d gates  area %8.0f  delay %6.2f\n",
              nl.num_cells(), nl.total_area(), ta0.circuit_delay);

  // POWDER, unconstrained.
  const PowderReport r = optimize(nl, {});
  const TimingAnalysis ta1 = analyze_timing(nl);

  std::printf("powder:   %4d gates  area %8.0f  delay %6.2f\n",
              nl.num_cells(), nl.total_area(), ta1.circuit_delay);
  std::printf("power:    %8.3f -> %8.3f   (-%.1f%%)\n", r.initial_power,
              r.final_power, r.power_reduction_percent());
  std::printf("area:     %8.0f -> %8.0f   (%+.1f%%)\n", r.initial_area,
              r.final_area, -r.area_reduction_percent());
  std::printf("applied:  %d substitutions (%d ATPG-rejected, "
              "%d delay-rejected)\n",
              r.substitutions_applied, r.rejected_by_atpg,
              r.rejected_by_delay);

  const bool ok = functionally_equivalent(initial, nl);
  std::printf("check:    %s\n", ok ? "functionally equivalent" : "MISMATCH");
  return ok ? 0 : 1;
}
