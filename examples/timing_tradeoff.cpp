// Power-delay trade-off on a single circuit (the per-circuit view of the
// paper's Figure 6): run POWDER under a sweep of delay constraints and
// print the resulting (delay, power) points.
//
//   $ ./timing_tradeoff [circuit]      (default: misex3)

#include <cstdio>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"

using namespace powder;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "misex3";
  if (!is_known_benchmark(name)) {
    std::printf("unknown circuit '%s'\n", name.c_str());
    return 1;
  }
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_benchmark(name);

  std::printf("%s: power-delay trade-off (delay limit as %% increase over "
              "the initial delay)\n", name.c_str());
  std::printf("%8s %12s %12s %12s %10s\n", "limit%", "power", "rel.power",
              "delay", "rel.delay");

  double base_power = -1.0, base_delay = -1.0;
  for (double limit : {0.0, 10.0, 20.0, 30.0, 50.0, 80.0, 120.0, 200.0}) {
    Netlist nl = map_aig(aig, lib);
    const PowderReport r =
        optimize(nl, PowderOptions::builder()
                         .delay_limit_factor(1.0 + limit / 100.0)
                         .build());
    if (base_power < 0) {
      base_power = r.initial_power;
      base_delay = r.initial_delay;
    }
    std::printf("%8.0f %12.3f %12.3f %12.2f %10.3f\n", limit, r.final_power,
                r.final_power / base_power, r.final_delay,
                r.final_delay / base_delay);
  }
  std::printf("(paper, Fig. 6: concave curve, most extra gain by +15%% "
              "delay, flat beyond +80%%)\n");
  return 0;
}
