// The complete post-mapping optimization pipeline, stage by stage:
//
//   mapped netlist
//     -> redundancy removal   (ATPG: untestable pins tied to constants)
//     -> POWDER               (permissible substitutions for power)
//     -> gate re-sizing       (drive-strength selection under timing)
//
// Each stage preserves functionality (verified at the end against the
// original with the BDD oracle) and the printout shows where the power
// goes at every step — including the glitch-aware estimate the zero-delay
// model cannot see.
//
//   $ ./post_mapping_pipeline [circuit]    (default: spla)

#include <cstdio>
#include <string>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "powder.hpp"
#include "opt/redundancy.hpp"
#include "opt/resize.hpp"
#include "power/glitch.hpp"
#include "power/power.hpp"
#include "timing/timing.hpp"

using namespace powder;

namespace {

void report_stage(const char* stage, const Netlist& nl) {
  Simulator sim(nl, 4096);
  PowerEstimator est(&sim);
  GlitchOptions gopt;
  gopt.num_vector_pairs = 128;
  const GlitchEstimate ge = estimate_glitch_power(nl, gopt);
  std::printf("%-12s %5d gates  area %9.0f  delay %7.2f  power %9.3f  "
              "(timed %9.3f)\n",
              stage, nl.num_cells(), nl.total_area(),
              analyze_timing(nl).circuit_delay, est.total_power(),
              ge.timed_power);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "spla";
  if (!is_known_benchmark(name)) {
    std::printf("unknown circuit '%s'\n", name.c_str());
    return 1;
  }
  CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark(name), lib);
  const Netlist original = nl;
  std::printf("pipeline on %s:\n", name.c_str());
  report_stage("mapped:", nl);

  const RedundancyRemovalReport rr = remove_redundancies(&nl);
  std::printf("  (redundancy removal tied %d pins, removed %d gates)\n",
              rr.pins_tied, rr.gates_removed);
  report_stage("cleaned:", nl);

  // Never slower than the mapped circuit.
  const PowderReport pr = optimize(
      nl, PowderOptions::builder().delay_limit_factor(1.0).build());
  std::printf("  (powder applied %d substitutions: OS2 %d, IS2 %d, "
              "OS3 %d, IS3 %d)\n",
              pr.substitutions_applied, pr.by_class[0].applied,
              pr.by_class[1].applied, pr.by_class[2].applied,
              pr.by_class[3].applied);
  report_stage("powder:", nl);

  ResizeOptions ropt;
  ropt.delay_limit_factor = 1.0;
  const ResizeReport rz = resize_gates(&nl, ropt);
  std::printf("  (resize: %d downsized, %d upsized)\n", rz.downsized,
              rz.upsized);
  report_stage("resized:", nl);

  const bool ok = functionally_equivalent(original, nl);
  std::printf("equivalence vs original: %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
