// Sequential circuits through POWDER (DESIGN.md §13): read a `.latch`-bearing
// BLIF, look at the reset-state signal probabilities, optimize across the
// latch boundary (latch outputs are pseudo-PIs, latch inputs pseudo-POs, so
// every substitution proof stays purely combinational), and write valid
// sequential BLIF back out — optionally under the glitch-aware timed model.
//
//   $ ./sequential_latch in.blif out.blif [--timed]
//   $ ./sequential_latch                  (demo mode: built-in 2-latch FSM)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "io/blif.hpp"
#include "powder.hpp"
#include "power/power.hpp"

using namespace powder;

namespace {

// A tiny 2-latch state machine: one resettable latch (init 0), one
// uninitialized (init defaults to 3 = unknown, treated as 0.5).
const char* kDemo =
    ".model seq_demo\n"
    ".inputs a b\n"
    ".outputs f\n"
    ".gate nand2 a=a b=q0 O=n1\n"
    ".gate nand2 a=n1 b=b O=d0\n"
    ".gate xor2 a=q0 b=q1 O=d1\n"
    ".gate nand2 a=q1 b=n1 O=f\n"
    ".latch d0 q0 0\n"
    ".latch d1 q1\n"
    ".end\n";

}  // namespace

int main(int argc, char** argv) {
  const CellLibrary lib = CellLibrary::standard();

  std::string blif_text = kDemo;
  std::string out_path = "seq_demo_optimized.blif";
  bool timed = false;
  if (argc >= 3) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    blif_text = ss.str();
    out_path = argv[2];
  } else {
    std::printf("demo mode: built-in 2-latch circuit\n");
  }
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--timed") timed = true;

  Netlist nl = read_blif(blif_text, lib);
  std::printf("input: %d gates, %d latches, %d primary inputs\n",
              nl.num_cells(), nl.num_latches(),
              nl.num_inputs() - nl.num_latches());

  // Reset-state probabilities: a damped fixed-point iteration seeded from
  // each latch's init value. The latch output's steady-state probability
  // converges onto its next-state driver's.
  const std::vector<double> probs = sequential_signal_probs(nl, {});
  for (const Latch& l : nl.latches())
    std::printf("latch %.*s (init %d): steady-state P(1) = %.4f\n",
                static_cast<int>(nl.gate_name(l.output).size()),
                nl.gate_name(l.output).data(), l.init, probs[l.output]);

  // optimize() expands user pi_probs over the latch pseudo-PIs itself; the
  // builder only needs probabilities for the true primary inputs (none
  // given here, so every primary input defaults to 0.5).
  const PowderOptions opt =
      PowderOptions::builder()
          .power_model(timed ? PowerModelKind::kTimed
                             : PowerModelKind::kZeroDelay)
          .build();
  const PowderReport r = optimize(nl, opt);
  std::printf("model %s: power %.3f -> %.3f (-%.1f%%), %d substitutions\n",
              r.diagnostics.power_model.kind.c_str(), r.initial_power,
              r.final_power, r.power_reduction_percent(),
              r.substitutions_applied);

  std::ofstream(out_path) << write_blif(nl);
  std::printf("output: %s (%d gates, %d latches preserved)\n",
              out_path.c_str(), nl.num_cells(), nl.num_latches());
  return 0;
}
