// Quickstart: the paper's Figure-2 example, end to end.
//
// Builds circuit A (f = (a^c)&b with a shared e = a&b), shows its switched
// capacitance, runs POWDER, and prints the transformation it found — the
// IS2 substitution that rewires the XOR input from `a` to `e`.
//
//   $ ./quickstart

#include <cstdio>

#include "bdd/netlist_bdd.hpp"
#include "powder.hpp"

using namespace powder;

int main() {
  // 1. Build the mapped circuit of Figure 2 (circuit A). The standard
  //    library uses the paper's load ratios: AND pin = 1, XOR pin = 2.
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "fig2");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId d = nl.add_gate(lib.find("xor2"), {a, c}, "d");
  const GateId f = nl.add_gate(lib.find("and2"), {d, b}, "f");
  const GateId e = nl.add_gate(lib.find("and2"), {a, b}, "e");
  nl.add_output("f_out", f, 0.0);
  nl.add_output("e_out", e, 0.0);
  const Netlist original = nl;

  std::printf("Figure 2, circuit A: %d gates, area %.0f\n", nl.num_cells(),
              nl.total_area());

  // 2. Optimize. POWDER estimates switching activity, harvests permissible
  //    substitution candidates by fault simulation, proves each chosen one
  //    with ATPG, and applies it.
  const PowderReport report =
      optimize(nl, PowderOptions::builder().patterns(2048).build());

  std::printf("power (sum C*E):  %.3f -> %.3f  (-%.1f%%)\n",
              report.initial_power, report.final_power,
              report.power_reduction_percent());
  std::printf("substitutions:    %d applied", report.substitutions_applied);
  for (std::size_t k = 0; k < report.by_class.size(); ++k)
    if (report.by_class[k].applied)
      std::printf("  [%s x%d]",
                  subst_class_name(static_cast<SubstClass>(k)),
                  report.by_class[k].applied);
  std::printf("\n");

  // 3. Verify: the optimized netlist computes the same functions.
  const bool ok = functionally_equivalent(original, nl);
  std::printf("functional check: %s\n", ok ? "EQUIVALENT" : "MISMATCH");
  std::printf("xor2 'd' now reads: %s, %s (paper: branch moved a -> e)\n",
              nl.gate_name(nl.fanin(d, 0)).data(),
              nl.gate_name(nl.fanin(d, 1)).data());
  return ok ? 0 : 1;
}
