// Tests for the CDCL SAT solver and the SAT-based permissibility checker.

#include <gtest/gtest.h>

#include "atpg/sat_checker.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

TEST(SatSolver, TrivialInstances) {
  {
    SatSolver s;
    const auto a = s.new_var();
    s.add_unit(sat_lit(a, false));
    EXPECT_EQ(s.solve(), SatResult::kSat);
    EXPECT_TRUE(s.model_value(a));
  }
  {
    SatSolver s;
    const auto a = s.new_var();
    s.add_unit(sat_lit(a, false));
    s.add_unit(sat_lit(a, true));
    EXPECT_EQ(s.solve(), SatResult::kUnsat);
  }
  {
    SatSolver s;
    EXPECT_EQ(s.solve(), SatResult::kSat);  // empty formula
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance exercising learning.
  SatSolver s;
  const int P = 4, H = 3;
  std::vector<std::vector<std::uint32_t>> v(P, std::vector<std::uint32_t>(H));
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) v[p][h] = s.new_var();
  for (int p = 0; p < P; ++p) {
    std::vector<SatLit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(sat_lit(v[p][h], false));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.add_binary(sat_lit(v[p1][h], true), sat_lit(v[p2][h], true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(SatSolver, SatisfiableWithModel) {
  // (a | b) & (!a | c) & (!b | !c) — satisfiable.
  SatSolver s;
  const auto a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_binary(sat_lit(a, false), sat_lit(b, false));
  s.add_binary(sat_lit(a, true), sat_lit(c, false));
  s.add_binary(sat_lit(b, true), sat_lit(c, true));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  const bool va = s.model_value(a), vb = s.model_value(b),
             vc = s.model_value(c);
  EXPECT_TRUE(va || vb);
  EXPECT_TRUE(!va || vc);
  EXPECT_TRUE(!vb || !vc);
}

TEST(SatSolver, AssumptionsWork) {
  SatSolver s;
  const auto a = s.new_var(), b = s.new_var();
  s.add_binary(sat_lit(a, true), sat_lit(b, false));  // a -> b
  EXPECT_EQ(s.solve({sat_lit(a, false), sat_lit(b, true)}),
            SatResult::kUnsat);
  EXPECT_EQ(s.solve({sat_lit(a, false), sat_lit(b, false)}),
            SatResult::kSat);
  // Solver stays reusable after assumption solving.
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // A hard instance with a tiny budget must return kUnknown (not crash,
  // not lie).
  SatSolver s;
  const int P = 7, H = 6;
  std::vector<std::vector<std::uint32_t>> v(P, std::vector<std::uint32_t>(H));
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) v[p][h] = s.new_var();
  for (int p = 0; p < P; ++p) {
    std::vector<SatLit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(sat_lit(v[p][h], false));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.add_binary(sat_lit(v[p1][h], true), sat_lit(v[p2][h], true));
  EXPECT_EQ(s.solve({}, 3), SatResult::kUnknown);
}

// Random 3-SAT cross-checked against brute force.
class Sat3Random : public ::testing::TestWithParam<int> {};

TEST_P(Sat3Random, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  const int nvars = 10;
  const int nclauses = 35 + GetParam();
  std::vector<std::vector<SatLit>> clauses;
  for (int c = 0; c < nclauses; ++c) {
    std::vector<SatLit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(sat_lit(static_cast<std::uint32_t>(rng.below(nvars)),
                           rng.flip(0.5)));
    clauses.push_back(cl);
  }
  // Brute force.
  bool brute_sat = false;
  for (std::uint32_t m = 0; m < (1u << nvars) && !brute_sat; ++m) {
    bool ok = true;
    for (const auto& cl : clauses) {
      bool cok = false;
      for (SatLit l : cl)
        if ((((m >> sat_var(l)) & 1) != 0) != sat_negated(l)) cok = true;
      if (!cok) {
        ok = false;
        break;
      }
    }
    brute_sat = ok;
  }
  SatSolver s;
  for (int v = 0; v < nvars; ++v) s.new_var();
  for (auto& cl : clauses) s.add_clause(cl);
  const SatResult r = s.solve();
  EXPECT_EQ(r == SatResult::kSat, brute_sat);
  if (r == SatResult::kSat) {
    // Verify the model.
    for (const auto& cl : clauses) {
      bool cok = false;
      for (SatLit l : cl)
        if (s.model_value(sat_var(l)) != sat_negated(l)) cok = true;
      EXPECT_TRUE(cok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sat3Random, ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// SAT-based permissibility checking
// ---------------------------------------------------------------------------

TEST(SatChecker, AgreesWithPodemOnTextbookCases) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "t");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(lib.find("and2"), {a, b});
  const GateId g2 = nl.add_gate(lib.find("nand2"), {a, b});
  const GateId g3 = nl.add_gate(lib.find("inv1"), {g2});
  const GateId top = nl.add_gate(lib.find("or2"), {g1, a});
  nl.add_output("f", top);
  nl.add_output("g", g3);

  SatChecker sat(nl);
  EXPECT_EQ(sat.check_replacement(ReplacementSite{g1, std::nullopt},
                                  ReplacementFunction::signal(g3)),
            AtpgResult::kUntestable);
  TestVector test;
  EXPECT_EQ(sat.check_replacement(ReplacementSite{g1, std::nullopt},
                                  ReplacementFunction::signal(g2), &test),
            AtpgResult::kTestFound);
  EXPECT_EQ(sat.check_replacement(ReplacementSite{g1, std::nullopt},
                                  ReplacementFunction::signal(g2, true)),
            AtpgResult::kUntestable);
  EXPECT_EQ(sat.stats().checks, 3);
}

// Property: PODEM and SAT agree on random circuits, and both agree with
// exhaustive simulation.
class EngineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreement, PodemVsSatVsExhaustive) {
  const CellLibrary lib = CellLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(2000 + GetParam()));
  const Aig aig = make_random_logic("eng", 7, 3, 30,
                                    static_cast<std::uint64_t>(GetParam()));
  Netlist nl = map_aig(aig, lib);
  AtpgChecker podem(nl, AtpgOptions{1000000});
  SatChecker sat(nl, SatCheckerOptions{1000000});

  std::vector<GateId> signals;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput) signals.push_back(g);

  Simulator sim(nl, 128);
  sim.use_exhaustive_patterns();
  const std::uint64_t total = 1ull << nl.num_inputs();

  int trials = 0;
  for (int t = 0; t < 60 && trials < 20; ++t) {
    const GateId target = signals[rng.below(signals.size())];
    if (nl.kind(target) != GateKind::kCell) continue;
    if (nl.fanouts(target).empty()) continue;
    // Mix of stem and branch sites.
    ReplacementSite site{target, std::nullopt};
    if (rng.flip(0.4)) {
      const auto fo = nl.fanouts(target);
      site.branch = fo[rng.below(fo.size())];
      if (nl.kind(site.branch->gate) == GateKind::kOutput) site.branch.reset();
    }
    const GateId entry = site.branch ? site.branch->gate : target;
    const GateId source = signals[rng.below(signals.size())];
    if (source == target || source == entry || nl.in_tfo(entry, source))
      continue;
    const bool invert = rng.flip(0.3);
    const ReplacementFunction rep = ReplacementFunction::signal(source, invert);

    std::vector<std::uint64_t> rep_words(sim.value(source).begin(),
                                         sim.value(source).end());
    if (invert)
      for (auto& w : rep_words) w = ~w;
    const auto diff = sim.output_diff_with_replacement(
        target, site.branch ? &*site.branch : nullptr, rep_words);
    bool distinguishable = false;
    for (std::uint64_t m = 0; m < total; ++m)
      if ((diff[m >> 6] >> (m & 63)) & 1) distinguishable = true;

    const AtpgResult rp = podem.check_replacement(site, rep);
    const AtpgResult rs = sat.check_replacement(site, rep);
    ASSERT_NE(rp, AtpgResult::kAborted);
    ASSERT_NE(rs, AtpgResult::kAborted);
    EXPECT_EQ(rp, rs);
    EXPECT_EQ(rp == AtpgResult::kTestFound, distinguishable);
    ++trials;
  }
  EXPECT_GT(trials, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement, ::testing::Range(0, 10));

}  // namespace
}  // namespace powder
