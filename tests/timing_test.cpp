// Tests for the linear-delay-model static timing analysis.

#include <gtest/gtest.h>

#include "timing/timing.hpp"

namespace powder {
namespace {

class TimingTest : public ::testing::Test {
 protected:
  TimingTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(TimingTest, SingleGateDelay) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("nand2"), {a, b});
  nl_.add_output("f", g, 2.0);

  const Cell& c = lib_.cell_by_name("nand2");
  const double expected = c.intrinsic_delay + 2.0 * c.drive_resistance;
  EXPECT_DOUBLE_EQ(gate_delay(nl_, g), expected);
  const TimingAnalysis ta = analyze_timing(nl_);
  EXPECT_DOUBLE_EQ(ta.circuit_delay, expected);
  EXPECT_DOUBLE_EQ(ta.arrival[g], expected);
  EXPECT_DOUBLE_EQ(ta.arrival[a], 0.0);
}

TEST_F(TimingTest, ChainAccumulatesAndLoadMatters) {
  const GateId a = nl_.add_input("a");
  const GateId g1 = nl_.add_gate(cell("inv1"), {a});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  nl_.add_output("f", g2, 1.0);
  const Cell& inv = lib_.cell_by_name("inv1");
  // g1 drives one inv pin (cap 1), g2 drives the PO load 1.
  const double d1 = inv.intrinsic_delay + 1.0 * inv.drive_resistance;
  const double d2 = inv.intrinsic_delay + 1.0 * inv.drive_resistance;
  const TimingAnalysis ta = analyze_timing(nl_);
  EXPECT_DOUBLE_EQ(ta.circuit_delay, d1 + d2);

  // Adding fanout to g1 increases its load and the path delay.
  nl_.add_output("g", g1, 3.0);
  const TimingAnalysis ta2 = analyze_timing(nl_);
  EXPECT_GT(ta2.circuit_delay, ta.circuit_delay);
}

TEST_F(TimingTest, ArrivalIsMaxOverPaths) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId slow1 = nl_.add_gate(cell("inv1"), {a});
  const GateId slow2 = nl_.add_gate(cell("inv1"), {slow1});
  const GateId g = nl_.add_gate(cell("and2"), {slow2, b});
  nl_.add_output("f", g);
  const TimingAnalysis ta = analyze_timing(nl_);
  EXPECT_DOUBLE_EQ(ta.arrival[g],
                   ta.arrival[slow2] + gate_delay(nl_, g));
}

TEST_F(TimingTest, RequiredTimesAndSlack) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId slow1 = nl_.add_gate(cell("inv1"), {a});
  const GateId slow2 = nl_.add_gate(cell("inv1"), {slow1});
  const GateId g = nl_.add_gate(cell("and2"), {slow2, b});
  nl_.add_output("f", g);
  const TimingAnalysis ta = analyze_timing(nl_);  // zero-slack constraint
  // Critical path has zero slack; the short path (b) has positive slack.
  EXPECT_NEAR(ta.slack(slow2), 0.0, 1e-12);
  EXPECT_NEAR(ta.slack(g), 0.0, 1e-12);
  EXPECT_GT(ta.slack(b), 0.0);
}

TEST_F(TimingTest, ExplicitConstraintShiftsRequired) {
  const GateId a = nl_.add_input("a");
  const GateId g = nl_.add_gate(cell("inv1"), {a});
  nl_.add_output("f", g);
  const TimingAnalysis tight = analyze_timing(nl_);
  const TimingAnalysis loose = analyze_timing(nl_, tight.circuit_delay + 5.0);
  EXPECT_NEAR(loose.slack(g), 5.0, 1e-12);
}

TEST_F(TimingTest, OutputsHaveNoDelay) {
  const GateId a = nl_.add_input("a");
  const GateId g = nl_.add_gate(cell("inv1"), {a});
  const GateId o = nl_.add_output("f", g);
  const TimingAnalysis ta = analyze_timing(nl_);
  EXPECT_DOUBLE_EQ(ta.arrival[o], ta.arrival[g]);
}

}  // namespace
}  // namespace powder
