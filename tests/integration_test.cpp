// End-to-end integration tests: PLA/function -> synthesis -> mapping ->
// POWDER, with functional equivalence checked by an independent oracle at
// every stage, plus the cross-stage invariants from DESIGN.md.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "flow/flow.hpp"
#include "io/blif.hpp"
#include "opt/powder.hpp"
#include "timing/timing.hpp"

namespace powder {
namespace {

TEST(Integration, FullFlowPreservesPlaSemantics) {
  const CellLibrary lib = CellLibrary::standard();
  const SopNetwork sop = make_random_pla("itest", 8, 5, 25, 31);
  Netlist nl = build_mapped_circuit(sop, lib);
  nl.check_consistency();

  Simulator sim(nl, 64);
  sim.use_exhaustive_patterns();
  for (int o = 0; o < sop.num_outputs(); ++o) {
    const TruthTable want =
        sop.outputs[static_cast<std::size_t>(o)].to_truth_table();
    const auto v = sim.value(nl.outputs()[static_cast<std::size_t>(o)]);
    for (std::uint64_t m = 0; m < 256; ++m)
      ASSERT_EQ(((v[m >> 6] >> (m & 63)) & 1) != 0, want.bit(m))
          << "output " << o << " minterm " << m;
  }
}

TEST(Integration, FlowPlusPowderOnPla) {
  const CellLibrary lib = CellLibrary::standard();
  const SopNetwork sop = make_random_pla("itest2", 10, 6, 35, 77);
  Netlist nl = build_mapped_circuit(sop, lib);
  const Netlist before = nl;

  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 12;
  opt.max_outer_iterations = 6;
  opt.check_invariants = true;
  const PowderReport report = PowderOptimizer(&nl, opt).run();

  EXPECT_LE(report.final_power, report.initial_power + 1e-9);
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

TEST(Integration, BlifSurvivesOptimization) {
  // Mapped BLIF in -> POWDER -> mapped BLIF out, equivalence throughout.
  const CellLibrary lib = CellLibrary::standard();
  Netlist original = map_aig(make_benchmark("duke2"), lib);
  const std::string blif_in = write_blif(original);

  Netlist nl = read_blif(blif_in, lib);
  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 10;
  opt.max_outer_iterations = 4;
  (void)PowderOptimizer(&nl, opt).run();

  const Netlist back = read_blif(write_blif(nl), lib);
  EXPECT_TRUE(functionally_equivalent(original, back));
}

TEST(Integration, ConstrainedOptimizationKeepsTiming) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("clip"), lib);
  const double initial_delay = analyze_timing(nl).circuit_delay;

  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 10;
  opt.max_outer_iterations = 5;
  opt.delay_limit_factor = 1.0;
  const PowderReport report = PowderOptimizer(&nl, opt).run();

  EXPECT_LE(analyze_timing(nl).circuit_delay, initial_delay + 1e-6);
  EXPECT_LE(report.final_delay, initial_delay + 1e-6);
}

TEST(Integration, TradeoffMonotonicInConstraint) {
  // Looser delay budgets can only help (same seed: supersets of allowed
  // moves). Allow small sampling slack.
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_benchmark("misex3");
  double prev_power = -1.0;
  for (double factor : {1.0, 1.5, -1.0 /* unconstrained */}) {
    Netlist nl = map_aig(aig, lib);
    PowderOptions opt;
    opt.num_patterns = 1024;
    opt.repeat = 12;
    opt.max_outer_iterations = 5;
    opt.delay_limit_factor = factor;
    const PowderReport r = PowderOptimizer(&nl, opt).run();
    if (prev_power >= 0.0)
      EXPECT_LE(r.final_power, prev_power * 1.10);
    prev_power = r.final_power;
  }
}

TEST(Integration, AreaCanRiseWhilePowerDrops) {
  // The paper stresses that power optimization is not area optimization;
  // verify the accounting allows both directions and stays consistent.
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("9sym"), lib);
  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 15;
  opt.max_outer_iterations = 6;
  const PowderReport r = PowderOptimizer(&nl, opt).run();
  EXPECT_LE(r.final_power, r.initial_power + 1e-9);
  double area_sum = r.initial_area;
  for (const ClassStats& cs : r.by_class) area_sum += cs.area_delta;
  EXPECT_NEAR(area_sum, r.final_area, 1e-6);
}

}  // namespace
}  // namespace powder
