// Randomized end-to-end property tests: long random sequences of proved
// substitutions, applied through the real machinery, checked against the
// BDD oracle and the structural invariants after every step.

#include <gtest/gtest.h>

#include "atpg/sat_checker.hpp"
#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/power_gain.hpp"
#include "opt/powder.hpp"
#include "opt/redundancy.hpp"
#include "opt/resize.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

class SubstitutionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SubstitutionFuzz, RandomProvedSubstitutionsPreserveEverything) {
  const CellLibrary lib = CellLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 11);
  Netlist nl = map_aig(
      make_random_logic("fuzz", 8, 4, 60,
                        static_cast<std::uint64_t>(GetParam())),
      lib);
  const Netlist original = nl;

  Simulator sim(nl, 512, {}, static_cast<std::uint64_t>(GetParam()));
  PowerEstimator est(&sim);
  AtpgChecker podem(nl, AtpgOptions{50000});
  SatChecker sat(nl);

  int applied = 0;
  for (int step = 0; step < 60 && applied < 12; ++step) {
    // Draw a random candidate shape directly (not via the finder): any
    // site, any source, any class — the proof engines must sort the
    // permissible ones from the garbage.
    std::vector<GateId> signals;
    for (GateId g = 0; g < nl.num_slots(); ++g)
      if (nl.alive(g) && nl.kind(g) != GateKind::kOutput)
        signals.push_back(g);
    const GateId target = signals[rng.below(signals.size())];
    if (nl.kind(target) != GateKind::kCell) continue;
    if (nl.fanouts(target).empty()) continue;

    CandidateSub cand;
    cand.target = target;
    if (rng.flip(0.5)) {
      const auto fo = nl.fanouts(target);
      const FanoutRef br = fo[rng.below(fo.size())];
      cand.branch = br;
      cand.cls = SubstClass::kIS2;
    } else {
      cand.cls = SubstClass::kOS2;
    }
    const GateId source = signals[rng.below(signals.size())];
    if (rng.flip(0.15)) {
      cand.rep = ReplacementFunction::constant(rng.flip(0.5));
    } else if (rng.flip(0.3)) {
      const GateId source2 = signals[rng.below(signals.size())];
      const auto& cells = lib.two_input_cells();
      const CellId cell = cells[rng.below(cells.size())];
      cand.rep = ReplacementFunction::two_input(source, source2,
                                                lib.cell(cell).function);
      cand.new_cell = cell;
      cand.cls = cand.branch ? SubstClass::kIS3 : SubstClass::kOS3;
    } else {
      cand.rep = ReplacementFunction::signal(source, rng.flip(0.3));
    }
    if (!substitution_still_valid(nl, cand)) continue;

    // Both engines must agree; only proved-permissible ones get applied.
    const AtpgResult rp = podem.check_replacement(cand.site(), cand.rep);
    const AtpgResult rs = sat.check_replacement(cand.site(), cand.rep);
    if (rp != AtpgResult::kAborted)
      ASSERT_EQ(rp, rs) << "engine disagreement at step " << step;
    if (rs != AtpgResult::kUntestable) continue;

    // Gain prediction must equal the measured delta (any sign).
    cand.pg_a = compute_pg_a(nl, est, cand);
    cand.pg_b = compute_pg_b(nl, est, cand);
    cand.pg_c = compute_pg_c(nl, est, cand);
    const double before = est.total_power();
    const AppliedSub ap = apply_substitution(nl, cand);
    est.refresh();
    EXPECT_NEAR(cand.total_gain(), before - est.total_power(), 1e-6);

    nl.check_consistency();
    ++applied;
  }
  EXPECT_TRUE(functionally_equivalent(original, nl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubstitutionFuzz, ::testing::Range(0, 8));

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, FullPipelinePreservesFunctions) {
  // redundancy removal -> POWDER (random engine/objective) -> resize, on a
  // random PLA; oracle-checked.
  const CellLibrary lib = CellLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const SopNetwork sop = make_random_pla(
      "pfuzz", 7 + static_cast<int>(rng.below(4)),
      3 + static_cast<int>(rng.below(5)), 20 + static_cast<int>(rng.below(20)),
      static_cast<std::uint64_t>(GetParam()) * 3 + 1);
  Netlist nl = build_mapped_circuit(sop, lib);
  const Netlist original = nl;

  (void)remove_redundancies(&nl);
  nl.check_consistency();

  PowderOptions opt;
  opt.num_patterns = 512;
  opt.repeat = 8;
  opt.max_outer_iterations = 4;
  opt.seed = static_cast<std::uint64_t>(GetParam()) + 7;
  opt.objective = rng.flip(0.3) ? Objective::kArea : Objective::kPower;
  opt.proof.engine = rng.flip(0.5) ? ProofEngine::kSat : ProofEngine::kHybrid;
  opt.delay_limit_factor = rng.flip(0.5) ? 1.0 : -1.0;
  opt.check_invariants = true;
  const PowderReport r = PowderOptimizer(&nl, opt).run();
  if (opt.delay_limit_factor > 0)
    EXPECT_LE(r.final_delay, r.delay_limit + 1e-6);

  ResizeOptions ropt;
  ropt.num_patterns = 512;
  (void)resize_gates(&nl, ropt);
  nl.check_consistency();

  EXPECT_TRUE(functionally_equivalent(original, nl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace powder
