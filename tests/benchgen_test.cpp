// Tests for the benchmark generators: determinism, functional sanity of
// the exact generators, and suite integrity.

#include <gtest/gtest.h>

#include <set>

#include "benchgen/benchmarks.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

TEST(Benchgen, SuitesAreRegistered) {
  for (const std::string& name : table1_suite())
    EXPECT_TRUE(is_known_benchmark(name)) << name;
  for (const std::string& name : fig6_suite())
    EXPECT_TRUE(is_known_benchmark(name)) << name;
  for (const std::string& name : quick_suite())
    EXPECT_TRUE(is_known_benchmark(name)) << name;
  EXPECT_EQ(table1_suite().size(), 47u);  // same circuit count as Table 1
  EXPECT_EQ(fig6_suite().size(), 18u);    // paper: "a set of 18 circuits"
}

TEST(Benchgen, GeneratorsAreDeterministic) {
  for (const char* name : {"comp", "duke2", "C432", "t481"}) {
    const Aig a1 = make_benchmark(name);
    const Aig a2 = make_benchmark(name);
    EXPECT_EQ(a1.num_inputs(), a2.num_inputs());
    EXPECT_EQ(a1.num_ands(), a2.num_ands());
    if (a1.num_inputs() <= 14)
      EXPECT_EQ(a1.output_truth_tables()[0].to_hex(),
                a2.output_truth_tables()[0].to_hex());
  }
}

TEST(Benchgen, ComparatorSemantics) {
  const Aig aig = make_comparator(4);
  const auto tts = aig.output_truth_tables();  // gt, eq, lt over a0..a3 b0..b3
  for (std::uint64_t m = 0; m < 256; ++m) {
    const std::uint64_t a = m & 0xF, b = (m >> 4) & 0xF;
    EXPECT_EQ(tts[0].bit(m), a > b);
    EXPECT_EQ(tts[1].bit(m), a == b);
    EXPECT_EQ(tts[2].bit(m), a < b);
  }
}

TEST(Benchgen, AdderSemantics) {
  const Aig aig = make_adder(4);
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 512; ++m) {
    const std::uint64_t a = m & 0xF, b = (m >> 4) & 0xF, cin = (m >> 8) & 1;
    const std::uint64_t sum = a + b + cin;
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(tts[static_cast<std::size_t>(i)].bit(m), ((sum >> i) & 1) != 0);
  }
}

TEST(Benchgen, MultiplierSemantics) {
  const Aig aig = make_multiplier(3);
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 64; ++m) {
    const std::uint64_t a = m & 7, b = (m >> 3) & 7;
    const std::uint64_t p = a * b;
    for (int i = 0; i < 6; ++i)
      EXPECT_EQ(tts[static_cast<std::size_t>(i)].bit(m), ((p >> i) & 1) != 0);
  }
}

TEST(Benchgen, RdCountsOnes) {
  const Aig aig = make_rd(8);
  const auto tts = aig.output_truth_tables();
  ASSERT_EQ(tts.size(), 4u);  // rd84: 8 inputs -> 4 count bits
  for (std::uint64_t m = 0; m < 256; ++m) {
    const int ones = __builtin_popcountll(m);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(tts[static_cast<std::size_t>(i)].bit(m),
                ((ones >> i) & 1) != 0);
  }
}

TEST(Benchgen, SymmetricThreshold) {
  const Aig aig = make_symmetric(9, 3, 6);
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 512; ++m) {
    const int ones = __builtin_popcountll(m);
    EXPECT_EQ(tts[0].bit(m), ones >= 3 && ones <= 6);
  }
}

TEST(Benchgen, AluOps) {
  const Aig aig = make_alu(3);
  const auto tts = aig.output_truth_tables();
  // inputs: a0..2, b0..2, op0, op1
  for (std::uint64_t m = 0; m < 256; ++m) {
    const std::uint64_t a = m & 7, b = (m >> 3) & 7;
    const bool op0 = (m >> 6) & 1, op1 = (m >> 7) & 1;
    std::uint64_t y;
    if (!op1)
      y = op0 ? (a - b) & 7 : (a + b) & 7;
    else
      y = op0 ? a ^ b : a & b;
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(tts[static_cast<std::size_t>(i)].bit(m), ((y >> i) & 1) != 0)
          << "m=" << m << " bit " << i;
  }
}

TEST(Benchgen, PriorityInterruptSemantics) {
  const Aig aig = make_priority_interrupt(4);  // 4 req + 4 mask + en = 9 in
  const auto tts = aig.output_truth_tables();
  // Outputs: v0, v1 (encoded index), valid, parity.
  for (std::uint64_t m = 0; m < 512; ++m) {
    const std::uint64_t req = m & 0xF, mask = (m >> 4) & 0xF;
    const bool en = (m >> 8) & 1;
    const std::uint64_t active = en ? (req & ~mask & 0xF) : 0;
    int best = -1;
    for (int i = 3; i >= 0; --i)
      if ((active >> i) & 1) {
        best = i;
        break;
      }
    EXPECT_EQ(tts[2].bit(m), best >= 0) << m;  // valid
    if (best >= 0) {
      EXPECT_EQ(tts[0].bit(m), (best & 1) != 0) << m;
      EXPECT_EQ(tts[1].bit(m), (best & 2) != 0) << m;
    }
    EXPECT_EQ(tts[3].bit(m), (__builtin_popcountll(req) & 1) != 0) << m;
  }
}

TEST(Benchgen, BarrelRotatorSemantics) {
  const Aig aig = make_barrel_rotator(8);  // 8 data + 3 amount
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 2048; ++m) {
    const std::uint64_t d = m & 0xFF;
    const int s = static_cast<int>((m >> 8) & 7);
    const std::uint64_t rot = ((d << s) | (d >> (8 - s))) & 0xFF;
    for (int b = 0; b < 8; ++b)
      EXPECT_EQ(tts[static_cast<std::size_t>(b)].bit(m),
                ((rot >> b) & 1) != 0)
          << "m=" << m << " bit " << b;
  }
}

TEST(Benchgen, FeistelIsInvertibleInData) {
  // A Feistel network is a bijection on (L, R) for every fixed key: check
  // on a small instance that distinct data inputs give distinct outputs.
  const Aig aig = make_feistel(4, 2, 99);  // 8 data + 8 key inputs
  const auto tts = aig.output_truth_tables();
  ASSERT_EQ(tts.size(), 8u);
  for (std::uint64_t key = 0; key < 4; ++key) {
    std::set<std::uint64_t> images;
    for (std::uint64_t data = 0; data < 256; ++data) {
      const std::uint64_t input = data | (key << 8);
      std::uint64_t out = 0;
      for (int b = 0; b < 8; ++b)
        if (tts[static_cast<std::size_t>(b)].bit(input)) out |= 1ull << b;
      images.insert(out);
    }
    EXPECT_EQ(images.size(), 256u) << "not a bijection for key " << key;
  }
}

TEST(Benchgen, RedundantTwinOutputsAreEqual) {
  const Aig aig = make_redundant_twin(8, 7);
  const auto tts = aig.output_truth_tables();
  ASSERT_EQ(tts.size(), 2u);
  EXPECT_TRUE(tts[0] == tts[1]);  // f & g both equal f1
  EXPECT_FALSE(tts[0].is_constant(false));
  EXPECT_FALSE(tts[0].is_constant(true));
}

TEST(Benchgen, RandomPlaShapesMatchRequest) {
  const SopNetwork sop = make_random_pla("x", 12, 7, 40, 99);
  EXPECT_EQ(sop.num_inputs(), 12);
  EXPECT_EQ(sop.num_outputs(), 7);
  for (const Cover& c : sop.outputs) EXPECT_FALSE(c.empty());
}

TEST(Benchgen, RandomLogicRespectsSize) {
  const Aig aig = make_random_logic("x", 20, 10, 150, 42);
  EXPECT_EQ(aig.num_inputs(), 20);
  EXPECT_EQ(aig.num_outputs(), 10);
  EXPECT_GE(aig.num_ands(), 150);
  EXPECT_LE(aig.num_ands(), 200);  // small overshoot from composite makers
}

TEST(Benchgen, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("no_such_circuit"), CheckError);
}

}  // namespace
}  // namespace powder
