// Tests of the event-driven incremental core (DESIGN.md §6): the netlist
// delta bus, delta replay across tombstone lifecycles, and the parity of
// the self-maintaining simulator / power / timing / candidate caches with
// a from-scratch recomputation after a storm of mutations.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "opt/journal.hpp"
#include "opt/powder.hpp"
#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "timing/incremental_timing.hpp"
#include "timing/timing.hpp"
#include "util/check.hpp"
#include "util/gate_map.hpp"
#include "util/thread_pool.hpp"

namespace powder {
namespace {

// --- GateMap ----------------------------------------------------------------

TEST(GateMapTest, EnsureGrowsWithFillAndBoundsAreChecked) {
  GateMap<double> m(4, -1.0);
  EXPECT_EQ(m.size(), 4u);
  m[2] = 3.5;
  EXPECT_EQ(m[2], 3.5);
  EXPECT_EQ(m[3], -1.0);

  m.ensure(8);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_EQ(m[2], 3.5);   // existing entries survive growth
  EXPECT_EQ(m[7], -1.0);  // new entries take the fill value
  m.ensure(2);            // never shrinks: GateIds are stable
  EXPECT_EQ(m.size(), 8u);

  EXPECT_TRUE(m.covers(7));
  EXPECT_FALSE(m.covers(8));
  EXPECT_THROW(m[8], CheckError);
  const GateMap<double>& cm = m;
  EXPECT_THROW(cm[100], CheckError);
  EXPECT_EQ(m.get_or(100, 9.0), 9.0);
  EXPECT_EQ(m.get_or(2, 9.0), 3.5);

  m.assign(3, 0.25);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0.25);
  m.ensure(5);  // assign() also resets the fill value
  EXPECT_EQ(m[4], 0.25);
}

// --- shared storm machinery -------------------------------------------------

/// Cells grouped by (function, arity): the size alternatives of each gate.
std::unordered_map<std::string, std::vector<CellId>> size_groups(
    const CellLibrary& lib) {
  std::unordered_map<std::string, std::vector<CellId>> groups;
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const Cell& c = lib.cell(id);
    groups[c.function.to_hex() + "/" + std::to_string(c.num_inputs())]
        .push_back(id);
  }
  return groups;
}

/// One deterministic storm round: harvest with `finder`, commit a handful
/// of substitutions (rolling every third back to exercise the
/// tombstone/revive cycle), then re-size a few cells — every mutation
/// shape the optimizer produces crosses the delta bus.
void storm_round(Netlist& nl, PowerEstimator& est, CandidateFinder& finder,
                 SubstJournal& journal, int round, std::uint64_t seed) {
  est.refresh();
  finder.reseed(seed + 17 * static_cast<std::uint64_t>(round));
  const std::vector<CandidateSub> cands = finder.find();

  int applied = 0;
  for (const CandidateSub& sub : cands) {
    if (applied >= 12) break;
    if (!substitution_still_valid(nl, sub)) continue;
    const std::size_t mark = journal.checkpoint();
    try {
      journal.apply(sub);
    } catch (const CheckError&) {
      continue;
    }
    est.refresh();
    ++applied;
    if (applied % 3 == 0) {
      journal.rollback_to(mark);
      est.refresh();
    }
  }

  const auto groups = size_groups(nl.library());
  int swapped = 0;
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (swapped >= 8) break;
    if (!nl.alive(g) || nl.kind(g) != GateKind::kCell) continue;
    if (g % 5 != static_cast<GateId>(round) % 5) continue;
    const Cell& c = nl.cell_of(g);
    const auto it = groups.find(c.function.to_hex() + "/" +
                                std::to_string(c.num_inputs()));
    if (it == groups.end() || it->second.size() < 2) continue;
    const CellId cur = nl.cell_id(g);
    for (CellId alt : it->second) {
      if (alt == cur) continue;
      journal.apply_resize(g, alt);
      est.refresh();
      ++swapped;
      break;
    }
  }
}

void expect_same_structure(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  EXPECT_EQ(a.inputs(), b.inputs());
  EXPECT_EQ(a.outputs(), b.outputs());
  for (GateId g = 0; g < a.num_slots(); ++g) {
    SCOPED_TRACE("gate " + std::to_string(g));
    EXPECT_EQ(a.alive(g), b.alive(g));
    EXPECT_EQ(static_cast<int>(a.kind(g)), static_cast<int>(b.kind(g)));
    EXPECT_EQ(a.cell_id(g), b.cell_id(g));
    EXPECT_EQ(a.gate_name(g), b.gate_name(g));
    ASSERT_EQ(a.num_fanins(g), b.num_fanins(g));
    for (int pin = 0; pin < a.num_fanins(g); ++pin)
      EXPECT_EQ(a.fanin(g, pin), b.fanin(g, pin));
    ASSERT_EQ(a.num_fanouts(g), b.num_fanouts(g));
    for (int k = 0; k < a.num_fanouts(g); ++k)
      EXPECT_TRUE(a.fanouts(g)[static_cast<std::size_t>(k)] ==
                  b.fanouts(g)[static_cast<std::size_t>(k)]);
    EXPECT_EQ(a.po_load(g), b.po_load(g));
  }
}

struct DeltaRecorder final : public NetlistObserver {
  std::vector<NetlistDelta> log;
  bool saw_rebuilt = false;
  void on_delta(const NetlistDelta& delta) override {
    if (delta.kind == DeltaKind::kRebuilt)
      saw_rebuilt = true;
    else
      log.push_back(delta);
  }
};

// --- delta bus --------------------------------------------------------------

TEST(DeltaBusTest, DeltasSinceReportsTailAndEviction) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("comp"), lib);

  // Find a gate with a size alternative to generate cheap deltas.
  const auto groups = size_groups(lib);
  GateId g = kNullGate;
  CellId other = kInvalidCell;
  for (GateId cand = 0; cand < nl.num_slots() && g == kNullGate; ++cand) {
    if (!nl.alive(cand) || nl.kind(cand) != GateKind::kCell) continue;
    const Cell& c = nl.cell_of(cand);
    const auto it = groups.find(c.function.to_hex() + "/" +
                                std::to_string(c.num_inputs()));
    if (it == groups.end() || it->second.size() < 2) continue;
    g = cand;
    for (CellId alt : it->second)
      if (alt != nl.cell_id(cand)) other = alt;
  }
  ASSERT_NE(g, kNullGate);

  const std::uint64_t e0 = nl.epoch();
  const CellId original = nl.cell_id(g);
  nl.set_cell(g, other);
  nl.set_cell(g, original);
  const auto tail = nl.deltas_since(e0);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].kind, DeltaKind::kCellChanged);
  EXPECT_EQ((*tail)[0].gate, g);
  EXPECT_EQ((*tail)[0].old_cell, original);
  EXPECT_EQ((*tail)[0].new_cell, other);
  EXPECT_EQ((*tail)[1].new_cell, original);
  EXPECT_EQ((*tail)[1].epoch, nl.epoch());

  // A no-op swap publishes nothing.
  const std::uint64_t e1 = nl.epoch();
  nl.set_cell(g, original);
  EXPECT_EQ(nl.epoch(), e1);

  // Overflow the bounded log: the stale range degrades to nullopt (full
  // rebuild signal), the recent tail stays available.
  for (int i = 0; i < 1200; ++i)
    nl.set_cell(g, (i % 2 == 0) ? other : original);
  EXPECT_FALSE(nl.deltas_since(e0).has_value());
  const auto recent = nl.deltas_since(nl.epoch() - 5);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(recent->size(), 5u);
  const auto none = nl.deltas_since(nl.epoch());
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
}

// Tombstone lifecycle property: replaying an observer's delta stream onto a
// copy taken at subscription time reproduces the source netlist slot by
// slot — including gates that died, were revived, and died again.
TEST(DeltaBusTest, ReplayReproducesStormedNetlist) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);
  Netlist replica = nl;  // copies carry no observers and an empty log
  DeltaRecorder rec;
  nl.attach_observer(&rec);

  Simulator sim(nl, 256);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl, est);
  SubstJournal journal(&nl);
  for (int round = 0; round < 4; ++round)
    storm_round(nl, est, finder, journal, round, /*seed=*/11);
  nl.detach_observer(&rec);

  ASSERT_FALSE(rec.saw_rebuilt);
  ASSERT_GT(rec.log.size(), 50u);
  for (const NetlistDelta& d : rec.log) replay_delta(replica, d, nl.names());
  expect_same_structure(nl, replica);
  replica.check_consistency();
}

// --- cache parity after a mutation storm ------------------------------------

// After rounds of journal commits, rollbacks, and re-sizes, every
// incrementally maintained cache must be bit-identical to a from-scratch
// recomputation on the final netlist. `workers > 0` shards the simulator
// and harvest across a pool (the TSan-checked configuration).
void run_parity_storm(int workers) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);
  ThreadPool pool(workers);
  Simulator sim(nl, 512, {}, /*seed=*/7);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl, est, {}, /*seed=*/7,
                         workers > 0 ? &pool : nullptr);
  if (workers > 0) sim.set_thread_pool(&pool);
  SubstJournal journal(&nl);
  IncrementalTiming timing(nl);

  for (int round = 0; round < 5; ++round) {
    storm_round(nl, est, finder, journal, round, /*seed=*/7);
    timing.refresh();  // interleave refreshes with the mutation stream
  }

  // Simulator parity: same stimulus, fresh propagation.
  Simulator fresh_sim(nl, 512, {}, /*seed=*/7);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    const auto inc = sim.value(g);
    const auto ref = fresh_sim.value(g);
    ASSERT_TRUE(std::equal(inc.begin(), inc.end(), ref.begin(), ref.end()))
        << "signature mismatch at gate " << g;
  }

  // Power parity.
  PowerEstimator fresh_est(&fresh_sim);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g) || nl.kind(g) == GateKind::kOutput) continue;
    EXPECT_EQ(est.probability(g), fresh_est.probability(g)) << "gate " << g;
    EXPECT_EQ(est.activity(g), fresh_est.activity(g)) << "gate " << g;
  }
  EXPECT_EQ(est.total_power(), fresh_est.total_power());

  // Timing parity: bit-identical to the full STA on the same netlist.
  const TimingAnalysis full = analyze_timing(nl);
  EXPECT_EQ(timing.circuit_delay(), full.circuit_delay);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    EXPECT_EQ(timing.arrival(g), full.arrival[g]) << "arrival, gate " << g;
    EXPECT_EQ(timing.required(g), full.required[g]) << "required, gate " << g;
  }
}

TEST(IncrementalParityTest, SerialStormMatchesFullRecompute) {
  run_parity_storm(0);
}

TEST(IncrementalParityTest, ThreadedStormMatchesFullRecompute) {
  run_parity_storm(7);  // 8 lanes: 7 workers + the caller
}

// --- persistent candidate finder --------------------------------------------

TEST(IncrementalCandidateTest, PersistentFinderMatchesFreshHarvest) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("Z5xp1"), lib);
  Simulator sim(nl, 256, {}, /*seed=*/5);
  PowerEstimator est(&sim);
  CandidateFinder persistent(nl, est, {}, /*seed=*/5);
  SubstJournal journal(&nl);

  for (int round = 0; round < 4; ++round) {
    storm_round(nl, est, persistent, journal, round, /*seed=*/5);
    est.refresh();

    // The persistent finder re-hashes only the dirty gates (the dirty set
    // can exceed the live index on this small circuit because rollbacks
    // dirty tombstoned slots too — the refresh-fraction assertion lives in
    // the end-to-end diagnostics test)...
    persistent.reseed(900 + static_cast<std::uint64_t>(round));
    const std::vector<CandidateSub> inc = persistent.find();
    EXPECT_FALSE(persistent.last_refresh_full());

    // ...yet harvests exactly what a from-scratch finder harvests.
    CandidateFinder fresh(nl, est, {}, 900 + static_cast<std::uint64_t>(round));
    const std::vector<CandidateSub> ref = fresh.find();
    ASSERT_EQ(inc.size(), ref.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      SCOPED_TRACE("candidate " + std::to_string(i));
      EXPECT_EQ(inc[i].cls, ref[i].cls);
      EXPECT_EQ(inc[i].target, ref[i].target);
      EXPECT_EQ(inc[i].branch, ref[i].branch);
      EXPECT_EQ(inc[i].new_cell, ref[i].new_cell);
      EXPECT_EQ(inc[i].rep.kind, ref[i].rep.kind);
      EXPECT_EQ(inc[i].rep.constant_value, ref[i].rep.constant_value);
      EXPECT_EQ(inc[i].rep.b, ref[i].rep.b);
      EXPECT_EQ(inc[i].rep.invert_b, ref[i].rep.invert_b);
      EXPECT_EQ(inc[i].rep.c, ref[i].rep.c);
      EXPECT_EQ(inc[i].rep.invert_c, ref[i].rep.invert_c);
      EXPECT_EQ(inc[i].rep.two_input_fn, ref[i].rep.two_input_fn);
      EXPECT_EQ(inc[i].pg_a, ref[i].pg_a);
      EXPECT_EQ(inc[i].pg_b, ref[i].pg_b);
    }
  }
}

// --- journal re-sizing ------------------------------------------------------

TEST(IncrementalJournalTest, ResizeCommitsRollBackThroughTheJournal) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("comp"), lib);

  const auto groups = size_groups(lib);
  GateId g = kNullGate;
  CellId alt = kInvalidCell;
  for (GateId cand = 0; cand < nl.num_slots() && g == kNullGate; ++cand) {
    if (!nl.alive(cand) || nl.kind(cand) != GateKind::kCell) continue;
    const Cell& c = nl.cell_of(cand);
    const auto it = groups.find(c.function.to_hex() + "/" +
                                std::to_string(c.num_inputs()));
    if (it == groups.end() || it->second.size() < 2) continue;
    g = cand;
    for (CellId a : it->second)
      if (a != nl.cell_id(cand)) alt = a;
  }
  ASSERT_NE(g, kNullGate);
  const CellId original = nl.cell_id(g);

  DeltaRecorder rec;
  nl.attach_observer(&rec);
  SubstJournal journal(&nl);

  const AppliedSub& applied = journal.apply_resize(g, alt);
  EXPECT_EQ(nl.cell_id(g), alt);
  ASSERT_EQ(applied.resized_cells.size(), 1u);
  EXPECT_EQ(applied.resized_cells[0].gate, g);
  EXPECT_EQ(applied.resized_cells[0].old_cell, original);
  EXPECT_EQ(applied.resized_cells[0].new_cell, alt);
  ASSERT_EQ(rec.log.size(), 1u);
  EXPECT_EQ(rec.log[0].kind, DeltaKind::kCellChanged);

  const std::vector<GateId> roots = journal.rollback_last();
  EXPECT_EQ(nl.cell_id(g), original);
  EXPECT_NE(std::find(roots.begin(), roots.end(), g), roots.end());
  ASSERT_EQ(rec.log.size(), 2u);
  EXPECT_EQ(rec.log[1].kind, DeltaKind::kCellChanged);
  EXPECT_EQ(rec.log[1].new_cell, original);
  nl.detach_observer(&rec);
}

// --- stale-query guard ------------------------------------------------------

TEST(IncrementalSimTest, FlipAndDiffQueriesOnStaleSimulatorAreChecked) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("comp"), lib);
  Simulator sim(nl, 128);

  const auto groups = size_groups(lib);
  GateId g = kNullGate;
  CellId alt = kInvalidCell;
  for (GateId cand = 0; cand < nl.num_slots() && g == kNullGate; ++cand) {
    if (!nl.alive(cand) || nl.kind(cand) != GateKind::kCell) continue;
    const Cell& c = nl.cell_of(cand);
    const auto it = groups.find(c.function.to_hex() + "/" +
                                std::to_string(c.num_inputs()));
    if (it == groups.end() || it->second.size() < 2) continue;
    g = cand;
    for (CellId a : it->second)
      if (a != nl.cell_id(cand)) alt = a;
  }
  ASSERT_NE(g, kNullGate);

  EXPECT_FALSE(sim.pending());
  nl.set_cell(g, alt);
  EXPECT_TRUE(sim.pending());
  EXPECT_THROW(sim.stem_observability(g), CheckError);
  sim.refresh();
  EXPECT_FALSE(sim.pending());
  EXPECT_NO_THROW(sim.stem_observability(g));
}

// --- end-to-end diagnostics -------------------------------------------------

// On iterations >= 2 the candidate index refresh must touch strictly fewer
// gates than a full rebuild would, and the incremental STA must visit
// strictly fewer nodes than the full passes it replaces.
TEST(IncrementalDiagnosticsTest, CountersProveIncrementalityEndToEnd) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);

  const PowderOptions opt = PowderOptions::builder()
                                .patterns(512)
                                .repeat(10)
                                .max_outer_iterations(4)
                                .delay_limit_factor(1.1)
                                .seed(3)
                                .build();
  const PowderReport report = optimize(nl, opt);
  const PowderReport::Diagnostics& d = report.diagnostics;

  ASSERT_GE(report.outer_iterations, 2);
  ASSERT_GT(report.substitutions_applied, 0);

  EXPECT_GT(d.deltas_published, 0);
  EXPECT_GE(d.observer_notifications, d.deltas_published);

  EXPECT_GT(d.candidate_index_size, 0);
  EXPECT_LT(d.candidate_gates_refreshed, d.candidate_index_size);

  EXPECT_GT(d.sta_full_equiv_visits, 0);
  EXPECT_LT(d.sta_incremental_visits, d.sta_full_equiv_visits);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"deltas_published\":"), std::string::npos);
  EXPECT_NE(json.find("\"candidate_gates_refreshed\":"), std::string::npos);
  EXPECT_NE(json.find("\"sta_incremental_visits\":"), std::string::npos);
}

}  // namespace
}  // namespace powder
