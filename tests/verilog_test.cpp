// Tests for the structural Verilog writer and netlist compaction (grouped
// here as "export/maintenance" features).

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/verilog.hpp"
#include "mapper/mapper.hpp"
#include "opt/powder.hpp"

namespace powder {
namespace {

TEST(Verilog, EmitsWellFormedModule) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "top");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(lib.find("nand2"), {a, b}, "n1");
  nl.add_output("f", g);
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("module top(a, b, f);"), std::string::npos);
  EXPECT_NE(v.find("input a"), std::string::npos);
  EXPECT_NE(v.find("output f"), std::string::npos);
  EXPECT_NE(v.find("nand2 g0 (.a(a), .b(b), .O(n1));"), std::string::npos);
  EXPECT_NE(v.find("assign f = n1;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, EscapesAwkwardNames) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "top");
  const GateId a = nl.add_input("a[3]");
  const GateId g = nl.add_gate(lib.find("inv1"), {a}, "n.1");
  nl.add_output("2out", g);
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("\\a[3] "), std::string::npos);
  EXPECT_NE(v.find("\\n.1 "), std::string::npos);
  EXPECT_NE(v.find("\\2out "), std::string::npos);
}

TEST(Verilog, ConstantsBecomeAssigns) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "top");
  const GateId one = nl.add_gate(lib.const1(), {}, "c1");
  nl.add_output("f", one);
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("assign c1 = 1'b1;"), std::string::npos);
}

TEST(Verilog, EveryGateInstantiatedOnce) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("rd84"), lib);
  const std::string v = write_verilog(nl);
  int instances = 0;
  for (std::size_t pos = v.find(".O("); pos != std::string::npos;
       pos = v.find(".O(", pos + 1))
    ++instances;
  EXPECT_EQ(instances, nl.num_cells());
}

TEST(Compaction, RemovesTombstonesAndPreservesFunction) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("misex3"), lib);
  PowderOptions opt;
  opt.num_patterns = 512;
  opt.repeat = 10;
  opt.max_outer_iterations = 3;
  (void)PowderOptimizer(&nl, opt).run();  // creates tombstones

  std::vector<GateId> remap;
  const Netlist compact = nl.compacted(&remap);
  compact.check_consistency();
  EXPECT_EQ(compact.num_cells(), nl.num_cells());
  EXPECT_LE(compact.num_slots(),
            static_cast<std::size_t>(compact.num_cells()) +
                static_cast<std::size_t>(compact.num_inputs()) +
                static_cast<std::size_t>(compact.num_outputs()));
  EXPECT_TRUE(functionally_equivalent(nl, compact));
  // Remap sanity: live gates mapped, names preserved; dead gates dropped.
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (nl.alive(g)) {
      ASSERT_NE(remap[g], kNullGate);
      EXPECT_EQ(compact.gate_name(remap[g]), nl.gate_name(g));
    } else {
      EXPECT_EQ(remap[g], kNullGate);
    }
  }
}

TEST(Compaction, IdempotentOnCleanNetlist) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("comp"), lib);
  const Netlist once = nl.compacted();
  const Netlist twice = once.compacted();
  EXPECT_EQ(once.num_slots(), twice.num_slots());
  EXPECT_TRUE(functionally_equivalent(once, twice));
}

}  // namespace
}  // namespace powder
