// Tests for the AIG: structural hashing, simplification rules, builders,
// and exhaustive evaluation.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

TEST(Aig, TrivialAndRules) {
  Aig aig;
  const AigLit a = aig.add_input("a");
  const AigLit b = aig.add_input("b");
  EXPECT_EQ(aig.land(a, kAigFalse), kAigFalse);
  EXPECT_EQ(aig.land(a, kAigTrue), a);
  EXPECT_EQ(aig.land(a, a), a);
  EXPECT_EQ(aig.land(a, aig_not(a)), kAigFalse);
  const AigLit ab1 = aig.land(a, b);
  const AigLit ab2 = aig.land(b, a);  // structural hashing canonicalizes
  EXPECT_EQ(ab1, ab2);
  EXPECT_EQ(aig.num_ands(), 1);
}

TEST(Aig, XorMuxSemantics) {
  Aig aig;
  const AigLit a = aig.add_input("a");
  const AigLit b = aig.add_input("b");
  const AigLit s = aig.add_input("s");
  aig.add_output(aig.lxor(a, b), "x");
  aig.add_output(aig.lmux(s, a, b), "m");
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1, vs = (m >> 2) & 1;
    EXPECT_EQ(tts[0].bit(m), va != vb);
    EXPECT_EQ(tts[1].bit(m), vs ? va : vb);
  }
}

TEST(Aig, ManyInputBuilders) {
  Aig aig;
  std::vector<AigLit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(aig.add_input());
  aig.add_output(aig.land_many(lits), "and");
  aig.add_output(aig.lor_many(lits), "or");
  const auto tts = aig.output_truth_tables();
  for (std::uint64_t m = 0; m < 32; ++m) {
    EXPECT_EQ(tts[0].bit(m), m == 31);
    EXPECT_EQ(tts[1].bit(m), m != 0);
  }
}

TEST(Aig, EmptyAndOr) {
  Aig aig;
  (void)aig.add_input("a");
  aig.add_output(aig.land_many({}), "t");
  aig.add_output(aig.lor_many({}), "f");
  const auto tts = aig.output_truth_tables();
  EXPECT_TRUE(tts[0].is_constant(true));
  EXPECT_TRUE(tts[1].is_constant(false));
}

TEST(Aig, FromCoverMatchesTruthTable) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    Cover cover(5);
    const int ncubes = 1 + static_cast<int>(rng.below(9));
    for (int i = 0; i < ncubes; ++i) {
      Cube cube(5);
      for (int v = 0; v < 5; ++v) {
        const double r = rng.uniform();
        if (r < 0.3)
          cube.set_lit(v, Lit::kOne);
        else if (r < 0.6)
          cube.set_lit(v, Lit::kZero);
      }
      cover.add(cube);
    }
    Aig aig;
    std::vector<AigLit> vars;
    for (int i = 0; i < 5; ++i) vars.push_back(aig.add_input());
    aig.add_output(aig.from_cover(cover, vars), "f");
    EXPECT_TRUE(aig.output_truth_tables()[0] == cover.to_truth_table());
  }
}

TEST(Aig, LiveAndCountIgnoresDeadNodes) {
  Aig aig;
  const AigLit a = aig.add_input("a");
  const AigLit b = aig.add_input("b");
  const AigLit used = aig.land(a, b);
  (void)aig.land(a, aig_not(b));  // dead
  aig.add_output(used, "f");
  EXPECT_EQ(aig.num_ands(), 2);
  EXPECT_EQ(aig.live_and_count(), 1);
}

TEST(Aig, ConstantOutputs) {
  Aig aig;
  const AigLit a = aig.add_input("a");
  aig.add_output(aig.land(a, aig_not(a)), "zero");
  aig.add_output(kAigTrue, "one");
  const auto tts = aig.output_truth_tables();
  EXPECT_TRUE(tts[0].is_constant(false));
  EXPECT_TRUE(tts[1].is_constant(true));
}

}  // namespace
}  // namespace powder
