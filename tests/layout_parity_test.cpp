// Representation-parity suite for the cache-compact data plane (DESIGN.md
// §7): the seed flow must produce bit-identical netlists, reports, and
// journal-replay results after the SoA/pin-arena/name-interning refactor.
//
// Golden outputs under tests/golden/ were recorded by this same test
// running against the pre-refactor AoS representation (rerun with
// POWDER_REGEN_GOLDEN=1 to re-record). Each circuit in the quick suite is
// optimized with a fixed configuration; the golden stores the full BLIF of
// the optimized netlist plus the deterministic report fields in hexfloat,
// so any drift — a reordered fanout list, a float summed in a different
// order, a changed substitution choice — fails loudly and diffably.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "opt/journal.hpp"
#include "opt/substitution.hpp"
#include "powder.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

#ifndef POWDER_GOLDEN_DIR
#define POWDER_GOLDEN_DIR "tests/golden"
#endif

const CellLibrary& lib() {
  static const CellLibrary* kLib = new CellLibrary(CellLibrary::standard());
  return *kLib;
}

bool regen() { return std::getenv("POWDER_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& file) {
  return std::string(POWDER_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  ASSERT_TRUE(os.good()) << "cannot write golden " << path;
  os << text;
}

/// Deterministic PI probability profile (mirrors bench_common.hpp's spread
/// without depending on the bench tree).
std::vector<double> pi_profile(int n) {
  std::vector<double> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = 0.2 + 0.6 * ((i * 7919) % 101) / 100.0;
  return p;
}

PowderOptions parity_options(int num_inputs, int threads) {
  return PowderOptions::builder()
      .patterns(512)
      .repeat(8)
      .max_outer_iterations(4)
      .seed(42)
      .threads(threads)
      .delay_limit_factor(1.15)
      .pi_probs(pi_profile(num_inputs))
      .build();
}

std::string hexd(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// The deterministic slice of the report (cpu_seconds and threading
/// accounting excluded), rendered bit-exactly.
std::string report_fingerprint(const PowderReport& r) {
  std::ostringstream os;
  os << "power " << hexd(r.initial_power) << ' ' << hexd(r.final_power)
     << "\narea " << hexd(r.initial_area) << ' ' << hexd(r.final_area)
     << "\ndelay " << hexd(r.initial_delay) << ' ' << hexd(r.final_delay)
     << "\ncounts " << r.substitutions_applied << ' ' << r.candidates_harvested
     << ' ' << r.rejected_by_delay << ' ' << r.rejected_by_atpg << ' '
     << r.rejected_stale << ' ' << r.outer_iterations << '\n';
  for (std::size_t i = 0; i < r.by_class.size(); ++i)
    os << "class" << i << ' ' << r.by_class[i].applied << ' '
       << hexd(r.by_class[i].power_delta) << ' '
       << hexd(r.by_class[i].area_delta) << '\n';
  return os.str();
}

struct FlowResultText {
  std::string blif;
  std::string report;
};

FlowResultText run_flow(const std::string& name, int threads) {
  Netlist nl = map_aig(make_benchmark(name), lib());
  const PowderReport rep =
      optimize(nl, parity_options(nl.num_inputs(), threads));
  return FlowResultText{write_blif(nl), report_fingerprint(rep)};
}

/// Journal scenario: commit a deterministic batch of substitutions, roll
/// half of them back, commit a second batch — the rollback/replay machinery
/// must reconstruct bit-identical structure.
std::string run_journal_storm(const std::string& name) {
  Netlist nl = map_aig(make_benchmark(name), lib());
  Simulator sim(nl, 512, pi_profile(nl.num_inputs()), /*seed=*/7);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl, est, {}, /*seed=*/7);
  SubstJournal journal(&nl);

  auto commit_batch = [&](int want) {
    int done = 0;
    est.refresh();
    const std::vector<CandidateSub> cands = finder.find();
    for (const CandidateSub& sub : cands) {
      if (done >= want) break;
      if (!substitution_still_valid(nl, sub)) continue;
      try {
        journal.apply(sub);
      } catch (const CheckError&) {
        continue;
      }
      est.refresh();
      ++done;
    }
    return done;
  };

  const int first = commit_batch(6);
  const std::size_t mark = journal.checkpoint();
  (void)mark;
  // Roll back half of the first batch, then land a second batch on the
  // partially rewound netlist.
  for (int i = 0; i < first / 2 && !journal.empty(); ++i)
    journal.rollback_last();
  est.refresh();
  commit_batch(4);
  est.refresh();
  return write_blif(nl);
}

class LayoutParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LayoutParityTest, SerialFlowMatchesGolden) {
  const std::string name = GetParam();
  const FlowResultText got = run_flow(name, /*threads=*/1);
  if (regen()) {
    write_file(golden_path(name + ".blif"), got.blif);
    write_file(golden_path(name + ".report"), got.report);
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string want_blif = read_file(golden_path(name + ".blif"));
  const std::string want_report = read_file(golden_path(name + ".report"));
  ASSERT_FALSE(want_blif.empty()) << "missing golden for " << name
                                  << " (run with POWDER_REGEN_GOLDEN=1)";
  EXPECT_EQ(got.blif, want_blif) << "optimized netlist drifted for " << name;
  EXPECT_EQ(got.report, want_report) << "report drifted for " << name;
}

TEST_P(LayoutParityTest, ThreadedFlowMatchesGolden) {
  const std::string name = GetParam();
  if (regen()) GTEST_SKIP() << "golden regenerated by the serial case";
  const FlowResultText got = run_flow(name, /*threads=*/8);
  const std::string want_blif = read_file(golden_path(name + ".blif"));
  ASSERT_FALSE(want_blif.empty()) << "missing golden for " << name;
  EXPECT_EQ(got.blif, want_blif)
      << "threaded optimized netlist drifted for " << name;
  EXPECT_EQ(got.report, read_file(golden_path(name + ".report")));
}

TEST_P(LayoutParityTest, JournalStormMatchesGolden) {
  const std::string name = GetParam();
  const std::string got = run_journal_storm(name);
  if (regen()) {
    write_file(golden_path(name + ".storm.blif"), got);
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string want = read_file(golden_path(name + ".storm.blif"));
  ASSERT_FALSE(want.empty()) << "missing storm golden for " << name;
  EXPECT_EQ(got, want) << "journal commit/rollback drifted for " << name;
}

INSTANTIATE_TEST_SUITE_P(QuickSuite, LayoutParityTest,
                         ::testing::ValuesIn(quick_suite()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace powder
