// Tests for power estimation: the three estimators agree where they must,
// and incremental updates match from-scratch estimation.

#include <gtest/gtest.h>

#include "benchgen/benchmarks.hpp"
#include "power/power.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

class PowerTest : public ::testing::Test {
 protected:
  PowerTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(PowerTest, Figure2StyleCircuitPower) {
  // Circuit A of the paper's Figure 2: d = a^c, f = d&b, e = a&b.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_gate(cell("xor2"), {a, c}, "d");
  const GateId f = nl_.add_gate(cell("and2"), {d, b}, "f");
  const GateId e = nl_.add_gate(cell("and2"), {a, b}, "e");
  nl_.add_output("fo", f, 0.0);  // zero external load like the paper
  nl_.add_output("eo", e, 0.0);

  Simulator sim(nl_, 64);
  sim.use_exhaustive_patterns();
  PowerEstimator est(&sim);
  // Exact activities at p=0.5 inputs: E(a)=E(b)=E(c)=E(d)=0.5,
  // E(e)=E(f)=0.375. Loads: a -> xor pin (2) + and pin (1) = 3;
  // b -> two and pins = 2; c -> xor pin = 2; d -> and pin = 1; e, f -> 0.
  EXPECT_DOUBLE_EQ(est.activity(a), 0.5);
  EXPECT_DOUBLE_EQ(est.activity(e), 0.375);
  const double expected =
      3 * 0.5 + 2 * 0.5 + 2 * 0.5 + 1 * 0.5 + 0.0 + 0.0;
  EXPECT_DOUBLE_EQ(est.total_power(), expected);
}

TEST_F(PowerTest, EstimatorsAgreeOnTreeCircuits) {
  // On fanout-free (tree) circuits the independence propagation is exact,
  // so all three estimators must coincide.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_input("d");
  const GateId g1 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nor2"), {c, d});
  const GateId g3 = nl_.add_gate(cell("xor2"), {g1, g2});
  nl_.add_output("f", g3);

  const std::vector<double> pi_probs{0.3, 0.5, 0.7, 0.9};
  const auto exact = exact_signal_probs(nl_, pi_probs);
  const auto prop = propagate_signal_probs(nl_, pi_probs);
  for (GateId g = 0; g < nl_.num_slots(); ++g)
    if (nl_.alive(g)) EXPECT_NEAR(exact[g], prop[g], 1e-12);

  Simulator sim(nl_, 1 << 15, pi_probs);
  PowerEstimator est(&sim);
  EXPECT_NEAR(est.total_power(), switched_capacitance(nl_, exact), 0.08);
}

TEST_F(PowerTest, IndependencePropagationDiffersOnReconvergence) {
  // f = a & a' through two paths: exact prob is 0, independence says 0.25.
  const GateId a = nl_.add_input("a");
  const GateId i = nl_.add_gate(cell("inv1"), {a});
  const GateId g = nl_.add_gate(cell("and2"), {a, i});
  nl_.add_output("f", g);
  const auto exact = exact_signal_probs(nl_, {0.5});
  const auto prop = propagate_signal_probs(nl_, {0.5});
  EXPECT_DOUBLE_EQ(exact[g], 0.0);
  EXPECT_DOUBLE_EQ(prop[g], 0.25);
}

TEST_F(PowerTest, UpdateAfterChangeMatchesFullEstimate) {
  // Property 2 of DESIGN.md: incremental == from scratch.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {g1, c});
  const GateId g3 = nl_.add_gate(cell("xor2"), {g2, a});
  nl_.add_output("f", g3);

  Simulator sim(nl_, 2048);
  PowerEstimator est(&sim);
  nl_.set_fanin(g2, 1, b);  // rewire
  est.refresh();
  const double incremental = est.total_power();

  est.estimate_all();  // simulator values are already current
  EXPECT_DOUBLE_EQ(est.total_power(), incremental);
}

TEST_F(PowerTest, ActivityOfComplementEqualsActivity) {
  const GateId a = nl_.add_input("a");
  const GateId i = nl_.add_gate(cell("inv1"), {a});
  const GateId g = nl_.add_gate(cell("and2"), {i, a});
  nl_.add_output("f", g);
  Simulator sim(nl_, 4096, {0.8});
  PowerEstimator est(&sim);
  EXPECT_DOUBLE_EQ(est.activity(a), est.activity(i));
}

TEST(PowerSuite, SimulationTracksExactOnBenchmarks) {
  // Cross-check the simulation estimator against exact BDD probabilities
  // on small generated circuits.
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "rd84", "Z5xp1"}) {
    const Aig aig = make_benchmark(name);
    Netlist nl = map_aig(aig, lib);
    const std::vector<double> pi_probs(
        static_cast<std::size_t>(nl.num_inputs()), 0.5);
    const double exact = switched_capacitance(nl, exact_signal_probs(nl, pi_probs));
    Simulator sim(nl, 1 << 14);
    PowerEstimator est(&sim);
    EXPECT_NEAR(est.total_power() / exact, 1.0, 0.05) << name;
  }
}

}  // namespace
}  // namespace powder
