// Tests for the parallel infrastructure: ThreadPool sharding semantics,
// word-sharded simulation parity, pooled candidate harvesting parity, and
// the headline guarantee that a multi-threaded optimize() run produces a
// bit-identical netlist to the single-threaded one.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "powder.hpp"
#include "util/thread_pool.hpp"

namespace powder {
namespace {

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.parallelism(), 4);
  std::vector<std::atomic<int>> hits(64);
  pool.for_shards(64, [&](int shard, int num_shards) {
    EXPECT_EQ(num_shards, 64);
    hits[static_cast<std::size_t>(shard)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1);
  int count = 0;
  pool.for_shards(5, [&](int, int) { ++count; });  // no races possible
  EXPECT_EQ(count, 5);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MinGrainLimitsShardCount) {
  ThreadPool pool(7);
  std::atomic<int> calls{0};
  pool.parallel_for(10, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_GE(hi - lo, 1u);
    calls.fetch_add(1);
  });
  // 10 items at grain 8 -> at most 2 chunks, never 8.
  EXPECT_LE(calls.load(), 2);
}

TEST(ThreadPool, RethrowsShardException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_shards(8,
                               [&](int shard, int) {
                                 if (shard == 3)
                                   throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  // The pool must stay usable after an exceptional region.
  std::atomic<int> count{0};
  pool.for_shards(8, [&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedRegionRunsInlineOnWorker) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.for_shards(3, [&](int, int) {
    // A worker calling back into the pool must not deadlock.
    pool.for_shards(4, [&](int, int) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 12);
}

TEST(ThreadPool, BackToBackRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.for_shards(7, [&](int, int) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 7) << "round " << round;
  }
}

TEST(ParallelParity, ShardedSimulationMatchesSerial) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("duke2"), lib);

  Simulator serial(nl, 4096);
  ThreadPool pool(7);
  Simulator sharded(nl, 4096);
  sharded.set_thread_pool(&pool);

  for (GateId g : nl.outputs()) {
    const auto& a = serial.value(g);
    const auto& b = sharded.value(g);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w)
      ASSERT_EQ(a[w], b[w]) << "gate " << g << " word " << w;
  }
}

TEST(ParallelParity, PooledHarvestMatchesSerial) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("duke2"), lib);

  Simulator sim1(nl, 2048);
  PowerEstimator est1(&sim1);
  CandidateFinder serial(nl, est1, {}, 1, nullptr);
  const auto want = serial.find();

  ThreadPool pool(7);
  Simulator sim2(nl, 2048);
  sim2.set_thread_pool(&pool);
  PowerEstimator est2(&sim2);
  CandidateFinder pooled(nl, est2, {}, 1, &pool);
  const auto got = pooled.find();

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const CandidateSub& a = want[i];
    const CandidateSub& b = got[i];
    EXPECT_EQ(a.cls, b.cls) << i;
    EXPECT_EQ(a.target, b.target) << i;
    EXPECT_EQ(a.branch.has_value(), b.branch.has_value()) << i;
    if (a.branch && b.branch) {
      EXPECT_EQ(a.branch->gate, b.branch->gate) << i;
      EXPECT_EQ(a.branch->pin, b.branch->pin) << i;
    }
    EXPECT_EQ(static_cast<int>(a.rep.kind), static_cast<int>(b.rep.kind))
        << i;
    EXPECT_EQ(a.rep.b, b.rep.b) << i;
    EXPECT_EQ(a.rep.invert_b, b.rep.invert_b) << i;
    EXPECT_EQ(a.rep.c, b.rep.c) << i;
    EXPECT_EQ(a.rep.invert_c, b.rep.invert_c) << i;
    EXPECT_EQ(a.new_cell, b.new_cell) << i;
    EXPECT_DOUBLE_EQ(a.pg_a, b.pg_a) << i;
    EXPECT_DOUBLE_EQ(a.pg_b, b.pg_b) << i;
  }
}

PowderReport run_with_threads(Netlist* nl, int threads) {
  return optimize(*nl, PowderOptions::builder()
                           .patterns(1024)
                           .repeat(10)
                           .max_outer_iterations(4)
                           .seed(7)
                           .threads(threads)
                           .build());
}

TEST(ParallelParity, MultithreadedOptimizeIsBitIdenticalToSerial) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist initial = map_aig(make_benchmark("duke2"), lib);

  Netlist nl1 = initial;
  const PowderReport r1 = run_with_threads(&nl1, 1);
  EXPECT_EQ(r1.diagnostics.threads_used, 1);

  Netlist nl8 = initial;
  const PowderReport r8 = run_with_threads(&nl8, 8);
  EXPECT_EQ(r8.diagnostics.threads_used, 8);

  EXPECT_EQ(write_blif(nl1), write_blif(nl8));
  EXPECT_EQ(r1.substitutions_applied, r8.substitutions_applied);
  EXPECT_EQ(r1.outer_iterations, r8.outer_iterations);
  EXPECT_DOUBLE_EQ(r1.final_power, r8.final_power);
  EXPECT_DOUBLE_EQ(r1.final_area, r8.final_area);
  EXPECT_DOUBLE_EQ(r1.final_delay, r8.final_delay);
}

TEST(ParallelParity, ThreadsZeroMeansAllCoresAndStaysDeterministic) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist initial = map_aig(make_benchmark("bw"), lib);

  Netlist nl1 = initial;
  (void)run_with_threads(&nl1, 1);
  Netlist nl0 = initial;
  const PowderReport r0 = run_with_threads(&nl0, 0);
  EXPECT_GE(r0.diagnostics.threads_used, 1);
  EXPECT_EQ(write_blif(nl1), write_blif(nl0));
}

TEST(ParallelParity, ReportJsonContainsDiagnostics) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("bw"), lib);
  const PowderReport r = run_with_threads(&nl, 2);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"threads_used\":2"), std::string::npos);
  EXPECT_NE(json.find("\"final_power\""), std::string::npos);
  EXPECT_NE(json.find("\"by_class\""), std::string::npos);
}

}  // namespace
}  // namespace powder
