// Tests for candidate harvesting: the finder must produce the textbook
// substitutions, respect structural constraints, and never propose a
// candidate its own sampled evidence refutes.

#include <gtest/gtest.h>

#include "opt/candidates.hpp"

namespace powder {
namespace {

class CandTest : public ::testing::Test {
 protected:
  CandTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(CandTest, FindsEquivalentStemSubstitution) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("inv1"), {g2});  // == g1
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g3);

  Simulator sim(nl_, 1024);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  const auto cands = finder.find();

  bool found = false;
  for (const CandidateSub& c : cands) {
    if (c.cls == SubstClass::kOS2 && c.target == g1 &&
        c.rep.kind == ReplacementFunction::Kind::kSignal && c.rep.b == g3 &&
        !c.rep.invert_b)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CandTest, FindsFigure2BranchSubstitution) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_gate(cell("xor2"), {a, c}, "d");
  const GateId f = nl_.add_gate(cell("and2"), {d, b}, "f");
  const GateId e = nl_.add_gate(cell("and2"), {a, b}, "e");
  nl_.add_output("fo", f);
  nl_.add_output("eo", e);

  Simulator sim(nl_, 2048);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  const auto cands = finder.find();

  bool found = false;
  for (const CandidateSub& c : cands) {
    if (c.cls == SubstClass::kIS2 && c.target == a && c.branch.has_value() &&
        c.branch->gate == d && c.rep.b == e)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CandTest, NeverProposesCycles) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  const GateId g3 = nl_.add_gate(cell("or2"), {g2, b});
  nl_.add_output("f", g3);

  Simulator sim(nl_, 1024);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  for (const CandidateSub& c : finder.find())
    EXPECT_TRUE(substitution_still_valid(nl_, c));
}

TEST_F(CandTest, UnobservableSignalYieldsConstantCandidate) {
  // g1 = a&b feeding or2(g1, a): unobservable (a=1 forces out, a=0 kills
  // g1); expect an OS2-by-constant candidate.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);

  Simulator sim(nl_, 2048);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  bool found_const = false;
  for (const CandidateSub& c : finder.find())
    if (c.target == g1 &&
        c.rep.kind == ReplacementFunction::Kind::kConstant)
      found_const = true;
  EXPECT_TRUE(found_const);
}

TEST_F(CandTest, ThreeInputCandidatesMatchSampledFunction) {
  // s == a & b must be found as OS3(and2(a,b)).
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId n = nl_.add_gate(cell("nand2"), {a, b});
  const GateId s = nl_.add_gate(cell("inv1"), {n});
  const GateId top = nl_.add_gate(cell("xor2"), {s, c});
  nl_.add_output("f", top);

  Simulator sim(nl_, 2048);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  bool found_os3 = false;
  for (const CandidateSub& cand : finder.find()) {
    if (cand.cls != SubstClass::kOS3 || cand.target != s) continue;
    if (cand.rep.kind != ReplacementFunction::Kind::kTwoInput) continue;
    // The proposal must agree with the simulator's evidence by
    // construction; additionally verify it is the real AND shape.
    if ((cand.rep.b == a && cand.rep.c == b) ||
        (cand.rep.b == b && cand.rep.c == a))
      found_os3 = true;
  }
  EXPECT_TRUE(found_os3);
}

TEST_F(CandTest, PreselectionGainsAreFilled) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("inv1"), {g2});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g3);

  Simulator sim(nl_, 1024);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl_, est);
  const auto cands = finder.find();
  ASSERT_FALSE(cands.empty());
  for (const CandidateSub& c : cands) {
    EXPECT_GE(c.pg_a, 0.0);
    EXPECT_LE(c.pg_b, 1e-12);
  }
  // Sorted by preselection gain, descending.
  for (std::size_t i = 1; i < cands.size(); ++i)
    EXPECT_GE(cands[i - 1].preselect_gain(), cands[i].preselect_gain());
}

TEST_F(CandTest, RespectsCandidateCap) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  GateId prev = nl_.add_gate(cell("and2"), {a, b});
  for (int i = 0; i < 12; ++i)
    prev = nl_.add_gate(cell("xor2"), {prev, i % 2 ? b : c});
  nl_.add_output("f", prev);

  Simulator sim(nl_, 1024);
  PowerEstimator est(&sim);
  CandidateOptions opt;
  opt.max_candidates = 5;
  CandidateFinder finder(nl_, est, opt);
  EXPECT_LE(finder.find().size(), 5u);
}

}  // namespace
}  // namespace powder
