// Tests for the bit-parallel simulator: value correctness vs truth tables,
// exhaustive mode, incremental resimulation, observability masks, and
// trial replacement evaluation.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(SimTest, ExhaustiveMatchesGateSemantics) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId x = nl_.add_gate(cell("xor2"), {a, b});
  const GateId g = nl_.add_gate(cell("aoi21"), {x, c, a});
  nl_.add_output("f", g);

  Simulator sim(nl_, 64);
  sim.use_exhaustive_patterns();
  const auto vx = sim.value(x);
  const auto vg = sim.value(g);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1, vc = (m >> 2) & 1;
    EXPECT_EQ((vx[0] >> m) & 1, static_cast<std::uint64_t>(va != vb));
    // aoi21: !((p0 & p1) | p2) with p0=x, p1=c, p2=a
    const bool expect = !(((va != vb) && vc) || va);
    EXPECT_EQ((vg[0] >> m) & 1, static_cast<std::uint64_t>(expect));
  }
}

TEST_F(SimTest, SignalProbExhaustive) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  Simulator sim(nl_, 64);
  sim.use_exhaustive_patterns();
  // With 4 exhaustive patterns padded to 64 by wrap-around, the fraction
  // stays exact.
  EXPECT_DOUBLE_EQ(sim.signal_prob(g), 0.25);
  EXPECT_DOUBLE_EQ(sim.activity(g), 2 * 0.25 * 0.75);
}

TEST_F(SimTest, WeightedStimulusApproximatesProbability) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  Simulator sim(nl_, 1 << 14, {0.9, 0.5});
  EXPECT_NEAR(sim.signal_prob(a), 0.9, 0.02);
  EXPECT_NEAR(sim.signal_prob(g), 0.45, 0.02);
}

TEST_F(SimTest, IncrementalResimulationMatchesFull) {
  Rng rng(21);
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {g1, c});
  const GateId g3 = nl_.add_gate(cell("xor2"), {g1, g2});
  nl_.add_output("f", g3);

  Simulator sim(nl_, 512);
  // Rewire g2's input from c to a, then resimulate incrementally.
  nl_.set_fanin(g2, 1, a);
  sim.refresh();
  // Compare against a fresh full simulation with identical stimulus.
  Simulator full(nl_, 512);
  for (GateId g : {g1, g2, g3}) {
    const auto vi = sim.value(g);
    const auto vf = full.value(g);
    for (std::size_t w = 0; w < vi.size(); ++w) EXPECT_EQ(vi[w], vf[w]);
  }
}

TEST_F(SimTest, StemObservabilityFullWhenPathIsTransparent) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId x = nl_.add_gate(cell("xor2"), {a, b});
  nl_.add_output("f", x);
  Simulator sim(nl_, 128);
  // x drives the output directly: always observable.
  const auto obs = sim.stem_observability(x);
  for (auto w : obs) EXPECT_EQ(w, ~0ull);
  // a feeds an XOR: also always observable.
  const auto obs_a = sim.stem_observability(a);
  for (auto w : obs_a) EXPECT_EQ(w, ~0ull);
}

TEST_F(SimTest, ObservabilityMaskedByAndGate) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  Simulator sim(nl_, 256);
  // a is observable exactly where b = 1.
  const auto obs = sim.stem_observability(a);
  const auto vb = sim.value(b);
  for (std::size_t w = 0; w < obs.size(); ++w) EXPECT_EQ(obs[w], vb[w]);
}

TEST_F(SimTest, BranchObservabilityIsPerBranch) {
  // a feeds both an AND (masked by b) and an XOR (transparent).
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("xor2"), {a, b});
  nl_.add_output("f", g1);
  nl_.add_output("h", g2);
  Simulator sim(nl_, 256);
  const auto vb = sim.value(b);
  const auto obs_and = sim.branch_observability(a, FanoutRef{g1, 0});
  const auto obs_xor = sim.branch_observability(a, FanoutRef{g2, 0});
  for (std::size_t w = 0; w < obs_and.size(); ++w) {
    EXPECT_EQ(obs_and[w], vb[w]);
    EXPECT_EQ(obs_xor[w], ~0ull);
  }
}

TEST_F(SimTest, OutputDiffWithEquivalentReplacementIsZero) {
  // Replace a stem by a functionally identical signal: no output diff.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("inv1"), {g2});  // == g1
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g3);
  Simulator sim(nl_, 256);
  const auto rep = sim.value(g3);
  std::vector<std::uint64_t> rep_words(rep.begin(), rep.end());
  const auto diff = sim.output_diff_with_replacement(g1, nullptr, rep_words);
  for (auto w : diff) EXPECT_EQ(w, 0ull);
}

TEST_F(SimTest, TrialNewProbsReportsChangedCone) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  nl_.add_output("f", g2);
  Simulator sim(nl_, 256);
  // Replace g1's signal by constant 0: g2 becomes constant 1.
  std::vector<std::uint64_t> zeros(static_cast<std::size_t>(sim.num_words()),
                                   0);
  const auto changed = sim.trial_new_probs(g1, nullptr, zeros);
  bool found_g2 = false;
  for (const auto& [g, p] : changed) {
    if (g == g2) {
      found_g2 = true;
      EXPECT_DOUBLE_EQ(p, 1.0);
    }
  }
  EXPECT_TRUE(found_g2);
  // The trial must not modify committed values.
  EXPECT_NEAR(sim.signal_prob(g2), 0.75, 0.1);
}

TEST_F(SimTest, CellEvaluatorAllLibraryCells) {
  // Word evaluation agrees with the truth table for every library cell.
  const CellLibrary lib = CellLibrary::standard();
  const CellEvaluator eval(lib);
  Rng rng(77);
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const Cell& c = lib.cell(id);
    const int k = c.num_inputs();
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(k));
    for (auto& w : inputs) w = rng.next64();
    const std::uint64_t out = eval.evaluate(id, inputs);
    for (int bit = 0; bit < 64; ++bit) {
      std::uint64_t minterm = 0;
      for (int v = 0; v < k; ++v)
        if ((inputs[static_cast<std::size_t>(v)] >> bit) & 1)
          minterm |= 1ull << v;
      EXPECT_EQ((out >> bit) & 1,
                static_cast<std::uint64_t>(c.function.bit(minterm)))
          << c.name;
    }
  }
}

}  // namespace
}  // namespace powder
