// Tests for the bounded MPMC queue feeding the proof pipeline: FIFO order
// per producer, exactly-once delivery under contention, hard capacity
// bound with backpressure, and close() draining/wake-up semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/mpmc_queue.hpp"

namespace powder {
namespace {

TEST(MpmcQueue, SingleThreadFifo) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 8; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CapacityIsAHardBound) {
  MpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  int extra = 99;
  EXPECT_FALSE(q.try_push(extra));
  EXPECT_EQ(extra, 99);  // only moved from on success
  EXPECT_EQ(*q.try_pop(), 0);
  EXPECT_TRUE(q.try_push(extra));
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpmcQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(MpmcQueue, ExactlyOnceAcrossProducersAndConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcQueue<int> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }

  std::vector<std::vector<int>> got(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &got, c] {
      while (auto v = q.pop()) got[static_cast<std::size_t>(c)].push_back(*v);
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  // Every item exactly once.
  std::vector<int> all;
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);

  // Per-producer FIFO: within one consumer, items from the same producer
  // must appear in push order (global ticket order implies this even
  // across consumers, but per-consumer order is what we can observe).
  for (const auto& g : got) {
    std::vector<int> last(kProducers, -1);
    for (int v : g) {
      const int p = v / kPerProducer;
      ASSERT_GT(v, last[static_cast<std::size_t>(p)]);
      last[static_cast<std::size_t>(p)] = v;
    }
  }
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q(4);
  std::atomic<int> done{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      EXPECT_FALSE(q.pop().has_value());  // blocks until close
      done.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(done.load(), 0);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(done.load(), 3);
}

TEST(MpmcQueue, CloseDrainsPendingItemsAndRejectsNew) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  int v = 3;
  EXPECT_FALSE(q.try_push(v));
  EXPECT_FALSE(q.push(4));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, PushBlocksUntilSpaceFrees) {
  MpmcQueue<int> q(2);
  ASSERT_TRUE(q.try_push(0));
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // full: must block until a pop
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
}

TEST(MpmcQueue, CloseWakesBlockedProducers) {
  MpmcQueue<int> q(2);
  ASSERT_TRUE(q.try_push(0));
  ASSERT_TRUE(q.try_push(1));
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 2; ++i)
    producers.emplace_back([&] {
      if (!q.push(7)) rejected.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 2);
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace powder
