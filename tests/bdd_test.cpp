// Tests for the BDD package and the netlist->BDD bridge.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/netlist_bdd.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

TEST(Bdd, TerminalRules) {
  BddManager mgr(3);
  const BddRef a = mgr.var(0);
  EXPECT_EQ(mgr.bdd_and(a, kBddTrue), a);
  EXPECT_EQ(mgr.bdd_and(a, kBddFalse), kBddFalse);
  EXPECT_EQ(mgr.bdd_or(a, kBddFalse), a);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(a)), a);
  EXPECT_EQ(mgr.bdd_xor(a, a), kBddFalse);
  EXPECT_EQ(mgr.bdd_and(a, mgr.bdd_not(a)), kBddFalse);
}

TEST(Bdd, CanonicityGivesPointerEquality) {
  BddManager mgr(3);
  const BddRef a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  // (a & b) | (a & c) == a & (b | c)
  const BddRef lhs = mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_and(a, c));
  const BddRef rhs = mgr.bdd_and(a, mgr.bdd_or(b, c));
  EXPECT_EQ(lhs, rhs);
  // De Morgan.
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_and(a, b)),
            mgr.bdd_or(mgr.bdd_not(a), mgr.bdd_not(b)));
}

TEST(Bdd, EvaluateMatchesSemantics) {
  BddManager mgr(3);
  const BddRef f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)),
                              mgr.bdd_not(mgr.var(2)));
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool expect = ((m & 1) && (m & 2)) || !(m & 4);
    EXPECT_EQ(mgr.evaluate(f, m), expect) << m;
  }
}

TEST(Bdd, SatCount) {
  BddManager mgr(4);
  const BddRef a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(mgr.sat_count(mgr.bdd_and(a, b)), 4u);   // 2^2 completions
  EXPECT_EQ(mgr.sat_count(mgr.bdd_or(a, b)), 12u);
  EXPECT_EQ(mgr.sat_count(kBddTrue), 16u);
  EXPECT_EQ(mgr.sat_count(kBddFalse), 0u);
}

TEST(Bdd, WeightedProbability) {
  BddManager mgr(2);
  const BddRef f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_DOUBLE_EQ(mgr.probability(f, {0.5, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(mgr.probability(f, {0.1, 0.9}), 0.09);
  const BddRef x = mgr.bdd_xor(mgr.var(0), mgr.var(1));
  EXPECT_DOUBLE_EQ(mgr.probability(x, {0.1, 0.9}),
                   0.1 * 0.1 + 0.9 * 0.9);
}

TEST(Bdd, RandomEquivalenceWithTruthTables) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    TruthTable f(4);
    for (std::uint64_t m = 0; m < 16; ++m) f.set_bit(m, rng.flip(0.5));
    BddManager mgr(4);
    std::vector<BddRef> args{mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3)};
    const BddRef r = bdd_from_truth_table(mgr, f, args);
    for (std::uint64_t m = 0; m < 16; ++m)
      EXPECT_EQ(mgr.evaluate(r, m), f.bit(m));
  }
}

TEST(NetlistBdd, GateFunctions) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "t");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId x = nl.add_gate(lib.find("xor2"), {a, b});
  const GateId g = nl.add_gate(lib.find("and2"), {x, a});
  nl.add_output("f", g);
  NetlistBdds bdds(nl);
  for (std::uint64_t m = 0; m < 4; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1;
    EXPECT_EQ(bdds.manager.evaluate(bdds.gate_function[x], m), va != vb);
    EXPECT_EQ(bdds.manager.evaluate(bdds.gate_function[g], m),
              (va != vb) && va);
  }
}

TEST(NetlistBdd, FunctionalEquivalence) {
  CellLibrary lib = CellLibrary::standard();
  // f = !(a & b) built two ways.
  Netlist n1(&lib, "n1");
  {
    const GateId a = n1.add_input("a");
    const GateId b = n1.add_input("b");
    const GateId g = n1.add_gate(lib.find("nand2"), {a, b});
    n1.add_output("f", g);
  }
  Netlist n2(&lib, "n2");
  {
    const GateId a = n2.add_input("a");
    const GateId b = n2.add_input("b");
    const GateId g = n2.add_gate(lib.find("and2"), {a, b});
    const GateId i = n2.add_gate(lib.find("inv1"), {g});
    n2.add_output("f", i);
  }
  EXPECT_TRUE(functionally_equivalent(n1, n2));

  Netlist n3(&lib, "n3");
  {
    const GateId a = n3.add_input("a");
    const GateId b = n3.add_input("b");
    const GateId g = n3.add_gate(lib.find("nor2"), {a, b});
    n3.add_output("f", g);
  }
  EXPECT_FALSE(functionally_equivalent(n1, n3));
}

}  // namespace
}  // namespace powder
