// Tests for the introspection plane (DESIGN.md §14): power attribution's
// exact reconciliation invariants, the live progress stream's wire
// contract and deterministic event skeleton, the `powder diff` verdict
// engine, the BENCH trajectory fold, the audit log's window/epoch fields,
// and the purity guarantee — attaching every sink must not change one bit
// of the optimization result.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "opt/report_diff.hpp"
#include "powder.hpp"
#include "power/attribution.hpp"
#include "trace/audit.hpp"
#include "trace/progress.hpp"
#include "util/json.hpp"

namespace powder {
namespace {

#ifndef POWDER_GOLDEN_DIR
#define POWDER_GOLDEN_DIR "tests/golden"
#endif

bool regen() { return std::getenv("POWDER_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& file) {
  return std::string(POWDER_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// The Netlist keeps a pointer to its library: helpers returning a Netlist
// by value must hand it shared ownership.
Netlist make_input(const char* bench = "comp") {
  const auto lib = CellLibrary::standard_shared();
  Netlist nl = map_aig(make_benchmark(bench), *lib);
  nl.adopt_library(lib);
  return nl;
}

PowderOptions::Builder base_options() {
  return PowderOptions::builder()
      .patterns(512)
      .repeat(8)
      .max_outer_iterations(4)
      .seed(42);
}

struct RunResult {
  std::string blif;
  PowderReport report;
};

RunResult run(const Netlist& input, PowderOptions::Builder builder) {
  Netlist nl = input;
  RunResult rr;
  rr.report = optimize(nl, builder.build());
  rr.blif = write_blif(nl);
  return rr;
}

// ---------------------------------------------------------------------------
// PowerAttribution: exact reconciliation

/// The hard invariant from the header: both snapshot sums equal
/// total_power() bitwise, the endpoints equal the report's power numbers
/// bitwise, and the per-class ledger equals the report's per-class
/// economics bitwise.
void expect_reconciled(const PowerAttribution& attr, const PowderReport& r) {
  ASSERT_TRUE(attr.before().taken);
  ASSERT_TRUE(attr.after().taken);
  EXPECT_EQ(attr.before().sum, attr.before().total_power);
  EXPECT_EQ(attr.after().sum, attr.after().total_power);
  EXPECT_EQ(attr.before().total_power, r.initial_power);
  EXPECT_EQ(attr.after().total_power, r.final_power);
  for (std::size_t i = 0; i < r.by_class.size(); ++i) {
    EXPECT_EQ(attr.class_gain(static_cast<int>(i)),
              r.by_class[i].power_delta)
        << "class " << i;
    EXPECT_EQ(attr.class_applied(static_cast<int>(i)), r.by_class[i].applied)
        << "class " << i;
  }
  std::string error;
  EXPECT_TRUE(validate_attribution_json(attr.to_json(), &error)) << error;
}

TEST(Attribution, ReconcilesBitwiseZeroDelaySerialAndThreaded) {
  const Netlist input = make_input();
  PowerAttribution serial;
  const RunResult a =
      run(input, base_options().attribution(&serial).threads(1));
  EXPECT_GT(a.report.substitutions_applied, 0);
  expect_reconciled(serial, a.report);
  EXPECT_GT(serial.deltas_observed(), 0);

  // Threaded runs are bit-identical to serial ones, and the attribution
  // document — fed from the same commits over the same netlist — must be
  // byte-identical too.
  PowerAttribution threaded;
  const RunResult b =
      run(input, base_options().attribution(&threaded).threads(8));
  EXPECT_EQ(a.blif, b.blif);
  expect_reconciled(threaded, b.report);
  EXPECT_EQ(serial.to_json(), threaded.to_json());
}

TEST(Attribution, ReconcilesBitwiseTimedModel) {
  const Netlist input = make_input();
  PowerAttribution serial;
  const RunResult a = run(input, base_options()
                                     .power_model(PowerModelKind::kTimed)
                                     .glitch_vector_pairs(64)
                                     .attribution(&serial)
                                     .threads(1));
  expect_reconciled(serial, a.report);
  EXPECT_NE(serial.to_json().find("\"model\":\"timed\""), std::string::npos);

  PowerAttribution threaded;
  const RunResult b = run(input, base_options()
                                     .power_model(PowerModelKind::kTimed)
                                     .glitch_vector_pairs(64)
                                     .attribution(&threaded)
                                     .threads(8));
  EXPECT_EQ(a.blif, b.blif);
  expect_reconciled(threaded, b.report);
  EXPECT_EQ(serial.to_json(), threaded.to_json());
}

TEST(Attribution, WindowedRunsLedgerPerWindow) {
  const Netlist input = make_input("duke2");
  PowerAttribution attr;
  const RunResult rr = run(input, base_options()
                                      .windowed(true)
                                      .window_size(40)
                                      .window_overlap(8)
                                      .attribution(&attr));
  ASSERT_GT(rr.report.diagnostics.windowing.windows_built, 1);
  EXPECT_GT(rr.report.substitutions_applied, 0);
  expect_reconciled(attr, rr.report);

  // The by_window ledger must name real window ids (>= 0) and its commit
  // counts must sum to the total recorded.
  std::string error;
  const auto doc = json_parse(attr.to_json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  const JsonValue* by_window = doc->find_array("by_window");
  ASSERT_NE(by_window, nullptr);
  long long commits = 0;
  bool saw_real_window = false;
  for (const JsonValue& w : by_window->items()) {
    const JsonValue* id = w.find_number("window");
    ASSERT_NE(id, nullptr);
    if (id->as_number() >= 0) saw_real_window = true;
    commits += static_cast<long long>(w.find_number("commits")->as_number());
  }
  EXPECT_TRUE(saw_real_window);
  EXPECT_EQ(commits, attr.commits_recorded());
}

TEST(Attribution, ValidatorRejectsTamperedDocument) {
  const Netlist input = make_input();
  PowerAttribution attr;
  run(input, base_options().attribution(&attr));
  const std::string good = attr.to_json();
  std::string error;
  ASSERT_TRUE(validate_attribution_json(good, &error)) << error;

  // Corrupting one contribution sum must break the exact reconciliation.
  std::string bad = good;
  const std::string key = "\"contribution_sum_before\":";
  const std::size_t pos = bad.find(key);
  ASSERT_NE(pos, std::string::npos);
  bad.insert(pos + key.size(), "9");
  EXPECT_FALSE(validate_attribution_json(bad, &error));

  // And a wrong schema version must be rejected outright.
  std::string wrong_version = good;
  const std::size_t vpos = wrong_version.find("\"schema_version\":1");
  ASSERT_NE(vpos, std::string::npos);
  wrong_version.replace(vpos, 18, "\"schema_version\":9");
  EXPECT_FALSE(validate_attribution_json(wrong_version, &error));
}

// ---------------------------------------------------------------------------
// ProgressStream: wire contract

TEST(Progress, StreamSatisfiesContractAndCoversPhases) {
  const Netlist input = make_input();
  std::ostringstream os;
  ProgressStream prog(&os);
  const RunResult rr = run(input, base_options().progress(&prog));
  EXPECT_GT(rr.report.substitutions_applied, 0);

  const std::string text = os.str();
  const ProgressValidation v = validate_progress_stream(text);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.heartbeats, 1);
  EXPECT_EQ(v.lines, prog.events_written());
  for (const char* needle :
       {"\"phase\":\"harvest\"", "\"phase\":\"proof\"",
        "\"phase\":\"commit\"", "\"event\":\"run_start\"",
        "\"event\":\"commit\"", "\"event\":\"run_end\""})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(Progress, WindowedRunEmitsEveryWindow) {
  const Netlist input = make_input("duke2");
  std::ostringstream os;
  ProgressStream prog(&os);
  const RunResult rr = run(input, base_options()
                                      .windowed(true)
                                      .window_size(40)
                                      .window_overlap(8)
                                      .progress(&prog));
  const long windows_built = rr.report.diagnostics.windowing.windows_built;
  ASSERT_GT(windows_built, 1);

  const std::string text = os.str();
  const ProgressValidation v = validate_progress_stream(text);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GT(v.windows, 0);

  // Every built window must appear in the stream's window events.
  std::set<long long> seen;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::string error;
    const auto doc = json_parse(line, &error);
    ASSERT_NE(doc, nullptr) << error;
    const JsonValue* event = doc->find_string("event");
    ASSERT_NE(event, nullptr);
    if (event->as_string() != "window") continue;
    seen.insert(
        static_cast<long long>(doc->find_number("window")->as_number()));
  }
  EXPECT_EQ(static_cast<long>(seen.size()), windows_built);
}

/// Strips the stream down to its deterministic skeleton: heartbeats out
/// (wall-clock gated), seq/t_ms out (timing), floats out (pinned
/// elsewhere by the layout-parity goldens) — what remains is the exact
/// ordered event/argument sequence of the run.
std::string canonical_progress(const std::string& text) {
  std::ostringstream out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::string error;
    const auto doc = json_parse(line, &error);
    if (doc == nullptr) { out << "PARSE_ERROR " << error << "\n"; continue; }
    const std::string event = doc->find_string("event")->as_string();
    if (event == "heartbeat") continue;
    out << event;
    for (const auto& [key, value] : doc->members()) {
      if (key == "v" || key == "seq" || key == "t_ms" || key == "event")
        continue;
      if (value.is_number()) {
        const double d = value.as_number();
        if (d != static_cast<long long>(d)) continue;  // float: drop
        out << ' ' << key << '=' << static_cast<long long>(d);
      } else if (value.is_string()) {
        out << ' ' << key << '=' << value.as_string();
      } else if (value.is_bool()) {
        out << ' ' << key << '=' << (value.as_bool() ? "true" : "false");
      }
    }
    out << '\n';
  }
  return out.str();
}

TEST(Progress, GoldenEventSequence) {
  const Netlist input = make_input();
  std::ostringstream os;
  ProgressStream prog(&os);
  run(input, base_options().progress(&prog));
  const std::string got = canonical_progress(os.str());
  if (regen()) {
    std::ofstream w(golden_path("comp_progress.golden"), std::ios::binary);
    ASSERT_TRUE(w.good());
    w << got;
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string want = read_file(golden_path("comp_progress.golden"));
  ASSERT_FALSE(want.empty()) << "missing golden comp_progress.golden "
                                "(run with POWDER_REGEN_GOLDEN=1)";
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// powder diff

TEST(Diff, SelfCompareOfARealReportIsClean) {
  const Netlist input = make_input();
  const RunResult rr = run(input, base_options());
  const std::string report = rr.report.to_json();
  const DiffResult d = diff_reports(report, report, DiffThresholds{});
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_FALSE(d.regressed);
  EXPECT_NE(d.verdict_json.find("\"verdict\":\"ok\""), std::string::npos);
  // Real reports carry per-class sections; the verdict must fold them in.
  EXPECT_NE(d.verdict_json.find("\"by_class\":{\"OS2\""), std::string::npos);
}

TEST(Diff, VerdictGoldenOnInjectedPowerRegression) {
  const std::string base =
      "{\"schema_version\":5,\"final_power\":10,\"final_area\":100,"
      "\"cpu_seconds\":2,\"substitutions_applied\":4,"
      "\"by_class\":{\"OS2\":{\"applied\":3,\"power_delta\":1.5}}}";
  const std::string cand =
      "{\"schema_version\":5,\"final_power\":12,\"final_area\":100,"
      "\"cpu_seconds\":3,\"substitutions_applied\":4,"
      "\"by_class\":{\"OS2\":{\"applied\":3,\"power_delta\":1.5}}}";
  const DiffResult d = diff_reports(base, cand, DiffThresholds{});
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_TRUE(d.regressed);
  EXPECT_EQ(
      d.verdict_json,
      "{\"schema_version\":1,\"base_report_version\":5,"
      "\"candidate_report_version\":5,"
      "\"power\":{\"base\":10,\"candidate\":12,\"delta_percent\":20,"
      "\"threshold_percent\":0.5,\"checked\":true,\"regressed\":true},"
      "\"area\":{\"base\":100,\"candidate\":100,\"delta_percent\":0,"
      "\"threshold_percent\":2,\"checked\":true,\"regressed\":false},"
      "\"runtime\":{\"base\":2,\"candidate\":3,\"delta_percent\":50,"
      "\"threshold_percent\":50,\"checked\":false,\"regressed\":false},"
      "\"substitutions\":{\"base\":4,\"candidate\":4,\"delta\":0},"
      "\"by_class\":{\"OS2\":{\"applied_base\":3,\"applied_candidate\":3,"
      "\"gain_base\":1.5,\"gain_candidate\":1.5,\"gain_delta\":0}},"
      "\"regressed\":true,\"verdict\":\"regression\"}");
}

TEST(Diff, RuntimeOnlyGatesWhenEnabled) {
  const std::string base =
      "{\"schema_version\":5,\"final_power\":10,\"final_area\":100,"
      "\"cpu_seconds\":1,\"substitutions_applied\":4}";
  const std::string cand =
      "{\"schema_version\":5,\"final_power\":10,\"final_area\":100,"
      "\"cpu_seconds\":10,\"substitutions_applied\":4}";
  // 10x slower, but runtime checking is off by default.
  DiffThresholds thresholds;
  const DiffResult off = diff_reports(base, cand, thresholds);
  ASSERT_TRUE(off.ok) << off.error;
  EXPECT_FALSE(off.regressed);
  thresholds.check_runtime = true;
  const DiffResult on = diff_reports(base, cand, thresholds);
  ASSERT_TRUE(on.ok) << on.error;
  EXPECT_TRUE(on.regressed);
}

TEST(Diff, FoldsAuditAndAttributionSections) {
  const Netlist input = make_input();
  std::ostringstream audit_os;
  AuditLog audit(&audit_os);
  PowerAttribution attr;
  const RunResult rr =
      run(input, base_options().audit(&audit).attribution(&attr));
  const std::string report = rr.report.to_json();
  const std::string audit_text = audit_os.str();
  const std::string attr_text = attr.to_json();
  const DiffResult d =
      diff_reports(report, report, DiffThresholds{}, audit_text, audit_text,
                   attr_text, attr_text);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_FALSE(d.regressed);
  EXPECT_NE(d.verdict_json.find("\"audit\":{\"decisions\":{\"accepted\""),
            std::string::npos);
  EXPECT_NE(d.verdict_json.find("\"attribution\":{\"by_class\""),
            std::string::npos);
  EXPECT_NE(d.verdict_json.find("\"unparseable_lines\":{\"base\":0"),
            std::string::npos);
}

TEST(Diff, RejectsUnparseableInput) {
  const DiffResult d = diff_reports("not json", "{}", DiffThresholds{});
  EXPECT_FALSE(d.ok);
  EXPECT_NE(d.error.find("base report"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trajectory fold

TEST(Trajectory, FoldsLeavesAndIsolatesBrokenFiles) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"BENCH_alpha.json",
       "{\"suite\":\"quick\",\"overhead\":{\"percent\":1.25},"
       "\"ok\":true,\"runs\":[3,4]}"},
      {"BENCH_broken.json", "not json"},
  };
  EXPECT_EQ(fold_bench_trajectory(files),
            "{\"schema_version\":1,\"benches\":{"
            "\"BENCH_alpha.json\":{\"suite\":\"quick\","
            "\"overhead.percent\":1.25,\"ok\":true,"
            "\"runs[0]\":3,\"runs[1]\":4}},"
            "\"errors\":[{\"file\":\"BENCH_broken.json\","
            "\"error\":\"bad literal at byte 0\"}]}");
}

// ---------------------------------------------------------------------------
// Audit log: window / epoch fields

TEST(Audit, EveryLineCarriesWindowAndEpoch) {
  const Netlist input = make_input("duke2");
  std::ostringstream os;
  AuditLog audit(&os);
  const RunResult rr = run(input, base_options()
                                      .windowed(true)
                                      .window_size(40)
                                      .window_overlap(8)
                                      .audit(&audit));
  EXPECT_GT(rr.report.substitutions_applied, 0);

  std::istringstream lines(os.str());
  std::string line;
  long long records = 0;
  bool saw_window = false;
  unsigned long long last_epoch = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto doc = json_parse(line, &error);
    ASSERT_NE(doc, nullptr) << error << "\nline: " << line;
    // Typed events (degradation etc.) have their own shape; decision
    // records must all carry the window id and journal epoch.
    if (doc->find_string("decision") == nullptr) continue;
    ++records;
    const JsonValue* window = doc->find_number("window");
    const JsonValue* epoch = doc->find_number("epoch");
    ASSERT_NE(window, nullptr) << line;
    ASSERT_NE(epoch, nullptr) << line;
    if (window->as_number() >= 0) saw_window = true;
    // Serial run: the log is chronological and the netlist epoch only
    // ever advances.
    const auto e = static_cast<unsigned long long>(epoch->as_number());
    EXPECT_GE(e, last_epoch);
    last_epoch = e;
  }
  EXPECT_EQ(records, audit.records());
  EXPECT_TRUE(saw_window) << "windowed run produced no window-scoped "
                             "audit records";
}

// ---------------------------------------------------------------------------
// Purity: sinks change nothing

TEST(Purity, AttachingEverySinkLeavesTheResultBitIdentical) {
  const Netlist input = make_input();
  const RunResult plain = run(input, base_options());

  std::ostringstream prog_os, audit_os;
  ProgressStream prog(&prog_os);
  AuditLog audit(&audit_os);
  PowerAttribution attr;
  const RunResult observed = run(input, base_options()
                                            .progress(&prog)
                                            .audit(&audit)
                                            .attribution(&attr));

  EXPECT_EQ(plain.blif, observed.blif);
  EXPECT_EQ(plain.report.final_power, observed.report.final_power);
  EXPECT_EQ(plain.report.initial_power, observed.report.initial_power);
  EXPECT_EQ(plain.report.substitutions_applied,
            observed.report.substitutions_applied);
  for (std::size_t i = 0; i < plain.report.by_class.size(); ++i) {
    EXPECT_EQ(plain.report.by_class[i].applied,
              observed.report.by_class[i].applied);
    EXPECT_EQ(plain.report.by_class[i].power_delta,
              observed.report.by_class[i].power_delta);
  }
}

}  // namespace
}  // namespace powder
