// Tests for the cell library: genlib parsing, special-cell detection,
// function matching, and the built-in lib2-style library.

#include <gtest/gtest.h>

#include "library/cell_library.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

TEST(Genlib, ParsesGateAndPins) {
  const CellLibrary lib = CellLibrary::from_genlib(
      "GATE my_nand 4.0 O=!(a*b);\n"
      "PIN a INV 1.5 999 0.4 0.2 0.6 0.3\n"
      "PIN b INV 2.5 999 0.8 0.1 0.8 0.1\n");
  ASSERT_EQ(lib.num_cells(), 1);
  const Cell& c = lib.cell_by_name("my_nand");
  EXPECT_DOUBLE_EQ(c.area, 4.0);
  ASSERT_EQ(c.num_inputs(), 2);
  EXPECT_DOUBLE_EQ(c.pins[0].input_cap, 1.5);
  EXPECT_DOUBLE_EQ(c.pins[1].input_cap, 2.5);
  // tau = max over pins of avg(rise, fall) block delay.
  EXPECT_DOUBLE_EQ(c.intrinsic_delay, 0.8);
  // Function is NAND.
  EXPECT_EQ(c.function.count_ones(), 3u);
  EXPECT_FALSE(c.function.bit(3));
}

TEST(Genlib, WildcardPinAppliesToAll) {
  const CellLibrary lib = CellLibrary::from_genlib(
      "GATE g 2.0 O=a+b;  PIN * NONINV 3 999 1 0.5 1 0.5\n");
  const Cell& c = lib.cell_by_name("g");
  EXPECT_DOUBLE_EQ(c.pins[0].input_cap, 3.0);
  EXPECT_DOUBLE_EQ(c.pins[1].input_cap, 3.0);
}

TEST(Genlib, MalformedInputThrows) {
  EXPECT_THROW(CellLibrary::from_genlib("GATE broken 1.0\n"), CheckError);
  EXPECT_THROW(CellLibrary::from_genlib("PIN a INV 1 999 1 1 1 1\n"),
               CheckError);
  EXPECT_THROW(
      CellLibrary::from_genlib("GATE g 1.0 O=a;\nGATE g 1.0 O=a;\n"),
      CheckError);
}

TEST(StandardLibrary, HasCoreCells) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_NE(lib.inverter(), kInvalidCell);
  EXPECT_NE(lib.buffer(), kInvalidCell);
  EXPECT_NE(lib.const0(), kInvalidCell);
  EXPECT_NE(lib.const1(), kInvalidCell);
  EXPECT_FALSE(lib.two_input_cells().empty());
  // Cells the paper's transformations rely on.
  for (const char* name :
       {"inv1", "nand2", "nor2", "and2", "or2", "xor2", "xnor2", "aoi21"})
    EXPECT_NE(lib.find(name), kInvalidCell) << name;
}

TEST(StandardLibrary, PaperLoadRatios) {
  // The worked example (Fig. 2) uses AND-type input load 1, XOR load 2.
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_DOUBLE_EQ(lib.cell_by_name("and2").pins[0].input_cap, 1.0);
  EXPECT_DOUBLE_EQ(lib.cell_by_name("xor2").pins[0].input_cap, 2.0);
}

TEST(StandardLibrary, InverterIsSmallestArea) {
  const CellLibrary lib = CellLibrary::standard();
  const Cell& inv = lib.cell(lib.inverter());
  EXPECT_TRUE(inv.is_inverter());
  for (const Cell& c : lib.cells())
    if (c.is_inverter()) EXPECT_LE(inv.area, c.area);
}

TEST(StandardLibrary, FindExact) {
  const CellLibrary lib = CellLibrary::standard();
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const CellId nand2 = lib.find_exact(~(a & b));
  ASSERT_NE(nand2, kInvalidCell);
  EXPECT_EQ(lib.cell(nand2).name, "nand2");
  // Function not in the library.
  EXPECT_EQ(lib.find_exact(a & ~b & TruthTable::variable(2, 0)),
            lib.find_exact(a & ~b));  // consistent lookups
}

TEST(StandardLibrary, MatchFunctionFindsPermutations) {
  const CellLibrary lib = CellLibrary::standard();
  // !(!a * b): matches nand2b directly, and with swapped pins it is a
  // different function, so exactly the identity permutation matches.
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const auto matches = lib.match_function(~(~a & b));
  bool found_nand2b = false;
  for (const auto& m : matches)
    if (lib.cell(m.cell).name == "nand2b") found_nand2b = true;
  EXPECT_TRUE(found_nand2b);

  // Symmetric functions match under both permutations.
  const auto and_matches = lib.match_function(a & b);
  int and2_count = 0;
  for (const auto& m : and_matches)
    if (lib.cell(m.cell).name == "and2") ++and2_count;
  EXPECT_EQ(and2_count, 2);
}

TEST(StandardLibrary, MatchedCellsRealizeFunction) {
  const CellLibrary lib = CellLibrary::standard();
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  for (const TruthTable& f :
       {a & b, ~(a | b), a ^ b, ~(a ^ b), ~(~a & b)}) {
    for (const auto& m : lib.match_function(f)) {
      // cell.function with pin i reading f-variable m.perm[i] must equal f:
      // equivalently cell.function == f.permute(inverse(perm)) was the
      // matcher's invariant; verify by evaluation.
      const Cell& cell = lib.cell(m.cell);
      for (std::uint64_t minterm = 0; minterm < 4; ++minterm) {
        std::uint64_t cell_input = 0;
        for (int pin = 0; pin < 2; ++pin) {
          const int var = m.perm[static_cast<std::size_t>(pin)];
          if ((minterm >> var) & 1) cell_input |= 1ull << pin;
        }
        EXPECT_EQ(cell.function.bit(cell_input), f.bit(minterm))
            << cell.name << " minterm " << minterm;
      }
    }
  }
}

TEST(StandardLibrary, ConstantsHaveNoPins) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.cell(lib.const0()).num_inputs(), 0);
  EXPECT_EQ(lib.cell(lib.const1()).num_inputs(), 0);
  EXPECT_TRUE(lib.cell(lib.const0()).function.is_constant(false));
  EXPECT_TRUE(lib.cell(lib.const1()).function.is_constant(true));
}

}  // namespace
}  // namespace powder
