// Crash-safe session tests (DESIGN.md §10): checkpoint/resume bit-identity
// (including a real fork+SIGKILL crash at a commit boundary), typed
// rejection of mismatched or damaged checkpoints, graceful degradation of
// checkpointing under injected I/O faults, the degradation ladder's
// monotone staircase, the stuck-proof watchdog, and transient-proof retry.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"
#include "session/checkpoint.hpp"
#include "session/degradation.hpp"
#include "session/wal.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace powder {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* stem) {
  return (fs::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".wal"))
      .string();
}

Netlist make_input(const char* bench = "duke2") {
  // The netlist shares ownership of the library, so it (and copies of it)
  // can outlive this helper without any leaked sentinel.
  const auto lib = CellLibrary::standard_shared();
  Netlist nl = map_aig(make_benchmark(bench), *lib);
  nl.adopt_library(lib);
  return nl;
}

/// The deterministic configuration every identity test runs under. The
/// session knobs vary per test; the decision-steering knobs never do.
PowderOptions::Builder base_options() {
  return PowderOptions::builder()
      .patterns(1024)
      .repeat(10)
      .max_outer_iterations(3)
      .seed(7);
}

struct RunResult {
  std::string blif;
  PowderReport report;
  long long audit_lines = 0;
};

RunResult run(const Netlist& input, PowderOptions::Builder builder) {
  Netlist nl = input;
  std::ostringstream audit_os;
  AuditLog audit(&audit_os);
  RunResult rr;
  rr.report = optimize(nl, builder.audit(&audit).build());
  rr.blif = write_blif(nl);
  rr.audit_lines = audit.records();
  return rr;
}

void expect_same_outcome(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.blif, want.blif);
  EXPECT_DOUBLE_EQ(got.report.final_power, want.report.final_power);
  EXPECT_DOUBLE_EQ(got.report.final_area, want.report.final_area);
  EXPECT_EQ(got.report.substitutions_applied,
            want.report.substitutions_applied);
  EXPECT_EQ(got.audit_lines, want.audit_lines);
}

// --- checkpoint + resume identity ----------------------------------------

TEST(CheckpointResume, FullRunRoundTripsThroughWal) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  const std::string wal = temp_path("full_run");
  const RunResult chk = run(input, base_options().checkpoint_out(wal));
  // Checkpointing must not change the result.
  expect_same_outcome(chk, ref);
  ASSERT_GT(chk.report.substitutions_applied, 0)
      << "benchmark too small to exercise the WAL";
  EXPECT_EQ(chk.report.diagnostics.checkpoint_frames,
            static_cast<long long>(chk.report.substitutions_applied +
                                   chk.report.diagnostics
                                       .final_check_rollbacks));

  const WalContents contents = read_wal(wal);
  EXPECT_EQ(contents.status, WalReadStatus::kClean);
  EXPECT_TRUE(contents.has_header);
  EXPECT_TRUE(contents.ended);
  EXPECT_EQ(static_cast<long long>(contents.commits.size()),
            chk.report.diagnostics.checkpoint_frames);

  // Resuming a *complete* log replays everything and changes nothing.
  const RunResult res = run(input, base_options().resume_from(wal));
  expect_same_outcome(res, ref);
  EXPECT_EQ(res.report.diagnostics.resume_replayed,
            static_cast<long long>(contents.commits.size()));
  fs::remove(wal);
}

// Kill-at-any-commit-boundary: a WAL cut after k commits (exactly what a
// crash between frame k and k+1 leaves behind, the fsync guaranteeing the
// prefix) must resume to a bit-identical final netlist for EVERY k.
TEST(CheckpointResume, ResumeFromEveryCommitBoundaryIsBitIdentical) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  const std::string wal = temp_path("boundaries");
  (void)run(input, base_options().checkpoint_out(wal));
  const WalContents full = read_wal(wal);
  ASSERT_GE(full.commits.size(), 2u);

  const std::string prefix_path = temp_path("boundary_prefix");
  for (std::size_t k = 0; k <= full.commits.size(); ++k) {
    std::string image =
        encode_frame(WalFrameType::kHeader, encode_header(full.header));
    for (std::size_t i = 0; i < k; ++i)
      image += encode_frame(WalFrameType::kCommit,
                            encode_commit(full.commits[i]));
    {
      std::ofstream out(prefix_path, std::ios::binary | std::ios::trunc);
      out << image;
    }
    const RunResult res = run(input, base_options().resume_from(prefix_path));
    EXPECT_EQ(res.blif, ref.blif) << "resume after " << k << " commits";
    EXPECT_DOUBLE_EQ(res.report.final_power, ref.report.final_power)
        << "resume after " << k << " commits";
    EXPECT_EQ(res.audit_lines, ref.audit_lines)
        << "resume after " << k << " commits";
    EXPECT_EQ(res.report.diagnostics.resume_replayed,
              static_cast<long long>(k));
  }
  fs::remove(wal);
  fs::remove(prefix_path);
}

// A torn tail (crash mid-frame-write) is the expected on-disk state after
// a kill: resume tolerates it and re-proves the torn commit live.
TEST(CheckpointResume, TornTrailingFrameIsToleratedOnResume) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  const std::string wal = temp_path("torn");
  (void)run(input, base_options().checkpoint_out(wal));
  const WalContents full = read_wal(wal);
  ASSERT_GE(full.commits.size(), 2u);

  std::string image =
      encode_frame(WalFrameType::kHeader, encode_header(full.header));
  image += encode_frame(WalFrameType::kCommit, encode_commit(full.commits[0]));
  const std::string second =
      encode_frame(WalFrameType::kCommit, encode_commit(full.commits[1]));
  image += second.substr(0, second.size() / 2);  // torn tail
  {
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out << image;
  }
  const RunResult res = run(input, base_options().resume_from(wal));
  expect_same_outcome(res, ref);
  EXPECT_EQ(res.report.diagnostics.resume_replayed, 1);
  fs::remove(wal);
}

// The real thing: fork a child that checkpoints and SIGKILLs itself right
// after a chosen commit frame becomes durable, then resume from the
// orphaned WAL in the parent. Serial resume and --threads 8 resume must
// both be bit-identical to the uninterrupted reference.
TEST(CheckpointResume, SigkillAtCommitBoundaryThenResume) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  // How many frames does a full run write? (Used to pick the kill points.)
  const std::string probe = temp_path("probe");
  (void)run(input, base_options().checkpoint_out(probe));
  const long long total =
      static_cast<long long>(read_wal(probe).commits.size());
  fs::remove(probe);
  ASSERT_GE(total, 2);

  // Deterministically "random" kill points: first, middle, last frame.
  const long long kill_points[] = {1, total / 2 + 1, total};
  for (const long long kill_at : kill_points) {
    const std::string wal =
        temp_path(("sigkill." + std::to_string(kill_at)).c_str());
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: no gtest machinery, no exceptions escaping, exit by signal.
      SessionOptions session;
      session.checkpoint_out = wal;
      session.after_checkpoint_frame = [kill_at](long long frame) {
        if (frame == kill_at) raise(SIGKILL);
      };
      try {
        Netlist nl = input;
        (void)optimize(nl, base_options().session(session).build());
      } catch (...) {
      }
      _exit(0);  // only reached when the kill point was never hit
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child was expected to die by SIGKILL at frame " << kill_at;
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The fsync'd prefix survived the kill.
    const WalContents contents = read_wal(wal);
    EXPECT_NE(contents.status, WalReadStatus::kCorrupt);
    EXPECT_EQ(static_cast<long long>(contents.commits.size()), kill_at);

    const RunResult serial = run(input, base_options().resume_from(wal));
    expect_same_outcome(serial, ref);
    EXPECT_EQ(serial.report.diagnostics.resume_replayed, kill_at);

    const RunResult threaded =
        run(input, base_options().resume_from(wal).threads(8));
    expect_same_outcome(threaded, ref);
    fs::remove(wal);
  }
}

// --- typed rejection of unusable checkpoints -----------------------------

TEST(CheckpointResume, WrongNetlistIsRejectedAsInputError) {
  const Netlist input = make_input();
  const std::string wal = temp_path("wrong_netlist");
  (void)run(input, base_options().checkpoint_out(wal));

  const Netlist other = make_input("bw");
  try {
    Netlist nl = other;
    (void)optimize(nl, base_options().resume_from(wal).build());
    FAIL() << "expected Error(kInput)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInput);
    EXPECT_NE(std::string(e.what()).find("netlist"), std::string::npos)
        << e.what();
  }
  fs::remove(wal);
}

TEST(CheckpointResume, ChangedOptionsAreRejectedAsInputError) {
  const Netlist input = make_input();
  const std::string wal = temp_path("wrong_options");
  (void)run(input, base_options().checkpoint_out(wal));
  try {
    Netlist nl = input;
    (void)optimize(nl, base_options().seed(8).resume_from(wal).build());
    FAIL() << "expected Error(kInput)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInput);
  }
  // Threads and deadline are execution knobs, not decision knobs: changing
  // them on resume is legal (asserted for threads by the SIGKILL test; the
  // fingerprint unit check below nails the rule).
  const PowderOptions a = base_options().build();
  const PowderOptions b = base_options().threads(8).deadline(60.0).build();
  EXPECT_EQ(options_fingerprint(a), options_fingerprint(b));
  const PowderOptions c = base_options().seed(8).build();
  EXPECT_NE(options_fingerprint(a), options_fingerprint(c));
}

TEST(CheckpointResume, CorruptWalIsRejectedAsIoError) {
  const Netlist input = make_input();
  const std::string wal = temp_path("corrupt");
  (void)run(input, base_options().checkpoint_out(wal));

  // Flip one byte in the middle of the file (inside an early frame).
  std::string image;
  {
    std::ifstream in(wal, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    image = os.str();
  }
  image[image.size() / 4] = static_cast<char>(image[image.size() / 4] ^ 0x10);
  {
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out << image;
  }
  try {
    Netlist nl = input;
    (void)optimize(nl, base_options().resume_from(wal).build());
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
  fs::remove(wal);
}

TEST(CheckpointResume, MissingWalIsRejectedAsIoError) {
  const Netlist input = make_input("bw");
  try {
    Netlist nl = input;
    (void)optimize(
        nl, base_options().resume_from("/nonexistent/never.wal").build());
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

// --- graceful degradation of checkpointing -------------------------------

// A mid-run checkpoint I/O failure (injected ENOSPC on the second commit
// frame) must not abort or perturb optimization: the run finishes with the
// same result, flags checkpoint_disabled, and keeps the durable prefix.
TEST(CheckpointResume, CheckpointIoFaultDegradesGracefully) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  const std::string wal = temp_path("io_fault");
  ScopedFaultInjector fi;
  // Occurrence 0 is the header frame; fail the second commit frame.
  fi->arm(FaultInjector::Site::kCheckpointWrite, 2, 1);
  const RunResult res = run(input, base_options().checkpoint_out(wal));
  fi->disarm(FaultInjector::Site::kCheckpointWrite);

  expect_same_outcome(res, ref);
  EXPECT_TRUE(res.report.diagnostics.checkpoint_disabled);
  EXPECT_EQ(res.report.diagnostics.checkpoint_frames, 1);
  // The surviving prefix is still a valid resumable checkpoint.
  const WalContents contents = read_wal(wal);
  EXPECT_NE(contents.status, WalReadStatus::kCorrupt);
  EXPECT_EQ(contents.commits.size(), 1u);
  const RunResult resumed = run(input, base_options().resume_from(wal));
  expect_same_outcome(resumed, ref);
  fs::remove(wal);
}

// An unopenable checkpoint path fails fast and typed — the user asked for
// durability and silently running without it would be a lie.
TEST(CheckpointResume, UnwritableCheckpointPathFailsFast) {
  const Netlist input = make_input("bw");
  try {
    Netlist nl = input;
    (void)optimize(
        nl,
        base_options().checkpoint_out("/nonexistent/dir/x.wal").build());
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

// --- degradation ladder --------------------------------------------------

TEST(DegradationLadder, DecidePolicyTable) {
  SessionOptions session;
  session.mem_limit_bytes = 1000;
  DegradationLadder ladder(session, /*deadline_seconds=*/10.0,
                           ProofEngine::kHybrid, nullptr, nullptr);
  using L = DegradationLevel;
  DegradationLadder::Sensors s;
  s.deadline_total = 10.0;
  s.deadline_remaining = 9.0;
  EXPECT_EQ(ladder.decide(s).level, L::kFullProof);

  s.deadline_remaining = 2.0;  // < 25% of 10s
  EXPECT_EQ(ladder.decide(s).level, L::kPodemOnly);

  s.deadline_remaining = 0.5;  // < 10% of 10s
  EXPECT_EQ(ladder.decide(s).level, L::kSignatureOnly);

  s.deadline_expired = true;
  EXPECT_EQ(ladder.decide(s).level, L::kStop);
  EXPECT_EQ(ladder.decide(s).stop_reason, StopReason::kDeadline);
  s.deadline_expired = false;
  s.deadline_remaining = 9.0;

  s.sat_pool_dry = true;  // hybrid engine sheds its SAT stage
  EXPECT_EQ(ladder.decide(s).level, L::kPodemOnly);
  s.atpg_pool_dry = true;  // both dry: nothing left to prove with
  EXPECT_EQ(ladder.decide(s).level, L::kStop);
  EXPECT_EQ(ladder.decide(s).stop_reason, StopReason::kProofBudget);
  s.sat_pool_dry = s.atpg_pool_dry = false;

  s.rss_bytes = 1200;  // over the limit
  EXPECT_EQ(ladder.decide(s).level, L::kSignatureOnly);
  s.rss_bytes = 1600;  // over 1.5x the limit
  EXPECT_EQ(ladder.decide(s).level, L::kStop);
  EXPECT_EQ(ladder.decide(s).stop_reason, StopReason::kMemLimit);
}

TEST(DegradationLadder, PodemEngineSkipsThePodemRung) {
  SessionOptions session;
  DegradationLadder ladder(session, 10.0, ProofEngine::kPodem, nullptr,
                           nullptr);
  DegradationLadder::Sensors s;
  s.deadline_total = 10.0;
  s.deadline_remaining = 9.0;
  s.atpg_pool_dry = true;  // a PODEM-only run with a dry ATPG pool is done
  EXPECT_EQ(ladder.decide(s).level, DegradationLevel::kStop);
  EXPECT_EQ(ladder.decide(s).stop_reason, StopReason::kProofBudget);
}

// A run starved by a tiny deadline steps down the ladder monotonically
// (audit staircase), stops cleanly with best-so-far, and still exits the
// library call normally.
TEST(DegradationLadder, StarvedRunStepsDownMonotonically) {
  const Netlist input = make_input();
  Netlist nl = input;
  std::ostringstream audit_os;
  AuditLog audit(&audit_os);
  const PowderReport r = optimize(nl, base_options()
                                          .patterns(2048)
                                          .deadline(0.02)
                                          .audit(&audit)
                                          .build());
  EXPECT_TRUE(r.diagnostics.deadline_hit);
  EXPECT_GE(r.diagnostics.degradation_events, 1);
  EXPECT_EQ(audit.events(),
            static_cast<long long>(r.diagnostics.degradation_events));

  // The audit staircase: every "degradation" event steps strictly down.
  std::istringstream lines(audit_os.str());
  std::string line;
  int last_level = -1;
  int seen = 0;
  auto level_of = [](const std::string& name) {
    if (name == "full_proof") return 0;
    if (name == "podem_only") return 1;
    if (name == "signature_only") return 2;
    if (name == "stop") return 3;
    return -1;
  };
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"degradation\"") == std::string::npos) continue;
    ++seen;
    const auto to_pos = line.find("\"to\":\"");
    ASSERT_NE(to_pos, std::string::npos) << line;
    const auto end = line.find('"', to_pos + 6);
    const int to = level_of(line.substr(to_pos + 6, end - to_pos - 6));
    ASSERT_GE(to, 0) << line;
    EXPECT_GT(to, last_level) << "ladder stepped up: " << line;
    last_level = to;
  }
  EXPECT_EQ(seen, r.diagnostics.degradation_events);
  // Best-so-far is a valid netlist (equivalence is checked by optimize's
  // own guards; here: it still writes and has the same interface).
  EXPECT_EQ(nl.num_inputs(), input.num_inputs());
  EXPECT_EQ(nl.num_outputs(), input.num_outputs());
  EXPECT_FALSE(write_blif(nl).empty());
}

// An absurdly small --mem-limit trips the RSS sensor on the first sample:
// the run stops cleanly, flags mem_limit_hit, and returns best-so-far
// instead of throwing.
TEST(DegradationLadder, MemLimitStopsCleanly) {
  const Netlist input = make_input("bw");
  Netlist nl = input;
  const PowderReport r =
      optimize(nl, base_options().mem_limit_bytes(1).build());
  EXPECT_TRUE(r.diagnostics.mem_limit_hit);
  EXPECT_EQ(r.substitutions_applied, 0);
  EXPECT_EQ(write_blif(nl), write_blif(input));  // stopped before any commit
}

// --- watchdog + retry ----------------------------------------------------

// Stalled speculative proof workers (injected 50ms stall per job) against
// a ~1ms watchdog: every lookup of an in-flight job times out, gets
// requeued inline, and the run still completes bit-identically.
TEST(Watchdog, StuckProofJobsAreRequeuedInline) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  ScopedFaultInjector fi;
  fi->arm(FaultInjector::Site::kProofStall);
  SessionOptions session;
  session.watchdog_seconds = 0.001;
  const RunResult res = run(input, base_options().threads(2).session(session));
  fi->disarm(FaultInjector::Site::kProofStall);

  expect_same_outcome(res, ref);
  EXPECT_GE(res.report.diagnostics.watchdog_requeues, 1);
}

// Transient proof-engine failures are retried with backoff and then
// succeed: the run's outcome is unchanged and the retries are counted.
TEST(Retry, TransientProofFailuresAreRetried) {
  const Netlist input = make_input();
  const RunResult ref = run(input, base_options());

  ScopedFaultInjector fi;
  fi->arm(FaultInjector::Site::kProofTransient, 0, 2);
  const RunResult res = run(input, base_options());
  fi->disarm(FaultInjector::Site::kProofTransient);

  expect_same_outcome(res, ref);
  EXPECT_EQ(res.report.diagnostics.retries, 2);
}

// Retries exhausted: the failing proof is treated as a sound rejection
// (kAborted), not a crash — the run completes, possibly with fewer
// substitutions, and the netlist remains valid.
TEST(Retry, ExhaustedRetriesRejectSoundly) {
  const Netlist input = make_input("bw");
  ScopedFaultInjector fi;
  fi->arm(FaultInjector::Site::kProofTransient);  // every proof, forever
  Netlist nl = input;
  const PowderReport r = optimize(nl, base_options().build());
  fi->disarm(FaultInjector::Site::kProofTransient);
  EXPECT_EQ(r.substitutions_applied, 0);
  EXPECT_GT(r.diagnostics.retries, 0);
  EXPECT_EQ(write_blif(nl), write_blif(input));
}

// --- fingerprints --------------------------------------------------------

TEST(Fingerprint, NetlistFingerprintTracksStructure) {
  const Netlist a = make_input("bw");
  const Netlist b = a;
  EXPECT_EQ(netlist_fingerprint(a), netlist_fingerprint(b));
  const Netlist c = make_input("duke2");
  EXPECT_NE(netlist_fingerprint(a), netlist_fingerprint(c));
}

}  // namespace
}  // namespace powder
