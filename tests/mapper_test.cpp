// Tests for the technology mapper: functional equivalence with the subject
// AIG (exhaustively and per-output), both cost modes, and structural
// well-formedness of the result.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "power/power.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

/// Exhaustively checks that the mapped netlist equals the AIG.
void expect_equivalent(const Aig& aig, const Netlist& nl) {
  ASSERT_LE(aig.num_inputs(), 14);
  ASSERT_EQ(nl.num_inputs(), aig.num_inputs());
  ASSERT_EQ(nl.num_outputs(), aig.num_outputs());
  const auto want = aig.output_truth_tables();

  Simulator sim(nl, 64);
  sim.use_exhaustive_patterns();
  const std::uint64_t total = 1ull << aig.num_inputs();
  for (int o = 0; o < nl.num_outputs(); ++o) {
    const auto v = sim.value(nl.outputs()[static_cast<std::size_t>(o)]);
    for (std::uint64_t m = 0; m < total; ++m)
      ASSERT_EQ((v[m >> 6] >> (m & 63)) & 1,
                static_cast<std::uint64_t>(
                    want[static_cast<std::size_t>(o)].bit(m)))
          << "output " << o << " minterm " << m;
  }
}

TEST(Mapper, SimpleFunctions) {
  const CellLibrary lib = CellLibrary::standard();
  Aig aig;
  const AigLit a = aig.add_input("a");
  const AigLit b = aig.add_input("b");
  const AigLit c = aig.add_input("c");
  aig.add_output(aig.land(a, b), "and");
  aig.add_output(aig.lxor(a, c), "xor");
  aig.add_output(aig_not(aig.lor(b, c)), "nor");
  aig.add_output(a, "buf");
  aig.add_output(aig_not(a), "inv");
  const Netlist nl = map_aig(aig, lib);
  nl.check_consistency();
  expect_equivalent(aig, nl);
}

TEST(Mapper, ConstantOutputs) {
  const CellLibrary lib = CellLibrary::standard();
  Aig aig;
  const AigLit a = aig.add_input("a");
  aig.add_output(aig.land(a, aig_not(a)), "zero");
  aig.add_output(kAigTrue, "one");
  const Netlist nl = map_aig(aig, lib);
  expect_equivalent(aig, nl);
}

TEST(Mapper, ArithmeticCircuits) {
  const CellLibrary lib = CellLibrary::standard();
  for (const Aig& aig :
       {make_adder(3), make_comparator(3), make_rd(5),
        make_symmetric(7, 2, 4), make_parity(6), make_multiplier(3)}) {
    const Netlist nl = map_aig(aig, lib);
    nl.check_consistency();
    expect_equivalent(aig, nl);
  }
}

TEST(Mapper, BothModesAreCorrect) {
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_alu(2);
  for (MapMode mode : {MapMode::kArea, MapMode::kPower}) {
    MapperOptions opt;
    opt.mode = mode;
    const Netlist nl = map_aig(aig, lib, opt);
    nl.check_consistency();
    expect_equivalent(aig, nl);
  }
}

TEST(Mapper, AreaModeNotWorseThanNaive) {
  // Minimum-area covering should beat one-cell-per-AND-node mapping.
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_comparator(6);
  MapperOptions opt;
  opt.mode = MapMode::kArea;
  const Netlist nl = map_aig(aig, lib, opt);
  const double naive_area =
      aig.live_and_count() *
      (lib.cell_by_name("nand2").area + lib.cell_by_name("inv1").area);
  EXPECT_LT(nl.total_area(), naive_area);
}

TEST(Mapper, PowerModeReducesSwitchedCap) {
  // On average the power-driven cover should not be worse than the
  // area-driven one in switched capacitance.
  const CellLibrary lib = CellLibrary::standard();
  double power_mode_total = 0.0, area_mode_total = 0.0;
  for (const char* name : {"comp", "rd84", "Z5xp1", "clip"}) {
    const Aig aig = make_benchmark(name);
    MapperOptions popt;
    popt.mode = MapMode::kPower;
    Netlist np = map_aig(aig, lib, popt);
    MapperOptions aopt;
    aopt.mode = MapMode::kArea;
    Netlist na = map_aig(aig, lib, aopt);
    const std::vector<double> probs(
        static_cast<std::size_t>(np.num_inputs()), 0.5);
    Simulator sp(np, 8192);
    Simulator sa(na, 8192);
    power_mode_total += PowerEstimator(&sp).total_power();
    area_mode_total += PowerEstimator(&sa).total_power();
  }
  EXPECT_LE(power_mode_total, area_mode_total * 1.05);
}

TEST(Mapper, RandomLogicEquivalence) {
  const CellLibrary lib = CellLibrary::standard();
  for (int seed = 0; seed < 6; ++seed) {
    const Aig aig = make_random_logic("rnd", 7, 4, 40,
                                      static_cast<std::uint64_t>(seed));
    const Netlist nl = map_aig(aig, lib);
    nl.check_consistency();
    expect_equivalent(aig, nl);
  }
}

TEST(Mapper, PreservesInputOutputNames) {
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_adder(2);
  const Netlist nl = map_aig(aig, lib);
  for (int i = 0; i < aig.num_inputs(); ++i)
    EXPECT_EQ(nl.gate_name(nl.inputs()[static_cast<std::size_t>(i)]),
              aig.input_name(i));
  for (int o = 0; o < aig.num_outputs(); ++o)
    EXPECT_EQ(nl.gate_name(nl.outputs()[static_cast<std::size_t>(o)]),
              aig.output_name(o));
}

}  // namespace
}  // namespace powder
