// Tests for the Boolean network, algebraic division/kernels, and greedy
// shared-divisor extraction.

#include <gtest/gtest.h>

#include "aig/bool_network.hpp"
#include "benchgen/benchmarks.hpp"
#include "flow/flow.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

Cover parse_cover(int nvars, std::initializer_list<const char*> cubes) {
  Cover c(nvars);
  for (const char* s : cubes) c.add(Cube::parse(s));
  return c;
}

TEST(AlgebraicDivide, TextbookExample) {
  // F = abc + abd + e; D = c + d  =>  Q = ab, R = e.
  // Variables: a b c d e (0..4).
  const Cover f = parse_cover(5, {"111--", "11-1-", "----1"});
  const Cover d = parse_cover(5, {"--1--", "---1-"});
  Cover q, r;
  ASSERT_TRUE(algebraic_divide(f, d, &q, &r));
  EXPECT_EQ(q.num_cubes(), 1);
  EXPECT_EQ(q.cubes()[0].to_pla(), "11---");
  EXPECT_EQ(r.num_cubes(), 1);
  EXPECT_EQ(r.cubes()[0].to_pla(), "----1");
}

TEST(AlgebraicDivide, FailsWhenNoQuotient) {
  const Cover f = parse_cover(3, {"11-", "--1"});
  const Cover d = parse_cover(3, {"0--"});  // a' does not divide anything
  Cover q, r;
  EXPECT_FALSE(algebraic_divide(f, d, &q, &r));
}

TEST(AlgebraicDivide, ReconstructionIdentity) {
  // For random F and a literal divisor: F == D*Q + R as cube sets.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Cover f(6);
    for (int i = 0; i < 8; ++i) {
      Cube c(6);
      for (int v = 0; v < 6; ++v) {
        const double roll = rng.uniform();
        if (roll < 0.3)
          c.set_lit(v, Lit::kOne);
        else if (roll < 0.45)
          c.set_lit(v, Lit::kZero);
      }
      f.add(c);
    }
    Cover d(6);
    Cube dc(6);
    dc.set_lit(static_cast<int>(rng.below(6)), Lit::kOne);
    d.add(dc);
    Cover q, r;
    if (!algebraic_divide(f, d, &q, &r)) continue;
    // D*Q + R must equal F as a function (algebraic => also as cube sets,
    // but function equality is what matters downstream).
    TruthTable product = TruthTable::constant(6, false);
    for (const Cube& qc : q.cubes())
      product = product |
                (qc.to_truth_table(6) & d.cubes()[0].to_truth_table(6));
    product = product | r.to_truth_table();
    EXPECT_TRUE(product == f.to_truth_table());
  }
}

TEST(Kernels, TextbookKernels) {
  // F = ace + bce + de + g  (vars a..e:0..4, g:5)
  // Kernels include {a+b} (co-kernel ce), {ac+bc+d} (co-kernel e), ...
  const Cover f =
      parse_cover(6, {"1-1-1-", "-11-1-", "---11-", "-----1"});
  const auto kernels = compute_kernels(f, 50);
  bool found_a_plus_b = false;
  for (const Cover& k : kernels) {
    if (k.num_cubes() == 2) {
      const auto& cs = k.cubes();
      if ((cs[0].to_pla() == "1-----" && cs[1].to_pla() == "-1----") ||
          (cs[1].to_pla() == "1-----" && cs[0].to_pla() == "-1----"))
        found_a_plus_b = true;
    }
  }
  EXPECT_TRUE(found_a_plus_b);
  EXPECT_FALSE(kernels.empty());
}

TEST(BoolNetwork, FromSopAndToAig) {
  SopNetwork sop;
  sop.name = "bn";
  sop.input_names = {"a", "b", "c"};
  sop.output_names = {"f", "g"};
  sop.outputs.push_back(parse_cover(3, {"11-", "--1"}));  // ab + c
  sop.outputs.push_back(parse_cover(3, {"1-1"}));         // ac
  const BoolNetwork bn = BoolNetwork::from_sop(sop);
  EXPECT_EQ(bn.num_inputs(), 3);
  EXPECT_EQ(bn.num_outputs(), 2);
  const Aig aig = bn.to_aig("bn");
  const auto tts = aig.output_truth_tables();
  EXPECT_TRUE(tts[0] == sop.outputs[0].to_truth_table());
  EXPECT_TRUE(tts[1] == sop.outputs[1].to_truth_table());
}

TEST(Extract, SharedKernelIsExtracted) {
  // f = a(c+d), g = b(c+d): the kernel (c+d) is shared.
  SopNetwork sop;
  sop.input_names = {"a", "b", "c", "d"};
  sop.output_names = {"f", "g"};
  sop.outputs.push_back(parse_cover(4, {"1-1-", "1--1"}));
  sop.outputs.push_back(parse_cover(4, {"-11-", "-1-1"}));
  BoolNetwork bn = BoolNetwork::from_sop(sop);
  const int before = bn.total_literals();
  const ExtractReport r = extract_divisors(&bn);
  EXPECT_GE(r.divisors_extracted, 1);
  EXPECT_LT(bn.total_literals(), before);
  // Functions preserved.
  const Aig aig = bn.to_aig("x");
  const auto tts = aig.output_truth_tables();
  EXPECT_TRUE(tts[0] == sop.outputs[0].to_truth_table());
  EXPECT_TRUE(tts[1] == sop.outputs[1].to_truth_table());
}

TEST(Extract, PreservesFunctionsOnRandomPlas) {
  for (int seed = 0; seed < 6; ++seed) {
    const SopNetwork sop = make_random_pla(
        "x", 8, 5, 24, static_cast<std::uint64_t>(seed) + 11);
    BoolNetwork bn = BoolNetwork::from_sop(sop);
    const int before = bn.total_literals();
    const ExtractReport r = extract_divisors(&bn);
    EXPECT_LE(r.literals_after, before);
    const auto tts = bn.to_aig("x").output_truth_tables();
    for (int o = 0; o < sop.num_outputs(); ++o)
      EXPECT_TRUE(tts[static_cast<std::size_t>(o)] ==
                  sop.outputs[static_cast<std::size_t>(o)].to_truth_table())
          << "seed " << seed << " output " << o;
  }
}

TEST(Extract, FlowIntegrationReducesAigSize) {
  // With extraction on, initial circuits should not get larger, and must
  // stay functionally identical.
  const SopNetwork sop = make_random_pla("itest", 10, 8, 40, 91);
  FlowOptions plain;
  FlowOptions extracted;
  extracted.extract_shared_divisors = true;
  const Aig a1 = synthesize(sop, plain);
  const Aig a2 = synthesize(sop, extracted);
  EXPECT_EQ(a1.output_truth_tables()[3].to_hex(),
            a2.output_truth_tables()[3].to_hex());
  // Extraction usually helps; allow a small regression margin (factoring
  // interactions), but catch blow-ups.
  EXPECT_LE(a2.live_and_count(), a1.live_and_count() * 11 / 10 + 4);
}

TEST(Extract, TerminatesOnPathologicalInputs) {
  SopNetwork sop;
  sop.input_names = {"a"};
  sop.output_names = {"f"};
  sop.outputs.push_back(parse_cover(1, {"1"}));
  BoolNetwork bn = BoolNetwork::from_sop(sop);
  const ExtractReport r = extract_divisors(&bn);
  EXPECT_EQ(r.divisors_extracted, 0);
}

}  // namespace
}  // namespace powder
