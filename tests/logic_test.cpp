// Unit and property tests for the logic module: truth tables, cubes,
// covers (espresso-lite), factoring, and the genlib expression parser.

#include <gtest/gtest.h>

#include "logic/cube.hpp"
#include "logic/expr.hpp"
#include "logic/factor.hpp"
#include "logic/truth_table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

TEST(TruthTable, ConstantsAndVariables) {
  const TruthTable zero = TruthTable::constant(3, false);
  const TruthTable one = TruthTable::constant(3, true);
  EXPECT_TRUE(zero.is_constant(false));
  EXPECT_TRUE(one.is_constant(true));
  EXPECT_EQ(zero.count_ones(), 0u);
  EXPECT_EQ(one.count_ones(), 8u);

  for (int v = 0; v < 3; ++v) {
    const TruthTable x = TruthTable::variable(3, v);
    EXPECT_EQ(x.count_ones(), 4u);
    for (std::uint64_t m = 0; m < 8; ++m)
      EXPECT_EQ(x.bit(m), ((m >> v) & 1) != 0);
  }
}

TEST(TruthTable, WideVariables) {
  // Variables above index 5 select whole words.
  const TruthTable x7 = TruthTable::variable(8, 7);
  EXPECT_EQ(x7.count_ones(), 128u);
  for (std::uint64_t m = 0; m < 256; ++m)
    EXPECT_EQ(x7.bit(m), ((m >> 7) & 1) != 0);
}

TEST(TruthTable, BooleanOps) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).count_ones(), 1u);
  EXPECT_EQ((a | b).count_ones(), 3u);
  EXPECT_EQ((a ^ b).count_ones(), 2u);
  EXPECT_EQ((~a).count_ones(), 2u);
  EXPECT_TRUE(((a ^ b) ^ b) == a);
}

TEST(TruthTable, CofactorAndDependence) {
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable c = TruthTable::variable(3, 2);
  const TruthTable f = a & c;
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_TRUE(f.cofactor(2, true) == a);
  EXPECT_TRUE(f.cofactor(2, false).is_constant(false));
}

TEST(TruthTable, PermuteRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    TruthTable f(4);
    for (std::uint64_t m = 0; m < 16; ++m) f.set_bit(m, rng.flip(0.5));
    const std::vector<int> perm{2, 0, 3, 1};
    std::vector<int> inv(4);
    for (int i = 0; i < 4; ++i) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
    EXPECT_TRUE(f.permute(perm).permute(inv) == f);
  }
}

TEST(TruthTable, FlipVar) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const TruthTable f = a & ~b;
  EXPECT_TRUE(f.flip_var(0) == (~a & ~b));
  EXPECT_TRUE(f.flip_var(1) == (a & b));
  EXPECT_TRUE(f.flip_var(0).flip_var(0) == f);
}

TEST(TruthTable, NpnCanonicalKeyInvariance) {
  // AND(a, b) and NOR(a', b') style variants share an NPN class.
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const TruthTable f1 = a & b;
  const TruthTable f2 = ~(~a | ~b);  // same function
  const TruthTable f3 = ~a & b;      // input negation
  const TruthTable f4 = ~(a & b);    // output negation
  EXPECT_EQ(f1.npn_canonical_key(), f2.npn_canonical_key());
  EXPECT_EQ(f1.npn_canonical_key(), f3.npn_canonical_key());
  EXPECT_EQ(f1.npn_canonical_key(), f4.npn_canonical_key());
  EXPECT_NE(f1.npn_canonical_key(), (a ^ b).npn_canonical_key());
}

TEST(Cube, ParseAndContainment) {
  const Cube c1 = Cube::parse("1-0");
  const Cube c2 = Cube::parse("110");
  EXPECT_EQ(c1.num_literals(), 2);
  EXPECT_TRUE(c1.contains(c2));
  EXPECT_FALSE(c2.contains(c1));
  EXPECT_EQ(c1.to_pla(), "1-0");
}

TEST(Cube, DistanceAndConsensus) {
  const Cube c1 = Cube::parse("10-");
  const Cube c2 = Cube::parse("11-");
  EXPECT_EQ(c1.distance(c2), 1);
  const Cube cons = c1.consensus(c2);
  EXPECT_EQ(cons.to_pla(), "1--");
}

TEST(Cube, CoversMinterm) {
  const Cube c = Cube::parse("1-0");
  EXPECT_TRUE(c.covers_minterm(0b001));   // x0=1, x2=0
  EXPECT_TRUE(c.covers_minterm(0b011));
  EXPECT_FALSE(c.covers_minterm(0b101));  // x2=1
  EXPECT_FALSE(c.covers_minterm(0b000));  // x0=0
}

TEST(Cover, TruthTableRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    TruthTable f(4);
    for (std::uint64_t m = 0; m < 16; ++m) f.set_bit(m, rng.flip(0.4));
    const Cover c = Cover::from_truth_table(f);
    EXPECT_TRUE(c.to_truth_table() == f);
  }
}

TEST(Cover, MinimizePreservesFunction) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    Cover c(5);
    const int ncubes = 3 + static_cast<int>(rng.below(8));
    for (int i = 0; i < ncubes; ++i) {
      Cube cube(5);
      for (int v = 0; v < 5; ++v) {
        const double r = rng.uniform();
        if (r < 0.3)
          cube.set_lit(v, Lit::kOne);
        else if (r < 0.6)
          cube.set_lit(v, Lit::kZero);
      }
      c.add(cube);
    }
    const TruthTable before = c.to_truth_table();
    Cover m = c;
    m.minimize();
    EXPECT_TRUE(m.to_truth_table() == before);
    EXPECT_LE(m.num_cubes(), c.num_cubes());
  }
}

TEST(Cover, TautologyDetection) {
  Cover taut(2);
  taut.add(Cube::parse("1-"));
  taut.add(Cube::parse("0-"));
  EXPECT_TRUE(taut.is_tautology());

  Cover not_taut(2);
  not_taut.add(Cube::parse("1-"));
  not_taut.add(Cube::parse("01"));
  EXPECT_FALSE(not_taut.is_tautology());
}

TEST(Cover, MergeAdjacentCubes) {
  Cover c(3);
  c.add(Cube::parse("110"));
  c.add(Cube::parse("111"));
  c.minimize();
  EXPECT_EQ(c.num_cubes(), 1);
  EXPECT_EQ(c.cubes()[0].to_pla(), "11-");
}

TEST(Factor, QuickFactorPreservesFunction) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    Cover c(6);
    const int ncubes = 2 + static_cast<int>(rng.below(10));
    for (int i = 0; i < ncubes; ++i) {
      Cube cube(6);
      for (int v = 0; v < 6; ++v) {
        const double r = rng.uniform();
        if (r < 0.25)
          cube.set_lit(v, Lit::kOne);
        else if (r < 0.5)
          cube.set_lit(v, Lit::kZero);
      }
      c.add(cube);
    }
    const auto tree = quick_factor(c);
    EXPECT_TRUE(tree->to_truth_table(6) == c.to_truth_table());
    // Factoring should never use more literals than the flat SOP.
    EXPECT_LE(tree->num_literals(), c.num_literals());
  }
}

TEST(Factor, ConstantCovers) {
  Cover empty(3);
  EXPECT_TRUE(quick_factor(empty)->to_truth_table(3).is_constant(false));
  Cover full(3);
  full.add(Cube(3));  // all-dash
  EXPECT_TRUE(quick_factor(full)->to_truth_table(3).is_constant(true));
}

TEST(Expr, BasicOperators) {
  const ParsedExpr e = parse_boolean_expr("!((a*b)+c)");
  ASSERT_EQ(e.input_names.size(), 3u);
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  EXPECT_TRUE(e.function == ~((a & b) | c));
}

TEST(Expr, JuxtapositionAndPostfixNot) {
  const ParsedExpr e = parse_boolean_expr("a b' + c");
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  EXPECT_TRUE(e.function == ((a & ~b) | c));
}

TEST(Expr, XorAndConstants) {
  const ParsedExpr e = parse_boolean_expr("a ^ b");
  EXPECT_EQ(e.function.count_ones(), 2u);
  const ParsedExpr z = parse_boolean_expr("CONST0");
  EXPECT_TRUE(z.function.is_constant(false));
  const ParsedExpr o = parse_boolean_expr("CONST1");
  EXPECT_TRUE(o.function.is_constant(true));
}

TEST(Expr, MalformedThrows) {
  EXPECT_THROW(parse_boolean_expr("(a + b"), CheckError);
  EXPECT_THROW(parse_boolean_expr("a +"), CheckError);
}


TEST(Cover, MinimizeWithDcUsesDontCares) {
  // ON = {11}, DC = {10, 01}: the minimizer may expand to a single literal
  // (or even tautology is NOT allowed since 00 is in the off-set).
  Cover on(2);
  on.add(Cube::parse("11"));
  Cover dc(2);
  dc.add(Cube::parse("10"));
  dc.add(Cube::parse("01"));
  on.minimize_with_dc(dc);
  // Result must cover minterm 11, must not cover 00.
  const TruthTable t = on.to_truth_table();
  EXPECT_TRUE(t.bit(3));
  EXPECT_FALSE(t.bit(0));
  EXPECT_LE(on.num_literals(), 1);  // a single literal suffices
}

TEST(Cover, MinimizeWithDcSandwichProperty) {
  // Random ON/DC pairs: ON <= result <= ON | DC.
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    Cover on(5), dc(5);
    for (int i = 0; i < 6; ++i) {
      Cube c(5);
      for (int v = 0; v < 5; ++v) {
        const double r = rng.uniform();
        if (r < 0.35)
          c.set_lit(v, Lit::kOne);
        else if (r < 0.7)
          c.set_lit(v, Lit::kZero);
      }
      (i % 2 ? dc : on).add(c);
    }
    const TruthTable on_t = on.to_truth_table();
    const TruthTable up_t = on_t | dc.to_truth_table();
    Cover result = on;
    result.minimize_with_dc(dc);
    const TruthTable r_t = result.to_truth_table();
    EXPECT_TRUE((on_t & ~r_t).is_constant(false)) << "ON not covered";
    EXPECT_TRUE((r_t & ~up_t).is_constant(false)) << "exceeded ON|DC";
  }
}

TEST(Cover, MinimizeWithEmptyDcEqualsPlainSemantics) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Cover on(4);
    for (int i = 0; i < 5; ++i) {
      Cube c(4);
      for (int v = 0; v < 4; ++v) {
        const double r = rng.uniform();
        if (r < 0.4)
          c.set_lit(v, Lit::kOne);
        else if (r < 0.7)
          c.set_lit(v, Lit::kZero);
      }
      on.add(c);
    }
    const TruthTable before = on.to_truth_table();
    Cover result = on;
    result.minimize_with_dc(Cover(4));
    EXPECT_TRUE(result.to_truth_table() == before);
  }
}

// Property: espresso-lite result is irredundant — removing any cube changes
// the function.
class CoverIrredundancy : public ::testing::TestWithParam<int> {};

TEST_P(CoverIrredundancy, NoRemovableCube) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Cover c(5);
  const int ncubes = 4 + static_cast<int>(rng.below(8));
  for (int i = 0; i < ncubes; ++i) {
    Cube cube(5);
    for (int v = 0; v < 5; ++v) {
      const double r = rng.uniform();
      if (r < 0.35)
        cube.set_lit(v, Lit::kOne);
      else if (r < 0.7)
        cube.set_lit(v, Lit::kZero);
    }
    c.add(cube);
  }
  c.minimize();
  const TruthTable full = c.to_truth_table();
  for (int skip = 0; skip < c.num_cubes(); ++skip) {
    Cover without(5);
    for (int i = 0; i < c.num_cubes(); ++i)
      if (i != skip) without.add(c.cubes()[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(without.to_truth_table() == full)
        << "cube " << skip << " is redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverIrredundancy, ::testing::Range(0, 12));

}  // namespace
}  // namespace powder
