// WAL codec and durability tests (DESIGN.md §10.1): frame round-trips over
// every record shape (tombstone/revive fanin lists, rewired pins, resize
// records, truth tables), torn-tail tolerance at every byte offset,
// checksum rejection, injected short-write/fsync faults, and the atomic
// file writer's crash discipline.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "session/wal.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/fsio.hpp"

namespace powder {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* stem) {
  return (fs::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".wal"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A deterministic zoo of candidate/applied shapes covering every branch of
// the codec. Seeded std::mt19937 keeps the "property test" reproducible.
WalCommit make_commit(std::uint32_t i, std::mt19937* rng) {
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(*rng);
  };
  WalCommit c;
  c.outer = 1 + i / 3;
  c.performed = 1 + i;
  CandidateSub& s = c.cand;
  switch (i % 4) {
    case 0:
      s.cls = SubstClass::kOS2;
      s.target = static_cast<GateId>(pick(0, 500));
      s.rep = ReplacementFunction::signal(static_cast<GateId>(pick(0, 500)),
                                          pick(0, 1) != 0);
      break;
    case 1: {
      s.cls = SubstClass::kIS2;
      s.target = static_cast<GateId>(pick(0, 500));
      FanoutRef ref;
      ref.gate = static_cast<GateId>(pick(0, 500));
      ref.pin = pick(0, 3);
      s.branch = ref;
      s.rep = ReplacementFunction::signal(static_cast<GateId>(pick(0, 500)));
      break;
    }
    case 2: {
      s.cls = SubstClass::kOS3;
      s.target = static_cast<GateId>(pick(0, 500));
      TruthTable tt(2);
      for (int m = 0; m < 4; ++m) tt.set_bit(m, pick(0, 1) != 0);
      s.rep = ReplacementFunction::two_input(
          static_cast<GateId>(pick(0, 500)), static_cast<GateId>(pick(0, 500)),
          tt, pick(0, 1) != 0, pick(0, 1) != 0);
      s.new_cell = static_cast<CellId>(pick(0, 40));
      break;
    }
    default:
      s.cls = SubstClass::kOS2;
      s.target = static_cast<GateId>(pick(0, 500));
      s.rep = ReplacementFunction::constant(pick(0, 1) != 0);
      break;
  }
  AppliedSub& a = c.applied;
  // Tombstoned MFFC with its pre-sweep fanin lists (revive input).
  const int removed = pick(0, 4);
  for (int g = 0; g < removed; ++g) {
    a.removed_gates.push_back(static_cast<GateId>(pick(0, 500)));
    std::vector<GateId> fanins;
    for (int f = pick(0, 3); f > 0; --f)
      fanins.push_back(static_cast<GateId>(pick(0, 500)));
    a.removed_fanins.push_back(std::move(fanins));
  }
  for (int p = pick(1, 5); p > 0; --p) {
    RewiredPin pin;
    pin.sink = static_cast<GateId>(pick(0, 500));
    pin.pin = pick(0, 3);
    pin.old_driver = static_cast<GateId>(pick(0, 500));
    pin.new_driver = static_cast<GateId>(pick(0, 500));
    a.rewired_pins.push_back(pin);
  }
  // Resize records ride in some commits.
  if (i % 3 == 0) {
    ResizedCell r;
    r.gate = static_cast<GateId>(pick(0, 500));
    r.old_cell = static_cast<CellId>(pick(0, 40));
    r.new_cell = static_cast<CellId>(pick(0, 40));
    a.resized_cells.push_back(r);
  }
  if (i % 4 == 2) a.new_gate = static_cast<GateId>(pick(0, 500));
  for (int r = pick(1, 3); r > 0; --r)
    a.changed_roots.push_back(static_cast<GateId>(pick(0, 500)));
  a.area_delta = (pick(-100, 100)) * 0.25;
  return c;
}

std::string make_image(const std::vector<WalCommit>& commits, bool ended) {
  WalHeader h;
  h.netlist_hash = 0x1122334455667788ull;
  h.options_hash = 0x99AABBCCDDEEFF00ull;
  h.seed = 7;
  h.num_patterns = 2048;
  std::string image = encode_frame(WalFrameType::kHeader, encode_header(h));
  for (const WalCommit& c : commits)
    image += encode_frame(WalFrameType::kCommit, encode_commit(c));
  if (ended)
    image += encode_frame(WalFrameType::kEnd, encode_end(commits.size()));
  return image;
}

TEST(Wal, CommitRoundTripProperty) {
  std::mt19937 rng(42);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const WalCommit c = make_commit(i, &rng);
    WalCommit back;
    ASSERT_TRUE(decode_commit(encode_commit(c), &back)) << "case " << i;
    EXPECT_EQ(back.outer, c.outer);
    EXPECT_EQ(back.performed, c.performed);
    EXPECT_TRUE(same_candidate(back.cand, c.cand)) << "case " << i;
    EXPECT_TRUE(same_applied(back.applied, c.applied)) << "case " << i;
    // Gains are recomputed state, not identity: they must come back zeroed.
    EXPECT_EQ(back.cand.pg_a, 0.0);
  }
}

TEST(Wal, HeaderRoundTrip) {
  WalHeader h;
  h.netlist_hash = 0xDEADBEEFCAFEF00Dull;
  h.options_hash = 0x0123456789ABCDEFull;
  h.seed = 123456789;
  h.num_patterns = 4096;
  WalHeader back;
  ASSERT_TRUE(decode_header(encode_header(h), &back));
  EXPECT_EQ(back.version, kWalVersion);
  EXPECT_EQ(back.netlist_hash, h.netlist_hash);
  EXPECT_EQ(back.options_hash, h.options_hash);
  EXPECT_EQ(back.seed, h.seed);
  EXPECT_EQ(back.num_patterns, h.num_patterns);
}

TEST(Wal, CleanImageParsesClean) {
  std::mt19937 rng(1);
  std::vector<WalCommit> commits;
  for (std::uint32_t i = 0; i < 5; ++i) commits.push_back(make_commit(i, &rng));
  const WalContents out = parse_wal(make_image(commits, /*ended=*/true));
  EXPECT_EQ(out.status, WalReadStatus::kClean);
  EXPECT_TRUE(out.has_header);
  EXPECT_TRUE(out.ended);
  ASSERT_EQ(out.commits.size(), commits.size());
  for (std::size_t i = 0; i < commits.size(); ++i) {
    EXPECT_TRUE(same_candidate(out.commits[i].cand, commits[i].cand));
    EXPECT_TRUE(same_applied(out.commits[i].applied, commits[i].applied));
  }
}

// Crash-while-writing leaves a torn tail. Truncating the image at EVERY
// byte offset must never crash the reader, never corrupt the readable
// prefix, and must report kTruncated whenever the cut lands inside a frame.
TEST(Wal, TruncationAtEveryOffsetKeepsPrefix) {
  std::mt19937 rng(2);
  std::vector<WalCommit> commits;
  std::vector<std::size_t> boundaries;  // cumulative frame end offsets
  for (std::uint32_t i = 0; i < 3; ++i) commits.push_back(make_commit(i, &rng));
  const std::string image = make_image(commits, /*ended=*/false);
  {
    WalHeader h;
    std::size_t at = encode_frame(WalFrameType::kHeader, encode_header(h))
                         .size();
    // Recompute per-frame sizes to know how many commits a prefix holds.
    boundaries.push_back(at);
    for (const WalCommit& c : commits) {
      at += encode_frame(WalFrameType::kCommit, encode_commit(c)).size();
      boundaries.push_back(at);
    }
  }
  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    const WalContents out = parse_wal(std::string_view(image).substr(0, cut));
    // Number of whole frames before the cut.
    std::size_t whole = 0;
    while (whole < boundaries.size() && boundaries[whole] <= cut) ++whole;
    const bool at_boundary = cut == 0 || (whole > 0 &&
                                          boundaries[whole - 1] == cut);
    EXPECT_EQ(out.status, at_boundary ? WalReadStatus::kClean
                                      : WalReadStatus::kTruncated)
        << "cut at " << cut;
    EXPECT_EQ(out.has_header, whole >= 1) << "cut at " << cut;
    EXPECT_EQ(out.commits.size(), whole == 0 ? 0 : whole - 1)
        << "cut at " << cut;
    EXPECT_FALSE(out.ended);
  }
}

// A bit flip anywhere in a non-final frame is corruption, not truncation:
// the prefix before the damaged frame is kept, the rest refused.
TEST(Wal, BitFlipIsCorruptWithPrefixKept) {
  std::mt19937 rng(3);
  std::vector<WalCommit> commits;
  for (std::uint32_t i = 0; i < 3; ++i) commits.push_back(make_commit(i, &rng));
  const std::string image = make_image(commits, /*ended=*/true);
  const std::size_t header_size =
      encode_frame(WalFrameType::kHeader, encode_header(WalHeader{})).size();
  const std::size_t first_commit_size =
      encode_frame(WalFrameType::kCommit, encode_commit(commits[0])).size();
  // Flip a payload byte inside the SECOND commit frame.
  std::string damaged = image;
  const std::size_t target = header_size + first_commit_size +
                             first_commit_size / 2;
  ASSERT_LT(target, damaged.size());
  damaged[target] = static_cast<char>(damaged[target] ^ 0x40);
  const WalContents out = parse_wal(damaged);
  EXPECT_EQ(out.status, WalReadStatus::kCorrupt);
  EXPECT_TRUE(out.has_header);
  EXPECT_EQ(out.commits.size(), 1u);  // prefix before the damage survives
  EXPECT_FALSE(out.error.empty());
}

TEST(Wal, GarbageIsCorrupt) {
  EXPECT_EQ(parse_wal("this is not a wal file, not even close").status,
            WalReadStatus::kCorrupt);
  // Empty file: no frames, trivially clean (resume layers on top reject a
  // missing header with a typed input error).
  EXPECT_EQ(parse_wal("").status, WalReadStatus::kClean);
}

TEST(Wal, WriterRoundTripsThroughDisk) {
  const std::string path = temp_path("wal_writer");
  std::mt19937 rng(4);
  const WalCommit c = make_commit(7, &rng);
  {
    WalWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, &err)) << err;
    ASSERT_TRUE(w.append(WalFrameType::kHeader, encode_header(WalHeader{}),
                         &err))
        << err;
    ASSERT_TRUE(w.append(WalFrameType::kCommit, encode_commit(c), &err))
        << err;
    ASSERT_TRUE(w.append(WalFrameType::kEnd, encode_end(1), &err)) << err;
  }
  const WalContents out = read_wal(path);
  EXPECT_EQ(out.status, WalReadStatus::kClean);
  EXPECT_TRUE(out.ended);
  ASSERT_EQ(out.commits.size(), 1u);
  EXPECT_TRUE(same_candidate(out.commits[0].cand, c.cand));
  EXPECT_TRUE(same_applied(out.commits[0].applied, c.applied));
  fs::remove(path);
}

// Injected short write: half a frame reaches disk, the writer reports the
// failure, and the reader sees a readable prefix plus a torn tail.
TEST(Wal, InjectedShortWriteLeavesTornTail) {
  const std::string path = temp_path("wal_short_write");
  std::mt19937 rng(5);
  ScopedFaultInjector fi;
  WalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, &err)) << err;
  ASSERT_TRUE(w.append(WalFrameType::kHeader, encode_header(WalHeader{}),
                       &err));
  ASSERT_TRUE(w.append(WalFrameType::kCommit,
                       encode_commit(make_commit(0, &rng)), &err));
  fi->arm(FaultInjector::Site::kCheckpointWrite, 0, 1);
  EXPECT_FALSE(w.append(WalFrameType::kCommit,
                        encode_commit(make_commit(1, &rng)), &err));
  EXPECT_NE(err.find("ENOSPC"), std::string::npos) << err;
  EXPECT_FALSE(w.is_open());  // the writer shut itself down
  const WalContents out = read_wal(path);
  EXPECT_EQ(out.status, WalReadStatus::kTruncated);
  EXPECT_TRUE(out.has_header);
  EXPECT_EQ(out.commits.size(), 1u);
  fs::remove(path);
}

TEST(Wal, InjectedFsyncFailureClosesWriter) {
  const std::string path = temp_path("wal_fsync");
  ScopedFaultInjector fi;
  WalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, &err)) << err;
  fi->arm(FaultInjector::Site::kCheckpointFsync, 0, 1);
  EXPECT_FALSE(w.append(WalFrameType::kHeader, encode_header(WalHeader{}),
                        &err));
  EXPECT_NE(err.find("fsync"), std::string::npos) << err;
  EXPECT_FALSE(w.is_open());
  fs::remove(path);
}

TEST(Wal, ReadMissingFileThrowsTypedIoError) {
  try {
    (void)read_wal("/nonexistent/dir/never.wal");
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

// --- atomic artifact writes (satellite of the same PR) -------------------

TEST(Fsio, AtomicWriteLandsWholeOrNotAtAll) {
  const std::string path = temp_path("fsio_atomic");
  write_file_atomic(path, "generation 1\n");
  EXPECT_EQ(slurp(path), "generation 1\n");
  // A failed write must leave the previous generation untouched.
  {
    ScopedFaultInjector fi;
    fi->arm(FaultInjector::Site::kOutputWrite, 0, 1);
    try {
      write_file_atomic(path, "generation 2 (must not land)\n");
      FAIL() << "expected Error(kIo)";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kIo);
    }
  }
  EXPECT_EQ(slurp(path), "generation 1\n");
  // And no temp litter survives the failure.
  int leftovers = 0;
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path()))
    if (entry.path().string().find("fsio_atomic") != std::string::npos &&
        entry.path().string().find(".tmp.") != std::string::npos)
      ++leftovers;
  EXPECT_EQ(leftovers, 0);
  write_file_atomic(path, "generation 3\n");
  EXPECT_EQ(slurp(path), "generation 3\n");
  fs::remove(path);
}

TEST(Fsio, UncommittedWriterLeavesNoTrace) {
  const std::string path = temp_path("fsio_uncommitted");
  {
    AtomicFileWriter w(path);
    w.stream() << "half-finished artifact";
    // no commit(): destructor must clean up the temp file
  }
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace powder
