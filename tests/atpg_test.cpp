// Tests for the PODEM-based permissibility checker. Verdicts are checked
// against ground truth established by exhaustive/BDD evaluation.

#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "util/check.hpp"
#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/substitution.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

class AtpgTest : public ::testing::Test {
 protected:
  AtpgTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(AtpgTest, StuckAtTestableFault) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  AtpgChecker atpg(nl_);
  TestVector test;
  // a stuck-at-0 is testable with a=1, b=1.
  const auto r = atpg.check_stuck_at(ReplacementSite{a, std::nullopt}, false,
                                     &test);
  EXPECT_EQ(r, AtpgResult::kTestFound);
  EXPECT_TRUE(test[0]);
  EXPECT_TRUE(test[1]);
}

TEST_F(AtpgTest, RedundantStuckAtFault) {
  // f = a | (a & b): the branch a&b is redundant; (a&b) stuck-at-0 is
  // untestable.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {a, g1});
  nl_.add_output("f", g2);
  AtpgChecker atpg(nl_);
  const auto r =
      atpg.check_stuck_at(ReplacementSite{g1, std::nullopt}, false);
  EXPECT_EQ(r, AtpgResult::kUntestable);
  // stuck-at-1 IS testable (a=0, b=0 gives f=1 vs 0).
  EXPECT_EQ(atpg.check_stuck_at(ReplacementSite{g1, std::nullopt}, true),
            AtpgResult::kTestFound);
}

TEST_F(AtpgTest, EquivalentSignalSubstitutionIsPermissible) {
  // g3 = inv(nand2(a,b)) == and2(a,b) = g1: OS2(g1, g3) is permissible.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("inv1"), {g2});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g3);
  AtpgChecker atpg(nl_);
  EXPECT_EQ(atpg.check_replacement(ReplacementSite{g1, std::nullopt},
                                   ReplacementFunction::signal(g3)),
            AtpgResult::kUntestable);
  // Substituting by the inverted signal is NOT permissible.
  EXPECT_EQ(atpg.check_replacement(ReplacementSite{g1, std::nullopt},
                                   ReplacementFunction::signal(g2)),
            AtpgResult::kTestFound);
  // ... unless the inversion flag compensates.
  EXPECT_EQ(atpg.check_replacement(ReplacementSite{g1, std::nullopt},
                                   ReplacementFunction::signal(g2, true)),
            AtpgResult::kUntestable);
}

TEST_F(AtpgTest, Figure2InputSubstitution) {
  // The paper's worked example: f = (a^c)&b, e = a&b. Replacing the XOR's
  // `a` branch by e is permissible (difference only matters when b=1, and
  // then e == a).
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_gate(cell("xor2"), {a, c}, "d");
  const GateId f = nl_.add_gate(cell("and2"), {d, b}, "f");
  const GateId e = nl_.add_gate(cell("and2"), {a, b}, "e");
  nl_.add_output("fo", f);
  nl_.add_output("eo", e);

  AtpgChecker atpg(nl_);
  const ReplacementSite site{a, FanoutRef{d, 0}};
  EXPECT_EQ(atpg.check_replacement(site, ReplacementFunction::signal(e)),
            AtpgResult::kUntestable);
  // The same source on the *stem* of d is NOT permissible: d = a^c vs
  // e = a&b differ observably (a=0, b=1, c=1 distinguishes them).
  EXPECT_EQ(
      atpg.check_replacement(ReplacementSite{d, std::nullopt},
                             ReplacementFunction::signal(e)),
      AtpgResult::kTestFound);
  // Asking for a source inside the faulty region is a caller bug and is
  // rejected loudly rather than mis-verified.
  EXPECT_THROW(atpg.check_replacement(ReplacementSite{a, std::nullopt},
                                      ReplacementFunction::signal(e)),
               CheckError);
}

TEST_F(AtpgTest, TwoInputReplacement) {
  // f = (a & b) | c. Replace the stem s = a&b by the new gate and2(a, b)
  // == permissible; by or2(a, b) == not permissible (differs when a=1,b=0,
  // c=0).
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId s = nl_.add_gate(cell("nand2"), {a, b});
  const GateId si = nl_.add_gate(cell("inv1"), {s});
  const GateId top = nl_.add_gate(cell("or2"), {si, c});
  nl_.add_output("f", top);
  AtpgChecker atpg(nl_);
  const TruthTable and_fn = lib_.cell_by_name("and2").function;
  const TruthTable or_fn = lib_.cell_by_name("or2").function;
  EXPECT_EQ(atpg.check_replacement(
                ReplacementSite{si, std::nullopt},
                ReplacementFunction::two_input(a, b, and_fn)),
            AtpgResult::kUntestable);
  EXPECT_EQ(atpg.check_replacement(
                ReplacementSite{si, std::nullopt},
                ReplacementFunction::two_input(a, b, or_fn)),
            AtpgResult::kTestFound);
}

TEST_F(AtpgTest, ConstantReplacementOfUnobservableSignal) {
  // top = (a & b) | a: the AND output is unobservable... not quite — it is
  // observable nowhere because a=0 forces both to 0 and a=1 forces top 1.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  AtpgChecker atpg(nl_);
  EXPECT_EQ(atpg.check_replacement(ReplacementSite{g1, std::nullopt},
                                   ReplacementFunction::constant(false)),
            AtpgResult::kUntestable);
  EXPECT_EQ(atpg.check_replacement(ReplacementSite{g1, std::nullopt},
                                   ReplacementFunction::constant(true)),
            AtpgResult::kTestFound);
}

TEST_F(AtpgTest, StatsAreTracked) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  AtpgChecker atpg(nl_);
  (void)atpg.check_stuck_at(ReplacementSite{a, std::nullopt}, false);
  (void)atpg.check_stuck_at(ReplacementSite{a, std::nullopt}, true);
  EXPECT_EQ(atpg.stats().checks, 2);
  EXPECT_EQ(atpg.stats().tests_found, 2);
}

// Property test: on random mapped circuits, every ATPG verdict must agree
// with the exhaustive ground truth. This is DESIGN.md invariant 5.
class AtpgOracleAgreement : public ::testing::TestWithParam<int> {};

TEST_P(AtpgOracleAgreement, RandomReplacementsMatchExhaustiveTruth) {
  const CellLibrary lib = CellLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const Aig aig = make_random_logic("oracle", 6, 3, 25,
                                    static_cast<std::uint64_t>(GetParam()));
  Netlist nl = map_aig(aig, lib);
  AtpgChecker atpg(nl, AtpgOptions{100000});

  // Collect live signal gates.
  std::vector<GateId> signals;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput)
      signals.push_back(g);

  // Exhaustive oracle: distinguishing vector exists iff some input minterm
  // produces different outputs after the replacement.
  Simulator sim(nl, 64);
  sim.use_exhaustive_patterns();

  int trials = 0;
  for (int t = 0; t < 40 && trials < 25; ++t) {
    const GateId target = signals[rng.below(signals.size())];
    if (nl.kind(target) != GateKind::kCell) continue;
    if (nl.fanouts(target).empty()) continue;
    const GateId source = signals[rng.below(signals.size())];
    if (source == target || nl.in_tfo(target, source)) continue;
    const bool invert = rng.flip(0.3);
    const ReplacementFunction rep =
        ReplacementFunction::signal(source, invert);
    const ReplacementSite site{target, std::nullopt};

    const auto rep_words = [&] {
      std::vector<std::uint64_t> w(sim.value(source).begin(),
                                   sim.value(source).end());
      if (invert)
        for (auto& x : w) x = ~x;
      return w;
    }();
    // Mask the wrapped padding patterns beyond 2^n.
    const int n = nl.num_inputs();
    const std::uint64_t total = 1ull << n;
    auto diff = sim.output_diff_with_replacement(target, nullptr, rep_words);
    bool distinguishable = false;
    for (std::uint64_t m = 0; m < total; ++m)
      if ((diff[m >> 6] >> (m & 63)) & 1) distinguishable = true;

    const AtpgResult verdict = atpg.check_replacement(site, rep);
    ASSERT_NE(verdict, AtpgResult::kAborted);
    EXPECT_EQ(verdict == AtpgResult::kTestFound, distinguishable)
        << "target=" << nl.gate_name(target)
        << " source=" << nl.gate_name(source) << " invert=" << invert;
    ++trials;
  }
  EXPECT_GT(trials, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtpgOracleAgreement, ::testing::Range(0, 10));

}  // namespace
}  // namespace powder
