// Robustness tests built on the deterministic fault injector: whatever is
// forced to go wrong — aborted proofs, bogus accepts, stale candidates,
// corrupted journal deltas, drained budgets, expired deadlines — the
// optimizer must either emit a BDD-equivalent netlist or say in the report
// that it rolled back, exhausted its budget, or failed its guard. It must
// never return a silently miscompiled netlist.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/powder.hpp"
#include "util/fault_injection.hpp"

namespace powder {
namespace {

using Site = FaultInjector::Site;

const char* const kBenchmarks[] = {"comp", "rd84", "misex3"};

PowderOptions paranoid_options() {
  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 10;
  opt.max_outer_iterations = 4;
  opt.check_invariants = true;
  opt.guard.final_equivalence_check = true;
  return opt;
}

Netlist make_mapped(const char* name) {
  static CellLibrary lib = CellLibrary::standard();
  return map_aig(make_benchmark(name), lib);
}

/// The contract every degraded run must satisfy.
void expect_never_miscompiled(const Netlist& before, const Netlist& after,
                              const PowderReport& report, const char* name) {
  if (!report.diagnostics.guard_failed) {
    EXPECT_TRUE(functionally_equivalent(before, after))
        << name << ": non-equivalent netlist without guard_failed";
  }
  after.check_consistency();
}

TEST(FaultInjection, AtpgAbortsEscalateToSat) {
  // Every PODEM call aborts; the hybrid engine must still make progress
  // through the SAT fallback and the result must stay equivalent.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kAtpgProof);
    PowderOptions opt = paranoid_options();
    opt.proof.engine = ProofEngine::kHybrid;
    const PowderReport report = PowderOptimizer(&nl, opt).run();
    EXPECT_GT(inj->fired(Site::kAtpgProof), 0) << name;
    EXPECT_GT(report.substitutions_applied, 0)
        << name << ": SAT fallback made no progress";
    expect_never_miscompiled(before, nl, report, name);
  }
}

TEST(FaultInjection, AllProofEnginesAbortingStillTerminates) {
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kAtpgProof);
    inj->arm(Site::kSatProof);
    const PowderReport report =
        PowderOptimizer(&nl, paranoid_options()).run();
    EXPECT_EQ(report.substitutions_applied, 0) << name;
    EXPECT_FALSE(report.diagnostics.guard_failed) << name;
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
  }
}

TEST(FaultInjection, ForcedAcceptsAreCaughtByTheGuard) {
  // The optimizer is made to skip the pre-check and the permissibility
  // proof for every candidate. Non-permissible winners must be undone by
  // the signature guard or the end-of-run equivalence check.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kAcceptProof);
    const PowderReport report =
        PowderOptimizer(&nl, paranoid_options()).run();
    EXPECT_GT(inj->fired(Site::kAcceptProof), 0) << name;
    expect_never_miscompiled(before, nl, report, name);
  }
}

TEST(FaultInjection, StaleCandidatesAreRolledBack) {
  // Every chosen candidate is corrupted into a substitution whose signal
  // provably differs on the verification patterns. The deltas themselves
  // stay intact, so rollback must always restore equivalence.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kStaleCandidate);
    const PowderReport report =
        PowderOptimizer(&nl, paranoid_options()).run();
    EXPECT_GT(report.diagnostics.guard_rollbacks + report.diagnostics.final_check_rollbacks, 0)
        << name << ": no corruption was ever caught";
    EXPECT_FALSE(report.diagnostics.guard_failed) << name;
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
  }
}

TEST(FaultInjection, CorruptedDeltasAreReportedNeverSilent) {
  // Stale candidates force guard rollbacks while every recorded inverse
  // delta is corrupted: rollback can no longer be trusted. The run may or
  // may not be able to restore a good netlist — but a bad one must be
  // flagged with guard_failed, never returned silently.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kStaleCandidate);
    inj->arm(Site::kCorruptDelta);
    const PowderReport report =
        PowderOptimizer(&nl, paranoid_options()).run();
    expect_never_miscompiled(before, nl, report, name);
  }
}

TEST(FaultInjection, CorruptedDeltaOnEveryOtherCommit) {
  // A subtler mix: honest commits interleaved with corrupted ones.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    ScopedFaultInjector inj;
    inj->arm(Site::kStaleCandidate, /*skip=*/1, /*count=*/2);
    inj->arm(Site::kCorruptDelta, /*skip=*/0, /*count=*/1);
    const PowderReport report =
        PowderOptimizer(&nl, paranoid_options()).run();
    expect_never_miscompiled(before, nl, report, name);
  }
}

TEST(FaultInjection, DrainedProofPoolsExhaustCleanly) {
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    PowderOptions opt = paranoid_options();
    opt.budget.atpg_backtrack_pool = 0;
    opt.budget.sat_conflict_pool = 0;
    const PowderReport report = PowderOptimizer(&nl, opt).run();
    EXPECT_TRUE(report.diagnostics.budget_exhausted) << name;
    EXPECT_EQ(report.substitutions_applied, 0) << name;
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
  }
}

TEST(FaultInjection, SmallProofPoolsDegradeGracefully) {
  // Pools big enough to start but too small to finish: the run stops with
  // a partial, still-equivalent result.
  for (const char* name : kBenchmarks) {
    Netlist nl = make_mapped(name);
    const Netlist before = nl;
    PowderOptions opt = paranoid_options();
    opt.budget.atpg_backtrack_pool = 20;
    opt.budget.sat_conflict_pool = 20;
    const PowderReport report = PowderOptimizer(&nl, opt).run();
    expect_never_miscompiled(before, nl, report, name);
    EXPECT_FALSE(report.diagnostics.guard_failed) << name;
  }
}

TEST(FaultInjection, ExpiredDeadlineStopsImmediately) {
  Netlist nl = make_mapped("misex3");
  const Netlist before = nl;
  PowderOptions opt = paranoid_options();
  opt.budget.deadline_seconds = 0.0;
  const PowderReport report = PowderOptimizer(&nl, opt).run();
  EXPECT_TRUE(report.diagnostics.deadline_hit);
  EXPECT_EQ(report.substitutions_applied, 0);
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

TEST(FaultInjection, ShortDeadlineTerminatesCleanlyWithPartialResult) {
  Netlist nl = make_mapped("misex3");
  const Netlist before = nl;
  PowderOptions opt = paranoid_options();
  opt.num_patterns = 4096;  // make the full run comfortably exceed 50ms
  opt.max_outer_iterations = 64;
  opt.budget.deadline_seconds = 0.05;
  const PowderReport report = PowderOptimizer(&nl, opt).run();
  // Clean termination well before a full run would finish, and a valid,
  // equivalent partial result.
  EXPECT_LT(report.cpu_seconds, 2.0);
  EXPECT_FALSE(report.diagnostics.guard_failed);
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

TEST(FaultInjection, GuardCanBeDisabledExplicitly) {
  // Sanity: with every guard off and no faults armed, the optimizer still
  // behaves (proofs alone are sound).
  Netlist nl = make_mapped("comp");
  const Netlist before = nl;
  PowderOptions opt = paranoid_options();
  opt.guard.signature_check = false;
  opt.guard.final_equivalence_check = false;
  const PowderReport report = PowderOptimizer(&nl, opt).run();
  EXPECT_EQ(report.diagnostics.guard_rollbacks, 0);
  EXPECT_EQ(report.diagnostics.final_check_rollbacks, 0);
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

}  // namespace
}  // namespace powder
