// Tests for ATPG-based redundancy removal and constant propagation.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/redundancy.hpp"

namespace powder {
namespace {

class RedundancyTest : public ::testing::Test {
 protected:
  RedundancyTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(RedundancyTest, RemovesTextbookRedundantBranch) {
  // f = a | (a & b): the AND gate is entirely redundant.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {a, g1});
  nl_.add_output("f", top);
  const Netlist before = nl_;

  const RedundancyRemovalReport r = remove_redundancies(&nl_);
  EXPECT_GE(r.pins_tied, 1);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
  nl_.check_consistency();
  // The AND gate and even the OR gate should be gone (f == a).
  EXPECT_EQ(nl_.num_cells(), 0);
  EXPECT_EQ(nl_.fanin(nl_.outputs()[0], 0), a);
}

TEST_F(RedundancyTest, IrredundantCircuitUntouched) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("xor2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("and2"), {g1, c});
  nl_.add_output("f", g2);
  const int cells = nl_.num_cells();
  const RedundancyRemovalReport r = remove_redundancies(&nl_);
  EXPECT_EQ(r.pins_tied, 0);
  EXPECT_EQ(nl_.num_cells(), cells);
}

TEST_F(RedundancyTest, ConstantPropagationSimplifiesGates) {
  // Feed a constant through .names-style constant gate and check the
  // consumer collapses: or2(zero, x) == x.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId zero = nl_.add_gate(lib_.const0(), {});
  const GateId g = nl_.add_gate(cell("or2"), {zero, a});
  const GateId top = nl_.add_gate(cell("and2"), {g, b});
  nl_.add_output("f", top);
  const Netlist before = nl_;
  (void)remove_redundancies(&nl_);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
  // or2 and the constant are gone; and2 reads `a` directly.
  EXPECT_EQ(nl_.fanin(top, 0), a);
  EXPECT_FALSE(nl_.alive(g));
  EXPECT_FALSE(nl_.alive(zero));
}

TEST_F(RedundancyTest, ConstantCollapsesToWiderCellSimplification) {
  // aoi21(a, one, c) = !((a & 1) | c) = nor2(a, c).
  const GateId a = nl_.add_input("a");
  const GateId c = nl_.add_input("c");
  const GateId one = nl_.add_gate(lib_.const1(), {});
  const GateId g = nl_.add_gate(cell("aoi21"), {a, one, c});
  nl_.add_output("f", g);
  const Netlist before = nl_;
  (void)remove_redundancies(&nl_);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
  nl_.check_consistency();
  // Exactly one 2-input cell remains.
  EXPECT_EQ(nl_.num_cells(), 1);
}

TEST_F(RedundancyTest, CascadingRedundancy) {
  // top = (a & b) | (a & b & c): the second AND chain is redundant; its
  // removal exposes nothing new but must sweep cleanly.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("and2"), {g1, c});
  const GateId top = nl_.add_gate(cell("or2"), {g1, g2});
  nl_.add_output("f", top);
  const Netlist before = nl_;
  const RedundancyRemovalReport r = remove_redundancies(&nl_);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
  EXPECT_GT(r.gates_removed, 0);
  EXPECT_GT(r.area_removed, 0.0);
}

TEST(Redundancy, PreservesFunctionOnBenchmarks) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "misex3", "t481"}) {
    Netlist nl = map_aig(make_benchmark(name), lib);
    const Netlist before = nl;
    const RedundancyRemovalReport r = remove_redundancies(&nl);
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
    EXPECT_LE(nl.total_area(), before.total_area()) << name;
    nl.check_consistency();
    (void)r;
  }
}

}  // namespace
}  // namespace powder
