// Tests for the Markov-chain (temporal correlation) activity estimator.

#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "power/power.hpp"
#include "power/temporal.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

class TemporalTest : public ::testing::Test {
 protected:
  TemporalTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(TemporalTest, IndependentModelMatchesBaseEstimator) {
  // With toggle = 2p(1-p) the Markov chains are temporally independent and
  // activities must converge to the zero-delay estimator's.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("xor2"), {g1, c});
  nl_.add_output("f", g2);

  const std::vector<double> probs{0.3, 0.5, 0.8};
  const auto model = TemporalInputModel::independent(probs);
  TemporalOptions opt;
  opt.num_cycles = 1 << 14;
  const TemporalActivity ta = estimate_temporal_activity(nl_, model, opt);

  const auto exact = exact_signal_probs(nl_, probs);
  for (GateId g : {a, b, c, g1, g2}) {
    const double want = 2.0 * exact[g] * (1.0 - exact[g]);
    EXPECT_NEAR(ta.activity[g], want, 0.03) << nl_.gate_name(g);
    EXPECT_NEAR(ta.prob[g], exact[g], 0.03);
  }
}

TEST_F(TemporalTest, StickyInputsSwitchLess) {
  // Same stationary probabilities but a 10x lower toggle density: every
  // internal activity must drop, the probabilities must stay.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);

  const std::vector<double> probs{0.5, 0.5};
  auto indep = TemporalInputModel::independent(probs);
  auto sticky = indep;
  for (double& d : sticky.toggle) d *= 0.1;

  TemporalOptions opt;
  opt.num_cycles = 1 << 13;
  const auto ta_i = estimate_temporal_activity(nl_, indep, opt);
  const auto ta_s = estimate_temporal_activity(nl_, sticky, opt);
  EXPECT_NEAR(ta_s.prob[g], ta_i.prob[g], 0.03);
  EXPECT_LT(ta_s.activity[g], 0.35 * ta_i.activity[g]);
  EXPECT_NEAR(ta_s.activity[a], 0.1 * ta_i.activity[a], 0.02);
}

TEST_F(TemporalTest, ActivityBoundedByTwiceProbMin) {
  // For any signal, activity <= 2 min(p, 1-p) (stationarity bound).
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("rd84"), lib);
  const std::vector<double> probs(
      static_cast<std::size_t>(nl.num_inputs()), 0.5);
  const auto ta = estimate_temporal_activity(
      nl, TemporalInputModel::independent(probs));
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    const double bound =
        2.0 * std::min(ta.prob[g], 1.0 - ta.prob[g]) + 0.02;
    EXPECT_LE(ta.activity[g], bound);
  }
}

TEST_F(TemporalTest, InvalidModelRejected) {
  const GateId a = nl_.add_input("a");
  nl_.add_output("f", nl_.add_gate(cell("inv1"), {a}));
  TemporalInputModel bad;
  bad.prob = {0.9};
  bad.toggle = {0.5};  // > 2*min(p,1-p) = 0.2
  EXPECT_THROW(estimate_temporal_activity(nl_, bad), CheckError);
}

TEST_F(TemporalTest, SwitchedCapacitanceWeighting) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId x = nl_.add_gate(cell("xor2"), {a, b});  // pin caps 2
  nl_.add_output("f", x, 0.0);
  const std::vector<double> probs{0.5, 0.5};
  const auto ta = estimate_temporal_activity(
      nl_, TemporalInputModel::independent(probs));
  const double total = temporal_switched_capacitance(nl_, ta);
  // a and b each drive one xor pin (cap 2) at activity ~0.5; x drives
  // nothing.
  EXPECT_NEAR(total, 2 * 0.5 + 2 * 0.5, 0.1);
}

TEST(Temporal, CorrelationChangesOptimalityLandscape) {
  // A demonstration that the temporal model matters: on a mapped
  // benchmark, activities under a bursty input model differ from the
  // independence model by a measurable margin for at least some signals.
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("comp"), lib);
  const std::vector<double> probs(
      static_cast<std::size_t>(nl.num_inputs()), 0.5);
  auto indep = TemporalInputModel::independent(probs);
  auto bursty = indep;
  for (std::size_t i = 0; i < bursty.toggle.size(); i += 2)
    bursty.toggle[i] *= 0.15;  // half the inputs rarely change

  const auto ta_i = estimate_temporal_activity(nl, indep);
  const auto ta_b = estimate_temporal_activity(nl, bursty);
  double max_rel = 0.0;
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g) || nl.kind(g) != GateKind::kCell) continue;
    if (ta_i.activity[g] < 0.05) continue;
    max_rel = std::max(max_rel,
                       std::abs(ta_i.activity[g] - ta_b.activity[g]) /
                           ta_i.activity[g]);
  }
  EXPECT_GT(max_rel, 0.3);
  EXPECT_LT(temporal_switched_capacitance(nl, ta_b),
            temporal_switched_capacitance(nl, ta_i));
}

}  // namespace
}  // namespace powder
