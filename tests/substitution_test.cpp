// Tests for substitution application: structural edits, MFFC sweeping,
// changed-root reporting, and the PG_A/PG_B/PG_C prediction identity
// (DESIGN.md invariant 3: predicted gain == measured power delta).

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "opt/power_gain.hpp"
#include "opt/substitution.hpp"

namespace powder {
namespace {

class SubstTest : public ::testing::Test {
 protected:
  SubstTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(SubstTest, OS2MovesFanoutAndSweepsMffc) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});       // dies
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("inv1"), {g2});          // == g1
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g3);

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = g1;
  sub.rep = ReplacementFunction::signal(g3);
  ASSERT_TRUE(substitution_still_valid(nl_, sub));
  const Netlist before = nl_;
  const AppliedSub applied = apply_substitution(nl_, sub);
  nl_.check_consistency();
  EXPECT_FALSE(nl_.alive(g1));
  EXPECT_EQ(applied.removed_gates.size(), 1u);
  EXPECT_EQ(nl_.fanin(top, 0), g3);
  EXPECT_LT(applied.area_delta, 0.0);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
}

TEST_F(SubstTest, IS2RewiresSingleBranch) {
  // Figure 2: move the XOR's `a` branch to e = a&b.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_gate(cell("xor2"), {a, c}, "d");
  const GateId f = nl_.add_gate(cell("and2"), {d, b}, "f");
  const GateId e = nl_.add_gate(cell("and2"), {a, b}, "e");
  nl_.add_output("fo", f);
  nl_.add_output("eo", e);

  CandidateSub sub;
  sub.cls = SubstClass::kIS2;
  sub.target = a;
  sub.branch = FanoutRef{d, 0};
  sub.rep = ReplacementFunction::signal(e);
  ASSERT_TRUE(substitution_still_valid(nl_, sub));
  const Netlist before = nl_;
  const AppliedSub applied = apply_substitution(nl_, sub);
  nl_.check_consistency();
  EXPECT_EQ(nl_.fanin(d, 0), e);
  // a still feeds e; nothing was removed.
  EXPECT_TRUE(applied.removed_gates.empty());
  EXPECT_TRUE(functionally_equivalent(before, nl_));
}

TEST_F(SubstTest, OS3InsertsNewGate) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId s = nl_.add_gate(cell("nand2"), {a, b});
  const GateId si = nl_.add_gate(cell("inv1"), {s});
  const GateId top = nl_.add_gate(cell("or2"), {si, c});
  nl_.add_output("f", top);

  CandidateSub sub;
  sub.cls = SubstClass::kOS3;
  sub.target = si;
  sub.new_cell = cell("and2");
  sub.rep = ReplacementFunction::two_input(
      a, b, lib_.cell_by_name("and2").function);
  const Netlist before = nl_;
  const int cells_before = nl_.num_cells();
  const AppliedSub applied = apply_substitution(nl_, sub);
  nl_.check_consistency();
  EXPECT_NE(applied.new_gate, kNullGate);
  // nand2+inv1 replaced by and2: net cell count drops by one.
  EXPECT_EQ(nl_.num_cells(), cells_before - 1);
  EXPECT_TRUE(functionally_equivalent(before, nl_));
}

TEST_F(SubstTest, InvertedSignalInsertsInverter) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g2);

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = g1;
  sub.rep = ReplacementFunction::signal(g2, /*invert=*/true);
  const Netlist before = nl_;
  const AppliedSub applied = apply_substitution(nl_, sub);
  nl_.check_consistency();
  ASSERT_NE(applied.new_gate, kNullGate);
  EXPECT_TRUE(nl_.cell_of(applied.new_gate).is_inverter());
  EXPECT_TRUE(functionally_equivalent(before, nl_));
}

TEST_F(SubstTest, ConstantReplacement) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = g1;
  sub.rep = ReplacementFunction::constant(false);
  const Netlist before = nl_;
  apply_substitution(nl_, sub);
  nl_.check_consistency();
  EXPECT_FALSE(nl_.alive(g1));
  EXPECT_TRUE(functionally_equivalent(before, nl_));
}

TEST_F(SubstTest, StaleSubstitutionDetected) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {a, b});
  const GateId top = nl_.add_gate(cell("nand2"), {g1, g2});
  nl_.add_output("f", top);

  CandidateSub sub;
  sub.cls = SubstClass::kIS2;
  sub.target = g1;
  sub.branch = FanoutRef{top, 0};
  sub.rep = ReplacementFunction::signal(g2);
  EXPECT_TRUE(substitution_still_valid(nl_, sub));
  // Rewire the branch away: candidate goes stale.
  nl_.set_fanin(top, 0, a);
  EXPECT_FALSE(substitution_still_valid(nl_, sub));
}

TEST_F(SubstTest, CycleCreatingSubstitutionInvalid) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  nl_.add_output("f", g2);
  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = g1;
  sub.rep = ReplacementFunction::signal(g2);  // g2 is in TFO(g1)
  EXPECT_FALSE(substitution_still_valid(nl_, sub));
}

TEST_F(SubstTest, PredictedGainEqualsMeasuredDelta) {
  // DESIGN.md invariant 3 on the Figure-2 circuit.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId d = nl_.add_gate(cell("xor2"), {a, c}, "d");
  const GateId f = nl_.add_gate(cell("and2"), {d, b}, "f");
  const GateId e = nl_.add_gate(cell("and2"), {a, b}, "e");
  nl_.add_output("fo", f);
  nl_.add_output("eo", e);

  Simulator sim(nl_, 2048);
  PowerEstimator est(&sim);
  const double before = est.total_power();

  CandidateSub sub;
  sub.cls = SubstClass::kIS2;
  sub.target = a;
  sub.branch = FanoutRef{d, 0};
  sub.rep = ReplacementFunction::signal(e);
  sub.pg_a = compute_pg_a(nl_, est, sub);
  sub.pg_b = compute_pg_b(nl_, est, sub);
  sub.pg_c = compute_pg_c(nl_, est, sub);
  EXPECT_GE(sub.pg_a, 0.0);
  EXPECT_LE(sub.pg_b, 0.0);

  const AppliedSub applied = apply_substitution(nl_, sub);
  est.refresh();
  const double after = est.total_power();
  EXPECT_NEAR(sub.total_gain(), before - after, 1e-9);
}

TEST_F(SubstTest, AreaGainEqualsMeasuredAreaDelta) {
  // compute_area_gain must predict apply_substitution's area_delta exactly.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId n = nl_.add_gate(cell("nand2"), {a, b});
  const GateId s = nl_.add_gate(cell("inv1"), {n});
  const GateId t = nl_.add_gate(cell("and2"), {a, b});
  const GateId top1 = nl_.add_gate(cell("or2"), {s, c});
  const GateId top2 = nl_.add_gate(cell("xor2"), {t, c});
  nl_.add_output("f", top1);
  nl_.add_output("g", top2);

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = s;
  sub.rep = ReplacementFunction::signal(t);
  const double predicted = compute_area_gain(nl_, sub);
  const AppliedSub applied = apply_substitution(nl_, sub);
  EXPECT_NEAR(predicted, -applied.area_delta, 1e-9);
  EXPECT_NEAR(predicted,
              lib_.cell_by_name("nand2").area + lib_.cell_by_name("inv1").area,
              1e-9);
}

TEST_F(SubstTest, AreaGainAccountsForInsertedGates) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("nand2"), {a, b});
  const GateId top = nl_.add_gate(cell("or2"), {g1, a});
  nl_.add_output("f", top);
  nl_.add_output("g", g2);

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = g1;
  sub.rep = ReplacementFunction::signal(g2, /*invert=*/true);
  const double predicted = compute_area_gain(nl_, sub);
  const AppliedSub applied = apply_substitution(nl_, sub);
  EXPECT_NEAR(predicted, -applied.area_delta, 1e-9);
  // and2 removed, inv1 inserted.
  EXPECT_NEAR(predicted,
              lib_.cell_by_name("and2").area - lib_.cell_by_name("inv1").area,
              1e-9);
}

TEST_F(SubstTest, PredictionIdentityForOS2WithMffc) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  // Target cone: s = (a nand b) -> inv == a&b; replacement: t = a&b direct.
  const GateId n = nl_.add_gate(cell("nand2"), {a, b});
  const GateId s = nl_.add_gate(cell("inv1"), {n});
  const GateId t = nl_.add_gate(cell("and2"), {a, b});
  const GateId top1 = nl_.add_gate(cell("or2"), {s, c});
  const GateId top2 = nl_.add_gate(cell("xor2"), {t, c});
  nl_.add_output("f", top1);
  nl_.add_output("g", top2);

  Simulator sim(nl_, 4096);
  PowerEstimator est(&sim);
  const double before = est.total_power();

  CandidateSub sub;
  sub.cls = SubstClass::kOS2;
  sub.target = s;
  sub.rep = ReplacementFunction::signal(t);
  sub.pg_a = compute_pg_a(nl_, est, sub);
  sub.pg_b = compute_pg_b(nl_, est, sub);
  sub.pg_c = compute_pg_c(nl_, est, sub);

  const AppliedSub applied = apply_substitution(nl_, sub);
  est.refresh();
  EXPECT_NEAR(sub.total_gain(), before - est.total_power(), 1e-9);
  EXPECT_EQ(applied.removed_gates.size(), 2u);  // inv + nand swept
}

}  // namespace
}  // namespace powder
