// Tests for ResourceBudget's atomic effort pools: concurrent consumers
// must never double-spend (lost updates) or drive a pool negative, and the
// unlimited sentinel must survive contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/budget.hpp"

namespace powder {
namespace {

constexpr long kProbe = 1L << 60;  // grant(kProbe) reads the remaining pool

TEST(Budget, GrantClampsToPool) {
  ResourceBudget b;
  b.set_atpg_backtrack_pool(100);
  EXPECT_EQ(b.grant_atpg_backtracks(40), 40);
  EXPECT_EQ(b.grant_atpg_backtracks(500), 100);
  b.consume_atpg_backtracks(100);
  EXPECT_EQ(b.grant_atpg_backtracks(40), 0);
  EXPECT_TRUE(b.atpg_pool_dry());
}

TEST(Budget, UnlimitedPoolNeverDrains) {
  ResourceBudget b;  // both pools default to unlimited
  EXPECT_EQ(b.grant_sat_conflicts(12345), 12345);
  b.consume_sat_conflicts(1L << 40);
  EXPECT_EQ(b.grant_sat_conflicts(12345), 12345);
  EXPECT_FALSE(b.sat_pool_dry());
  EXPECT_FALSE(b.proof_effort_exhausted());
}

TEST(Budget, ConcurrentConsumeHasNoLostUpdates) {
  // Under-subscribed pool: every debit must land exactly once. A plain
  // (non-atomic) pool loses updates here and ends with too much left.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ResourceBudget b;
  b.set_atpg_backtrack_pool(kThreads * kPerThread + 777);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&b] {
      for (int i = 0; i < kPerThread; ++i) b.consume_atpg_backtracks(1);
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(b.grant_atpg_backtracks(kProbe), 777);
  EXPECT_FALSE(b.atpg_pool_dry());
}

TEST(Budget, ConcurrentOverdraftClampsAtZero) {
  // Over-subscribed pool: total demand exceeds the pool; it must end
  // exactly at 0, never negative (negative would read as unlimited).
  constexpr int kThreads = 8;
  ResourceBudget b;
  b.set_sat_conflict_pool(5000);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&b] {
      for (int i = 0; i < 2000; ++i) b.consume_sat_conflicts(3);
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(b.grant_sat_conflicts(kProbe), 0);
  EXPECT_TRUE(b.sat_pool_dry());
}

TEST(Budget, ConcurrentGrantConsumeRoundTrips) {
  // The grant/consume protocol the proof engines use, concurrently: ask
  // for a slice, spend at most what was granted. Total spend can then
  // never exceed the initial pool.
  constexpr int kThreads = 8;
  constexpr long kPool = 20000;
  ResourceBudget b;
  b.set_atpg_backtrack_pool(kPool);
  std::atomic<long> spent{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&b, &spent] {
      for (;;) {
        const long g = b.grant_atpg_backtracks(7);
        if (g == 0) return;
        b.consume_atpg_backtracks(g);
        spent.fetch_add(g);
      }
    });
  for (auto& t : ts) t.join();

  EXPECT_TRUE(b.atpg_pool_dry());
  // grant() is a read followed by a separate consume(), so concurrent
  // grants may briefly promise the same units near exhaustion; consume()'s
  // clamp caps the actual debit at exactly kPool, so every unit of the
  // pool was claimable and the sum of grants is at least the pool.
  EXPECT_GE(spent.load(), kPool);
}

TEST(Budget, NegativeAndZeroConsumesAreIgnored) {
  ResourceBudget b;
  b.set_atpg_backtrack_pool(50);
  b.consume_atpg_backtracks(0);
  b.consume_atpg_backtracks(-10);
  EXPECT_EQ(b.grant_atpg_backtracks(kProbe), 50);
}

}  // namespace
}  // namespace powder
