// Tests for the observability plane: the SPSC ring under a concurrent
// producer, span nesting, histogram bucket edges, golden Chrome-JSON and
// Prometheus exports, and the audit log's headline invariant — one NDJSON
// line per candidate the optimizer considered, serial and threaded.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"
#include "util/check.hpp"
#include "util/spsc_ring.hpp"
#include "util/trace_clock.hpp"

namespace powder {
namespace {

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, RejectsWhenFullThenDrainsInOrder) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: dropped, not overwritten
  std::vector<int> out;
  EXPECT_EQ(ring.pop_all(&out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Drained ring accepts again and the indices keep wrapping.
  EXPECT_TRUE(ring.try_push(4));
  out.clear();
  EXPECT_EQ(ring.pop_all(&out), 1u);
  EXPECT_EQ(out, (std::vector<int>{4}));
}

TEST(SpscRing, ConcurrentProducerConsumerLosesNothingItAccepted) {
  // One producer racing one consumer across many wraps of a tiny ring:
  // every accepted item must come out exactly once, in order.
  SpscRing<int> ring(8);
  constexpr int kItems = 200000;
  std::vector<int> got;
  got.reserve(kItems);
  int accepted = 0;

  std::thread consumer([&] {
    while (static_cast<int>(got.size()) < kItems) {
      const std::size_t n = got.size();
      ring.pop_all(&got);
      if (got.size() == n) std::this_thread::yield();
      // The producer pushes the full sequence, so the consumer finishes
      // only once everything pushed has arrived; accepted == kItems below
      // proves nothing was dropped.
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
    ++accepted;
  }
  consumer.join();

  EXPECT_EQ(accepted, kItems);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// TraceSession / TraceSpan

TEST(TraceSession, CountsRecordedAndDropped) {
  TraceSession session(/*events_per_thread=*/4);
  for (int i = 0; i < 6; ++i)
    session.record_span("ev", "test", trace_now_ns(), 1);
  EXPECT_EQ(session.events_recorded(), 4u);
  EXPECT_EQ(session.dropped(), 2u);
  session.drain();
  EXPECT_EQ(session.merged().size(), 4u);
  // Draining frees ring slots: recording works again.
  session.record_span("ev", "test", trace_now_ns(), 1);
  EXPECT_EQ(session.events_recorded(), 5u);
}

TEST(TraceSession, SpanNestingIsContained) {
  TraceSession session;
  {
    TraceSpan outer(&session, "outer", "test");
    {
      TraceSpan inner(&session, "inner", "test");
      inner.arg("k", 7);
    }
  }
  session.drain();
  ASSERT_EQ(session.merged().size(), 2u);
  // Inner spans finish first, so they drain first.
  const TraceEvent& inner = session.merged()[0].event;
  const TraceEvent& outer = session.merged()[1].event;
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  EXPECT_STREQ(inner.arg1_name, "k");
  EXPECT_EQ(inner.arg1, 7);
}

TEST(TraceSession, NullSessionSpanIsANoOp) {
  TraceSpan span(nullptr, "never", "test");
  span.arg("k", 1);  // must not crash
}

TEST(TraceSession, ConcurrentWritersEachGetARing) {
  TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kEach = 1000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&session] {
      for (int i = 0; i < kEach; ++i)
        session.record_span("w", "test", trace_now_ns(), 1, "i", i);
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(session.events_recorded(), kThreads * kEach);
  EXPECT_EQ(session.dropped(), 0u);
  EXPECT_EQ(session.threads_seen(), static_cast<std::size_t>(kThreads));
  session.drain();
  EXPECT_EQ(session.merged().size(), kThreads * kEach);
}

TEST(TraceSession, ChromeJsonGolden) {
  TraceSession session;
  const std::uint64_t t0 = session.start_ns();
  session.record_span("a", "phase", t0 + 1000, 2000, "x", 7, "y", -3);
  session.record_span("b", "phase", t0 + 1500, 500);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"powder\"}},\n"
      "{\"name\":\"a\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":1.000,\"dur\":2.000,\"args\":{\"x\":7,\"y\":-3}},\n"
      "{\"name\":\"b\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":1.500,\"dur\":0.500}\n"
      "]}\n";
  EXPECT_EQ(session.chrome_json(), expected);
}

TEST(TraceSession, ChromeJsonValidates) {
  TraceSession session;
  {
    TraceSpan span(&session, "work", "test");
    span.arg("n", 42);
  }
  session.record_instant("marker", "test", "v", 1);
  std::size_t num_events = 0;
  std::string error;
  ASSERT_TRUE(validate_chrome_json(session.chrome_json(), &num_events, &error))
      << error;
  EXPECT_EQ(num_events, 3u);  // metadata + span + instant
}

TEST(ValidateChromeJson, RejectsBrokenDocuments) {
  std::size_t n = 0;
  std::string err;
  EXPECT_FALSE(validate_chrome_json("[]", &n, &err));
  EXPECT_FALSE(validate_chrome_json("{}", &n, &err));  // no traceEvents
  EXPECT_FALSE(validate_chrome_json(
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,"
      "\"dur\":1}]}",
      &n, &err));  // missing name
  EXPECT_FALSE(validate_chrome_json(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":0}]}",
      &n, &err));  // complete event without dur
  EXPECT_TRUE(validate_chrome_json("{\"traceEvents\":[]}", &n, &err)) << err;
  EXPECT_EQ(n, 0u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, HistogramBucketEdges) {
  // Bucket i holds values with bit_width i: [2^(i-1), 2^i). The edges —
  // 2^k - 1 stays in bucket k, 2^k moves to bucket k + 1.
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  for (int k = 1; k <= 38; ++k) {
    const std::uint64_t pow2 = std::uint64_t{1} << k;
    EXPECT_EQ(Histogram::bucket_index(pow2 - 1), k) << "below edge 2^" << k;
    EXPECT_EQ(Histogram::bucket_index(pow2),
              k + 1 < Histogram::kNumBuckets - 1 ? k + 1
                                                 : Histogram::kNumBuckets - 1)
        << "at edge 2^" << k;
  }
  // Everything huge lands in the +Inf catch-all.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper_bound_ns(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound_ns(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound_ns(Histogram::kNumBuckets - 1),
            ~std::uint64_t{0});
}

TEST(Metrics, HistogramObserveAccumulates) {
  Histogram h;
  h.observe(0);
  h.observe(1023);
  h.observe(1024);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum_ns(), 2047);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(10), 1);
  EXPECT_EQ(h.bucket(11), 1);
}

TEST(Metrics, RegistrationIsIdempotentAndTyped) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c_total", "help");
  EXPECT_EQ(reg.counter("c_total"), c);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.gauge("c_total"), CheckError);
}

TEST(Metrics, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("powder_widgets_total", "Widgets processed")->inc(3);
  reg.gauge("powder_level")->set(2.5);
  Histogram* h = reg.histogram("powder_latency_ns", "Latency");
  h->observe(0);
  h->observe(1023);
  h->observe(1024);
  // _sum is sum_ns scaled to seconds with %.17g; format it the same way
  // instead of hand-picking a value whose decimal expansion is stable.
  char sum_buf[48];
  std::snprintf(sum_buf, sizeof(sum_buf), "%.17g", 2047 / 1e9);
  // Derived quantiles (ceil(q*count)'th observation's bucket upper bound):
  // p50 -> 2nd of 3 -> the 1023ns bucket; p90/p99 -> 3rd -> 2047ns.
  char p50_buf[48], p9x_buf[48];
  std::snprintf(p50_buf, sizeof(p50_buf), "%.17g", 1023 / 1e9);
  std::snprintf(p9x_buf, sizeof(p9x_buf), "%.17g", 2047 / 1e9);
  const std::string expected = std::string() +
      "# TYPE powder_latency_ns histogram\n"  // map order: latency first
      "powder_latency_ns_bucket{le=\"0\"} 1\n"
      "powder_latency_ns_bucket{le=\"1.023e-06\"} 2\n"
      "powder_latency_ns_bucket{le=\"2.047e-06\"} 3\n"
      "powder_latency_ns_bucket{le=\"+Inf\"} 3\n"
      "powder_latency_ns_sum " + sum_buf + "\n"
      "powder_latency_ns_count 3\n"
      "powder_latency_ns{quantile=\"0.5\"} " + p50_buf + "\n"
      "powder_latency_ns{quantile=\"0.9\"} " + p9x_buf + "\n"
      "powder_latency_ns{quantile=\"0.99\"} " + p9x_buf + "\n"
      "# TYPE powder_level gauge\n"
      "powder_level 2.5\n"
      "# HELP powder_widgets_total Widgets processed\n"
      "# TYPE powder_widgets_total counter\n"
      "powder_widgets_total 3\n";
  // The histogram registered with help "Latency" prints its HELP line too.
  const std::string expected_full =
      "# HELP powder_latency_ns Latency\n" + expected;
  EXPECT_EQ(reg.prometheus_text(), expected_full);
}

TEST(Metrics, JsonExportShape) {
  MetricsRegistry reg;
  reg.counter("a_total")->inc(2);
  reg.gauge("b")->set(1.5);
  reg.histogram("h_ns")->observe(5);
  EXPECT_EQ(reg.to_json(),
            "{\"a_total\":2,\"b\":1.5,"
            "\"h_ns\":{\"count\":1,\"sum_ns\":5,"
            "\"p50\":7,\"p90\":7,\"p99\":7,\"buckets\":[[7,1]]}}");
}

// ---------------------------------------------------------------------------
// AuditLog + end-to-end traced optimize

TEST(Audit, WritesOneLinePerRecord) {
  std::ostringstream os;
  AuditLog log(&os);
  AuditRecord rec;
  rec.seq = 0;
  rec.iteration = 1;
  rec.cls = "OS2";
  rec.target = 5;
  rec.target_name = "g_5";
  rec.rep_kind = "signal";
  rec.rep_b = 3;
  rec.decision = "accepted";
  log.write(rec);
  rec.seq = 1;
  rec.decision = "rejected_stale";
  log.write(rec);
  EXPECT_EQ(log.records(), 2);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (char ch : text)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"cls\":\"OS2\""), std::string::npos);
  EXPECT_NE(text.find("\"decision\":\"accepted\""), std::string::npos);
}

/// Lines in the audit log per the documented invariant: every considered
/// candidate writes exactly one record, and the end-of-run guard walk
/// (which rolls back without reconsidering candidates) writes none.
long long expected_audit_lines(const PowderReport& r) {
  return r.rejected_stale + r.rejected_by_delay + r.rejected_by_atpg +
         r.diagnostics.apply_failures + r.diagnostics.guard_rollbacks +
         r.substitutions_applied + r.diagnostics.final_check_rollbacks;
}

PowderReport run_traced(int threads, TraceSession* trace,
                        MetricsRegistry* metrics, AuditLog* audit) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("comp"), lib);
  const PowderOptions opt = PowderOptions::builder()
                                .patterns(512)
                                .threads(threads)
                                .trace(trace)
                                .metrics(metrics)
                                .audit(audit)
                                .build();
  return optimize(nl, opt);
}

TEST(Audit, LineCountMatchesCandidatesConsideredSerial) {
  std::ostringstream os;
  AuditLog log(&os);
  const PowderReport r = run_traced(1, nullptr, nullptr, &log);
  EXPECT_GT(r.substitutions_applied, 0);
  EXPECT_EQ(log.records(), expected_audit_lines(r));
  std::size_t lines = 0;
  for (char ch : os.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(static_cast<long long>(lines), log.records());
}

TEST(Audit, LineCountMatchesCandidatesConsideredThreaded) {
  std::ostringstream os;
  AuditLog log(&os);
  TraceSession trace;
  MetricsRegistry metrics;
  const PowderReport r = run_traced(8, &trace, &metrics, &log);
  EXPECT_GT(r.substitutions_applied, 0);
  EXPECT_EQ(log.records(), expected_audit_lines(r));

  // The trace must validate and carry the pipeline's span vocabulary.
  std::size_t num_events = 0;
  std::string error;
  const std::string json = trace.chrome_json();
  ASSERT_TRUE(validate_chrome_json(json, &num_events, &error)) << error;
  EXPECT_EQ(trace.dropped(), 0u);
  for (const char* span : {"\"optimize\"", "\"iteration\"", "\"harvest\"",
                           "\"harvest_shard\"", "\"journal_commit\"",
                           "\"sta_resync_arrival\"", "\"proof_job\""})
    EXPECT_NE(json.find(span), std::string::npos) << span;

  // The registry snapshot embedded in the report is the registry's JSON,
  // and the report document carries it under "metrics".
  EXPECT_EQ(r.metrics_json, metrics.to_json());
  EXPECT_NE(r.to_json().find("\"metrics\":" + r.metrics_json),
            std::string::npos);
}

TEST(TracedOptimize, SerialRunEmitsSpansAndMetrics) {
  TraceSession trace;
  MetricsRegistry metrics;
  const PowderReport r = run_traced(1, &trace, &metrics, nullptr);
  EXPECT_GT(r.substitutions_applied, 0);
  EXPECT_GT(trace.events_recorded(), 0u);
  std::size_t num_events = 0;
  std::string error;
  ASSERT_TRUE(validate_chrome_json(trace.chrome_json(), &num_events, &error))
      << error;
  EXPECT_GT(num_events, 1u);
  const std::string prom = metrics.prometheus_text();
  EXPECT_NE(prom.find("powder_substitutions_applied_total "),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE powder_proof_podem_check_duration_ns "
                      "histogram"),
            std::string::npos);
  EXPECT_EQ(r.metrics_json, metrics.to_json());
}

}  // namespace
}  // namespace powder
