// Malformed-input corpus: every file under tests/corpus/ must be rejected
// by read_blif with a *typed* input error — never a crash, never a silent
// partial netlist, and never a mis-categorized engine/resource error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/blif.hpp"
#include "util/error.hpp"

namespace powder {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open corpus file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(POWDER_CORPUS_DIR)) {
    if (entry.path().extension() == ".blif") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, EveryMalformedFileRaisesTypedInputError) {
  const CellLibrary lib = CellLibrary::standard();
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 10u) << "corpus directory looks incomplete";
  for (const auto& path : files) {
    const std::string text = slurp(path);
    bool threw = false;
    try {
      (void)read_blif(text, lib);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.category(), ErrorCategory::kInput)
          << path << ": wrong category, what() = " << e.what();
      EXPECT_NE(std::string(e.what()).find("input error"), std::string::npos)
          << path;
    } catch (const std::exception& e) {
      ADD_FAILURE() << path << " threw an untyped exception: " << e.what();
      threw = true;
    }
    EXPECT_TRUE(threw) << path << " parsed without error";
  }
}

// The typed error still satisfies every legacy catch site: Error IS-A
// CheckError, so pre-taxonomy callers keep working unchanged.
TEST(Corpus, TypedErrorsRemainCatchableAsCheckError) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_THROW((void)read_blif(".gate\n", lib), CheckError);
  EXPECT_THROW((void)read_blif(".gate\n", lib), Error);
}

// Diagnostics still carry position context through the typed wrapper.
TEST(Corpus, DiagnosticsKeepLineContext) {
  const CellLibrary lib = CellLibrary::standard();
  try {
    (void)read_blif(
        ".model m\n.inputs a\n.outputs f\n.gate nosuchcell a=a O=f\n.end\n",
        lib);
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nosuchcell"), std::string::npos) << msg;
  }
}

// A net driven both by a .gate and by an alias (or twice by gates) is a
// hardening addition of the typed-error pass: previously the second driver
// was silently ignored.
TEST(Corpus, DoubleDriversAreRejected) {
  const CellLibrary lib = CellLibrary::standard();
  const char* twice_by_gates =
      ".model m\n.inputs a b\n.outputs f\n"
      ".gate and2 a=a b=b O=f\n.gate or2 a=a b=b O=f\n.end\n";
  const char* gate_plus_alias =
      ".model m\n.inputs a b\n.outputs f\n"
      ".gate and2 a=a b=b O=f\n.names a f\n1 1\n.end\n";
  for (const char* text : {twice_by_gates, gate_plus_alias}) {
    try {
      (void)read_blif(text, lib);
      FAIL() << "double driver accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kInput);
      EXPECT_NE(std::string(e.what()).find("driven more than once"),
                std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace powder
