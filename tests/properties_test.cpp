// Cross-module property tests that don't belong to a single component:
// simulator-vs-BDD agreement, estimator consistency, netlist value
// semantics, and library integrity properties.

#include <gtest/gtest.h>

#include <set>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "opt/journal.hpp"
#include "power/power.hpp"
#include "timing/timing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {
namespace {

// --- simulator vs BDD oracle ------------------------------------------------

class SimOracle : public ::testing::TestWithParam<int> {};

TEST_P(SimOracle, ExhaustiveSimulationMatchesBdds) {
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_random_logic("so", 7, 4, 35,
                                    static_cast<std::uint64_t>(GetParam()));
  const Netlist nl = map_aig(aig, lib);
  Simulator sim(nl, 128);
  sim.use_exhaustive_patterns();
  NetlistBdds bdds(nl);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    const auto v = sim.value(g);
    for (std::uint64_t m = 0; m < 128; ++m) {
      const bool simulated = (v[m >> 6] >> (m & 63)) & 1;
      const bool exact =
          bdds.manager.evaluate(bdds.gate_function[g], m & 127);
      ASSERT_EQ(simulated, exact)
          << nl.gate_name(g) << " minterm " << (m & 127);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOracle, ::testing::Range(0, 6));

// --- observability vs ODC ground truth --------------------------------------

class ObservabilityOracle : public ::testing::TestWithParam<int> {};

TEST_P(ObservabilityOracle, StemObservabilityMatchesDefinition) {
  // O(g) bit m must equal: flipping g under input m changes some output.
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_random_logic("oo", 6, 3, 25,
                                    static_cast<std::uint64_t>(GetParam()));
  Netlist nl = map_aig(aig, lib);
  Simulator sim(nl, 64);
  sim.use_exhaustive_patterns();
  const std::uint64_t total = 1ull << nl.num_inputs();

  NetlistBdds bdds(nl);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g) || nl.kind(g) != GateKind::kCell) continue;
    const auto obs = sim.stem_observability(g);
    for (std::uint64_t m = 0; m < total; ++m) {
      // Ground truth by brute force: evaluate all outputs with g's value
      // forced to both polarities. We use the BDD cofactors of each
      // output with respect to... simpler: compare against the simulator's
      // own flip — already what stem_observability does — so instead
      // recompute through an independent path: rebuild netlist values by
      // direct gate evaluation with an injected flip.
      bool differs = false;
      {
        // Direct interpretive evaluation.
        std::vector<int> val(nl.num_slots(), -1);
        auto eval = [&](auto&& self, GateId x) -> int {
          if (val[x] >= 0) return val[x];
          int r;
          if (nl.kind(x) == GateKind::kInput) {
            int idx = 0;
            for (int i = 0; i < nl.num_inputs(); ++i)
              if (nl.inputs()[static_cast<std::size_t>(i)] == x) idx = i;
            r = (m >> idx) & 1;
          } else if (nl.kind(x) == GateKind::kOutput) {
            r = self(self, nl.fanin(x, 0));
          } else {
            const auto fanins = nl.fanins(x);
            std::uint64_t in = 0;
            for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
              if (self(self, fanins[static_cast<std::size_t>(pin)]))
                in |= 1ull << pin;
            r = nl.cell_of(x).function.bit(in) ? 1 : 0;
          }
          if (x == g) r ^= 1;  // injected flip
          val[x] = r;
          return r;
        };
        std::vector<int> flipped;
        for (GateId o : nl.outputs()) flipped.push_back(eval(eval, o));
        // Reference values from the simulator.
        for (std::size_t oi = 0; oi < flipped.size(); ++oi) {
          const auto v = sim.value(nl.outputs()[oi]);
          const bool good = (v[m >> 6] >> (m & 63)) & 1;
          if (good != (flipped[oi] != 0)) differs = true;
        }
      }
      const bool mask_bit = (obs[m >> 6] >> (m & 63)) & 1;
      ASSERT_EQ(mask_bit, differs)
          << nl.gate_name(g) << " minterm " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObservabilityOracle, ::testing::Range(0, 4));

// --- estimator consistency ---------------------------------------------------

TEST(EstimatorConsistency, SwitchedCapMatchesEstimatorOnExhaustivePatterns) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("rd84"), lib);
  Simulator sim(nl, 256);
  sim.use_exhaustive_patterns();
  PowerEstimator est(&sim);
  const std::vector<double> probs(
      static_cast<std::size_t>(nl.num_inputs()), 0.5);
  const double exact = switched_capacitance(nl, exact_signal_probs(nl, probs));
  EXPECT_NEAR(est.total_power(), exact, 1e-9);
}

TEST(EstimatorConsistency, PowerIsLoadMonotone) {
  // Adding external load to any output can only increase total power.
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "t");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(lib.find("xor2"), {a, b});
  nl.add_output("f", g, 1.0);
  Simulator s1(nl, 1024);
  const double p1 = PowerEstimator(&s1).total_power();
  nl.add_output("f2", g, 3.0);
  Simulator s2(nl, 1024);
  const double p2 = PowerEstimator(&s2).total_power();
  EXPECT_GT(p2, p1);
}

// --- timing sanity over the suite -------------------------------------------

TEST(TimingProperties, ArrivalMonotoneAlongPaths) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "duke2", "C432"}) {
    const Netlist nl = map_aig(make_benchmark(name), lib);
    const TimingAnalysis ta = analyze_timing(nl);
    for (GateId g = 0; g < nl.num_slots(); ++g) {
      if (!nl.alive(g)) continue;
      for (GateId fi : nl.fanins(g))
        EXPECT_GE(ta.arrival[g], ta.arrival[fi] - 1e-12) << name;
    }
    // Slack non-negative everywhere under the self-constraint.
    for (GateId g = 0; g < nl.num_slots(); ++g)
      if (nl.alive(g)) EXPECT_GE(ta.slack(g), -1e-9) << name;
  }
}

// --- library integrity --------------------------------------------------------

TEST(LibraryProperties, BuiltinGenlibTextRoundTrips) {
  const CellLibrary lib1 = CellLibrary::standard();
  const CellLibrary lib2 =
      CellLibrary::from_genlib(CellLibrary::builtin_genlib_text());
  ASSERT_EQ(lib1.num_cells(), lib2.num_cells());
  for (CellId id = 0; id < lib1.num_cells(); ++id) {
    EXPECT_EQ(lib1.cell(id).name, lib2.cell(id).name);
    EXPECT_EQ(lib1.cell(id).function, lib2.cell(id).function);
    EXPECT_DOUBLE_EQ(lib1.cell(id).area, lib2.cell(id).area);
  }
}

TEST(LibraryProperties, AllTwoInputFunctionsMappable) {
  // Every non-degenerate function of two variables must be coverable by
  // the library (single cell, or cell + inverter).
  const CellLibrary lib = CellLibrary::standard();
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  int mappable = 0;
  for (std::uint32_t code = 0; code < 16; ++code) {
    TruthTable f(2);
    for (std::uint64_t m = 0; m < 4; ++m) f.set_bit(m, (code >> m) & 1);
    if (!f.depends_on(0) || !f.depends_on(1)) continue;
    const bool direct = !lib.match_function(f).empty();
    const bool inverted = !lib.match_function(~f).empty();
    EXPECT_TRUE(direct || inverted) << "function code " << code;
    if (direct || inverted) ++mappable;
  }
  EXPECT_EQ(mappable, 10);  // all ten 2-input functions with full support
}

// --- journal rollback is an exact inverse ------------------------------------

/// Every live gate's signature words, in slot order.
std::vector<std::uint64_t> live_signatures(const Netlist& nl,
                                           const Simulator& sim) {
  std::vector<std::uint64_t> words;
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    const auto v = sim.value(g);
    words.insert(words.end(), v.begin(), v.end());
  }
  return words;
}

TEST(JournalProperties, ApplyRollbackRestoresEverythingBitExactly) {
  // checkpoint(); apply(sub); rollback() must be the identity on the
  // netlist: same BLIF text, same freshly-computed power, same signature
  // words — for every harvestable candidate, permissible or not.
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "rd84", "misex3"}) {
    Netlist nl = map_aig(make_benchmark(name), lib);
    const std::string blif_before = write_blif(nl);

    Simulator sim(nl, 512, {}, 7);
    PowerEstimator est(&sim);
    const double power_before = est.total_power();
    const std::vector<std::uint64_t> sigs_before = live_signatures(nl, sim);

    CandidateFinder finder(nl, est, CandidateOptions{}, 7);
    const std::vector<CandidateSub> cands = finder.find();
    ASSERT_FALSE(cands.empty()) << name;

    SubstJournal journal(&nl);
    int exercised = 0;
    for (const CandidateSub& sub : cands) {
      if (!substitution_still_valid(nl, sub)) continue;
      const std::size_t mark = journal.checkpoint();
      try {
        journal.apply(sub);
      } catch (const CheckError&) {
        continue;  // e.g. library cannot build the replacement
      }
      sim.refresh();
      journal.rollback_to(mark);
      sim.refresh();
      ++exercised;

      ASSERT_EQ(write_blif(nl), blif_before)
          << name << ": structure not restored";
      ASSERT_EQ(live_signatures(nl, sim), sigs_before)
          << name << ": signatures not restored";
      nl.check_consistency();
    }
    EXPECT_GT(exercised, 0) << name;

    // Power from a freshly built estimator on the restored netlist is the
    // bit-identical deterministic recomputation.
    Simulator fresh_sim(nl, 512, {}, 7);
    PowerEstimator fresh_est(&fresh_sim);
    EXPECT_EQ(fresh_est.total_power(), power_before) << name;
  }
}

TEST(JournalProperties, RollbackToUnwindsAStackOfCommits) {
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);
  const std::string blif_before = write_blif(nl);

  Simulator sim(nl, 512, {}, 11);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl, est, CandidateOptions{}, 11);
  const std::vector<CandidateSub> cands = finder.find();

  SubstJournal journal(&nl);
  const std::size_t mark = journal.checkpoint();
  int applied = 0;
  for (const CandidateSub& sub : cands) {
    if (applied >= 5) break;
    if (!substitution_still_valid(nl, sub)) continue;
    try {
      journal.apply(sub);
      sim.refresh();
      ++applied;
    } catch (const CheckError&) {
    }
  }
  ASSERT_GT(applied, 1) << "need a stack of commits to unwind";
  EXPECT_NE(write_blif(nl), blif_before);

  journal.rollback_to(mark);
  sim.refresh();
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(write_blif(nl), blif_before);
  nl.check_consistency();
}

// --- BLIF determinism ---------------------------------------------------------

TEST(BlifProperties, WriterIsDeterministic) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("duke2"), lib);
  EXPECT_EQ(write_blif(nl), write_blif(nl));
  const Netlist re = read_blif(write_blif(nl), lib);
  EXPECT_EQ(write_blif(re), write_blif(read_blif(write_blif(re), lib)));
}

}  // namespace
}  // namespace powder
