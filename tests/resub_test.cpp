// Generalized-resubstitution tests (DESIGN.md §12): the functional-
// reduction pre-pass preserves circuit function, converges (a second pass
// has nothing left to merge), and its commits round-trip through the WAL's
// kPrepass frames; k-input resubstitution stays bit-identical across thread
// counts (global and windowed) and its commits roll back exactly through
// the journal.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "opt/funcred.hpp"
#include "opt/journal.hpp"
#include "powder.hpp"
#include "session/wal.hpp"

namespace powder {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* stem) {
  return (fs::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".wal"))
      .string();
}

Netlist make_input(const char* bench = "duke2") {
  const auto lib = CellLibrary::standard_shared();
  Netlist nl = map_aig(make_benchmark(bench), *lib);
  nl.adopt_library(lib);
  return nl;
}

/// A netlist with planted signature classes: a duplicated AND cone and a
/// complementary AND/NAND pair. Funcred must find both deterministically,
/// which makes it the fixture for prepass-frame round-trip tests.
Netlist make_planted() {
  const auto lib = CellLibrary::standard_shared();
  Netlist nl(lib, "planted");
  const auto cell = [&](const char* name) { return lib->find(name); };
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId d = nl.add_input("d");
  const GateId g1 = nl.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl.add_gate(cell("and2"), {a, b});  // duplicate of g1
  const GateId n1 = nl.add_gate(cell("nand2"), {c, d});
  const GateId p1 = nl.add_gate(cell("and2"), {c, d});  // complement of n1
  const GateId h1 = nl.add_gate(cell("or2"), {g1, c});
  const GateId h2 = nl.add_gate(cell("or2"), {g2, d});
  const GateId h3 = nl.add_gate(cell("xor2"), {n1, a});
  const GateId h4 = nl.add_gate(cell("and2"), {p1, b});
  nl.add_output("o1", h1);
  nl.add_output("o2", h2);
  nl.add_output("o3", h3);
  nl.add_output("o4", h4);
  return nl;
}

PowderOptions::Builder base_options() {
  return PowderOptions::builder()
      .patterns(1024)
      .repeat(10)
      .max_outer_iterations(3)
      .seed(7);
}

struct RunResult {
  std::string blif;
  PowderReport report;
  long long audit_lines = 0;
};

RunResult run(const Netlist& input, PowderOptions::Builder builder) {
  Netlist nl = input;
  std::ostringstream audit_os;
  AuditLog audit(&audit_os);
  RunResult rr;
  rr.report = optimize(nl, builder.audit(&audit).build());
  rr.blif = write_blif(nl);
  rr.audit_lines = audit.records();
  return rr;
}

void expect_same_outcome(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.blif, want.blif);
  EXPECT_DOUBLE_EQ(got.report.final_power, want.report.final_power);
  EXPECT_DOUBLE_EQ(got.report.final_area, want.report.final_area);
  EXPECT_EQ(got.report.substitutions_applied,
            want.report.substitutions_applied);
  EXPECT_EQ(got.audit_lines, want.audit_lines);
}

// --- functional reduction -------------------------------------------------

TEST(Funcred, MergesPlantedEquivalencesAndPreservesFunction) {
  const Netlist input = make_planted();
  Netlist nl = input;
  const PowderReport report =
      optimize(nl, base_options().funcred(true).build());
  nl.check_consistency();
  // Both planted classes (duplicate cone, complementary pair) merge.
  EXPECT_GE(report.diagnostics.resub.funcred_merges, 2);
  EXPECT_TRUE(functionally_equivalent(input, nl));
  // The merges are visible as their own class in the per-class breakdown.
  const auto& fr =
      report.by_class[static_cast<std::size_t>(ResubClass::kFuncRed)];
  EXPECT_EQ(fr.applied, report.diagnostics.resub.funcred_merges);
}

TEST(Funcred, SecondPassIsIdempotent) {
  const Netlist pristine = make_planted();
  Netlist nl = pristine;
  Simulator sim(nl, 512);
  SubstJournal journal(&nl);
  FuncredHooks hooks;
  // Planted classes are exact duplicates; the 512-pattern word compare is
  // the arbiter and the proof hook just accepts. The equivalence check at
  // the end would catch any unsound merge this lets through.
  hooks.prove = [](const CandidateSub&) { return true; };

  const FuncredStats first = functional_reduction(nl, sim, journal, hooks);
  EXPECT_GE(first.merged, 2);
  nl.check_consistency();
  EXPECT_TRUE(functionally_equivalent(pristine, nl));

  // A reduced netlist has no signature classes left: the fixpoint holds.
  const FuncredStats second = functional_reduction(nl, sim, journal, hooks);
  EXPECT_EQ(second.merged, 0);
  EXPECT_EQ(second.rounds, 1);
}

TEST(Funcred, BenchmarkRunStaysEquivalent) {
  const Netlist input = make_input("Z5xp1");
  Netlist nl = input;
  const PowderReport report =
      optimize(nl, base_options().funcred(true).build());
  nl.check_consistency();
  EXPECT_TRUE(functionally_equivalent(input, nl));
  EXPECT_GE(report.diagnostics.resub.funcred_merges, 0);
}

// --- k-input resubstitution ----------------------------------------------

TEST(KResub, HarvestsKCellCandidates) {
  Netlist nl = make_input("comp");
  Simulator sim(nl, 512);
  PowerEstimator est(&sim);
  CandidateOptions opts;
  opts.resub.max_divisors = 3;
  CandidateFinder finder(nl, est, opts, /*seed=*/1);
  const std::vector<CandidateSub> cands = finder.find();

  int k_cands = 0;
  for (const CandidateSub& c : cands) {
    if (c.cls != ResubClass::kOSK && c.cls != ResubClass::kISK) continue;
    ++k_cands;
    ASSERT_EQ(c.rep.kind, ReplacementFunction::Kind::kCell);
    EXPECT_EQ(c.rep.num_sources(), 3);
  }
  EXPECT_GT(k_cands, 0) << "comp should yield OSK/ISK candidates at k=3";
}

TEST(KResub, JournalRollbackRestoresNetlistExactly) {
  Netlist nl = make_input("comp");
  Simulator sim(nl, 512);
  PowerEstimator est(&sim);
  CandidateOptions opts;
  opts.resub.max_divisors = 3;
  CandidateFinder finder(nl, est, opts, /*seed=*/1);
  const std::vector<CandidateSub> cands = finder.find();

  const CandidateSub* k_cand = nullptr;
  for (const CandidateSub& c : cands) {
    if (c.cls == ResubClass::kOSK || c.cls == ResubClass::kISK) {
      k_cand = &c;
      break;
    }
  }
  ASSERT_NE(k_cand, nullptr);

  const std::string before = write_blif(nl);
  SubstJournal journal(&nl);
  const AppliedSub& applied = journal.apply(*k_cand);
  nl.check_consistency();
  EXPECT_NE(applied.new_gate, kNullGate) << "kCell commits insert a gate";
  EXPECT_NE(write_blif(nl), before);

  journal.rollback_last();
  nl.check_consistency();
  EXPECT_EQ(write_blif(nl), before);
}

// --- determinism across thread counts ------------------------------------

TEST(ResubDeterminism, GlobalThreadsOneAndEightBitIdentical) {
  const Netlist input = make_input();
  const auto opts = [] {
    return base_options().funcred(true).max_divisors(3);
  };
  const RunResult serial = run(input, opts().threads(1));
  const RunResult parallel = run(input, opts().threads(8));
  expect_same_outcome(parallel, serial);
  ASSERT_GT(serial.report.substitutions_applied, 0);
}

TEST(ResubDeterminism, WindowedThreadsOneAndEightBitIdentical) {
  const Netlist input = make_input();
  const auto opts = [] {
    return base_options()
        .funcred(true)
        .max_divisors(3)
        .windowed(true)
        .window_size(64)
        .window_overlap(8);
  };
  const RunResult serial = run(input, opts().threads(1));
  const RunResult parallel = run(input, opts().threads(8));
  expect_same_outcome(parallel, serial);

  // Windowed + funcred interaction: the pre-pass runs globally before
  // partitioning and the combined result must still be the input function.
  Netlist nl = input;
  (void)optimize(nl, opts().threads(1).build());
  EXPECT_TRUE(functionally_equivalent(input, nl));
}

// --- WAL round-trip with prepass frames -----------------------------------

TEST(ResubRecovery, PrepassFramesRoundTripThroughWal) {
  const Netlist input = make_planted();
  const RunResult ref = run(input, base_options().funcred(true));
  ASSERT_GT(ref.report.diagnostics.resub.funcred_merges, 0);

  const std::string wal = temp_path("prepass_roundtrip");
  const RunResult chk =
      run(input, base_options().funcred(true).checkpoint_out(wal));
  expect_same_outcome(chk, ref);

  const WalContents contents = read_wal(wal);
  EXPECT_EQ(contents.status, WalReadStatus::kClean);
  EXPECT_TRUE(contents.has_header);
  EXPECT_TRUE(contents.ended);
  EXPECT_EQ(static_cast<long long>(contents.prepass.size()),
            chk.report.diagnostics.resub.funcred_merges);

  // Resuming the complete log replays prepass merges in lockstep and the
  // greedy commits after them; nothing may change.
  const RunResult res =
      run(input, base_options().funcred(true).resume_from(wal));
  expect_same_outcome(res, ref);
  fs::remove(wal);
}

// A crash can land between any two frames; the fsynced prefix must resume
// bit-identically whether it ends mid-prepass or mid-greedy-loop.
TEST(ResubRecovery, ResumeFromEveryPrepassBoundaryIsBitIdentical) {
  const Netlist input = make_planted();
  const RunResult ref = run(input, base_options().funcred(true));

  const std::string wal = temp_path("prepass_boundaries");
  (void)run(input, base_options().funcred(true).checkpoint_out(wal));
  const WalContents full = read_wal(wal);
  ASSERT_GE(full.prepass.size(), 2u);

  const std::string prefix_path = temp_path("prepass_prefix");
  // Prefixes ending inside the prepass region, then inside the commits.
  const std::size_t total = full.prepass.size() + full.commits.size();
  for (std::size_t k = 0; k <= total; ++k) {
    std::string image =
        encode_frame(WalFrameType::kHeader, encode_header(full.header));
    for (std::size_t i = 0; i < k && i < full.prepass.size(); ++i)
      image += encode_frame(WalFrameType::kPrepass,
                            encode_commit(full.prepass[i]));
    for (std::size_t i = full.prepass.size(); i < k; ++i)
      image += encode_frame(
          WalFrameType::kCommit,
          encode_commit(full.commits[i - full.prepass.size()]));
    {
      std::ofstream out(prefix_path, std::ios::binary | std::ios::trunc);
      out << image;
    }
    const RunResult res =
        run(input, base_options().funcred(true).resume_from(prefix_path));
    EXPECT_EQ(res.blif, ref.blif) << "resume after " << k << " frames";
    EXPECT_DOUBLE_EQ(res.report.final_power, ref.report.final_power)
        << "resume after " << k << " frames";
  }
  fs::remove(wal);
  fs::remove(prefix_path);
}

// --- harvest truncation diagnostics ---------------------------------------

TEST(ResubDiagnostics, TruncatedHarvestIsCounted) {
  Netlist nl = make_input("comp");
  Simulator sim(nl, 512);
  PowerEstimator est(&sim);
  CandidateOptions opts;
  opts.max_candidates = 10;  // far below comp's natural harvest
  CandidateFinder finder(nl, est, opts, /*seed=*/1);
  const std::vector<CandidateSub> cands = finder.find();
  EXPECT_EQ(cands.size(), 10u);
  EXPECT_GT(finder.last_truncated(), 0u);

  // And the full-run report surfaces the same signal.
  CandidateOptions run_opts;
  run_opts.max_candidates = 10;
  const Netlist input = make_input("comp");
  const RunResult rr = run(input, base_options().candidates(run_opts));
  EXPECT_GT(rr.report.diagnostics.resub.harvest_truncated, 0);
}

}  // namespace
}  // namespace powder
