// Tests for the netlist data structure: construction, rewiring primitives,
// dead-logic sweeping, MFFC, and the consistency checker.

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}

  CellLibrary lib_;
  Netlist nl_;

  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(NetlistTest, BuildSmallCircuit) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b}, "g");
  const GateId o = nl_.add_output("f", g);
  EXPECT_EQ(nl_.num_inputs(), 2);
  EXPECT_EQ(nl_.num_outputs(), 1);
  EXPECT_EQ(nl_.num_cells(), 1);
  EXPECT_EQ(nl_.fanouts(g).size(), 1u);
  EXPECT_EQ(nl_.fanin(o, 0), g);
  nl_.check_consistency();
}

TEST_F(NetlistTest, SignalCapSumsFanoutPins) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId x = nl_.add_gate(cell("xor2"), {a, b});   // pin cap 2 each
  const GateId g = nl_.add_gate(cell("and2"), {a, x});   // pin cap 1 each
  nl_.add_output("f", g, 1.5);
  // a drives one xor pin (2) + one and pin (1).
  EXPECT_DOUBLE_EQ(nl_.signal_cap(a), 3.0);
  EXPECT_DOUBLE_EQ(nl_.signal_cap(x), 1.0);
  EXPECT_DOUBLE_EQ(nl_.signal_cap(g), 1.5);  // PO load
}

TEST_F(NetlistTest, SetFaninRewiresAndMaintainsFanout) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  nl_.set_fanin(g, 0, c);
  EXPECT_EQ(nl_.fanin(g, 0), c);
  EXPECT_TRUE(nl_.fanouts(a).empty());
  EXPECT_EQ(nl_.fanouts(c).size(), 1u);
  nl_.check_consistency();
}

TEST_F(NetlistTest, SetFaninRejectsCycles) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {g1, b});
  nl_.add_output("f", g2);
  EXPECT_THROW(nl_.set_fanin(g1, 0, g2), CheckError);
}

TEST_F(NetlistTest, ReplaceAllFanouts) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("or2"), {a, b});
  const GateId g3 = nl_.add_gate(cell("nand2"), {g1, b});
  const GateId g4 = nl_.add_gate(cell("nor2"), {g1, g1});
  nl_.add_output("f", g3);
  nl_.add_output("h", g4);
  nl_.replace_all_fanouts(g1, g2);
  EXPECT_TRUE(nl_.fanouts(g1).empty());
  EXPECT_EQ(nl_.fanouts(g2).size(), 3u);
  EXPECT_EQ(nl_.fanin(g3, 0), g2);
  EXPECT_EQ(nl_.fanin(g4, 0), g2);
  EXPECT_EQ(nl_.fanin(g4, 1), g2);
  nl_.check_consistency();
}

TEST_F(NetlistTest, RemoveGateRecursiveSweepsCone) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId c = nl_.add_input("c");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  const GateId g3 = nl_.add_gate(cell("or2"), {g2, c});
  const GateId keep = nl_.add_gate(cell("and2"), {a, c});
  nl_.add_output("f", keep);
  // g3 has no fanout: removing it should cascade through g2, g1 but spare
  // shared inputs and the kept gate.
  const auto removed = nl_.remove_gate_recursive(g3);
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_FALSE(nl_.alive(g1));
  EXPECT_FALSE(nl_.alive(g2));
  EXPECT_FALSE(nl_.alive(g3));
  EXPECT_TRUE(nl_.alive(keep));
  EXPECT_TRUE(nl_.alive(a));
  nl_.check_consistency();
}

TEST_F(NetlistTest, SweepDeadFindsAllDanglers) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId used = nl_.add_gate(cell("and2"), {a, b});
  (void)nl_.add_gate(cell("or2"), {a, b});  // dead
  (void)nl_.add_gate(cell("xor2"), {a, b});  // dead
  nl_.add_output("f", used);
  EXPECT_EQ(nl_.sweep_dead().size(), 2u);
  EXPECT_EQ(nl_.num_cells(), 1);
  nl_.check_consistency();
}

TEST_F(NetlistTest, MffcStopsAtSharedLogic) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId shared = nl_.add_gate(cell("and2"), {a, b});
  const GateId only = nl_.add_gate(cell("inv1"), {shared});
  const GateId top = nl_.add_gate(cell("or2"), {only, shared});
  nl_.add_output("f", top);
  const auto cone = nl_.mffc(top);
  // top and only die with top; shared survives (feeds... nothing else
  // after top dies, actually shared has two fanouts both inside the cone).
  std::vector<GateId> expect{top, only, shared};
  EXPECT_EQ(cone.size(), 3u);
  for (GateId g : expect)
    EXPECT_NE(std::find(cone.begin(), cone.end(), g), cone.end());
}

TEST_F(NetlistTest, MffcExcludesExternallyUsedGates) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId shared = nl_.add_gate(cell("and2"), {a, b});
  const GateId top = nl_.add_gate(cell("inv1"), {shared});
  nl_.add_output("f", top);
  nl_.add_output("g", shared);  // external use of shared
  const auto cone = nl_.mffc(top);
  EXPECT_EQ(cone.size(), 1u);
  EXPECT_EQ(cone[0], top);
}

TEST_F(NetlistTest, TfoAndInTfo) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  const GateId g3 = nl_.add_gate(cell("or2"), {a, b});
  nl_.add_output("f", g2);
  nl_.add_output("h", g3);
  EXPECT_TRUE(nl_.in_tfo(g1, g2));
  EXPECT_FALSE(nl_.in_tfo(g2, g1));
  EXPECT_FALSE(nl_.in_tfo(g1, g3));
  EXPECT_FALSE(nl_.in_tfo(g1, g1));
  const auto t = nl_.tfo(a);
  EXPECT_EQ(t.size(), 5u);  // g1, g2, g3 and two POs
}

TEST_F(NetlistTest, TopoOrderRespectsDependencies) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("and2"), {a, b});
  const GateId g2 = nl_.add_gate(cell("inv1"), {g1});
  nl_.add_output("f", g2);
  const auto order = nl_.topo_order();
  std::vector<std::size_t> pos(nl_.num_slots());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[g1]);
  EXPECT_LT(pos[b], pos[g1]);
  EXPECT_LT(pos[g1], pos[g2]);
}

TEST_F(NetlistTest, TotalAreaTracksLiveGates) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  const GateId dead = nl_.add_gate(cell("xor2"), {a, b});
  nl_.add_output("f", g);
  const double with_dead = nl_.total_area();
  nl_.remove_gate_recursive(dead);
  EXPECT_DOUBLE_EQ(nl_.total_area(),
                   with_dead - lib_.cell_by_name("xor2").area);
}

TEST_F(NetlistTest, GenerationBumpsOnMutation) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const auto g0 = nl_.generation();
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  EXPECT_GT(nl_.generation(), g0);
  const auto g1 = nl_.generation();
  nl_.add_output("f", g);
  EXPECT_GT(nl_.generation(), g1);
}

TEST_F(NetlistTest, ArityMismatchThrows) {
  const GateId a = nl_.add_input("a");
  EXPECT_THROW(nl_.add_gate(cell("and2"), {a}), CheckError);
}

}  // namespace
}  // namespace powder
