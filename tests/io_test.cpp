// Tests for BLIF and PLA I/O: round-trips and error handling.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

TEST(Blif, WriteReadRoundTrip) {
  const CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_comparator(4);
  const Netlist original = map_aig(aig, lib);
  const std::string text = write_blif(original);
  const Netlist parsed = read_blif(text, lib);
  parsed.check_consistency();
  EXPECT_EQ(parsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(parsed.num_outputs(), original.num_outputs());
  EXPECT_EQ(parsed.num_cells(), original.num_cells());
  EXPECT_TRUE(functionally_equivalent(original, parsed));
}

TEST(Blif, RoundTripOnBenchmarks) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"rd84", "misex3", "t481"}) {
    const Netlist original = map_aig(make_benchmark(name), lib);
    const Netlist parsed = read_blif(write_blif(original), lib);
    EXPECT_TRUE(functionally_equivalent(original, parsed)) << name;
  }
}

TEST(Blif, ParsesHandWrittenNetlist) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = read_blif(
      ".model test\n"
      ".inputs a b c\n"
      ".outputs f\n"
      "# gates may appear in any order\n"
      ".gate or2 a=n1 b=c O=f\n"
      ".gate and2 a=a b=b O=n1\n"
      ".end\n",
      lib);
  nl.check_consistency();
  EXPECT_EQ(nl.num_cells(), 2);

  Netlist want(&lib, "want");
  const GateId a = want.add_input("a");
  const GateId b = want.add_input("b");
  const GateId c = want.add_input("c");
  const GateId n1 = want.add_gate(lib.find("and2"), {a, b});
  const GateId f = want.add_gate(lib.find("or2"), {n1, c});
  want.add_output("f", f);
  EXPECT_TRUE(functionally_equivalent(want, nl));
}

TEST(Blif, ConstantsViaNames) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = read_blif(
      ".model c\n.inputs a\n.outputs f g\n"
      ".names one\n1\n"
      ".names zero\n"
      ".gate and2 a=a b=one O=f\n"
      ".gate or2 a=a b=zero O=g\n"
      ".end\n",
      lib);
  nl.check_consistency();
  // f == a, g == a.
  NetlistBdds bdds(nl);
  EXPECT_EQ(bdds.gate_function[nl.outputs()[0]],
            bdds.gate_function[nl.outputs()[1]]);
}

TEST(Blif, ErrorsAreReported) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n"
                         ".gate nosuchcell a=a O=f\n.end\n",
                         lib),
               CheckError);
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n.end\n", lib),
               CheckError);  // undriven output
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n"
                         ".gate and2 a=a b=f O=f\n.end\n",
                         lib),
               CheckError);  // combinational cycle
}

/// Parse `text` expecting failure; returns the diagnostic ("" on success).
std::string blif_error(std::string_view text) {
  const CellLibrary lib = CellLibrary::standard();
  try {
    (void)read_blif(text, lib);
  } catch (const CheckError& e) {
    return e.what();
  }
  return {};
}

bool contains(const std::string& hay, std::string_view needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Blif, ErrorsCarryLineAndToken) {
  {
    // Unknown cell on (physical) line 4.
    const std::string msg = blif_error(
        ".model m\n.inputs a\n.outputs f\n.gate nosuchcell a=a O=f\n.end\n");
    EXPECT_TRUE(contains(msg, "line 4")) << msg;
    EXPECT_TRUE(contains(msg, "nosuchcell")) << msg;
  }
  {
    // Malformed pin binding (no '=') on line 2.
    const std::string msg =
        blif_error(".inputs a\n.gate and2 a=a borked O=f\n.outputs f\n.end\n");
    EXPECT_TRUE(contains(msg, "line 2")) << msg;
    EXPECT_TRUE(contains(msg, "borked")) << msg;
  }
  {
    // Missing output binding, with a continuation line: the diagnostic must
    // name the line the construct started on.
    const std::string msg = blif_error(
        ".model m\n.inputs a b\n.outputs f\n.gate and2 \\\na=a b=b\n.end\n");
    EXPECT_TRUE(contains(msg, "line 4")) << msg;
    EXPECT_TRUE(contains(msg, "no output binding")) << msg;
  }
  {
    // Undriven net is reported at the line that references it.
    const std::string msg = blif_error(
        ".model m\n.inputs a\n.outputs f\n.gate and2 a=a b=ghost O=f\n.end\n");
    EXPECT_TRUE(contains(msg, "line 4")) << msg;
    EXPECT_TRUE(contains(msg, "ghost")) << msg;
  }
  {
    // Unsupported construct.
    const std::string msg = blif_error(".model m\n.subckt sub a=a\n.end\n");
    EXPECT_TRUE(contains(msg, "line 2")) << msg;
    EXPECT_TRUE(contains(msg, ".subckt")) << msg;
  }
  {
    // Malformed .latch: the init state must be 0-3.
    const std::string msg = blif_error(
        ".model m\n.inputs a\n.outputs f\n.latch a q 7\n.names q f\n1 1\n"
        ".end\n");
    EXPECT_TRUE(contains(msg, "line 4")) << msg;
    EXPECT_TRUE(contains(msg, ".latch")) << msg;
  }
}

TEST(Blif, TruncatedInputsFailCleanly) {
  // A file cut off mid-netlist: the referenced-but-missing driver is
  // diagnosed instead of crashing or silently accepting.
  const std::string msg = blif_error(
      ".model trunc\n.inputs a b\n.outputs f\n.gate and2 a=a b=x O=f\n");
  EXPECT_TRUE(contains(msg, "no driver")) << msg;
  // Truncation inside a continuation (trailing backslash at EOF).
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n.gate \\\n",
                         CellLibrary::standard()),
               CheckError);
  // Truncated .names with a dangling cover line is caught by the cover
  // shape check.
  EXPECT_NE(blif_error(".model m\n.outputs f\n.names a b f\n11 1\n"), "");
}

TEST(Blif, GarbageInputsFailCleanly) {
  EXPECT_NE(blif_error("this is not a blif file at all\n"), "");
  EXPECT_NE(blif_error("\x01\x02\x03 binary junk\n"), "");
  EXPECT_NE(blif_error(".gate\n"), "");
  EXPECT_NE(blif_error(".model m\n.outputs f\n.names a f\n0 1\n.end\n"), "");
  // Empty and comment-only files parse to an empty netlist, not a crash.
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(read_blif("", lib).num_outputs(), 0);
  EXPECT_EQ(read_blif("# nothing here\n\n", lib).num_outputs(), 0);
}

TEST(Pla, ParseBasics) {
  const SopNetwork sop = read_pla(
      ".i 3\n.o 2\n.ilb x y z\n.ob f g\n.p 3\n"
      "1-0 10\n"
      "011 11\n"
      "--1 01\n"
      ".e\n");
  EXPECT_EQ(sop.num_inputs(), 3);
  EXPECT_EQ(sop.num_outputs(), 2);
  EXPECT_EQ(sop.input_names[0], "x");
  EXPECT_EQ(sop.outputs[0].num_cubes(), 2);
  EXPECT_EQ(sop.outputs[1].num_cubes(), 2);
}

TEST(Pla, WriteReadRoundTrip) {
  const SopNetwork sop = make_random_pla("p", 8, 4, 20, 5);
  const SopNetwork back = read_pla(write_pla(sop), "p");
  ASSERT_EQ(back.num_outputs(), sop.num_outputs());
  for (int o = 0; o < sop.num_outputs(); ++o)
    EXPECT_TRUE(back.outputs[static_cast<std::size_t>(o)].to_truth_table() ==
                sop.outputs[static_cast<std::size_t>(o)].to_truth_table())
        << o;
}

TEST(Pla, DefaultNamesGenerated) {
  const SopNetwork sop = read_pla(".i 2\n.o 1\n11 1\n.e\n");
  EXPECT_EQ(sop.input_names.size(), 2u);
  EXPECT_EQ(sop.output_names.size(), 1u);
}

TEST(Pla, DontCareOutputsCollected) {
  const SopNetwork sop = read_pla(
      ".i 2\n.o 2\n"
      "11 1-\n"   // minterm 11: ON for f, DC for g
      "10 01\n"
      "01 ~0\n"   // minterm 01: DC for f ('~' form)
      ".e\n");
  ASSERT_TRUE(sop.has_dc());
  EXPECT_EQ(sop.outputs[0].num_cubes(), 1);
  EXPECT_EQ(sop.outputs[1].num_cubes(), 1);
  EXPECT_EQ(sop.dc_sets[0].num_cubes(), 1);
  EXPECT_EQ(sop.dc_sets[1].num_cubes(), 1);
  EXPECT_EQ(sop.dc_sets[0].cubes()[0].to_pla(), "01");
  EXPECT_EQ(sop.dc_sets[1].cubes()[0].to_pla(), "11");
}

TEST(Pla, DcAwareFlowStaysInsideSandwich) {
  // Synthesize with DC: every output must agree with the ON-set where the
  // DC set does not apply.
  const SopNetwork sop = read_pla(
      ".i 3\n.o 1\n"
      "111 1\n"
      "110 1\n"
      "0-- ~\n"  // lower half is don't-care
      ".e\n");
  ASSERT_TRUE(sop.has_dc());
  const Aig aig = synthesize(sop);
  const TruthTable t = aig.output_truth_tables()[0];
  const TruthTable on = sop.outputs[0].to_truth_table();
  const TruthTable dc = sop.dc_sets[0].to_truth_table();
  EXPECT_TRUE((on & ~t).is_constant(false));         // covers ON
  EXPECT_TRUE((t & ~(on | dc)).is_constant(false));  // inside ON|DC
}

TEST(Pla, MalformedThrows) {
  EXPECT_THROW(read_pla("11 1\n"), CheckError);            // cube before .i/.o
  EXPECT_THROW(read_pla(".i 2\n.o 1\n1 1\n"), CheckError);  // wrong width
}

}  // namespace
}  // namespace powder
