// Tests for the full POWDER optimizer: power must go down, functions must
// be preserved (BDD oracle), delay constraints must hold, and the worked
// example of the paper must reproduce.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/powder.hpp"
#include "timing/timing.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

PowderOptions small_options() {
  PowderOptions opt;
  opt.num_patterns = 1024;
  opt.repeat = 10;
  opt.max_outer_iterations = 8;
  opt.check_invariants = true;
  return opt;
}

TEST(Powder, Figure2ExampleReducesPower) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "fig2");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId d = nl.add_gate(lib.find("xor2"), {a, c}, "d");
  const GateId f = nl.add_gate(lib.find("and2"), {d, b}, "f");
  const GateId e = nl.add_gate(lib.find("and2"), {a, b}, "e");
  nl.add_output("fo", f, 0.0);
  nl.add_output("eo", e, 0.0);

  const Netlist before = nl;
  PowderOptimizer optimizer(&nl, small_options());
  const PowderReport report = optimizer.run();
  EXPECT_GT(report.substitutions_applied, 0);
  EXPECT_LT(report.final_power, report.initial_power);
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

TEST(Powder, CollapsesRedundantTwin) {
  // t481-style circuit: two structurally different copies of the same
  // function; POWDER should collapse a large fraction of the area.
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_redundant_twin(8, 123);
  Netlist nl = map_aig(aig, lib);
  const Netlist before = nl;
  PowderOptions opt = small_options();
  opt.repeat = 30;
  PowderOptimizer optimizer(&nl, opt);
  const PowderReport report = optimizer.run();
  EXPECT_GT(report.power_reduction_percent(), 20.0) << "twin not collapsed";
  EXPECT_TRUE(functionally_equivalent(before, nl));
}

TEST(Powder, PreservesFunctionsOnBenchmarks) {
  CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "rd84", "Z5xp1", "misex3"}) {
    const Aig aig = make_benchmark(name);
    Netlist nl = map_aig(aig, lib);
    const Netlist before = nl;
    PowderOptimizer optimizer(&nl, small_options());
    const PowderReport report = optimizer.run();
    EXPECT_LE(report.final_power, report.initial_power + 1e-9) << name;
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
    nl.check_consistency();
  }
}

TEST(Powder, DelayConstraintIsNeverViolated) {
  CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "misex3", "duke2"}) {
    const Aig aig = make_benchmark(name);
    Netlist nl = map_aig(aig, lib);
    PowderOptions opt = small_options();
    opt.delay_limit_factor = 1.0;  // paper's constrained mode
    PowderOptimizer optimizer(&nl, opt);
    const PowderReport report = optimizer.run();
    EXPECT_LE(report.final_delay, report.delay_limit + 1e-6) << name;
    EXPECT_LE(report.final_delay, report.initial_delay + 1e-6) << name;
  }
}

TEST(Powder, ConstrainedModeSavesLessOrEqual) {
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_benchmark("duke2");

  Netlist free_nl = map_aig(aig, lib);
  PowderOptions free_opt = small_options();
  const PowderReport free_report =
      PowderOptimizer(&free_nl, free_opt).run();

  Netlist con_nl = map_aig(aig, lib);
  PowderOptions con_opt = small_options();
  con_opt.delay_limit_factor = 1.0;
  const PowderReport con_report = PowderOptimizer(&con_nl, con_opt).run();

  // Same seed, same candidates: the constrained run can only do the same
  // or fewer substitutions' worth of saving.
  EXPECT_GE(free_report.power_reduction_percent(),
            con_report.power_reduction_percent() - 1.0);
}

TEST(Powder, ReportAccountingIsConsistent) {
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_benchmark("comp");
  Netlist nl = map_aig(aig, lib);
  PowderOptimizer optimizer(&nl, small_options());
  const PowderReport report = optimizer.run();

  int by_class_total = 0;
  double power_delta = 0.0;
  for (const ClassStats& cs : report.by_class) {
    by_class_total += cs.applied;
    power_delta += cs.power_delta;
  }
  EXPECT_EQ(by_class_total, report.substitutions_applied);
  EXPECT_NEAR(power_delta, report.initial_power - report.final_power, 1e-6);
  EXPECT_DOUBLE_EQ(report.final_area, nl.total_area());
}

TEST(Powder, AreaObjectiveShrinksAreaAndPreservesFunction) {
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_redundant_twin(8, 123);
  Netlist nl = map_aig(aig, lib);
  const Netlist before = nl;
  PowderOptions opt = small_options();
  opt.objective = Objective::kArea;
  opt.repeat = 30;
  const PowderReport r = PowderOptimizer(&nl, opt).run();
  EXPECT_LT(r.final_area, r.initial_area);
  EXPECT_TRUE(functionally_equivalent(before, nl));
  nl.check_consistency();
}

TEST(Powder, ObjectivesDiverge) {
  // The area objective must never *increase* area (every accepted move has
  // positive exact area gain); the power objective is allowed to.
  CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "duke2"}) {
    const Aig aig = make_benchmark(name);
    Netlist nl = map_aig(aig, lib);
    PowderOptions opt = small_options();
    opt.objective = Objective::kArea;
    const PowderReport r = PowderOptimizer(&nl, opt).run();
    EXPECT_LE(r.final_area, r.initial_area) << name;
  }
}

TEST(Powder, IdempotentWhenNoGainLeft) {
  CellLibrary lib = CellLibrary::standard();
  const Aig aig = make_benchmark("rd84");
  Netlist nl = map_aig(aig, lib);
  PowderOptimizer first(&nl, small_options());
  (void)first.run();
  const double power_after_first = analyze_timing(nl).circuit_delay;
  PowderOptions opt = small_options();
  opt.seed = 1;  // same seed: same patterns, so no fresh sampled noise
  PowderOptimizer second(&nl, opt);
  const PowderReport r2 = second.run();
  // The second run should find little to nothing.
  EXPECT_LE(r2.power_reduction_percent(), 5.0);
  (void)power_after_first;
}

TEST(Powder, MalformedOptionsAreRejectedUpFront) {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);  // 8 inputs

  auto expect_rejected = [&](PowderOptions opt, const char* why) {
    EXPECT_THROW(PowderOptimizer(&nl, opt), CheckError) << why;
  };

  {
    PowderOptions opt;
    opt.num_patterns = 0;
    expect_rejected(opt, "zero patterns");
    opt.num_patterns = -64;
    expect_rejected(opt, "negative patterns");
  }
  {
    PowderOptions opt;
    opt.pi_probs = {0.5, 0.5};  // netlist has 8 PIs
    expect_rejected(opt, "pi_probs size mismatch");
    opt.pi_probs.assign(8, 0.5);
    opt.pi_probs[3] = 1.5;
    expect_rejected(opt, "probability out of [0,1]");
    opt.pi_probs[3] = -0.1;
    expect_rejected(opt, "negative probability");
  }
  {
    PowderOptions opt;
    opt.shortlist = 0;
    expect_rejected(opt, "empty shortlist");
    opt.shortlist = -3;
    expect_rejected(opt, "negative shortlist");
  }
  {
    PowderOptions opt;
    opt.repeat = 0;
    expect_rejected(opt, "zero repeat");
  }
  {
    PowderOptions opt;
    opt.max_outer_iterations = 0;
    expect_rejected(opt, "zero outer iterations");
  }

  // A full-size, in-range pi_probs vector is fine.
  PowderOptions opt;
  opt.pi_probs.assign(8, 0.25);
  opt.num_patterns = 256;
  EXPECT_NO_THROW(PowderOptimizer(&nl, opt));
}

}  // namespace
}  // namespace powder
