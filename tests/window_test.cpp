// Windowed-mode tests (DESIGN.md §11): partitioner coverage and
// determinism, extraction boundary pinning, windowed-vs-global functional
// parity, bit-identity across thread counts and merge orders, boundary
// conflict detection with serial re-runs, the windowed WAL resume
// round-trip, the scale-netlist generator, and the shared library
// ownership regression (a helper-built netlist must keep its CellLibrary
// alive).

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"
#include "power/power.hpp"
#include "session/wal.hpp"
#include "sim/simulator.hpp"
#include "window/extract.hpp"
#include "window/partition.hpp"

namespace powder {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* stem) {
  return (fs::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".wal"))
      .string();
}

Netlist make_input(const char* bench = "duke2") {
  const auto lib = CellLibrary::standard_shared();
  Netlist nl = map_aig(make_benchmark(bench), *lib);
  nl.adopt_library(lib);
  return nl;
}

PowderOptions::Builder windowed_options(int size = 40, int overlap = 8) {
  return PowderOptions::builder()
      .patterns(1024)
      .repeat(10)
      .max_outer_iterations(3)
      .seed(7)
      .windowed(true)
      .window_size(size)
      .window_overlap(overlap);
}

struct RunResult {
  std::string blif;
  PowderReport report;
};

RunResult run(const Netlist& input, PowderOptions::Builder builder) {
  Netlist nl = input;
  RunResult rr;
  rr.report = optimize(nl, builder.build());
  rr.blif = write_blif(nl);
  return rr;
}

TEST(WindowPartition, CoversEveryLiveCellExactlyWithOverlap) {
  const Netlist nl = make_input();
  WindowOptions opt;
  opt.max_gates = 50;
  opt.overlap = 10;
  const auto windows = partition_windows(nl, opt);
  ASSERT_FALSE(windows.empty());

  std::set<GateId> covered;
  for (const auto& w : windows) {
    EXPECT_LE(static_cast<int>(w.size()), opt.max_gates);
    for (const GateId g : w) {
      EXPECT_TRUE(nl.alive(g));
      EXPECT_EQ(nl.kind(g), GateKind::kCell);
      covered.insert(g);
    }
  }
  int live_cells = 0;
  for (const GateId g : nl.topo_order())
    if (nl.kind(g) == GateKind::kCell) ++live_cells;
  EXPECT_EQ(static_cast<int>(covered.size()), live_cells);

  // Neighbouring windows share exactly `overlap` gates (stride property).
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    const std::set<GateId> a(windows[i].begin(), windows[i].end());
    int shared = 0;
    for (const GateId g : windows[i + 1]) shared += a.count(g) ? 1 : 0;
    EXPECT_EQ(shared, opt.overlap);
  }

  // Pure function of (structure, options).
  EXPECT_EQ(windows, partition_windows(nl, opt));
}

TEST(WindowPartition, MergeOrderAndSeedsAreDeterministic) {
  const auto natural = window_merge_order(8, 0);
  for (std::size_t i = 0; i < natural.size(); ++i) EXPECT_EQ(natural[i], i);

  const auto shuffled = window_merge_order(8, 42);
  EXPECT_EQ(shuffled, window_merge_order(8, 42));
  std::set<std::size_t> seen(shuffled.begin(), shuffled.end());
  EXPECT_EQ(seen.size(), 8u);

  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 100; ++id)
    seeds.insert(window_seed(7, id));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(WindowExtract, PinsBoundarySignalsAsLocalOutputs) {
  const Netlist nl = make_input();
  Simulator sim(nl, 256, {}, 7);
  PowerEstimator est(&sim);
  WindowOptions opt;
  opt.max_gates = 50;
  opt.overlap = 0;
  const auto windows = partition_windows(nl, opt);
  ASSERT_FALSE(windows.empty());

  const WindowExtraction ex = extract_window(nl, est, windows[0], 0);
  ex.local.check_consistency();
  EXPECT_EQ(static_cast<int>(ex.gates.size()), ex.local.num_cells());
  // Any window cut out of a connected netlist exports at least one signal.
  EXPECT_GE(ex.pinned_outputs, 1);
  EXPECT_EQ(ex.local.num_outputs(), ex.pinned_outputs);
  EXPECT_EQ(ex.input_probs.size(),
            static_cast<std::size_t>(ex.local.num_inputs()));
  EXPECT_EQ(ex.to_parent.size(),
            static_cast<std::size_t>(ex.local.num_slots()));
  EXPECT_TRUE(std::is_sorted(ex.support.begin(), ex.support.end()));
  // The local netlist shares the parent's library ownership.
  EXPECT_EQ(ex.local.library_owner().get(), nl.library_owner().get());
}

TEST(WindowedOptimize, PreservesFunctionAndCommits) {
  const Netlist input = make_input();
  const RunResult rr = run(input, windowed_options());
  EXPECT_GT(rr.report.substitutions_applied, 0);
  EXPECT_LT(rr.report.final_power, rr.report.initial_power);
  EXPECT_FALSE(rr.report.diagnostics.guard_failed);
  EXPECT_GT(rr.report.diagnostics.windowing.windows_built, 0);
  EXPECT_EQ(rr.report.diagnostics.windowing.window_commits,
            rr.report.substitutions_applied);

  Netlist optimized = input;
  (void)optimize(optimized, windowed_options().build());
  EXPECT_TRUE(functionally_equivalent(input, optimized));
}

TEST(WindowedOptimize, BitIdenticalAcrossThreadCounts) {
  const Netlist input = make_input();
  const RunResult serial = run(input, windowed_options());
  const RunResult threaded = run(input, windowed_options().threads(8));
  EXPECT_EQ(serial.blif, threaded.blif);
  EXPECT_DOUBLE_EQ(serial.report.final_power, threaded.report.final_power);
  EXPECT_EQ(serial.report.substitutions_applied,
            threaded.report.substitutions_applied);

  // The same holds under a shuffled merge order.
  const RunResult s1 = run(input, windowed_options().window_order_seed(99));
  const RunResult s8 =
      run(input, windowed_options().window_order_seed(99).threads(8));
  EXPECT_EQ(s1.blif, s8.blif);
}

TEST(WindowedOptimize, DetectsBoundaryConflictsAndReruns) {
  // Small windows with heavy overlap force commits whose support spans
  // neighbouring windows: the merge layer must skip and re-run, and the
  // result must stay functionally intact.
  const Netlist input = make_input();
  Netlist nl = input;
  const PowderReport r = optimize(nl, windowed_options(40, 30).build());
  EXPECT_GT(r.diagnostics.windowing.boundary_conflicts, 0);
  EXPECT_GT(r.diagnostics.windowing.window_reruns, 0);
  EXPECT_GT(r.substitutions_applied, 0);
  EXPECT_FALSE(r.diagnostics.guard_failed);
  EXPECT_TRUE(functionally_equivalent(input, nl));
}

TEST(WindowedOptimize, CheckpointResumeRoundTrip) {
  const Netlist input = make_input();
  const std::string wal = temp_path("window_resume");

  const RunResult recorded =
      run(input, windowed_options().checkpoint_out(wal));
  ASSERT_GT(recorded.report.substitutions_applied, 0);

  // The WAL frames carry real window ids (version 2 format).
  const WalContents contents = read_wal(wal);
  EXPECT_EQ(contents.status, WalReadStatus::kClean);
  ASSERT_FALSE(contents.commits.empty());
  for (const WalCommit& c : contents.commits)
    EXPECT_NE(c.window, kGlobalWindow);

  const RunResult resumed = run(input, windowed_options().resume_from(wal));
  EXPECT_EQ(resumed.blif, recorded.blif);
  EXPECT_EQ(resumed.report.diagnostics.resume_replayed,
            static_cast<long>(contents.commits.size()));
  fs::remove(wal);
}

TEST(ScaleNetlist, DeterministicAndSound) {
  const Netlist a = make_scale_netlist(1000);
  a.check_consistency();
  EXPECT_EQ(a.num_cells(), 1000);
  EXPECT_GT(a.num_inputs(), 0);
  EXPECT_EQ(a.num_outputs(), 2 * (1000 / 10));
  const Netlist b = make_scale_netlist(1000);
  EXPECT_EQ(write_blif(a), write_blif(b));
  // The planted per-tile redundancy is harvestable: a short windowed run
  // must find commits.
  Netlist nl = a;
  const PowderReport r =
      optimize(nl, windowed_options(100, 10).patterns(256).repeat(2).build());
  EXPECT_GT(r.substitutions_applied, 0);
  EXPECT_FALSE(r.diagnostics.guard_failed);
}

TEST(LibraryOwnership, HelperBuiltNetlistKeepsLibraryAlive) {
  // Regression for the dangling-CellLibrary footgun: the library handle
  // created inside the helper dies with the helper's scope; the netlist
  // (and copies of it) must keep the cells reachable on their own.
  std::optional<Netlist> nl;
  {
    const auto lib = CellLibrary::standard_shared();
    Netlist built = map_aig(make_benchmark("comp"), *lib);
    built.adopt_library(lib);
    nl = std::move(built);
  }
  ASSERT_NE(nl->library_owner(), nullptr);
  EXPECT_GT(nl->total_area(), 0.0);

  Netlist copy = *nl;  // ownership travels with copies
  nl.reset();
  ASSERT_NE(copy.library_owner(), nullptr);
  const PowderReport r = optimize(
      copy,
      PowderOptions::builder().patterns(256).repeat(2).max_outer_iterations(1)
          .build());
  EXPECT_FALSE(r.diagnostics.guard_failed);
}

}  // namespace
}  // namespace powder
