// Tests for gate re-sizing: function preservation (trivially, cells are
// identical functions), power reduction, and timing behaviour.

#include <gtest/gtest.h>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/resize.hpp"
#include "util/check.hpp"
#include "timing/timing.hpp"

namespace powder {
namespace {

class ResizeTest : public ::testing::Test {
 protected:
  ResizeTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(ResizeTest, SetCellSwapsVariants) {
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("nand2x2"), {a, b});
  nl_.add_output("f", g);
  nl_.set_cell(g, cell("nand2"));
  EXPECT_EQ(nl_.cell_of(g).name, "nand2");
  nl_.check_consistency();
  // Swapping to a different function is rejected.
  EXPECT_THROW(nl_.set_cell(g, cell("nor2")), CheckError);
}

TEST_F(ResizeTest, DownsizesOversizedGates) {
  // An x2 gate with no timing pressure should be downsized to x1.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("nand2x2"), {a, b});
  nl_.add_output("f", g);
  ResizeOptions opt;
  opt.delay_limit_factor = 2.0;  // plenty of slack
  const ResizeReport r = resize_gates(&nl_, opt);
  EXPECT_EQ(r.downsized, 1);
  EXPECT_EQ(nl_.cell_of(g).name, "nand2");
  EXPECT_LT(r.final_power, r.initial_power);
  EXPECT_LT(r.final_area, r.initial_area);
}

TEST_F(ResizeTest, RespectsTightTiming) {
  // Chain where the x2 driver carries heavy load: with a tight limit the
  // downsizing that would slow the circuit must be skipped.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g1 = nl_.add_gate(cell("nand2x2"), {a, b});
  // Heavy load on g1.
  for (int i = 0; i < 6; ++i)
    nl_.add_output("o" + std::to_string(i),
                   nl_.add_gate(cell("inv1"), {g1}));
  ResizeOptions opt;
  opt.delay_limit_factor = 1.0;  // current delay is the limit
  const ResizeReport r = resize_gates(&nl_, opt);
  EXPECT_LE(r.final_delay, r.initial_delay + 1e-9);
  // nand2->nand2x2 has lower R; downsizing g1 would raise delay, so it
  // must still be the x2 variant.
  EXPECT_EQ(nl_.cell_of(g1).name, "nand2x2");
}

TEST_F(ResizeTest, FunctionPreservedOnBenchmarks) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "misex3"}) {
    Netlist nl = map_aig(make_benchmark(name), lib);
    const Netlist before = nl;
    ResizeOptions opt;
    opt.delay_limit_factor = 1.1;
    const ResizeReport r = resize_gates(&nl, opt);
    EXPECT_TRUE(functionally_equivalent(before, nl)) << name;
    EXPECT_LE(r.final_power, r.initial_power + 1e-9) << name;
    EXPECT_LE(r.final_delay, r.initial_delay * 1.1 + 1e-9) << name;
    nl.check_consistency();
  }
}

TEST_F(ResizeTest, UpsizingRecoversTiming) {
  // Build a circuit whose delay violates the requested limit relative to
  // an artificially tightened constraint — upsizing should help.
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl = map_aig(make_benchmark("rd84"), lib);
  const double entry_delay = analyze_timing(nl).circuit_delay;
  ResizeOptions opt;
  opt.delay_limit_factor = 0.97;  // ask for 3% faster than entry
  const ResizeReport r = resize_gates(&nl, opt);
  // Either the limit is met or at least the delay did not get worse.
  EXPECT_LE(r.final_delay, entry_delay + 1e-9);
  (void)r;
}

}  // namespace
}  // namespace powder
