// Tests for glitch-aware (event-driven timed) power estimation.

#include <gtest/gtest.h>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "power/glitch.hpp"
#include "power/power.hpp"

namespace powder {
namespace {

class GlitchTest : public ::testing::Test {
 protected:
  GlitchTest() : lib_(CellLibrary::standard()), nl_(&lib_, "t") {}
  CellLibrary lib_;
  Netlist nl_;
  CellId cell(const char* name) { return lib_.find(name); }
};

TEST_F(GlitchTest, SingleGateHasNoGlitches) {
  // One gate cannot glitch: timed count == zero-delay count.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("and2"), {a, b});
  nl_.add_output("f", g);
  GlitchOptions opt;
  opt.num_vector_pairs = 512;
  const GlitchEstimate e = estimate_glitch_power(nl_, opt);
  EXPECT_NEAR(e.timed_power, e.zero_delay_power, 1e-9);
  EXPECT_NEAR(e.glitch_share(), 0.0, 1e-9);
}

TEST_F(GlitchTest, UnbalancedPathsGlitch) {
  // Classic glitch generator: f = a ^ a' through different path lengths.
  // Build f = xor(a, inv(inv(inv(a)))): statically f == constant 0... use
  // a xor chain with skewed arrival instead: x = a^b, y = x^b (== a) with
  // y arriving late, g = y ^ a (== 0 statically but glitches whenever the
  // skewed paths race).
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId x = nl_.add_gate(cell("xor2"), {a, b});
  const GateId y = nl_.add_gate(cell("xor2"), {x, b});  // == a, delayed
  const GateId g = nl_.add_gate(cell("xor2"), {y, a});  // == 0, glitchy
  nl_.add_output("f", g);
  GlitchOptions opt;
  opt.num_vector_pairs = 512;
  const GlitchEstimate e = estimate_glitch_power(nl_, opt);
  // Zero-delay: g never toggles. Timed: it pulses whenever a changes.
  EXPECT_GT(e.timed_power, e.zero_delay_power);
  EXPECT_GT(e.glitch_share(), 0.05);
}

TEST_F(GlitchTest, ZeroDelayCountMatchesPairToggleSemantics) {
  // The zero-delay component of the glitch estimator must agree with the
  // analytic 2p(1-p) activity within sampling tolerance.
  const GateId a = nl_.add_input("a");
  const GateId b = nl_.add_input("b");
  const GateId g = nl_.add_gate(cell("nand2"), {a, b});
  nl_.add_output("f", g, 2.0);
  GlitchOptions opt;
  opt.num_vector_pairs = 4096;
  const GlitchEstimate e = estimate_glitch_power(nl_, opt);
  // p(nand)=3/4 -> E = 2*(3/4)*(1/4) = 0.375; C(g)=2, C(a)=C(b)=1 each
  // with E=0.5.
  const double expected = 2.0 * 0.375 + 1.0 * 0.5 + 1.0 * 0.5;
  EXPECT_NEAR(e.zero_delay_power, expected, 0.08);
}

TEST_F(GlitchTest, TimedNeverBelowZeroDelay) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"comp", "rd84", "misex3"}) {
    const Netlist nl = map_aig(make_benchmark(name), lib);
    GlitchOptions opt;
    opt.num_vector_pairs = 128;
    const GlitchEstimate e = estimate_glitch_power(nl, opt);
    EXPECT_GE(e.timed_power, e.zero_delay_power - 1e-9) << name;
    EXPECT_GE(e.glitch_share(), 0.0) << name;
    EXPECT_LT(e.glitch_share(), 0.9) << name;
  }
}

TEST_F(GlitchTest, DeterministicForFixedSeed) {
  const CellLibrary lib = CellLibrary::standard();
  const Netlist nl = map_aig(make_benchmark("rd84"), lib);
  GlitchOptions opt;
  opt.num_vector_pairs = 64;
  const GlitchEstimate e1 = estimate_glitch_power(nl, opt);
  const GlitchEstimate e2 = estimate_glitch_power(nl, opt);
  EXPECT_DOUBLE_EQ(e1.timed_power, e2.timed_power);
  EXPECT_DOUBLE_EQ(e1.zero_delay_power, e2.zero_delay_power);
}

}  // namespace
}  // namespace powder
