// Sequential-circuit support (DESIGN.md §13): `.latch` round-trips through
// the BLIF front end, reset-state probability estimation is deterministic,
// and optimization across latch boundaries is sound and thread-count
// independent (latch outputs are pseudo-PIs, latch inputs are pseudo-POs,
// so every combinational engine — simulation, proofs, the PO-signature
// guard — treats the boundary as frozen).
//
// The round-trip golden under tests/golden/ pins the exact `.latch`-bearing
// BLIF the writer emits (rerun with POWDER_REGEN_GOLDEN=1 to re-record).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/netlist_bdd.hpp"
#include "benchgen/benchmarks.hpp"
#include "io/blif.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"
#include "power/power.hpp"

namespace powder {
namespace {

#ifndef POWDER_GOLDEN_DIR
#define POWDER_GOLDEN_DIR "tests/golden"
#endif

const CellLibrary& lib() {
  static const CellLibrary* kLib = new CellLibrary(CellLibrary::standard());
  return *kLib;
}

bool regen() { return std::getenv("POWDER_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& file) {
  return std::string(POWDER_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// A small hand-built sequential circuit: a 2-bit feedback structure with
/// one resettable and one uninitialized latch, plus combinational logic
/// reading both latch outputs.
const char* kSmallSeq =
    ".model seq_small\n"
    ".inputs a b\n"
    ".outputs f\n"
    ".gate nand2 a=a b=q0 O=n1\n"
    ".gate nand2 a=n1 b=b O=d0\n"
    ".gate xor2 a=q0 b=q1 O=d1\n"
    ".gate nand2 a=q1 b=n1 O=f\n"
    ".latch d0 q0 0\n"
    ".latch d1 q1\n"
    ".end\n";

/// A sequential benchmark with real optimization opportunities: the mapped
/// combinational circuit with its first output fed back into its first
/// input through a latch. No gates change; the PI/PO gates become the
/// latch's pseudo boundary.
Netlist sequential_benchmark(const std::string& name) {
  Netlist nl = map_aig(make_benchmark(name), lib());
  nl.add_latch(nl.outputs().front(), nl.inputs().front(), /*init=*/0);
  return nl;
}

std::vector<double> pi_profile(int n) {
  std::vector<double> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = 0.2 + 0.6 * ((i * 7919) % 101) / 100.0;
  return p;
}

PowderOptions seq_options(const Netlist& nl, int threads,
                          PowerModelKind model = PowerModelKind::kZeroDelay) {
  return PowderOptions::builder()
      .patterns(512)
      .repeat(8)
      .max_outer_iterations(4)
      .seed(42)
      .threads(threads)
      .delay_limit_factor(1.15)
      .pi_probs(pi_profile(nl.num_inputs() - nl.num_latches()))
      .power_model(model)
      .glitch_vector_pairs(64)
      .build();
}

TEST(SequentialBlif, LatchMetadataSurvivesParsing) {
  const Netlist nl = read_blif(kSmallSeq, lib());
  ASSERT_EQ(nl.num_latches(), 2);
  // Both latch outputs are pseudo-PIs, both latch inputs pseudo-POs.
  for (const Latch& l : nl.latches()) {
    EXPECT_EQ(nl.kind(l.output), GateKind::kInput);
    EXPECT_EQ(nl.kind(l.input), GateKind::kOutput);
    EXPECT_TRUE(nl.is_latch_output(l.output));
    EXPECT_TRUE(nl.is_latch_input(l.input));
  }
  EXPECT_EQ(nl.latches()[0].init, 0);
  EXPECT_EQ(nl.latches()[1].init, 3);  // missing init defaults to unknown
  // The pseudo pins count toward the interface totals.
  EXPECT_EQ(nl.num_inputs(), 4);
  EXPECT_EQ(nl.num_outputs(), 3);
}

TEST(SequentialBlif, LatchTypeAndControlAreAccepted) {
  const Netlist nl = read_blif(
      ".model m\n.inputs a clk\n.outputs f\n"
      ".latch a q re clk 1\n.gate inv1 a=q O=f\n.end\n",
      lib());
  ASSERT_EQ(nl.num_latches(), 1);
  EXPECT_EQ(nl.latches()[0].init, 1);
}

TEST(SequentialBlif, WriteReadWriteIsAFixpoint) {
  const Netlist first = read_blif(kSmallSeq, lib());
  const std::string text1 = write_blif(first);
  const Netlist second = read_blif(text1, lib());
  ASSERT_EQ(second.num_latches(), first.num_latches());
  for (int i = 0; i < first.num_latches(); ++i)
    EXPECT_EQ(second.latches()[static_cast<std::size_t>(i)].init,
              first.latches()[static_cast<std::size_t>(i)].init);
  EXPECT_EQ(write_blif(second), text1);
}

TEST(SequentialBlif, RoundTripMatchesGolden) {
  const Netlist nl = read_blif(kSmallSeq, lib());
  const std::string got = write_blif(nl);
  if (regen()) {
    std::ofstream os(golden_path("seq_small.blif"), std::ios::binary);
    ASSERT_TRUE(os.good());
    os << got;
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string want = read_file(golden_path("seq_small.blif"));
  ASSERT_FALSE(want.empty()) << "missing golden seq_small.blif "
                                "(run with POWDER_REGEN_GOLDEN=1)";
  EXPECT_EQ(got, want);
}

TEST(SequentialBlif, CompactedNetlistKeepsLatches) {
  Netlist nl = read_blif(kSmallSeq, lib());
  const Netlist out = nl.compacted();
  ASSERT_EQ(out.num_latches(), 2);
  out.check_consistency();
  EXPECT_EQ(write_blif(out), write_blif(nl));
}

TEST(SequentialProbs, ResetStateFixedPointIsDeterministic) {
  const Netlist nl = read_blif(kSmallSeq, lib());
  const std::vector<double> primary = {0.3, 0.7};
  const std::vector<double> p1 = sequential_signal_probs(nl, primary);
  const std::vector<double> p2 = sequential_signal_probs(nl, primary);
  EXPECT_EQ(p1, p2);  // bitwise: the fixed point has no hidden state
  for (const Latch& l : nl.latches()) {
    EXPECT_GE(p1[l.output], 0.0);
    EXPECT_LE(p1[l.output], 1.0);
    // The fixed point converged: the latch output's probability equals its
    // next-state driver's.
    EXPECT_NEAR(p1[l.output], p1[l.input], 1e-6);
  }
}

TEST(SequentialProbs, InitStateSeedsAbsorbingLatch) {
  // q holds itself (d = q): whatever init says is the steady state.
  const char* hold =
      ".model hold\n.inputs a\n.outputs f\n"
      ".gate inv1 a=q O=nq\n.gate inv1 a=nq O=d\n"
      ".gate nand2 a=a b=q O=f\n.latch d q 1\n.end\n";
  const Netlist nl = read_blif(hold, lib());
  const std::vector<double> p = sequential_signal_probs(nl, {0.5});
  ASSERT_EQ(nl.num_latches(), 1);
  EXPECT_NEAR(p[nl.latches()[0].output], 1.0, 1e-9);
}

TEST(SequentialProbs, ExpandPassesCombinationalThrough) {
  const Netlist nl = map_aig(make_benchmark("rd84"), lib());
  const std::vector<double> user = pi_profile(nl.num_inputs());
  EXPECT_EQ(expand_pi_probs(nl, user), user);
  EXPECT_TRUE(expand_pi_probs(nl, {}).empty());
}

TEST(SequentialProbs, ExpandSplicesLatchProbabilities) {
  const Netlist nl = read_blif(kSmallSeq, lib());
  const std::vector<double> user = {0.3, 0.7};
  const std::vector<double> full = expand_pi_probs(nl, user);
  ASSERT_EQ(static_cast<int>(full.size()), nl.num_inputs());
  // Primary inputs keep the user's values, in input order.
  const std::vector<GateId> inputs(nl.inputs().begin(), nl.inputs().end());
  std::size_t next_primary = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (nl.is_latch_output(inputs[i])) continue;
    EXPECT_EQ(full[i], user[next_primary++]);
  }
  EXPECT_EQ(next_primary, user.size());
}

TEST(SequentialOptimize, LatchBoundarySubstitutionsAreSound) {
  Netlist nl = sequential_benchmark("rd84");
  const Netlist original = nl;
  const PowderReport rep = optimize(nl, seq_options(nl, /*threads=*/1));
  EXPECT_FALSE(rep.diagnostics.guard_failed);
  EXPECT_GT(rep.substitutions_applied, 0)
      << "the sequential wrapper killed all optimization opportunities";
  // Soundness across the latch boundary: with latch pins treated as frozen
  // PI/PO, the optimized circuit must stay combinationally equivalent —
  // which implies cycle-by-cycle equivalence of the sequential machine.
  EXPECT_TRUE(functionally_equivalent(original, nl));
  // The latch metadata survives and the result is a valid sequential BLIF.
  ASSERT_EQ(nl.num_latches(), 1);
  const std::string text = write_blif(nl);
  EXPECT_NE(text.find(".latch"), std::string::npos);
  const Netlist reread = read_blif(text, lib());
  EXPECT_EQ(reread.num_latches(), 1);
  // Positional equivalence and byte identity do not apply across the
  // round trip (the reader appends latch pseudo-PIs after the primary
  // inputs and renumbers gates around the feedback edge), but the text
  // must describe the same circuit line-for-line, and one round trip
  // reaches the writer's fixpoint.
  const std::string text2 = write_blif(reread);
  auto sorted_lines = [](const std::string& s) {
    std::vector<std::string> lines;
    std::istringstream is(s);
    for (std::string l; std::getline(is, l);) lines.push_back(l);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(text2), sorted_lines(text));
  EXPECT_EQ(write_blif(read_blif(text2, lib())), text2);
}

TEST(SequentialOptimize, SerialAndThreadedRunsAreBitIdentical) {
  Netlist serial = sequential_benchmark("rd84");
  Netlist threaded = sequential_benchmark("rd84");
  (void)optimize(serial, seq_options(serial, /*threads=*/1));
  (void)optimize(threaded, seq_options(threaded, /*threads=*/8));
  EXPECT_EQ(write_blif(serial), write_blif(threaded));
}

TEST(SequentialOptimize, TimedModelHandlesLatches) {
  Netlist nl = sequential_benchmark("rd84");
  const Netlist original = nl;
  const PowderReport rep = optimize(
      nl, seq_options(nl, /*threads=*/1, PowerModelKind::kTimed));
  EXPECT_FALSE(rep.diagnostics.guard_failed);
  EXPECT_EQ(rep.diagnostics.power_model.kind, "timed");
  EXPECT_GE(rep.diagnostics.power_model.timed_resims, 1L);
  EXPECT_TRUE(functionally_equivalent(original, nl));
}

}  // namespace
}  // namespace powder
