// Unit tests for the cache-compact data plane primitives (DESIGN.md §7):
// NameTable interning, PinArena slab lifecycle, SmallVec spill behavior,
// and the zero-allocation NetlistDelta contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/name_table.hpp"
#include "netlist/netlist.hpp"
#include "netlist/pin_arena.hpp"
#include "util/small_vec.hpp"

namespace powder {
namespace {

// ---------------------------------------------------------------- NameTable

TEST(NameTableTest, RoundTripAndDedup) {
  NameTable t;
  const NameId a = t.intern("alpha");
  const NameId b = t.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("alpha"), a);  // dedup: same spelling, same id
  EXPECT_EQ(t.view(a), "alpha");
  EXPECT_EQ(t.view(b), "beta");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find("alpha"), a);
  EXPECT_EQ(t.find("gamma"), kNullName);
  EXPECT_TRUE(t.contains("beta"));
  EXPECT_FALSE(t.contains(""));
  // Views are null-terminated for printf-style consumers.
  EXPECT_EQ(t.view(a).data()[t.view(a).size()], '\0');
}

TEST(NameTableTest, NearCollisionSpellingsStayDistinct) {
  // Names that differ only in one byte, share prefixes, or are prefixes of
  // each other must intern to distinct ids and survive round-trips.
  NameTable t;
  const std::vector<std::string> spellings = {
      "g",    "g1",   "g10",  "g100", "g1000", "n_0", "n_00",
      "n_0 ", " n_0", "N_0",  "n-0",  "n.0",   "",    "0"};
  std::vector<NameId> ids;
  for (const std::string& s : spellings) ids.push_back(t.intern(s));
  for (std::size_t i = 0; i < spellings.size(); ++i) {
    EXPECT_EQ(t.view(ids[i]), spellings[i]);
    EXPECT_EQ(t.find(spellings[i]), ids[i]);
    for (std::size_t j = i + 1; j < spellings.size(); ++j)
      EXPECT_NE(ids[i], ids[j]);
  }
}

TEST(NameTableTest, ManyNamesSpanChunksWithStableViews) {
  NameTable t;
  std::vector<NameId> ids;
  std::vector<std::string> names;
  for (int i = 0; i < 20000; ++i) {  // ~200KB of text: crosses chunks
    names.push_back("gate_with_a_reasonably_long_name_" + std::to_string(i));
    ids.push_back(t.intern(names.back()));
  }
  // An oversized name gets a dedicated chunk without disturbing the rest.
  const std::string huge(100 * 1024, 'x');
  const NameId huge_id = t.intern(huge);
  for (int i = 0; i < 20000; ++i)
    ASSERT_EQ(t.view(ids[static_cast<std::size_t>(i)]),
              names[static_cast<std::size_t>(i)]);
  EXPECT_EQ(t.view(huge_id), huge);
  EXPECT_GT(t.pool_bytes(), names.size());
}

TEST(NameTableTest, CopyPreservesIds) {
  NameTable t;
  const NameId a = t.intern("pi_0");
  const NameId b = t.intern("u42");
  NameTable copy(t);
  EXPECT_EQ(copy.view(a), "pi_0");
  EXPECT_EQ(copy.view(b), "u42");
  EXPECT_EQ(copy.find("u42"), b);
  // The copy is independent: new interns don't leak back.
  const NameId c = copy.intern("only_in_copy");
  EXPECT_EQ(t.find("only_in_copy"), kNullName);
  EXPECT_EQ(copy.view(c), "only_in_copy");
}

// ----------------------------------------------------------------- PinArena

TEST(PinArenaTest, PushViewErasePreservesOrder) {
  PinArena<int> arena;
  PinArena<int>::Ref ref;
  for (int i = 0; i < 10; ++i) arena.push_back(ref, i * 11);
  ASSERT_EQ(ref.size, 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(arena.at(ref, i), i * 11);
  arena.erase_at(ref, 3);  // order-preserving: tail shifts down
  const std::vector<int> want = {0, 11, 22, 44, 55, 66, 77, 88, 99};
  const auto got = arena.view(ref);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(PinArenaTest, FreelistRecyclesReleasedSlabs) {
  PinArena<int> arena;
  PinArena<int>::Ref a;
  arena.assign(a, nullptr, 0);
  for (int i = 0; i < 8; ++i) arena.push_back(a, i);  // lands in class 4
  const std::uint64_t allocated_before = arena.slabs_allocated();
  arena.release(a);
  EXPECT_EQ(a.size, 0u);
  EXPECT_EQ(a.cls, 0u);
  // A new 8-pin list must reuse the released slab, not grow the pool.
  PinArena<int>::Ref b;
  const int pins[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  arena.assign(b, pins, 8);
  EXPECT_EQ(arena.slabs_allocated(), allocated_before);
  EXPECT_GE(arena.slabs_recycled(), 1u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(arena.at(b, i), pins[i]);
}

TEST(PinArenaTest, GrowMovesContentsAndRecyclesOldSlab) {
  PinArena<int> arena;
  PinArena<int>::Ref a;
  for (int i = 0; i < 4; ++i) arena.push_back(a, i);
  const std::uint8_t cls_before = a.cls;
  arena.push_back(a, 4);  // forces a class upgrade
  EXPECT_GT(a.cls, cls_before);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(arena.at(a, i), i);
  // The vacated small slab must now serve a fresh list of that class.
  const std::uint64_t recycled_before = arena.slabs_recycled();
  PinArena<int>::Ref b;
  for (int i = 0; i < 4; ++i) arena.push_back(b, 100 + i);
  EXPECT_GT(arena.slabs_recycled(), recycled_before);
}

// ------------------------------------------------------------------ SmallVec

TEST(SmallVecTest, InlineUntilSpill) {
  const std::uint64_t spills_before =
      detail::small_vec_heap_allocations().load();
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(detail::small_vec_heap_allocations().load(), spills_before);
  v.push_back(4);  // first element past N spills to the heap
  EXPECT_GT(detail::small_vec_heap_allocations().load(), spills_before);
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVecTest, CopyMoveEquality) {
  SmallVec<int, 4> a;
  for (int i = 0; i < 3; ++i) a.push_back(i);
  SmallVec<int, 4> b(a);
  EXPECT_TRUE(a == b);
  b.push_back(99);
  EXPECT_FALSE(a == b);
  SmallVec<int, 4> c(std::move(b));
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[3], 99);
  // Spilled vectors move by pointer steal.
  SmallVec<int, 2> big;
  for (int i = 0; i < 10; ++i) big.push_back(i);
  const std::uint64_t spills_before =
      detail::small_vec_heap_allocations().load();
  SmallVec<int, 2> stolen(std::move(big));
  EXPECT_EQ(detail::small_vec_heap_allocations().load(), spills_before);
  ASSERT_EQ(stolen.size(), 10u);
  EXPECT_EQ(stolen[9], 9);
}

// ------------------------------------------- tombstone/revive slab reuse

TEST(PinArenaTest, NetlistTombstoneReviveRecyclesSlabs) {
  // Removing a gate returns its fanin/fanout slabs to the arena freelists;
  // reviving it (journal rollback) and re-removing must recycle those
  // slabs instead of growing the pools.
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib);
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const CellId nand2 = lib.find("nand2");
  const GateId h = nl.add_gate(nand2, {a, b}, "h");
  nl.add_output("out", h);
  // A fanout-free gate: remove_single_gate requires the gate drive nothing,
  // exactly the shape the journal tombstones on rollback.
  const GateId g = nl.add_gate(nand2, {a, b}, "g");

  const std::vector<GateId> g_fanins(nl.fanins(g).begin(), nl.fanins(g).end());
  nl.remove_single_gate(g);
  EXPECT_FALSE(nl.alive(g));
  const std::uint64_t allocated_after_remove = nl.pin_slabs_allocated();
  const std::uint64_t recycled_after_remove = nl.pin_slabs_recycled();

  // Tombstone -> revive -> tombstone cycles run entirely off the freelists.
  for (int i = 0; i < 16; ++i) {
    nl.revive_gate(g, g_fanins);
    EXPECT_TRUE(nl.alive(g));
    nl.remove_single_gate(g);
  }
  EXPECT_EQ(nl.pin_slabs_allocated(), allocated_after_remove)
      << "revive/remove cycling grew the pin pools";
  EXPECT_GT(nl.pin_slabs_recycled(), recycled_after_remove);

  nl.revive_gate(g, g_fanins);
  for (std::size_t i = 0; i < g_fanins.size(); ++i)
    EXPECT_EQ(nl.fanin(g, static_cast<int>(i)), g_fanins[i]);
  nl.check_consistency();
}

// ------------------------------------------------- zero-allocation deltas

/// Captures the last delta it sees (by value, like the delta log does).
class LastDeltaObserver final : public NetlistObserver {
 public:
  void on_delta(const NetlistDelta& delta) override { last = delta; }
  NetlistDelta last;
};

TEST(DeltaAllocationTest, SteadyStatePublishDoesNotSpill) {
  // Build a small netlist, warm the delta ring buffer, then assert that
  // publishing rewire deltas performs zero SmallVec heap spills: the fanin
  // snapshot of any <=8-input gate fits the delta's inline buffer.
  const CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib);
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const CellId nand2 = lib.find("nand2");
  const GateId g = nl.add_gate(nand2, {a, b}, "g");
  const GateId h = nl.add_gate(nand2, {g, b}, "h");
  nl.add_output("out", h);
  LastDeltaObserver obs;
  nl.attach_observer(&obs);

  // Warm up: exercise both rewire directions once so any lazy containers
  // (ring-buffer slots, fanout slabs) reach steady state.
  nl.set_fanin(h, 0, b);
  nl.set_fanin(h, 0, g);

  const std::uint64_t spills_before =
      detail::small_vec_heap_allocations().load();
  for (int i = 0; i < 64; ++i) {
    nl.set_fanin(h, 0, b);
    nl.set_fanin(h, 0, g);
  }
  EXPECT_EQ(detail::small_vec_heap_allocations().load(), spills_before)
      << "publishing a rewire delta allocated on the heap";
  EXPECT_EQ(obs.last.kind, DeltaKind::kFaninChanged);
  nl.detach_observer(&obs);
}

}  // namespace
}  // namespace powder
