# Empty compiler generated dependencies file for powder.
# This may be replaced when dependencies are built.
