file(REMOVE_RECURSE
  "CMakeFiles/powder.dir/powder_main.cpp.o"
  "CMakeFiles/powder.dir/powder_main.cpp.o.d"
  "powder"
  "powder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
