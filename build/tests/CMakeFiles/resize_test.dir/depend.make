# Empty dependencies file for resize_test.
# This may be replaced when dependencies are built.
