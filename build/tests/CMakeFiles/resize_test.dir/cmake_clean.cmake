file(REMOVE_RECURSE
  "CMakeFiles/resize_test.dir/resize_test.cpp.o"
  "CMakeFiles/resize_test.dir/resize_test.cpp.o.d"
  "resize_test"
  "resize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
