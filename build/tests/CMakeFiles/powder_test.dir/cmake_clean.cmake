file(REMOVE_RECURSE
  "CMakeFiles/powder_test.dir/powder_test.cpp.o"
  "CMakeFiles/powder_test.dir/powder_test.cpp.o.d"
  "powder_test"
  "powder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
