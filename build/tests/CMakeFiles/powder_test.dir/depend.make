# Empty dependencies file for powder_test.
# This may be replaced when dependencies are built.
