file(REMOVE_RECURSE
  "CMakeFiles/library_test.dir/library_test.cpp.o"
  "CMakeFiles/library_test.dir/library_test.cpp.o.d"
  "library_test"
  "library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
