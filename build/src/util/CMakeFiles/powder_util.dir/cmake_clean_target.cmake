file(REMOVE_RECURSE
  "libpowder_util.a"
)
