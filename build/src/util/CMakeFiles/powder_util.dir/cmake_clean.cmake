file(REMOVE_RECURSE
  "CMakeFiles/powder_util.dir/rng.cpp.o"
  "CMakeFiles/powder_util.dir/rng.cpp.o.d"
  "CMakeFiles/powder_util.dir/strings.cpp.o"
  "CMakeFiles/powder_util.dir/strings.cpp.o.d"
  "libpowder_util.a"
  "libpowder_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
