# Empty dependencies file for powder_util.
# This may be replaced when dependencies are built.
