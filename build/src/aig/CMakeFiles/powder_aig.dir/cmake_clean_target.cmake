file(REMOVE_RECURSE
  "libpowder_aig.a"
)
