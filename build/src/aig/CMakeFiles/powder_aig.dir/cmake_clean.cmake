file(REMOVE_RECURSE
  "CMakeFiles/powder_aig.dir/aig.cpp.o"
  "CMakeFiles/powder_aig.dir/aig.cpp.o.d"
  "CMakeFiles/powder_aig.dir/bool_network.cpp.o"
  "CMakeFiles/powder_aig.dir/bool_network.cpp.o.d"
  "libpowder_aig.a"
  "libpowder_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
