# Empty compiler generated dependencies file for powder_aig.
# This may be replaced when dependencies are built.
