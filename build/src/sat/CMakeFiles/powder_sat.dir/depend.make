# Empty dependencies file for powder_sat.
# This may be replaced when dependencies are built.
