file(REMOVE_RECURSE
  "libpowder_sat.a"
)
