file(REMOVE_RECURSE
  "CMakeFiles/powder_sat.dir/solver.cpp.o"
  "CMakeFiles/powder_sat.dir/solver.cpp.o.d"
  "libpowder_sat.a"
  "libpowder_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
