file(REMOVE_RECURSE
  "CMakeFiles/powder_power.dir/glitch.cpp.o"
  "CMakeFiles/powder_power.dir/glitch.cpp.o.d"
  "CMakeFiles/powder_power.dir/power.cpp.o"
  "CMakeFiles/powder_power.dir/power.cpp.o.d"
  "CMakeFiles/powder_power.dir/temporal.cpp.o"
  "CMakeFiles/powder_power.dir/temporal.cpp.o.d"
  "libpowder_power.a"
  "libpowder_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
