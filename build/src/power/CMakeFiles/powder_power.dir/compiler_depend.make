# Empty compiler generated dependencies file for powder_power.
# This may be replaced when dependencies are built.
