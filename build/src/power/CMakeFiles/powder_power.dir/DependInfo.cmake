
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/glitch.cpp" "src/power/CMakeFiles/powder_power.dir/glitch.cpp.o" "gcc" "src/power/CMakeFiles/powder_power.dir/glitch.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/power/CMakeFiles/powder_power.dir/power.cpp.o" "gcc" "src/power/CMakeFiles/powder_power.dir/power.cpp.o.d"
  "/root/repo/src/power/temporal.cpp" "src/power/CMakeFiles/powder_power.dir/temporal.cpp.o" "gcc" "src/power/CMakeFiles/powder_power.dir/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/powder_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/powder_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/powder_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/powder_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/powder_library.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/powder_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/powder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
