file(REMOVE_RECURSE
  "libpowder_power.a"
)
