file(REMOVE_RECURSE
  "CMakeFiles/powder_benchgen.dir/benchmarks.cpp.o"
  "CMakeFiles/powder_benchgen.dir/benchmarks.cpp.o.d"
  "libpowder_benchgen.a"
  "libpowder_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
