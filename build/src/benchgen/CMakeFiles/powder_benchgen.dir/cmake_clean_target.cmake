file(REMOVE_RECURSE
  "libpowder_benchgen.a"
)
