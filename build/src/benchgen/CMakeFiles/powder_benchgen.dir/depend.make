# Empty dependencies file for powder_benchgen.
# This may be replaced when dependencies are built.
