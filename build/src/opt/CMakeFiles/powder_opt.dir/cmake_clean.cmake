file(REMOVE_RECURSE
  "CMakeFiles/powder_opt.dir/candidates.cpp.o"
  "CMakeFiles/powder_opt.dir/candidates.cpp.o.d"
  "CMakeFiles/powder_opt.dir/powder.cpp.o"
  "CMakeFiles/powder_opt.dir/powder.cpp.o.d"
  "CMakeFiles/powder_opt.dir/power_gain.cpp.o"
  "CMakeFiles/powder_opt.dir/power_gain.cpp.o.d"
  "CMakeFiles/powder_opt.dir/redundancy.cpp.o"
  "CMakeFiles/powder_opt.dir/redundancy.cpp.o.d"
  "CMakeFiles/powder_opt.dir/resize.cpp.o"
  "CMakeFiles/powder_opt.dir/resize.cpp.o.d"
  "CMakeFiles/powder_opt.dir/substitution.cpp.o"
  "CMakeFiles/powder_opt.dir/substitution.cpp.o.d"
  "libpowder_opt.a"
  "libpowder_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
