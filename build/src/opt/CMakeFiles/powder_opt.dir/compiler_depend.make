# Empty compiler generated dependencies file for powder_opt.
# This may be replaced when dependencies are built.
