file(REMOVE_RECURSE
  "libpowder_opt.a"
)
