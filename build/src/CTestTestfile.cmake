# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("logic")
subdirs("library")
subdirs("netlist")
subdirs("bdd")
subdirs("sat")
subdirs("aig")
subdirs("sim")
subdirs("power")
subdirs("timing")
subdirs("atpg")
subdirs("mapper")
subdirs("io")
subdirs("opt")
subdirs("benchgen")
subdirs("flow")
