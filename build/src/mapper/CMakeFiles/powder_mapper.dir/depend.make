# Empty dependencies file for powder_mapper.
# This may be replaced when dependencies are built.
