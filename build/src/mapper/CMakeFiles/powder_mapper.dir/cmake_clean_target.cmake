file(REMOVE_RECURSE
  "libpowder_mapper.a"
)
