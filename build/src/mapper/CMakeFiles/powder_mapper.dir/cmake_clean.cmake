file(REMOVE_RECURSE
  "CMakeFiles/powder_mapper.dir/mapper.cpp.o"
  "CMakeFiles/powder_mapper.dir/mapper.cpp.o.d"
  "libpowder_mapper.a"
  "libpowder_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
