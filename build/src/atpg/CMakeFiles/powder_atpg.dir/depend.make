# Empty dependencies file for powder_atpg.
# This may be replaced when dependencies are built.
