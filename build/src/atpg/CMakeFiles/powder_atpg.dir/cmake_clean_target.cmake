file(REMOVE_RECURSE
  "libpowder_atpg.a"
)
