file(REMOVE_RECURSE
  "CMakeFiles/powder_atpg.dir/atpg.cpp.o"
  "CMakeFiles/powder_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/powder_atpg.dir/regions.cpp.o"
  "CMakeFiles/powder_atpg.dir/regions.cpp.o.d"
  "CMakeFiles/powder_atpg.dir/sat_checker.cpp.o"
  "CMakeFiles/powder_atpg.dir/sat_checker.cpp.o.d"
  "libpowder_atpg.a"
  "libpowder_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
