file(REMOVE_RECURSE
  "libpowder_netlist.a"
)
