file(REMOVE_RECURSE
  "CMakeFiles/powder_netlist.dir/netlist.cpp.o"
  "CMakeFiles/powder_netlist.dir/netlist.cpp.o.d"
  "libpowder_netlist.a"
  "libpowder_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
