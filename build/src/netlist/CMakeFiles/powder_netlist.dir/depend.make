# Empty dependencies file for powder_netlist.
# This may be replaced when dependencies are built.
