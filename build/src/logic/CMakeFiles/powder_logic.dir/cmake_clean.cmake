file(REMOVE_RECURSE
  "CMakeFiles/powder_logic.dir/cube.cpp.o"
  "CMakeFiles/powder_logic.dir/cube.cpp.o.d"
  "CMakeFiles/powder_logic.dir/expr.cpp.o"
  "CMakeFiles/powder_logic.dir/expr.cpp.o.d"
  "CMakeFiles/powder_logic.dir/factor.cpp.o"
  "CMakeFiles/powder_logic.dir/factor.cpp.o.d"
  "CMakeFiles/powder_logic.dir/truth_table.cpp.o"
  "CMakeFiles/powder_logic.dir/truth_table.cpp.o.d"
  "libpowder_logic.a"
  "libpowder_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
