# Empty compiler generated dependencies file for powder_logic.
# This may be replaced when dependencies are built.
