file(REMOVE_RECURSE
  "libpowder_logic.a"
)
