file(REMOVE_RECURSE
  "libpowder_sim.a"
)
