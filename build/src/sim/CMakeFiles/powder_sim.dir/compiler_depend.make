# Empty compiler generated dependencies file for powder_sim.
# This may be replaced when dependencies are built.
