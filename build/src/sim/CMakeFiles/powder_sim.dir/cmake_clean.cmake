file(REMOVE_RECURSE
  "CMakeFiles/powder_sim.dir/simulator.cpp.o"
  "CMakeFiles/powder_sim.dir/simulator.cpp.o.d"
  "libpowder_sim.a"
  "libpowder_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
