# Empty compiler generated dependencies file for powder_library.
# This may be replaced when dependencies are built.
