file(REMOVE_RECURSE
  "CMakeFiles/powder_library.dir/cell_library.cpp.o"
  "CMakeFiles/powder_library.dir/cell_library.cpp.o.d"
  "libpowder_library.a"
  "libpowder_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
