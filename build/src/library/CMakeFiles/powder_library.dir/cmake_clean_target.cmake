file(REMOVE_RECURSE
  "libpowder_library.a"
)
