file(REMOVE_RECURSE
  "libpowder_flow.a"
)
