file(REMOVE_RECURSE
  "CMakeFiles/powder_flow.dir/flow.cpp.o"
  "CMakeFiles/powder_flow.dir/flow.cpp.o.d"
  "libpowder_flow.a"
  "libpowder_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
