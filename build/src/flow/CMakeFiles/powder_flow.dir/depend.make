# Empty dependencies file for powder_flow.
# This may be replaced when dependencies are built.
