file(REMOVE_RECURSE
  "CMakeFiles/powder_timing.dir/timing.cpp.o"
  "CMakeFiles/powder_timing.dir/timing.cpp.o.d"
  "libpowder_timing.a"
  "libpowder_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
