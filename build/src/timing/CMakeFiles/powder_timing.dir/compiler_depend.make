# Empty compiler generated dependencies file for powder_timing.
# This may be replaced when dependencies are built.
