file(REMOVE_RECURSE
  "libpowder_timing.a"
)
