file(REMOVE_RECURSE
  "libpowder_bdd.a"
)
