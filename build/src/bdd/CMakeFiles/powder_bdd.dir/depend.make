# Empty dependencies file for powder_bdd.
# This may be replaced when dependencies are built.
