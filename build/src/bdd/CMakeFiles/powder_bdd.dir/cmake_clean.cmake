file(REMOVE_RECURSE
  "CMakeFiles/powder_bdd.dir/bdd.cpp.o"
  "CMakeFiles/powder_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/powder_bdd.dir/netlist_bdd.cpp.o"
  "CMakeFiles/powder_bdd.dir/netlist_bdd.cpp.o.d"
  "libpowder_bdd.a"
  "libpowder_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
