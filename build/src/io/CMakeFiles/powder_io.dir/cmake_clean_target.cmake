file(REMOVE_RECURSE
  "libpowder_io.a"
)
