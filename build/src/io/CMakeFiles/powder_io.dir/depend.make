# Empty dependencies file for powder_io.
# This may be replaced when dependencies are built.
