file(REMOVE_RECURSE
  "CMakeFiles/powder_io.dir/blif.cpp.o"
  "CMakeFiles/powder_io.dir/blif.cpp.o.d"
  "CMakeFiles/powder_io.dir/verilog.cpp.o"
  "CMakeFiles/powder_io.dir/verilog.cpp.o.d"
  "libpowder_io.a"
  "libpowder_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powder_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
