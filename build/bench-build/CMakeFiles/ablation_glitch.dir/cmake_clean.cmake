file(REMOVE_RECURSE
  "../bench/ablation_glitch"
  "../bench/ablation_glitch.pdb"
  "CMakeFiles/ablation_glitch.dir/ablation_glitch.cpp.o"
  "CMakeFiles/ablation_glitch.dir/ablation_glitch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
