file(REMOVE_RECURSE
  "../bench/fig6_tradeoff"
  "../bench/fig6_tradeoff.pdb"
  "CMakeFiles/fig6_tradeoff.dir/fig6_tradeoff.cpp.o"
  "CMakeFiles/fig6_tradeoff.dir/fig6_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
