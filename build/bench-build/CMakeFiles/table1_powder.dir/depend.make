# Empty dependencies file for table1_powder.
# This may be replaced when dependencies are built.
