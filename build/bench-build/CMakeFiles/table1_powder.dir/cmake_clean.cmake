file(REMOVE_RECURSE
  "../bench/table1_powder"
  "../bench/table1_powder.pdb"
  "CMakeFiles/table1_powder.dir/table1_powder.cpp.o"
  "CMakeFiles/table1_powder.dir/table1_powder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_powder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
