
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_objective.cpp" "bench-build/CMakeFiles/ablation_objective.dir/ablation_objective.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_objective.dir/ablation_objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/powder_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/powder_io.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/powder_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/powder_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/powder_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/powder_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/powder_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/powder_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/powder_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/powder_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/powder_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/powder_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/powder_library.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/powder_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/powder_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/powder_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
