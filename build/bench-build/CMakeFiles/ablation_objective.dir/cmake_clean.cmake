file(REMOVE_RECURSE
  "../bench/ablation_objective"
  "../bench/ablation_objective.pdb"
  "CMakeFiles/ablation_objective.dir/ablation_objective.cpp.o"
  "CMakeFiles/ablation_objective.dir/ablation_objective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
