file(REMOVE_RECURSE
  "CMakeFiles/blif_optimize.dir/blif_optimize.cpp.o"
  "CMakeFiles/blif_optimize.dir/blif_optimize.cpp.o.d"
  "blif_optimize"
  "blif_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blif_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
