# Empty dependencies file for blif_optimize.
# This may be replaced when dependencies are built.
