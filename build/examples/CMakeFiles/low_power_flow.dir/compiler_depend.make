# Empty compiler generated dependencies file for low_power_flow.
# This may be replaced when dependencies are built.
