file(REMOVE_RECURSE
  "CMakeFiles/low_power_flow.dir/low_power_flow.cpp.o"
  "CMakeFiles/low_power_flow.dir/low_power_flow.cpp.o.d"
  "low_power_flow"
  "low_power_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_power_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
