file(REMOVE_RECURSE
  "CMakeFiles/post_mapping_pipeline.dir/post_mapping_pipeline.cpp.o"
  "CMakeFiles/post_mapping_pipeline.dir/post_mapping_pipeline.cpp.o.d"
  "post_mapping_pipeline"
  "post_mapping_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_mapping_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
