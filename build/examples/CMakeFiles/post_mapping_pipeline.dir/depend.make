# Empty dependencies file for post_mapping_pipeline.
# This may be replaced when dependencies are built.
