# Empty dependencies file for timing_tradeoff.
# This may be replaced when dependencies are built.
