file(REMOVE_RECURSE
  "CMakeFiles/timing_tradeoff.dir/timing_tradeoff.cpp.o"
  "CMakeFiles/timing_tradeoff.dir/timing_tradeoff.cpp.o.d"
  "timing_tradeoff"
  "timing_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
