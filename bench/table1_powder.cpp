// Table 1 reproduction: POWDER on the benchmark suite, with and without
// delay constraints.
//
// Columns match the paper: initial power/area/delay; unconstrained POWDER
// power, reduction %, area; delay-constrained POWDER (limit = initial
// delay) power, reduction %, area, delay, CPU seconds.
//
// The circuits are synthetic stand-ins for the MCNC/ISCAS originals (see
// DESIGN.md §4); absolute values differ from the paper, the *shape* —
// double-digit average power reduction at roughly flat area, smaller but
// still substantial reduction under a hard delay constraint — is the
// reproduction target (paper: -26.1% power / -8.9% area unconstrained,
// -21.4% power / -6.8% delay constrained).
//
// POWDER_SUITE=quick|fig6|full selects the circuit set (default full).

#include <cstdio>

#include "bench_common.hpp"
#include "timing/timing.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("full");

  std::printf("=== Table 1: POWDER on the benchmark suite (synthetic "
              "stand-in circuits) ===\n\n");
  std::printf("%-10s | %9s %9s %7s | %9s %6s %9s | %9s %6s %9s %7s %7s\n",
              "circuit", "power", "area", "delay", "power", "red.%", "area",
              "power", "red.%", "area", "delay", "CPU");
  std::printf("%-10s | %27s | %26s | %s\n", "", "initial",
              "POWDER no delay constr.", "POWDER with delay constraints");

  double sum_p0 = 0, sum_a0 = 0, sum_d0 = 0;
  double sum_p1 = 0, sum_a1 = 0;
  double sum_p2 = 0, sum_a2 = 0, sum_d2 = 0;

  for (const std::string& name : suite) {
    // Unconstrained run.
    Netlist nl1 = initial_circuit(name, lib);
    PowderOptions opt1 = bench_options(nl1.num_inputs());
    const PowderReport r1 = optimize(nl1, opt1);

    // Constrained run (limit = initial delay), fresh initial circuit.
    Netlist nl2 = initial_circuit(name, lib);
    PowderOptions opt2 = bench_options(nl2.num_inputs());
    opt2.delay_limit_factor = 1.0;
    const PowderReport r2 = optimize(nl2, opt2);

    std::printf("%-10s | %9.2f %9.0f %7.2f | %9.2f %6.1f %9.0f | "
                "%9.2f %6.1f %9.0f %7.2f %7.1f\n",
                name.c_str(), r1.initial_power, r1.initial_area,
                r1.initial_delay, r1.final_power,
                r1.power_reduction_percent(), r1.final_area, r2.final_power,
                r2.power_reduction_percent(), r2.final_area, r2.final_delay,
                r1.cpu_seconds + r2.cpu_seconds);
    std::fflush(stdout);

    sum_p0 += r1.initial_power;
    sum_a0 += r1.initial_area;
    sum_d0 += r1.initial_delay;
    sum_p1 += r1.final_power;
    sum_a1 += r1.final_area;
    sum_p2 += r2.final_power;
    sum_a2 += r2.final_area;
    sum_d2 += r2.final_delay;
  }

  std::printf("%-10s | %9.2f %9.0f %7.1f | %9.2f %6s %9.0f | "
              "%9.2f %6s %9.0f %7.1f\n",
              "sum:", sum_p0, sum_a0, sum_d0, sum_p1, "", sum_a1, sum_p2, "",
              sum_a2, sum_d2);
  std::printf("%-10s | %27s | power -%.1f%%  area -%.1f%% | power -%.1f%%  "
              "area -%.1f%%  delay -%.1f%%\n",
              "reduction:", "",
              100.0 * (sum_p0 - sum_p1) / sum_p0,
              100.0 * (sum_a0 - sum_a1) / sum_a0,
              100.0 * (sum_p0 - sum_p2) / sum_p0,
              100.0 * (sum_a0 - sum_a2) / sum_a0,
              100.0 * (sum_d0 - sum_d2) / sum_d0);
  std::printf("\npaper (MCNC/ISCAS originals): -26.1%% power, -8.9%% area "
              "unconstrained; -21.4%% power, -7.5%% area, -6.8%% delay "
              "constrained\n");
  return 0;
}
