// Generalized-resubstitution experiment (DESIGN.md §12): on a
// make_scale_netlist instance, measure what the two extensions beyond the
// paper's OS2/IS2/OS3/IS3 classes buy:
//
//   * funcred — the functional-reduction pre-pass alone (greedy harvest
//     capped to zero) must strictly reduce the live gate count: every tile
//     of the scale generator plants a duplicate leaf (r1 computes exactly
//     a1), so merges > 0 is a property of the generator, not luck;
//   * k-resub — with max_divisors >= 3 the harvest must find and commit
//     OSK/ISK wins that the pair classes structurally cannot express
//     (a k-input gate replacing a deeper cone).
//
// Emits BENCH_resub.json and exits nonzero unless both hold and no
// signature guard tripped. Registered as the ctest test `bench_resub`
// (label `resub`).
//
// Knobs: POWDER_SCALE_GATES (default 20000), POWDER_PATTERNS (default
// 256), POWDER_REPEAT (default 4), POWDER_OUTER (default 1),
// POWDER_MAX_DIVISORS (default 3).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "opt/transform.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeRun {
  double wall_ms = 0.0;
  int gates_before = 0;
  int gates_after = 0;
  PowderReport report;
};

ModeRun run_mode(const Netlist& input, const PowderOptions& opt) {
  ModeRun m;
  Netlist nl = input;
  m.gates_before = nl.num_cells();
  const double t0 = now_ms();
  m.report = optimize(nl, opt);
  m.wall_ms = now_ms() - t0;
  m.gates_after = nl.num_cells();
  return m;
}

long k_applied(const PowderReport& r) {
  return r.by_class[static_cast<std::size_t>(ResubClass::kOSK)].applied +
         r.by_class[static_cast<std::size_t>(ResubClass::kISK)].applied;
}

void json_mode(std::ostringstream& os, const char* key, const ModeRun& m) {
  os << "\"" << key << "\":{\"wall_ms\":" << m.wall_ms
     << ",\"gates_before\":" << m.gates_before
     << ",\"gates_after\":" << m.gates_after
     << ",\"power_before\":" << m.report.initial_power
     << ",\"power_after\":" << m.report.final_power
     << ",\"applied\":" << m.report.substitutions_applied
     << ",\"funcred_merges\":" << m.report.diagnostics.resub.funcred_merges
     << ",\"k_applied\":" << k_applied(m.report) << ",\"guard_failed\":"
     << (m.report.diagnostics.guard_failed ? "true" : "false") << "}";
}

}  // namespace

int main() {
  const int gates = env_int("POWDER_SCALE_GATES", 20'000);
  const int patterns = env_int("POWDER_PATTERNS", 256);
  const int max_divisors = env_int("POWDER_MAX_DIVISORS", 3);

  const Netlist input = make_scale_netlist(gates);
  std::printf("scale netlist: %d gates, %d PIs, %d POs\n", input.num_cells(),
              input.num_inputs(), input.num_outputs());

  auto base = [&]() {
    return PowderOptions::builder()
        .patterns(patterns)
        .repeat(env_int("POWDER_REPEAT", 4))
        .max_outer_iterations(env_int("POWDER_OUTER", 1))
        .threads(env_int("POWDER_THREADS", 1));
  };

  // Funcred in isolation: cap the greedy harvest to zero candidates so the
  // only edits are pre-pass merges; the live gate count must strictly drop.
  CandidateOptions funcred_only;
  funcred_only.max_candidates = 0;
  const ModeRun funcred_run =
      run_mode(input, base().candidates(funcred_only).funcred(true).build());
  std::printf("funcred:  %6.1f ms, %d -> %d gates, %lld merges\n",
              funcred_run.wall_ms, funcred_run.gates_before,
              funcred_run.gates_after,
              static_cast<long long>(
                  funcred_run.report.diagnostics.resub.funcred_merges));

  // Paper classes only (the baseline the extensions are measured against).
  const ModeRun pair_run = run_mode(input, base().build());
  std::printf("pairs:    %6.1f ms, %d -> %d gates, %d applied\n",
              pair_run.wall_ms, pair_run.gates_before, pair_run.gates_after,
              pair_run.report.substitutions_applied);

  // Full framework: funcred pre-pass plus OSK/ISK harvest.
  const ModeRun k_run = run_mode(
      input, base().funcred(true).max_divisors(max_divisors).build());
  std::printf(
      "k-resub:  %6.1f ms, %d -> %d gates, %d applied (%ld OSK/ISK)\n",
      k_run.wall_ms, k_run.gates_before, k_run.gates_after,
      k_run.report.substitutions_applied, k_applied(k_run.report));

  bool ok = true;
  if (funcred_run.report.diagnostics.resub.funcred_merges <= 0) {
    std::fprintf(stderr, "FAIL: funcred merged nothing on scale input\n");
    ok = false;
  }
  if (funcred_run.gates_after >= funcred_run.gates_before) {
    std::fprintf(stderr, "FAIL: funcred did not reduce live gates (%d -> %d)\n",
                 funcred_run.gates_before, funcred_run.gates_after);
    ok = false;
  }
  if (k_applied(k_run.report) < 1) {
    std::fprintf(stderr,
                 "FAIL: no OSK/ISK commit at max_divisors=%d — the k-harvest "
                 "found nothing the pair classes missed\n",
                 max_divisors);
    ok = false;
  }
  if (funcred_run.report.diagnostics.guard_failed ||
      pair_run.report.diagnostics.guard_failed ||
      k_run.report.diagnostics.guard_failed) {
    std::fprintf(stderr, "FAIL: a signature guard failed\n");
    ok = false;
  }

  std::ostringstream json;
  json.precision(17);
  json << "{\"gates\":" << gates << ",\"patterns\":" << patterns
       << ",\"max_divisors\":" << max_divisors << ",";
  json_mode(json, "funcred_only", funcred_run);
  json << ",";
  json_mode(json, "pairs_only", pair_run);
  json << ",";
  json_mode(json, "k_resub", k_run);
  json << ",\"pass\":" << (ok ? "true" : "false") << "}";

  std::ofstream out("BENCH_resub.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_resub.json\n");
  return ok ? 0 : 1;
}
