// Ablation: how much power does the zero-delay model miss?
//
// The paper (§2) justifies its zero-delay model by noting glitches
// "typically contribute about 20% to the total power consumption" but are
// hard to model before placement. This harness quantifies that on our
// circuits with an event-driven timed simulation (transport delays from
// the same linear model the STA uses), before and after POWDER — also
// answering the natural follow-up: does optimizing the zero-delay proxy
// still reduce the glitch-inclusive power? (It should, and does.)
//
// POWDER_SUITE=quick|fig6|full (default quick).

#include <cstdio>

#include "bench_common.hpp"
#include "power/glitch.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("quick");

  std::printf("=== Ablation: zero-delay vs glitch-aware power ===\n\n");
  std::printf("%-10s | %10s %10s %8s | %10s %10s %8s | %9s\n", "circuit",
              "0-delay", "timed", "glitch%", "0-delay", "timed", "glitch%",
              "timed red%");
  std::printf("%-10s | %31s | %31s |\n", "", "initial circuit",
              "after POWDER");

  for (const std::string& name : suite) {
    Netlist nl = initial_circuit(name, lib);
    GlitchOptions gopt;
    gopt.stimulus.prob = input_probs(nl.num_inputs());
    const GlitchEstimate before = estimate_glitch_power(nl, gopt);

    PowderOptions opt = bench_options(nl.num_inputs());
    (void)optimize(nl, opt);
    const GlitchEstimate after = estimate_glitch_power(nl, gopt);

    std::printf(
        "%-10s | %10.2f %10.2f %7.1f%% | %10.2f %10.2f %7.1f%% | %8.1f%%\n",
        name.c_str(), before.zero_delay_power, before.timed_power,
        100.0 * before.glitch_share(), after.zero_delay_power,
        after.timed_power, 100.0 * after.glitch_share(),
        100.0 * (before.timed_power - after.timed_power) /
            before.timed_power);
    std::fflush(stdout);
  }
  std::printf("\npaper's §2 claim: glitches ~20%% of total power; expected "
              "shape: optimizing the zero-delay proxy also reduces the "
              "timed (glitch-inclusive) power.\n");
  return 0;
}
