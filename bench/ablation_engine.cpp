// Ablation: PODEM vs SAT as the permissibility-proof engine.
//
// The paper proves candidates with ATPG (PODEM-style search plus a
// backtrack limit; aborts count as "not permissible"). A SAT miter answers
// the same question. This harness runs POWDER twice per circuit with the
// two engines and compares outcome quality and proof effort. Expected
// shape: near-identical power reductions (both engines are exact up to
// their effort limits), differing CPU profiles.
//
// POWDER_SUITE=quick|fig6|full (default quick).

#include <cstdio>

#include "bench_common.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("quick");

  std::printf("=== Ablation: proof engine (PODEM vs SAT miter) ===\n\n");
  std::printf("%-10s | %9s %7s %7s | %9s %7s %7s\n", "circuit", "red.%",
              "subs", "CPU s", "red.%", "subs", "CPU s");
  std::printf("%-10s | %27s | %26s\n", "", "PODEM (paper)", "SAT");

  double sp = 0, ss = 0, n = 0;
  for (const std::string& name : suite) {
    Netlist nlp = initial_circuit(name, lib);
    PowderOptions po = bench_options(nlp.num_inputs());
    po.proof.engine = ProofEngine::kPodem;
    const PowderReport rp = optimize(nlp, po);

    Netlist nls = initial_circuit(name, lib);
    PowderOptions so = bench_options(nls.num_inputs());
    so.proof.engine = ProofEngine::kSat;
    const PowderReport rs = optimize(nls, so);

    std::printf("%-10s | %9.1f %7d %7.1f | %9.1f %7d %7.1f\n", name.c_str(),
                rp.power_reduction_percent(), rp.substitutions_applied,
                rp.cpu_seconds, rs.power_reduction_percent(),
                rs.substitutions_applied, rs.cpu_seconds);
    std::fflush(stdout);
    sp += rp.power_reduction_percent();
    ss += rs.power_reduction_percent();
    n += 1;
  }
  std::printf("%-10s | %9.1f %15s | %9.1f\n", "average:", sp / n, "", ss / n);
  std::printf("\nexpected: both engines reach essentially the same "
              "reduction (they decide the same permissibility question).\n");
  return 0;
}
