// Verifies the crash-safety plane's headline budget: with checkpointing,
// resume, and memory limits all DISABLED (the default), the session
// machinery threaded through the optimizer may cost at most 1% of a run.
//
// As with trace_overhead, there is no un-instrumented build to diff
// against, so the bound is established from first principles:
//
//   1. microbenchmark the disabled probes through volatile pointers the
//      compiler cannot constant-fold away:
//        - DegradationLadder::evaluate with no deadline/limit configured
//          (the stop_requested() hot path),
//        - SessionRecorder::record_commit on a recorder that was never
//          opened (the commit-path no-op),
//        - SessionResume::matches on an empty cursor (the proof-stage
//          check);
//   2. run optimize() un-checkpointed and bound how often each probe fires
//      from the report: evaluate once per iteration + once per commit
//      attempt (<= candidates harvested), record_commit/matches once per
//      considered candidate (<= harvested);
//   3. assert  sum(probe_count * ns) * kSafetyFactor <= 1% of wall time.
//
// Emits BENCH_recovery.json; exits nonzero when the bound is violated.
// Registered as the ctest test `bench_recovery_overhead`.
//
// Knobs: POWDER_SUITE, POWDER_PATTERNS, POWDER_THREADS (bench_common.hpp).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "session/checkpoint.hpp"
#include "session/degradation.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

volatile long long g_sink = 0;

/// ns per disabled DegradationLadder::evaluate — the probe the inner loop
/// hits on every stop_requested() call.
double ladder_probe_ns(long long iters) {
  SessionOptions session;  // no mem limit
  DegradationLadder ladder(session, /*deadline_seconds=*/-1.0,
                           ProofEngine::kHybrid, nullptr, nullptr);
  ResourceBudget budget;  // unlimited
  const double t0 = now_ns();
  for (long long i = 0; i < iters; ++i) {
    g_sink = g_sink + static_cast<long long>(ladder.evaluate(budget));
  }
  return (now_ns() - t0) / static_cast<double>(iters);
}

/// ns per disabled SessionRecorder::record_commit + SessionResume::matches
/// — the probes on the commit and proof paths.
double recorder_probe_ns(long long iters) {
  SessionRecorder recorder(nullptr, nullptr);  // never opened: disabled
  SessionResume resume;                        // never loaded: inactive
  const CandidateSub cand;
  const AppliedSub applied;
  const double t0 = now_ns();
  for (long long i = 0; i < iters; ++i) {
    recorder.record_commit(1, 1, cand, applied);
    g_sink = g_sink + (resume.matches(cand) ? 1 : 0);
    g_sink = g_sink + (resume.active() ? 1 : 0);
  }
  return (now_ns() - t0) / static_cast<double>(iters);
}

}  // namespace

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const std::vector<std::string> suite = env_suite("quick");
  constexpr double kSafetyFactor = 3.0;
  constexpr double kBudgetPercent = 1.0;

  const double ladder_ns = ladder_probe_ns(20'000'000);
  const double recorder_ns = recorder_probe_ns(20'000'000);
  std::printf("disabled probes: ladder %.3f ns, recorder+resume %.3f ns\n",
              ladder_ns, recorder_ns);

  bool ok = true;
  std::ostringstream json;
  json.precision(17);
  json << "{\"ladder_probe_ns\":" << ladder_ns
       << ",\"recorder_probe_ns\":" << recorder_ns
       << ",\"budget_percent\":" << kBudgetPercent
       << ",\"safety_factor\":" << kSafetyFactor << ",\"circuits\":[";
  bool first = true;
  for (const std::string& name : suite) {
    const Netlist circuit = initial_circuit(name, lib);
    const PowderOptions opt = bench_options(circuit.num_inputs());

    // Warm-up plus best-of-3 keeps the denominator honest on noisy CI.
    auto run_once = [&]() {
      Netlist nl = circuit;
      const double t0 = now_ns();
      const PowderReport r = optimize(nl, opt);
      return std::pair<double, PowderReport>(now_ns() - t0, r);
    };
    (void)run_once();
    auto [wall_ns, report] = run_once();
    for (int i = 0; i < 2; ++i) {
      const auto again = run_once();
      if (again.first < wall_ns) wall_ns = again.first;
    }

    // Probe-count upper bounds from the run's own report: evaluate fires
    // once per outer iteration plus once per inner commit attempt; the
    // recorder/resume probes fire at most once per considered candidate.
    const double evaluates =
        static_cast<double>(report.outer_iterations) +
        static_cast<double>(report.candidates_harvested);
    const double commits = static_cast<double>(report.candidates_harvested);
    const double est_overhead_ns =
        (evaluates * ladder_ns + commits * recorder_ns) * kSafetyFactor;
    const double overhead_pct = 100.0 * est_overhead_ns / wall_ns;
    const bool pass = overhead_pct <= kBudgetPercent;
    ok = ok && pass;
    std::printf(
        "%-10s wall %8.2f ms, %6d candidates, %3d iterations, "
        "est. disabled-session overhead %.4f%%  [%s]\n",
        name.c_str(), wall_ns / 1e6, report.candidates_harvested,
        report.outer_iterations, overhead_pct, pass ? "ok" : "OVER BUDGET");

    if (!first) json << ",";
    first = false;
    json << "{\"name\":\"" << name << "\",\"wall_ms\":" << wall_ns / 1e6
         << ",\"candidates\":" << report.candidates_harvested
         << ",\"iterations\":" << report.outer_iterations
         << ",\"est_overhead_percent\":" << overhead_pct
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
  }
  json << "]}";

  std::ofstream out("BENCH_recovery.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_recovery.json\n");
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: estimated disabled-session overhead exceeds %.1f%%\n",
                 kBudgetPercent);
    return 1;
  }
  return 0;
}
