// Scaling experiment for windowed mode (DESIGN.md §11): on a large
// make_scale_netlist instance (default 10^5 gates), compare the
// per-candidate work of global mode against windowed mode.
//
// The work model follows where the optimizer actually spends its time per
// candidate it settles:
//
//   * proof region — a proof engine (PODEM implications, SAT miter) and
//     the signature guard operate on the whole netlist it was constructed
//     over: the live gate count in global mode, the mean extracted window
//     size in windowed mode;
//   * signature words touched — region gates times the packed words per
//     gate (patterns / 64);
//   * candidates scanned per commit — the selection loop re-validates and
//     re-ranks every surviving harvest candidate before each commit:
//     harvested / applied in either mode.
//
// Emits BENCH_scale.json and exits nonzero unless windowed mode reduces
// the combined per-candidate work by at least kMinWorkRatio (5x) while
// still committing substitutions with the signature guard intact.
// Registered as the ctest test `bench_scale` (label `scale`).
//
// Knobs: POWDER_SCALE_GATES (default 100000), POWDER_PATTERNS (default
// 256), POWDER_REPEAT (default 4), POWDER_OUTER (default 1),
// POWDER_WINDOW_SIZE (default 512), POWDER_WINDOW_OVERLAP (default 64).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "util/check.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeRun {
  double wall_ms = 0.0;
  double region_gates = 0.0;       ///< mean proof/signature region
  double sig_words = 0.0;          ///< region * words per gate
  double cands_per_commit = 0.0;   ///< harvested / applied
  double work_per_candidate = 0.0; ///< region * (1 + words) + scan share
  PowderReport report;
};

ModeRun run_mode(const Netlist& input, const PowderOptions& opt,
                 int patterns) {
  ModeRun m;
  Netlist nl = input;
  const double live_gates = static_cast<double>(nl.num_cells());
  const double t0 = now_ms();
  m.report = optimize(nl, opt);
  m.wall_ms = now_ms() - t0;

  const auto& w = m.report.diagnostics.windowing;
  m.region_gates = w.windows_built > 0
                       ? static_cast<double>(w.window_gates_total) /
                             static_cast<double>(w.windows_built)
                       : live_gates;
  const double words = static_cast<double>((patterns + 63) / 64);
  m.sig_words = m.region_gates * words;
  const double applied =
      std::max(1, m.report.substitutions_applied +
                      m.report.diagnostics.guard_rollbacks);
  m.cands_per_commit =
      static_cast<double>(m.report.candidates_harvested) / applied;
  m.work_per_candidate =
      m.region_gates * (1.0 + words) + m.cands_per_commit;
  return m;
}

void print_mode(const char* name, const ModeRun& m) {
  std::printf(
      "%-8s wall %9.1f ms, region %9.1f gates, %10.1f sig words, "
      "%8.1f candidates/commit, work/cand %12.1f  (%d commits)\n",
      name, m.wall_ms, m.region_gates, m.sig_words, m.cands_per_commit,
      m.work_per_candidate, m.report.substitutions_applied);
}

void json_mode(std::ostringstream& os, const char* key, const ModeRun& m) {
  os << "\"" << key << "\":{\"wall_ms\":" << m.wall_ms
     << ",\"region_gates\":" << m.region_gates
     << ",\"sig_words\":" << m.sig_words
     << ",\"candidates_per_commit\":" << m.cands_per_commit
     << ",\"work_per_candidate\":" << m.work_per_candidate
     << ",\"harvested\":" << m.report.candidates_harvested
     << ",\"applied\":" << m.report.substitutions_applied
     << ",\"power_before\":" << m.report.initial_power
     << ",\"power_after\":" << m.report.final_power
     << ",\"windows_built\":" << m.report.diagnostics.windowing.windows_built
     << ",\"boundary_conflicts\":"
     << m.report.diagnostics.windowing.boundary_conflicts
     << ",\"guard_failed\":"
     << (m.report.diagnostics.guard_failed ? "true" : "false") << "}";
}

}  // namespace

int main() {
  constexpr double kMinWorkRatio = 5.0;
  const int gates = env_int("POWDER_SCALE_GATES", 100'000);
  const int patterns = env_int("POWDER_PATTERNS", 256);
  const int window_size = env_int("POWDER_WINDOW_SIZE", 512);
  const int window_overlap = env_int("POWDER_WINDOW_OVERLAP", 64);

  const Netlist input = make_scale_netlist(gates);
  std::printf("scale netlist: %d gates, %d PIs, %d POs\n", input.num_cells(),
              input.num_inputs(), input.num_outputs());

  auto base = [&]() {
    return PowderOptions::builder()
        .patterns(patterns)
        .repeat(env_int("POWDER_REPEAT", 4))
        .max_outer_iterations(env_int("POWDER_OUTER", 1))
        .threads(env_int("POWDER_THREADS", 1));
  };
  const ModeRun global_run = run_mode(input, base().build(), patterns);
  print_mode("global", global_run);
  const ModeRun windowed_run =
      run_mode(input,
               base()
                   .windowed(true)
                   .window_size(window_size)
                   .window_overlap(window_overlap)
                   .build(),
               patterns);
  print_mode("windowed", windowed_run);

  const double region_ratio =
      global_run.region_gates / std::max(1.0, windowed_run.region_gates);
  const double work_ratio = global_run.work_per_candidate /
                            std::max(1.0, windowed_run.work_per_candidate);
  const double scan_ratio = global_run.cands_per_commit /
                            std::max(1.0, windowed_run.cands_per_commit);
  std::printf(
      "ratios: proof region %.1fx, per-candidate work %.1fx, "
      "candidate scans %.1fx\n",
      region_ratio, work_ratio, scan_ratio);

  bool ok = true;
  if (work_ratio < kMinWorkRatio) {
    std::fprintf(stderr, "FAIL: per-candidate work ratio %.2f < %.1f\n",
                 work_ratio, kMinWorkRatio);
    ok = false;
  }
  if (windowed_run.report.substitutions_applied <= 0) {
    std::fprintf(stderr, "FAIL: windowed mode committed nothing\n");
    ok = false;
  }
  if (global_run.report.diagnostics.guard_failed ||
      windowed_run.report.diagnostics.guard_failed) {
    std::fprintf(stderr, "FAIL: a signature guard failed\n");
    ok = false;
  }

  std::ostringstream json;
  json.precision(17);
  json << "{\"gates\":" << gates << ",\"patterns\":" << patterns
       << ",\"window_size\":" << window_size
       << ",\"window_overlap\":" << window_overlap << ",";
  json_mode(json, "global", global_run);
  json << ",";
  json_mode(json, "windowed", windowed_run);
  json << ",\"region_ratio\":" << region_ratio
       << ",\"work_ratio\":" << work_ratio
       << ",\"scan_ratio\":" << scan_ratio << ",\"min_work_ratio\":"
       << kMinWorkRatio << ",\"pass\":" << (ok ? "true" : "false") << "}";

  std::ofstream out("BENCH_scale.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_scale.json\n");
  return ok ? 0 : 1;
}
