// Figure 6 reproduction: the power-delay trade-off.
//
// For the 18-circuit subset, POWDER runs under delay constraints of
// {0, 10, 20, 30, 50, 80, 120, 200}% allowed delay increase; the summed
// power and delay (relative to the initial totals) give one curve point
// per constraint, exactly like the paper's figure.
//
// Shape targets: concave curve; the 0% point already yields a large
// reduction; roughly two thirds of the extra reduction beyond that arrives
// by ~+15% actual delay; the curve flattens for large allowances.
//
// POWDER_SUITE=quick|fig6|full (default fig6, the paper's subset size).

#include <cstdio>

#include "bench_common.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("fig6");

  std::printf("=== Figure 6: power-delay trade-off (%zu circuits) ===\n\n",
              suite.size());
  std::printf("%8s %14s %14s %14s %14s\n", "limit%", "sum power",
              "rel. power", "sum delay", "rel. delay");

  double base_power = 0.0, base_delay = 0.0;
  const double limits[] = {0, 10, 20, 30, 50, 80, 120, 200};
  for (double limit : limits) {
    double sum_power = 0.0, sum_delay = 0.0;
    double sum_p0 = 0.0, sum_d0 = 0.0;
    for (const std::string& name : suite) {
      Netlist nl = initial_circuit(name, lib);
      PowderOptions opt = bench_options(nl.num_inputs());
      opt.delay_limit_factor = 1.0 + limit / 100.0;
      const PowderReport r = optimize(nl, opt);
      sum_power += r.final_power;
      sum_delay += r.final_delay;
      sum_p0 += r.initial_power;
      sum_d0 += r.initial_delay;
    }
    if (limit == 0) {
      base_power = sum_p0;
      base_delay = sum_d0;
    }
    std::printf("%8.0f %14.2f %14.3f %14.2f %14.3f\n", limit, sum_power,
                sum_power / base_power, sum_delay, sum_delay / base_delay);
    std::fflush(stdout);
  }
  std::printf("\npaper: 26%% reduction at 0%% constraint rising to 38%% at "
              "200%%, two thirds of the extra gain by +15%% delay, no gain "
              "beyond +80%%\n");
  return 0;
}
