// Figure 2 reproduction: the worked power-reduction example.
//
// Paper: reconnecting the XOR input from `a` to `e = a&b` lowers
// sum C(i)*E(i) from 1.555 to 1.132 (their input probabilities are not
// published; with uniform 0.5 inputs our model gives 4.0 -> 3.75 counting
// all signals). The point reproduced here is the *mechanism*: the IS2
// substitution is found, proved permissible, applied, and both effects of
// §3.1 (load moved to a lower-activity signal; the new XOR function's
// activity not higher) are visible in the numbers.

#include <cstdio>

#include "bdd/netlist_bdd.hpp"
#include "powder.hpp"

using namespace powder;

int main() {
  CellLibrary lib = CellLibrary::standard();
  Netlist nl(&lib, "fig2");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId d = nl.add_gate(lib.find("xor2"), {a, c}, "d");
  const GateId f = nl.add_gate(lib.find("and2"), {d, b}, "f");
  const GateId e = nl.add_gate(lib.find("and2"), {a, b}, "e");
  nl.add_output("f_out", f, 0.0);
  nl.add_output("e_out", e, 0.0);
  const Netlist original = nl;

  std::printf("=== Figure 2: power reduction by reconnecting a gate input "
              "===\n\n");
  {
    Simulator sim(nl, 64);
    sim.use_exhaustive_patterns();
    PowerEstimator est(&sim);
    std::printf("circuit A:  sum C*E = %.3f   (paper's circuit A: 1.555 "
                "under its unpublished input probabilities)\n",
                est.total_power());
    std::printf("  per signal:  a: C=%.0f E=%.3f | b: C=%.0f E=%.3f | "
                "c: C=%.0f E=%.3f | d: C=%.0f E=%.3f | e: C=%.0f E=%.3f\n",
                nl.signal_cap(a), est.activity(a), nl.signal_cap(b),
                est.activity(b), nl.signal_cap(c), est.activity(c),
                nl.signal_cap(d), est.activity(d), nl.signal_cap(e),
                est.activity(e));
  }

  const PowderReport r =
      optimize(nl, PowderOptions::builder().patterns(4096).build());

  {
    Simulator sim(nl, 64);
    sim.use_exhaustive_patterns();
    PowerEstimator est(&sim);
    std::printf("\ncircuit B:  sum C*E = %.3f   (paper's circuit B: 1.132)\n",
                est.total_power());
  }
  std::printf("reduction:  %.1f%%   substitutions applied: %d\n",
              r.power_reduction_percent(), r.substitutions_applied);
  std::printf("xor2 'd' inputs after POWDER: %s, %s   (paper: a -> e)\n",
              nl.gate_name(nl.fanin(d, 0)).data(),
              nl.gate_name(nl.fanin(d, 1)).data());
  std::printf("equivalence: %s\n",
              functionally_equivalent(original, nl) ? "OK" : "FAIL");
  return 0;
}
