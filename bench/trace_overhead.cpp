// Verifies the observability plane's headline budget: with every sink
// null, the compiled-in instrumentation may cost at most 2% of an
// untraced optimize() run.
//
// There is no uninstrumented build to diff against, so the bound is
// established from first principles:
//
//   1. microbenchmark the disabled probe — a TraceSpan over a null
//      session plus two arg() calls — through a volatile pointer the
//      compiler cannot constant-fold, giving ns per disabled probe;
//   2. run optimize() with all sinks attached and count how many events
//      the run actually emits (trace events + audit records), which upper-
//      bounds how many probes the same run executes when disabled;
//   3. assert  probes * ns_per_probe * kSafetyFactor <= 2% of the
//      untraced run's wall time.
//
// Emits BENCH_trace.json and a summary on stdout; exits nonzero when the
// bound is violated. Registered as the ctest test `bench_trace_overhead`.
//
// Knobs: POWDER_SUITE, POWDER_PATTERNS, POWDER_THREADS (bench_common.hpp).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/check.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The compiler must believe the session might be non-null, exactly like
/// the optimizer's member pointers, so the probe is read through volatile.
volatile TraceSession* g_null_session = nullptr;
volatile long long g_sink = 0;

double disabled_probe_ns(long long iters) {
  const double t0 = now_ns();
  for (long long i = 0; i < iters; ++i) {
    TraceSpan span(const_cast<TraceSession*>(g_null_session), "probe",
                   "bench");
    span.arg("a", i);
    span.arg("b", i + 1);
    g_sink += i;  // keeps the loop itself from being elided
  }
  return (now_ns() - t0) / static_cast<double>(iters);
}

struct RunCost {
  double wall_ns = 0.0;
  std::uint64_t events = 0;  // trace events + audit records
  int substitutions = 0;
};

RunCost run_once(Netlist circuit, const PowderOptions& base, bool traced) {
  RunCost cost;
  TraceSession trace;
  MetricsRegistry metrics;
  std::ostringstream audit_os;
  AuditLog audit(&audit_os);

  PowderOptions opt = base;
  if (traced) {
    opt.trace.trace = &trace;
    opt.trace.metrics = &metrics;
    opt.trace.audit = &audit;
  }
  const double t0 = now_ns();
  const PowderReport report = optimize(circuit, opt);
  cost.wall_ns = now_ns() - t0;
  cost.events = trace.events_recorded() + trace.dropped() +
                static_cast<std::uint64_t>(audit.records());
  cost.substitutions = report.substitutions_applied;
  return cost;
}

}  // namespace

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const std::vector<std::string> suite = env_suite("quick");
  // Every probe site does strictly less disabled work than the
  // microbenched span+2 args; the factor still pads the estimate for
  // metric-handle branches that fire without emitting an event.
  constexpr double kSafetyFactor = 3.0;
  constexpr double kBudgetPercent = 2.0;

  const double probe_ns = disabled_probe_ns(20'000'000);
  std::printf("disabled probe: %.3f ns\n", probe_ns);

  bool ok = true;
  std::ostringstream json;
  json.precision(17);
  json << "{\"probe_ns\":" << probe_ns << ",\"budget_percent\":"
       << kBudgetPercent << ",\"safety_factor\":" << kSafetyFactor
       << ",\"circuits\":[";
  bool first = true;
  for (const std::string& name : suite) {
    const Netlist circuit = initial_circuit(name, lib);
    const PowderOptions opt = bench_options(circuit.num_inputs());

    // Warm-up plus best-of-3 keeps the denominator honest on noisy CI.
    (void)run_once(circuit, opt, /*traced=*/false);
    RunCost off = run_once(circuit, opt, /*traced=*/false);
    for (int i = 0; i < 2; ++i) {
      const RunCost again = run_once(circuit, opt, /*traced=*/false);
      if (again.wall_ns < off.wall_ns) off = again;
    }
    const RunCost on = run_once(circuit, opt, /*traced=*/true);
    POWDER_CHECK_MSG(on.substitutions == off.substitutions,
                     "tracing changed the optimization result on " << name);

    const double est_overhead_ns =
        static_cast<double>(on.events) * probe_ns * kSafetyFactor;
    const double overhead_pct = 100.0 * est_overhead_ns / off.wall_ns;
    const double traced_pct = 100.0 * (on.wall_ns / off.wall_ns - 1.0);
    const bool pass = overhead_pct <= kBudgetPercent;
    ok = ok && pass;
    std::printf(
        "%-10s off %8.2f ms, on %8.2f ms (%+6.1f%%), %7llu events, "
        "est. off-mode overhead %.4f%%  [%s]\n",
        name.c_str(), off.wall_ns / 1e6, on.wall_ns / 1e6, traced_pct,
        static_cast<unsigned long long>(on.events), overhead_pct,
        pass ? "ok" : "OVER BUDGET");

    if (!first) json << ",";
    first = false;
    json << "{\"name\":\"" << name << "\",\"off_ms\":" << off.wall_ns / 1e6
         << ",\"on_ms\":" << on.wall_ns / 1e6 << ",\"events\":" << on.events
         << ",\"est_overhead_percent\":" << overhead_pct
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
  }
  json << "]}";

  std::ofstream out("BENCH_trace.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_trace.json\n");
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: estimated off-mode overhead exceeds %.1f%%\n",
                 kBudgetPercent);
    return 1;
  }
  return 0;
}
