// Ablation: power-objective vs area-objective greedy selection.
//
// The paper's Table 2 discussion stresses that "optimization for low power
// substantially differs from area optimization" — power reduction may come
// with an area increase and vice versa. This harness makes that concrete:
// the same engine, the same candidate substitutions, the same ATPG proofs,
// but the greedy metric switched between predicted power gain (the paper)
// and exact area gain (RAMBO-style cleanup). Expected shape: the power
// objective wins on power, the area objective wins on area, and the two
// netlists differ.
//
// POWDER_SUITE=quick|fig6|full (default quick).

#include <cstdio>

#include "bench_common.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("quick");

  std::printf("=== Ablation: greedy objective (power vs area) ===\n\n");
  std::printf("%-10s | %10s %10s | %10s %10s | %10s %10s\n", "circuit",
              "pow.red%", "area.red%", "pow.red%", "area.red%", "delta pow",
              "delta area");
  std::printf("%-10s | %21s | %21s |\n", "", "power objective",
              "area objective");

  double sum_pp = 0, sum_pa = 0, sum_ap = 0, sum_aa = 0, n = 0;
  for (const std::string& name : suite) {
    Netlist nlp = initial_circuit(name, lib);
    PowderOptions po = bench_options(nlp.num_inputs());
    const PowderReport rp = optimize(nlp, po);

    Netlist nla = initial_circuit(name, lib);
    PowderOptions ao = bench_options(nla.num_inputs());
    ao.objective = Objective::kArea;
    const PowderReport ra = optimize(nla, ao);

    std::printf("%-10s | %10.1f %10.1f | %10.1f %10.1f | %10.1f %10.1f\n",
                name.c_str(), rp.power_reduction_percent(),
                rp.area_reduction_percent(), ra.power_reduction_percent(),
                ra.area_reduction_percent(),
                rp.power_reduction_percent() - ra.power_reduction_percent(),
                rp.area_reduction_percent() - ra.area_reduction_percent());
    std::fflush(stdout);
    sum_pp += rp.power_reduction_percent();
    sum_pa += rp.area_reduction_percent();
    sum_ap += ra.power_reduction_percent();
    sum_aa += ra.area_reduction_percent();
    n += 1;
  }
  std::printf("%-10s | %10.1f %10.1f | %10.1f %10.1f |\n", "average:",
              sum_pp / n, sum_pa / n, sum_ap / n, sum_aa / n);
  std::printf("\nexpected: power objective >= area objective on power "
              "reduction; the reverse on area — the objectives genuinely "
              "diverge (paper §4.1).\n");
  return 0;
}
