// Table 2 reproduction: contribution of the substitution classes
// (OS2 / IS2 / OS3 / IS3) to the total power and area reduction.
//
// Paper: power contributions 32.5 / 36.5 / 27.6 / 3.4 % — IS2 most
// valuable for power, IS3 marginal; area contributions 171.5 / -11.6 /
// -27.7 / -32.2 % — ALL area saving comes from OS2, every other class
// spends some of it back. The reproduction target is that ordering and
// sign pattern.
//
// POWDER_SUITE=quick|fig6|full selects the circuit set (default fig6).

#include <cstdio>

#include "bench_common.hpp"

using namespace powder;
using namespace powder::bench;

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("fig6");

  double power_delta[4] = {};
  double area_delta[4] = {};
  int applied[4] = {};

  for (const std::string& name : suite) {
    Netlist nl = initial_circuit(name, lib);
    PowderOptions opt = bench_options(nl.num_inputs());
    const PowderReport r = optimize(nl, opt);
    for (int k = 0; k < 4; ++k) {
      power_delta[k] += r.by_class[static_cast<std::size_t>(k)].power_delta;
      area_delta[k] += r.by_class[static_cast<std::size_t>(k)].area_delta;
      applied[k] += r.by_class[static_cast<std::size_t>(k)].applied;
    }
    std::printf("  %-10s done (OS2 %d, IS2 %d, OS3 %d, IS3 %d)\n",
                name.c_str(), r.by_class[0].applied, r.by_class[1].applied,
                r.by_class[2].applied, r.by_class[3].applied);
    std::fflush(stdout);
  }

  const double total_power =
      power_delta[0] + power_delta[1] + power_delta[2] + power_delta[3];
  const double total_area_saved =
      -(area_delta[0] + area_delta[1] + area_delta[2] + area_delta[3]);

  std::printf("\n=== Table 2: contribution of substitution classes ===\n\n");
  std::printf("%-28s %8s %8s %8s %8s\n", "substitution:", "OS2", "IS2", "OS3",
              "IS3");
  std::printf("%-28s %7d %7d %7d %7d\n", "applied count:", applied[0],
              applied[1], applied[2], applied[3]);
  std::printf("%-28s", "power reduction contrib.:");
  for (int k = 0; k < 4; ++k)
    std::printf(" %7.1f%%", total_power > 0 ? 100.0 * power_delta[k] /
                                                  total_power
                                            : 0.0);
  std::printf("   (paper: 32.5 / 36.5 / 27.6 / 3.4)\n");
  std::printf("%-28s", "area reduction contrib.:");
  for (int k = 0; k < 4; ++k)
    std::printf(" %7.1f%%", total_area_saved != 0.0
                                ? 100.0 * -area_delta[k] / total_area_saved
                                : 0.0);
  std::printf("   (paper: 171.5 / -11.6 / -27.7 / -32.2)\n");
  return 0;
}
