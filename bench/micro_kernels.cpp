// Google-benchmark micro-kernels for the library's hot paths: bit-parallel
// simulation, observability extraction, power estimation, candidate
// harvesting, ATPG proofs, and technology mapping. Not a paper experiment;
// engineering hygiene for the optimizer's inner loops.

#include <benchmark/benchmark.h>

#include "atpg/atpg.hpp"
#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "opt/candidates.hpp"
#include "power/power.hpp"

namespace powder {
namespace {

const CellLibrary& lib() {
  static const CellLibrary* kLib = new CellLibrary(CellLibrary::standard());
  return *kLib;
}

const Netlist& mapped(const char* name) {
  static auto* cache = new std::map<std::string, Netlist>();
  auto it = cache->find(name);
  if (it == cache->end())
    it = cache->emplace(name, map_aig(make_benchmark(name), lib())).first;
  return it->second;
}

void BM_Simulation(benchmark::State& state) {
  const Netlist& nl = mapped("C880");
  Simulator sim(nl, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sim.resimulate_all();
    benchmark::DoNotOptimize(sim.signal_prob(nl.outputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * nl.num_cells() *
                          state.range(0));
}
BENCHMARK(BM_Simulation)->Arg(256)->Arg(1024)->Arg(4096);

void BM_StemObservability(benchmark::State& state) {
  const Netlist& nl = mapped("C880");
  Simulator sim(nl, 1024);
  std::vector<GateId> cells;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) == GateKind::kCell) cells.push_back(g);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.stem_observability(cells[i % cells.size()]));
    ++i;
  }
}
BENCHMARK(BM_StemObservability);

void BM_PowerEstimate(benchmark::State& state) {
  const Netlist& nl = mapped("pair");
  Simulator sim(nl, 1024);
  for (auto _ : state) {
    PowerEstimator est(&sim);
    benchmark::DoNotOptimize(est.total_power());
  }
}
BENCHMARK(BM_PowerEstimate);

void BM_CandidateHarvest(benchmark::State& state) {
  const Netlist& nl = mapped("duke2");
  Simulator sim(nl, 1024);
  PowerEstimator est(&sim);
  for (auto _ : state) {
    CandidateFinder finder(nl, est);
    benchmark::DoNotOptimize(finder.find().size());
  }
}
BENCHMARK(BM_CandidateHarvest);

void BM_AtpgProof(benchmark::State& state) {
  const Netlist& nl = mapped("misex3");
  AtpgChecker atpg(nl);
  // Exercise stuck-at checks across the circuit (mix of testable and
  // redundant).
  std::vector<GateId> cells;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) == GateKind::kCell) cells.push_back(g);
  std::size_t i = 0;
  for (auto _ : state) {
    const GateId g = cells[i % cells.size()];
    benchmark::DoNotOptimize(
        atpg.check_stuck_at(ReplacementSite{g, std::nullopt}, i & 1));
    ++i;
  }
}
BENCHMARK(BM_AtpgProof);

void BM_TechnologyMapping(benchmark::State& state) {
  const Aig aig = make_benchmark("C432");
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_aig(aig, lib()).num_cells());
  }
}
BENCHMARK(BM_TechnologyMapping);

void BM_BenchmarkGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_benchmark("duke2").num_ands());
  }
}
BENCHMARK(BM_BenchmarkGeneration);

// ---- layout kernels (BENCH_layout.json) ------------------------------------
// Micro-benchmarks for the cache-compact data plane (DESIGN.md §7): pure
// traversal, full resimulation, and signature hashing. These are the
// memory-bound loops the SoA/pin-arena layout exists for; the bench_layout
// ctest emits them as BENCH_layout.json for before/after comparison.

void BM_LayoutFaninWalk(benchmark::State& state) {
  const Netlist& nl = mapped("C880");
  const std::vector<GateId> order = nl.topo_order();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const GateId g : order) {
      for (const GateId fi : nl.fanins(g)) acc += fi;
      for (const FanoutRef& br : nl.fanouts(g))
        acc += br.gate + static_cast<std::uint64_t>(br.pin);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_LayoutFaninWalk);

void BM_LayoutFullResim(benchmark::State& state) {
  const Netlist& nl = mapped("pair");
  Simulator sim(nl, 1024);
  for (auto _ : state) {
    sim.resimulate_all();
    benchmark::DoNotOptimize(sim.signal_prob(nl.outputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * nl.num_cells() * 1024);
}
BENCHMARK(BM_LayoutFullResim);

void BM_LayoutSignatureRehash(benchmark::State& state) {
  const Netlist& nl = mapped("C880");
  Simulator sim(nl, 1024);
  sim.resimulate_all();
  const std::vector<GateId> order = nl.topo_order();
  for (auto _ : state) {
    std::uint64_t mix = 0;
    for (const GateId g : order) {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the signature
      for (const std::uint64_t w : sim.value(g)) {
        h ^= w;
        h *= 1099511628211ull;
      }
      mix ^= h;
    }
    benchmark::DoNotOptimize(mix);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_LayoutSignatureRehash);

}  // namespace
}  // namespace powder

BENCHMARK_MAIN();
