#pragma once
// Shared helpers for the experiment harness binaries.
//
// Environment knobs (all optional):
//   POWDER_SUITE=quick|fig6|full   circuit set (each bench has a default)
//   POWDER_PATTERNS=<n>            simulation patterns (default 1024)
//   POWDER_REPEAT=<n>              inner-loop applications per harvest
//   POWDER_OUTER=<n>               max outer iterations
//   POWDER_THREADS=<n>             worker threads (default 1; 0 = all cores)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "mapper/mapper.hpp"
#include "powder.hpp"

namespace powder::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline std::vector<std::string> env_suite(const char* fallback) {
  const char* v = std::getenv("POWDER_SUITE");
  const std::string s = v != nullptr ? v : fallback;
  if (s == "quick") return quick_suite();
  if (s == "fig6") return fig6_suite();
  return table1_suite();
}

inline std::vector<double> input_probs(int num_inputs);

inline PowderOptions bench_options(int num_inputs) {
  return PowderOptions::builder()
      .patterns(env_int("POWDER_PATTERNS", 1024))
      .repeat(env_int("POWDER_REPEAT", 25))
      .max_outer_iterations(env_int("POWDER_OUTER", 16))
      .threads(env_int("POWDER_THREADS", 1))
      .pi_probs(input_probs(num_inputs))
      .build();
}

/// Deterministic non-uniform primary-input probabilities. The paper's
/// experiments use externally supplied signal probabilities (from the POSE
/// setup); those exact values are not published, so the harness uses a
/// fixed, reproducible profile with a realistic spread. The same profile
/// is used for mapping and for POWDER ("the same signal probabilities ...
/// were assumed during synthesis ... and optimization").
inline std::vector<double> input_probs(int num_inputs) {
  std::vector<double> p(static_cast<std::size_t>(num_inputs));
  for (int i = 0; i < num_inputs; ++i)
    p[static_cast<std::size_t>(i)] =
        0.15 + 0.07 * static_cast<double>((i * 7) % 11);
  return p;
}

/// Builds the low-power initial circuit for `name` (the POSE substitute):
/// exact/synthetic function, power-driven mapping under the harness input
/// probabilities.
inline Netlist initial_circuit(const std::string& name,
                               const CellLibrary& lib) {
  const Aig aig = make_benchmark(name);
  MapperOptions opt;
  opt.mode = MapMode::kPower;
  opt.pi_probs = input_probs(aig.num_inputs());
  return map_aig(aig, lib, opt);
}

}  // namespace powder::bench
