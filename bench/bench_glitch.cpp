// Glitch-aware optimization experiment (DESIGN.md §13): does driving the
// POWDER greedy loop with the event-driven timed power model produce
// circuits with lower glitch-inclusive power than optimizing the paper's
// zero-delay proxy?
//
// For each circuit: measure the timed estimate of the initial mapped
// netlist, optimize once per power model, then score BOTH results with the
// same timed estimate (identical stimulus and vector pairs, so the
// comparison is apples-to-apples). The bound asserted on every ctest pass:
// on at least one circuit the timed-optimized netlist must beat the
// zero-delay-optimized one on glitch-inclusive power, and no run may trip
// a signature guard. Emits BENCH_glitch.json in the working directory.
// Registered as the ctest test `bench_glitch` (label `glitch`).
//
// Knobs: POWDER_SUITE (default quick), POWDER_PATTERNS, POWDER_REPEAT,
// POWDER_OUTER, POWDER_THREADS, POWDER_GLITCH_PAIRS (default 64).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "power/glitch.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeRun {
  double wall_ms = 0.0;
  PowderReport report;
  GlitchEstimate timed;  ///< scored on the optimized netlist
};

ModeRun run_mode(const Netlist& input, PowerModelKind kind,
                 const GlitchOptions& gopt) {
  ModeRun m;
  Netlist nl = input;
  PowderOptions opt = PowderOptions::builder()
                          .patterns(env_int("POWDER_PATTERNS", 1024))
                          .repeat(env_int("POWDER_REPEAT", 25))
                          .max_outer_iterations(env_int("POWDER_OUTER", 16))
                          .threads(env_int("POWDER_THREADS", 1))
                          .pi_probs(input_probs(input.num_inputs()))
                          .power_model(kind)
                          .glitch(gopt)
                          .build();
  const double t0 = now_ms();
  m.report = optimize(nl, opt);
  m.wall_ms = now_ms() - t0;
  m.timed = estimate_glitch_power(nl, gopt);
  return m;
}

}  // namespace

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const auto suite = env_suite("quick");

  std::printf("=== Glitch-aware vs zero-delay optimization ===\n\n");
  std::printf("%-10s | %10s %8s | %10s %10s | %7s\n", "circuit", "initial",
              "glitch%", "0d-opt", "timed-opt", "delta%");

  std::ostringstream js;
  js << "{\"circuits\":[";
  int wins = 0;
  bool guard_failed = false;
  bool first = true;
  for (const std::string& name : suite) {
    const Netlist input = initial_circuit(name, lib);
    GlitchOptions gopt;
    gopt.stimulus.prob = input_probs(input.num_inputs());
    gopt.num_vector_pairs = env_int("POWDER_GLITCH_PAIRS", 64);
    const GlitchEstimate before = estimate_glitch_power(input, gopt);

    const ModeRun zd = run_mode(input, PowerModelKind::kZeroDelay, gopt);
    const ModeRun td = run_mode(input, PowerModelKind::kTimed, gopt);
    guard_failed |= zd.report.diagnostics.guard_failed ||
                    td.report.diagnostics.guard_failed;
    // Delta of the timed-optimized result versus the zero-delay-optimized
    // one, both scored glitch-inclusively: positive = timed model won.
    const double delta =
        100.0 * (zd.timed.timed_power - td.timed.timed_power) /
        zd.timed.timed_power;
    if (td.timed.timed_power <= zd.timed.timed_power) ++wins;

    std::printf("%-10s | %10.2f %7.1f%% | %10.2f %10.2f | %+6.1f%%\n",
                name.c_str(), before.timed_power,
                100.0 * before.glitch_share(), zd.timed.timed_power,
                td.timed.timed_power, delta);
    std::fflush(stdout);

    if (!first) js << ",";
    first = false;
    js << "{\"name\":\"" << name << "\""
       << ",\"initial_timed_power\":" << before.timed_power
       << ",\"initial_glitch_share\":" << before.glitch_share()
       << ",\"zero_delay_opt\":{\"timed_power\":" << zd.timed.timed_power
       << ",\"glitch_share\":" << zd.timed.glitch_share()
       << ",\"applied\":" << zd.report.substitutions_applied
       << ",\"wall_ms\":" << zd.wall_ms << "}"
       << ",\"timed_opt\":{\"timed_power\":" << td.timed.timed_power
       << ",\"glitch_share\":" << td.timed.glitch_share()
       << ",\"applied\":" << td.report.substitutions_applied
       << ",\"timed_resims\":"
       << td.report.diagnostics.power_model.timed_resims
       << ",\"event_overflows\":"
       << td.report.diagnostics.power_model.event_overflows
       << ",\"wall_ms\":" << td.wall_ms << "}"
       << ",\"timed_vs_zero_delay_delta_pct\":" << delta << "}";
  }
  js << "],\"wins\":" << wins << ",\"guard_failed\":"
     << (guard_failed ? "true" : "false") << "}\n";
  std::ofstream("BENCH_glitch.json") << js.str();
  std::printf("\nwrote BENCH_glitch.json (%d/%zu circuits where the timed "
              "model matched or beat the zero-delay proxy)\n",
              wins, suite.size());

  if (guard_failed) {
    std::fprintf(stderr, "FAIL: a signature guard failed\n");
    return 1;
  }
  if (wins < 1) {
    std::fprintf(stderr,
                 "FAIL: the timed model never beat the zero-delay proxy on "
                 "glitch-inclusive power\n");
    return 1;
  }
  return 0;
}
