// Verifies the introspection plane's budget: with the progress stream and
// the power-attribution sink both null, their compiled-in probe sites may
// cost at most 2% of an unobserved optimize() run.
//
// Mirrors trace_overhead.cpp's first-principles bound (there is no build
// without the probes to diff against):
//
//   1. microbenchmark the disabled probe — two null-pointer branches, the
//      shape of every `if (prog != nullptr) ... if (attr != nullptr) ...`
//      site — through volatile pointers the compiler cannot fold away;
//   2. run optimize() with both sinks attached and count the events they
//      actually absorb (progress lines, ledger commits, delta-bus
//      notifications, plus one tick per harvested candidate), which
//      upper-bounds the disabled-path probe executions of the same run;
//   3. assert  probes * ns_per_probe * kSafetyFactor <= 2% of the
//      unobserved run's wall time.
//
// Emits BENCH_attribution.json and a summary on stdout; exits nonzero when
// the bound is violated. Registered as the ctest test
// `bench_attribution_overhead`.
//
// Knobs: POWDER_SUITE, POWDER_PATTERNS, POWDER_THREADS (bench_common.hpp).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "power/attribution.hpp"
#include "trace/progress.hpp"
#include "util/check.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The optimizer holds the sinks as member pointers it null-checks at each
/// probe site; volatile reproduces exactly that unfoldable branch pair.
volatile ProgressStream* g_null_progress = nullptr;
volatile PowerAttribution* g_null_attribution = nullptr;
volatile long long g_sink = 0;

double disabled_probe_ns(long long iters) {
  const double t0 = now_ns();
  for (long long i = 0; i < iters; ++i) {
    if (const_cast<ProgressStream*>(g_null_progress) != nullptr) g_sink += 1;
    if (const_cast<PowerAttribution*>(g_null_attribution) != nullptr)
      g_sink += 2;
    g_sink += i;  // keeps the loop itself from being elided
  }
  return (now_ns() - t0) / static_cast<double>(iters);
}

struct RunCost {
  double wall_ns = 0.0;
  long long events = 0;  // progress lines + ledger feeds + delta-bus + ticks
  int substitutions = 0;
};

RunCost run_once(Netlist circuit, const PowderOptions& base, bool observed) {
  RunCost cost;
  std::ostringstream progress_os;
  ProgressStream prog(&progress_os);
  PowerAttribution attr;

  PowderOptions opt = base;
  if (observed) {
    opt.trace.progress = &prog;
    opt.trace.attribution = &attr;
  }
  const double t0 = now_ns();
  const PowderReport report = optimize(circuit, opt);
  cost.wall_ns = now_ns() - t0;
  // Every progress line, ledger commit and delta notification was one
  // enabled probe firing; the per-candidate heartbeat ticks fire even when
  // no event is emitted, so count one per harvested candidate too.
  cost.events = prog.events_written() + attr.commits_recorded() +
                attr.rollbacks_recorded() + attr.deltas_observed() +
                report.candidates_harvested;
  cost.substitutions = report.substitutions_applied;
  return cost;
}

}  // namespace

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const std::vector<std::string> suite = env_suite("quick");
  // Each probe site is one or two pointer null-checks — strictly less than
  // the microbenched pair; the factor pads for cache effects around the
  // cold branches.
  constexpr double kSafetyFactor = 3.0;
  constexpr double kBudgetPercent = 2.0;

  const double probe_ns = disabled_probe_ns(20'000'000);
  std::printf("disabled probe: %.3f ns\n", probe_ns);

  bool ok = true;
  std::ostringstream json;
  json.precision(17);
  json << "{\"probe_ns\":" << probe_ns << ",\"budget_percent\":"
       << kBudgetPercent << ",\"safety_factor\":" << kSafetyFactor
       << ",\"circuits\":[";
  bool first = true;
  for (const std::string& name : suite) {
    const Netlist circuit = initial_circuit(name, lib);
    const PowderOptions opt = bench_options(circuit.num_inputs());

    // Warm-up plus best-of-3 keeps the denominator honest on noisy CI.
    (void)run_once(circuit, opt, /*observed=*/false);
    RunCost off = run_once(circuit, opt, /*observed=*/false);
    for (int i = 0; i < 2; ++i) {
      const RunCost again = run_once(circuit, opt, /*observed=*/false);
      if (again.wall_ns < off.wall_ns) off = again;
    }
    const RunCost on = run_once(circuit, opt, /*observed=*/true);
    POWDER_CHECK_MSG(on.substitutions == off.substitutions,
                     "introspection changed the optimization result on "
                         << name);

    const double est_overhead_ns =
        static_cast<double>(on.events) * probe_ns * kSafetyFactor;
    const double overhead_pct = 100.0 * est_overhead_ns / off.wall_ns;
    const double observed_pct = 100.0 * (on.wall_ns / off.wall_ns - 1.0);
    const bool pass = overhead_pct <= kBudgetPercent;
    ok = ok && pass;
    std::printf(
        "%-10s off %8.2f ms, on %8.2f ms (%+6.1f%%), %7lld events, "
        "est. off-mode overhead %.4f%%  [%s]\n",
        name.c_str(), off.wall_ns / 1e6, on.wall_ns / 1e6, observed_pct,
        on.events, overhead_pct, pass ? "ok" : "OVER BUDGET");

    if (!first) json << ",";
    first = false;
    json << "{\"name\":\"" << name << "\",\"off_ms\":" << off.wall_ns / 1e6
         << ",\"on_ms\":" << on.wall_ns / 1e6 << ",\"events\":" << on.events
         << ",\"est_overhead_percent\":" << overhead_pct
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
  }
  json << "]}";

  std::ofstream out("BENCH_attribution.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_attribution.json\n");
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: estimated off-mode overhead exceeds %.1f%%\n",
                 kBudgetPercent);
    return 1;
  }
  return 0;
}
