// Measures the payoff of the event-driven incremental core (DESIGN.md §6):
// after every journal commit, how much does it cost to bring the
// self-maintaining caches (simulator dirty-region resim, power refresh,
// incremental STA) back in sync, versus recomputing everything from
// scratch the way the pre-incremental code did?
//
// Emits BENCH_incremental.json in the working directory and a table on
// stdout. Registered as a ctest test (quick suite), so the comparison runs
// — and the incremental paths get exercised end to end — on every CI pass.
//
// Knobs: POWDER_SUITE, POWDER_PATTERNS (bench_common.hpp), and
// POWDER_COMMITS (journal commits measured per circuit, default 24).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "opt/candidates.hpp"
#include "opt/journal.hpp"
#include "timing/incremental_timing.hpp"
#include "timing/timing.hpp"
#include "util/check.hpp"

using namespace powder;
using namespace powder::bench;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string name;
  int commits = 0;
  double inc_us = 0.0;   // total incremental resync time
  double full_us = 0.0;  // total from-scratch recompute time
  std::uint64_t sta_inc = 0, sta_full = 0;
  std::size_t cand_refreshed = 0, cand_index = 0;
  double checksum = 0.0;  // keeps the full recompute from being elided
};

Row measure(const std::string& name, const CellLibrary& lib, int patterns,
            int max_commits) {
  Row row;
  row.name = name;
  Netlist nl = initial_circuit(name, lib);

  Simulator sim(nl, patterns, input_probs(nl.num_inputs()), /*seed=*/7);
  PowerEstimator est(&sim);
  CandidateFinder finder(nl, est, {}, /*seed=*/7);
  SubstJournal journal(&nl);
  IncrementalTiming timing(nl);
  (void)timing.circuit_delay();

  // The from-scratch rig: a second simulator/estimator pair over the same
  // netlist, fully recomputed after every commit (what every commit cost
  // before the delta bus existed).
  Simulator full_sim(nl, patterns, input_probs(nl.num_inputs()), /*seed=*/7);
  PowerEstimator full_est(&full_sim);

  const std::vector<CandidateSub> cands = finder.find();
  for (const CandidateSub& sub : cands) {
    if (row.commits >= max_commits) break;
    if (!substitution_still_valid(nl, sub)) continue;
    try {
      journal.apply(sub);
    } catch (const CheckError&) {
      continue;
    }
    ++row.commits;

    double t0 = now_us();
    est.refresh();  // sim dirty-region resim + power refresh
    timing.refresh();
    row.inc_us += now_us() - t0;

    t0 = now_us();
    full_sim.resimulate_all();
    full_est.estimate_all();
    const TimingAnalysis full = analyze_timing(nl);
    row.full_us += now_us() - t0;
    row.checksum += full.circuit_delay + full_est.total_power();
  }

  // Candidate-index maintenance after the commit batch: gates re-hashed vs
  // what a full rebuild would touch.
  est.refresh();
  (void)finder.find();
  row.cand_refreshed = finder.last_refresh_count();
  row.cand_index = finder.index_size();

  row.sta_inc = timing.nodes_visited();
  row.sta_full = timing.full_equiv_visits();
  return row;
}

}  // namespace

int main() {
  const CellLibrary lib = CellLibrary::standard();
  const std::vector<std::string> suite = env_suite("quick");
  const int patterns = env_int("POWDER_PATTERNS", 1024);
  const int max_commits = env_int("POWDER_COMMITS", 24);

  std::printf("=== incremental resync vs full recompute (per commit) ===\n");
  std::printf("%-10s %8s %14s %14s %9s %12s %12s\n", "circuit", "commits",
              "inc us/commit", "full us/commit", "speedup", "sta visits",
              "cand refresh");

  std::vector<Row> rows;
  for (const std::string& name : suite)
    rows.push_back(measure(name, lib, patterns, max_commits));

  FILE* json = std::fopen("BENCH_incremental.json", "w");
  POWDER_CHECK_MSG(json != nullptr, "cannot write BENCH_incremental.json");
  std::fprintf(json, "{\"patterns\":%d,\"circuits\":[", patterns);

  bool first = true;
  for (const Row& r : rows) {
    const double inc = r.commits > 0 ? r.inc_us / r.commits : 0.0;
    const double full = r.commits > 0 ? r.full_us / r.commits : 0.0;
    const double speedup = inc > 0.0 ? full / inc : 0.0;
    const double sta_frac =
        r.sta_full > 0 ? static_cast<double>(r.sta_inc) /
                             static_cast<double>(r.sta_full)
                       : 0.0;
    const double cand_frac =
        r.cand_index > 0 ? static_cast<double>(r.cand_refreshed) /
                               static_cast<double>(r.cand_index)
                         : 0.0;
    std::printf("%-10s %8d %14.1f %14.1f %8.1fx %5.1f%% full %5.1f%% full\n",
                r.name.c_str(), r.commits, inc, full, speedup,
                100.0 * sta_frac, 100.0 * cand_frac);
    std::fprintf(json,
                 "%s{\"name\":\"%s\",\"commits\":%d,"
                 "\"incremental_us_per_commit\":%.3f,"
                 "\"full_us_per_commit\":%.3f,\"speedup\":%.3f,"
                 "\"sta_incremental_visits\":%llu,"
                 "\"sta_full_equiv_visits\":%llu,"
                 "\"candidate_gates_refreshed\":%zu,"
                 "\"candidate_index_size\":%zu}",
                 first ? "" : ",", r.name.c_str(), r.commits, inc, full,
                 speedup, static_cast<unsigned long long>(r.sta_inc),
                 static_cast<unsigned long long>(r.sta_full),
                 r.cand_refreshed, r.cand_index);
    first = false;
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_incremental.json\n");
  return 0;
}
