#include "io/blif.hpp"

#include <span>

#include <map>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace powder {

namespace {

/// Parse failure with position context. Every diagnostic names the 1-based
/// source line (of the first physical line when continuations were joined)
/// and, when useful, the offending token. Thrown as a typed input Error so
/// callers can distinguish bad files from engine failures.
[[noreturn]] void blif_fail(int line, const std::string& msg,
                            std::string_view near = {}) {
  std::ostringstream os;
  os << "BLIF parse error at line " << line << ": " << msg;
  if (!near.empty()) os << " (near '" << near << "')";
  throw Error::input(os.str());
}

}  // namespace

std::string write_blif(const Netlist& netlist) {
  // Latch pseudo gates are sequential bookkeeping, not interface nets: the
  // Q pseudo-PIs stay out of .inputs and the D pseudo-POs out of .outputs;
  // both reappear as .latch lines instead.
  std::vector<std::uint8_t> latch_gate(netlist.num_slots(), 0);
  for (const Latch& l : netlist.latches()) {
    latch_gate[l.input] = 1;
    latch_gate[l.output] = 1;
  }
  std::ostringstream os;
  os << ".model " << netlist.name() << "\n.inputs";
  for (GateId g : netlist.inputs())
    if (!latch_gate[g]) os << ' ' << netlist.gate_name(g);
  os << "\n.outputs";
  for (GateId g : netlist.outputs())
    if (!latch_gate[g]) os << ' ' << netlist.gate_name(g);
  os << '\n';
  for (const Latch& l : netlist.latches())
    os << ".latch " << netlist.gate_name(netlist.fanin(l.input, 0)) << ' '
       << netlist.gate_name(l.output) << ' ' << l.init << '\n';
  for (GateId g : netlist.topo_order()) {
    if (netlist.kind(g) != GateKind::kCell) continue;
    const Cell& cell = netlist.cell_of(g);
    os << ".gate " << cell.name;
    const std::span<const GateId> fanins = netlist.fanins(g);
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
      os << ' ' << cell.pins[static_cast<std::size_t>(pin)].name << '='
         << netlist.gate_name(fanins[static_cast<std::size_t>(pin)]);
    os << " O=" << netlist.gate_name(g) << '\n';
  }
  // Output connections: each PO is an alias of its driver. BLIF expresses
  // this with a buffer .names when the net names differ. Latch pseudo-POs
  // never surface as nets, so they need no alias.
  for (GateId o : netlist.outputs()) {
    if (latch_gate[o]) continue;
    const GateId driver = netlist.fanin(o, 0);
    if (netlist.gate_name(o) != netlist.gate_name(driver))
      os << ".names " << netlist.gate_name(driver) << ' '
         << netlist.gate_name(o) << "\n1 1\n";
  }
  os << ".end\n";
  return os.str();
}

namespace {

Netlist read_blif_impl(std::string_view text, const CellLibrary& library) {
  // Join continuation lines (trailing backslash) and strip comments,
  // remembering for each logical line the physical line it started on so
  // diagnostics can point back into the original file.
  struct Line {
    std::string text;
    int number;  // 1-based physical line of the first fragment
  };
  std::vector<Line> lines;
  {
    std::string cur;
    int cur_start = 0, lineno = 0;
    std::istringstream is{std::string(text)};
    std::string raw;
    while (std::getline(is, raw)) {
      ++lineno;
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      std::string_view t = trim(raw);
      if (cur.empty()) cur_start = lineno;
      if (!t.empty() && t.back() == '\\') {
        cur += std::string(t.substr(0, t.size() - 1));
        cur += ' ';
        continue;
      }
      cur += std::string(t);
      if (!cur.empty()) lines.push_back(Line{cur, cur_start});
      cur.clear();
    }
    if (!cur.empty()) lines.push_back(Line{cur, cur_start});
  }

  std::string model = "blif";
  std::vector<std::string> input_names, output_names;
  int outputs_line = 0;
  struct GateRec {
    CellId cell;
    std::vector<std::string> fanin_nets;  // in pin order
    std::string out_net;
    int line;  // source line, for diagnostics
  };
  std::vector<GateRec> gates;
  // Buffer aliases out_net -> in_net introduced by ".names a b / 1 1".
  struct Alias {
    std::string out, in;
    int line;
  };
  std::vector<Alias> aliases;
  // Sequential elements: .latch <input> <output> [<type> <control>] [<init>].
  struct LatchRec {
    std::string in_net, out_net;
    int init;
    int line;
  };
  std::vector<LatchRec> latch_recs;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int ln = lines[li].number;
    const auto tok = split(lines[li].text);
    if (tok.empty()) continue;
    if (tok[0] == ".model") {
      if (tok.size() > 1) model = std::string(tok[1]);
    } else if (tok[0] == ".inputs") {
      for (std::size_t i = 1; i < tok.size(); ++i)
        input_names.emplace_back(tok[i]);
    } else if (tok[0] == ".outputs") {
      outputs_line = ln;
      for (std::size_t i = 1; i < tok.size(); ++i)
        output_names.emplace_back(tok[i]);
    } else if (tok[0] == ".gate") {
      if (tok.size() < 3)
        blif_fail(ln, ".gate needs a cell name and pin bindings",
                  lines[li].text);
      const CellId cid = library.find(tok[1]);
      if (cid == kInvalidCell)
        blif_fail(ln, "cell not in library", tok[1]);
      const Cell& cell = library.cell(cid);
      GateRec rec;
      rec.cell = cid;
      rec.line = ln;
      rec.fanin_nets.resize(cell.pins.size());
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const std::size_t eq = tok[i].find('=');
        if (eq == std::string_view::npos)
          blif_fail(ln, "pin binding is not of the form pin=net", tok[i]);
        const std::string pin(tok[i].substr(0, eq));
        const std::string net(tok[i].substr(eq + 1));
        if (pin.empty() || net.empty())
          blif_fail(ln, "pin binding has an empty pin or net name", tok[i]);
        if (pin == "O" || pin == "o" || pin == "out" || pin == "Y") {
          rec.out_net = net;
          continue;
        }
        bool found = false;
        for (std::size_t p = 0; p < cell.pins.size(); ++p)
          if (cell.pins[p].name == pin) {
            rec.fanin_nets[p] = net;
            found = true;
          }
        if (!found)
          blif_fail(ln, "cell " + cell.name + " has no pin named '" + pin +
                            "'",
                    tok[i]);
      }
      if (rec.out_net.empty())
        blif_fail(ln, ".gate has no output binding (O=...)", lines[li].text);
      gates.push_back(std::move(rec));
    } else if (tok[0] == ".names") {
      // Accept: constants and single-input buffers only.
      std::vector<std::string> nets;
      for (std::size_t i = 1; i < tok.size(); ++i) nets.emplace_back(tok[i]);
      if (nets.empty()) blif_fail(ln, ".names without any net");
      // Gather the cover body (subsequent lines not starting with '.').
      std::vector<std::string> body;
      while (li + 1 < lines.size() && lines[li + 1].text[0] != '.')
        body.push_back(lines[++li].text);
      if (nets.size() == 1) {
        const CellId cid =
            body.empty() ? library.const0() : library.const1();
        if (cid == kInvalidCell)
          blif_fail(ln, "library lacks constant cells for constant .names",
                    nets[0]);
        gates.push_back(GateRec{cid, {}, nets[0], ln});
      } else if (nets.size() == 2 && body.size() == 1 &&
                 trim(body[0]) == "1 1") {
        aliases.push_back(Alias{nets[1], nets[0], ln});
      } else {
        blif_fail(ln,
                  ".names logic is not supported in mapped BLIF "
                  "(only constants and '1 1' buffers)",
                  lines[li].text);
      }
    } else if (tok[0] == ".latch") {
      // .latch <input> <output> [<type> <control>] [<init-val>]; the clock
      // is single and implicit here, so a type/control pair is validated
      // and dropped. Missing init defaults to 3 (unknown), per SIS.
      if (tok.size() < 3 || tok.size() > 6)
        blif_fail(ln, ".latch needs an input and an output net",
                  lines[li].text);
      LatchRec rec;
      rec.in_net = std::string(tok[1]);
      rec.out_net = std::string(tok[2]);
      rec.init = 3;
      rec.line = ln;
      std::size_t next = 3;
      if (tok.size() >= 5) {
        const std::string_view type = tok[3];
        if (type != "fe" && type != "re" && type != "ah" && type != "al" &&
            type != "as")
          blif_fail(ln, ".latch type must be fe, re, ah, al or as", tok[3]);
        next = 5;  // tok[4] is the control net
      }
      if (tok.size() > next) {
        const std::string_view iv = tok[next];
        if (iv.size() != 1 || iv[0] < '0' || iv[0] > '3')
          blif_fail(ln, ".latch init value must be 0, 1, 2 or 3", iv);
        rec.init = iv[0] - '0';
      }
      latch_recs.push_back(std::move(rec));
    } else if (tok[0] == ".end" || tok[0] == ".exdc") {
      break;
    } else {
      blif_fail(ln, "unsupported BLIF construct", tok[0]);
    }
  }

  Netlist netlist(&library, model);
  // Pre-size the SoA columns and pin arena: one slot per PI/PO/gate and a
  // pin-count estimate of 4 per instance (arena slabs round up internally).
  netlist.reserve(
      input_names.size() + output_names.size() + gates.size() +
          2 * latch_recs.size(),
      4 * gates.size());
  std::unordered_map<std::string, GateId> net_driver;
  for (const std::string& n : input_names)
    net_driver.emplace(n, netlist.add_input(n));

  // Latch outputs drive their Q nets as pseudo primary inputs.
  std::vector<GateId> latch_q(latch_recs.size(), kNullGate);
  for (std::size_t i = 0; i < latch_recs.size(); ++i) {
    const LatchRec& lr = latch_recs[i];
    if (net_driver.count(lr.out_net) != 0)
      blif_fail(lr.line, "net is driven more than once", lr.out_net);
    latch_q[i] = netlist.add_input(lr.out_net);
    net_driver.emplace(lr.out_net, latch_q[i]);
  }

  std::unordered_map<std::string, std::size_t> gate_of_net;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (net_driver.count(gates[i].out_net) != 0 ||
        !gate_of_net.emplace(gates[i].out_net, i).second)
      blif_fail(gates[i].line, "net is driven more than once",
                gates[i].out_net);
  }
  std::unordered_map<std::string, std::string> alias_of;
  for (const Alias& a : aliases) {
    if (gate_of_net.count(a.out) != 0 || net_driver.count(a.out) != 0 ||
        !alias_of.emplace(a.out, a.in).second)
      blif_fail(a.line, "net is driven more than once", a.out);
  }

  // Recursive instantiation in dependency order. `ref_line` is the source
  // line that referenced `net`, so an undriven net is reported where it is
  // used, not as a generic end-of-parse failure.
  std::vector<std::uint8_t> state(gates.size(), 0);
  auto instantiate = [&](auto&& self, const std::string& net,
                         int ref_line) -> GateId {
    if (const auto it = net_driver.find(net); it != net_driver.end())
      return it->second;
    if (const auto al = alias_of.find(net); al != alias_of.end()) {
      const GateId g = self(self, al->second, ref_line);
      net_driver.emplace(net, g);
      return g;
    }
    const auto it = gate_of_net.find(net);
    if (it == gate_of_net.end())
      blif_fail(ref_line, "net has no driver (not an input, .gate output, "
                          "or alias)",
                net);
    const std::size_t gi = it->second;
    if (state[gi] == 1)
      blif_fail(gates[gi].line, "combinational cycle through net", net);
    state[gi] = 1;
    std::vector<GateId> fanins;
    for (const std::string& fn : gates[gi].fanin_nets) {
      if (fn.empty())
        blif_fail(gates[gi].line, "gate leaves an input pin unbound", net);
      fanins.push_back(self(self, fn, gates[gi].line));
    }
    state[gi] = 2;
    const GateId g = netlist.add_gate(gates[gi].cell, fanins, net);
    net_driver.emplace(net, g);
    return g;
  };

  for (const std::string& out : output_names) {
    const GateId driver = instantiate(instantiate, out, outputs_line);
    // Gate labels are unique; when the output net *is* the driver's label
    // (direct `.gate ... O=out`), the PO gate needs its own name. Via a
    // buffer alias the names already differ, keeping write/read
    // round-trips stable.
    const std::string po_name =
        netlist.gate_name(driver) == out ? out + "_po" : out;
    netlist.add_output(po_name, driver);
  }
  // Latch inputs sample their D nets through pseudo primary outputs. All D
  // cones are instantiated first so the synthetic pseudo-PO names can be
  // checked against every net the netlist will actually contain.
  std::vector<GateId> latch_d(latch_recs.size(), kNullGate);
  for (std::size_t i = 0; i < latch_recs.size(); ++i)
    latch_d[i] =
        instantiate(instantiate, latch_recs[i].in_net, latch_recs[i].line);
  for (std::size_t i = 0; i < latch_recs.size(); ++i) {
    std::string li_name = latch_recs[i].out_net + "_li";
    while (netlist.names().contains(li_name)) li_name += "_";
    const GateId po = netlist.add_output(li_name, latch_d[i]);
    netlist.add_latch(po, latch_q[i], latch_recs[i].init);
  }
  return netlist;
}

}  // namespace

Netlist read_blif(std::string_view text, const CellLibrary& library) {
  try {
    return read_blif_impl(text, library);
  } catch (const Error&) {
    throw;  // already typed (blif_fail)
  } catch (const CheckError& e) {
    // Internal invariant checks (duplicate gate labels, malformed nets)
    // tripped by hostile input are input errors at this boundary.
    throw Error::input(e.what());
  } catch (const std::exception& e) {
    throw Error::input(std::string("BLIF parse failure: ") + e.what());
  }
}

namespace {

SopNetwork read_pla_impl(std::string_view text, std::string name) {
  SopNetwork sop;
  sop.name = std::move(name);
  int ni = -1, no = -1;
  std::istringstream is{std::string(text)};
  std::string raw;
  while (std::getline(is, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const auto tok = split(raw);
    if (tok.empty()) continue;
    if (tok[0] == ".i") {
      POWDER_CHECK_MSG(tok.size() >= 2, ".i without a count");
      ni = std::stoi(std::string(tok[1]));
      POWDER_CHECK_MSG(ni > 0, "non-positive .i count");
    } else if (tok[0] == ".o") {
      POWDER_CHECK_MSG(tok.size() >= 2, ".o without a count");
      POWDER_CHECK_MSG(ni > 0, ".o before .i");
      no = std::stoi(std::string(tok[1]));
      POWDER_CHECK_MSG(no > 0, "non-positive .o count");
      sop.outputs.assign(static_cast<std::size_t>(no), Cover(ni));
    } else if (tok[0] == ".ilb") {
      for (std::size_t i = 1; i < tok.size(); ++i)
        sop.input_names.emplace_back(tok[i]);
    } else if (tok[0] == ".ob") {
      for (std::size_t i = 1; i < tok.size(); ++i)
        sop.output_names.emplace_back(tok[i]);
    } else if (tok[0] == ".p" || tok[0] == ".type") {
      // cube count / type hints — ignored ('fd' semantics are the default)
    } else if (tok[0] == ".e" || tok[0] == ".end") {
      break;
    } else if (tok[0][0] == '.') {
      POWDER_CHECK_MSG(false, "unsupported PLA construct: " << raw);
    } else {
      POWDER_CHECK_MSG(ni > 0 && no > 0, "cube before .i/.o");
      POWDER_CHECK_MSG(tok.size() == 2, "malformed PLA cube line: " << raw);
      const Cube cube = Cube::parse(tok[0]);
      POWDER_CHECK(cube.num_vars() == ni);
      const std::string_view outs = tok[1];
      POWDER_CHECK(static_cast<int>(outs.size()) == no);
      for (int o = 0; o < no; ++o) {
        const char v = outs[static_cast<std::size_t>(o)];
        if (v == '1' || v == '4') {
          sop.outputs[static_cast<std::size_t>(o)].add(cube);
        } else if (v == '-' || v == '~' || v == '2') {
          // External don't-care ('fd' type): lazily allocate the DC sets.
          if (sop.dc_sets.empty())
            sop.dc_sets.assign(static_cast<std::size_t>(no), Cover(ni));
          sop.dc_sets[static_cast<std::size_t>(o)].add(cube);
        }
      }
    }
  }
  POWDER_CHECK_MSG(ni > 0 && no > 0, "PLA missing .i/.o");
  while (static_cast<int>(sop.input_names.size()) < ni)
    sop.input_names.push_back("x" + std::to_string(sop.input_names.size()));
  while (static_cast<int>(sop.output_names.size()) < no)
    sop.output_names.push_back("y" + std::to_string(sop.output_names.size()));
  return sop;
}

}  // namespace

SopNetwork read_pla(std::string_view text, std::string name) {
  try {
    return read_pla_impl(text, std::move(name));
  } catch (const Error&) {
    throw;
  } catch (const CheckError& e) {
    throw Error::input(e.what());
  } catch (const std::exception& e) {
    // std::stoi on a non-numeric .i/.o count, and friends.
    throw Error::input(std::string("PLA parse failure: ") + e.what());
  }
}

std::string write_pla(const SopNetwork& sop) {
  std::ostringstream os;
  os << ".i " << sop.num_inputs() << "\n.o " << sop.num_outputs() << '\n';
  os << ".ilb";
  for (const auto& n : sop.input_names) os << ' ' << n;
  os << "\n.ob";
  for (const auto& n : sop.output_names) os << ' ' << n;
  os << '\n';
  // Collect distinct cubes and their output masks.
  std::map<std::string, std::string> rows;  // cube text -> output mask
  for (int o = 0; o < sop.num_outputs(); ++o) {
    for (const Cube& c : sop.outputs[static_cast<std::size_t>(o)].cubes()) {
      auto [it, fresh] = rows.try_emplace(
          c.to_pla(), std::string(static_cast<std::size_t>(sop.num_outputs()),
                                  '0'));
      (void)fresh;
      it->second[static_cast<std::size_t>(o)] = '1';
    }
  }
  os << ".p " << rows.size() << '\n';
  for (const auto& [cube, mask] : rows) os << cube << ' ' << mask << '\n';
  os << ".e\n";
  return os.str();
}

}  // namespace powder
