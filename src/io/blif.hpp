#pragma once
// BLIF interchange for mapped netlists (.gate form) and PLA reading.
//
// The mapped-BLIF dialect written/read here is the one ABC and SIS use for
// library netlists:
//   .model <name> / .inputs / .outputs / .gate <cell> <pin>=<net> ... O=<net>
// plus constant-0/1 via the library's constant cells. `.names` bodies are
// accepted only for constants (empty cover or a single "1" line), since a
// mapped netlist must consist of library gates.

#include <string>
#include <string_view>

#include "flow/flow.hpp"
#include "netlist/netlist.hpp"

namespace powder {

/// Serializes a mapped netlist to BLIF text.
std::string write_blif(const Netlist& netlist);

/// Parses mapped BLIF against `library`. Throws CheckError on malformed
/// input or unknown cells.
Netlist read_blif(std::string_view text, const CellLibrary& library);

/// Parses an espresso-style PLA (.i/.o/.p/.ilb/.ob, 'fd' type semantics).
SopNetwork read_pla(std::string_view text, std::string name = "pla");

/// Serializes a SopNetwork to PLA text.
std::string write_pla(const SopNetwork& sop);

}  // namespace powder
