#pragma once
// Structural Verilog export of mapped netlists.
//
// Emits one module with a cell instantiation per gate, in the standard
// gate-level style that downstream P&R / simulation flows consume:
//
//   module top(a, b, f);
//     input a, b; output f;
//     wire n1;
//     nand2 g0 (.a(a), .b(b), .O(n1));
//     inv1  g1 (.a(n1), .O(f));
//   endmodule
//
// Identifiers that are not valid Verilog names are escaped with the
// `\name ` syntax. Constant cells become assigns to 1'b0 / 1'b1.

#include <string>

#include "netlist/netlist.hpp"

namespace powder {

/// Serializes `netlist` as a structural Verilog module.
std::string write_verilog(const Netlist& netlist);

}  // namespace powder
