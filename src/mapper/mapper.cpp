#include "mapper/mapper.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace powder {

namespace {

struct Cut {
  std::vector<std::uint32_t> leaves;  // sorted AIG node ids
};

/// A matched implementation choice for one node polarity.
struct Choice {
  double cost = std::numeric_limits<double>::infinity();
  int cut = -1;                   // index into the node's cut list
  CellId cell = kInvalidCell;
  std::vector<int> perm;          // cell pin i <- cut leaf perm[i]
  bool via_inverter = false;      // realized as INV(other polarity)
};

class Mapper {
 public:
  Mapper(const Aig& aig, const CellLibrary& lib, const MapperOptions& opt)
      : aig_(aig), lib_(lib), opt_(opt) {}

  Netlist run();

 private:
  const Aig& aig_;
  const CellLibrary& lib_;
  const MapperOptions& opt_;

  std::vector<std::vector<Cut>> cuts_;     // per node
  std::vector<double> prob_;               // per node (positive phase)
  std::vector<std::array<Choice, 2>> best_;  // [node][phase]; 1 = inverted

  Netlist* out_ = nullptr;
  std::unordered_map<std::uint64_t, GateId> realized_;  // (node<<1|ph) -> gate
  std::vector<GateId> pi_gates_;

  void compute_probs();
  void enumerate_cuts();
  TruthTable cut_function(std::uint32_t node, const Cut& cut) const;
  void run_dp();
  double leaf_cost(std::uint32_t leaf) const;
  double activity(std::uint32_t node) const {
    const double p = prob_[node];
    return 2.0 * p * (1.0 - p);
  }
  double match_cost(const Cell& cell, const std::vector<int>& perm,
                    const Cut& cut) const;
  GateId realize(std::uint32_t node, bool inverted);
};

void Mapper::compute_probs() {
  prob_.assign(aig_.num_nodes(), 0.0);
  std::vector<double> pi_probs = opt_.pi_probs;
  if (pi_probs.empty())
    pi_probs.assign(static_cast<std::size_t>(aig_.num_inputs()), 0.5);
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == aig_.num_inputs());
  for (int i = 0; i < aig_.num_inputs(); ++i)
    prob_[aig_node(aig_.input(i))] = pi_probs[static_cast<std::size_t>(i)];
  for (std::uint32_t n = static_cast<std::uint32_t>(aig_.num_inputs()) + 1;
       n < aig_.num_nodes(); ++n) {
    const AigLit f0 = aig_.fanin0(n), f1 = aig_.fanin1(n);
    const double p0 = aig_is_complemented(f0) ? 1.0 - prob_[aig_node(f0)]
                                              : prob_[aig_node(f0)];
    const double p1 = aig_is_complemented(f1) ? 1.0 - prob_[aig_node(f1)]
                                              : prob_[aig_node(f1)];
    prob_[n] = p0 * p1;  // independence assumption
  }
}

void Mapper::enumerate_cuts() {
  cuts_.assign(aig_.num_nodes(), {});
  for (std::uint32_t n = 1; n < aig_.num_nodes(); ++n) {
    if (aig_.is_input(n)) {
      cuts_[n].push_back(Cut{{n}});
      continue;
    }
    const std::uint32_t a = aig_node(aig_.fanin0(n));
    const std::uint32_t b = aig_node(aig_.fanin1(n));
    std::vector<Cut> result;
    auto add_cut = [&](Cut c) {
      // Dominance/duplicate filter.
      for (const Cut& q : result)
        if (std::includes(c.leaves.begin(), c.leaves.end(), q.leaves.begin(),
                          q.leaves.end()))
          return;  // an existing cut is a subset — dominated
      result.push_back(std::move(c));
    };
    // Constant fanins (node 0) contribute no leaves.
    const std::vector<Cut> empty_cut{Cut{}};
    const auto& ca = a == 0 ? empty_cut : cuts_[a];
    const auto& cb = b == 0 ? empty_cut : cuts_[b];
    for (const Cut& x : ca) {
      for (const Cut& y : cb) {
        Cut merged;
        std::set_union(x.leaves.begin(), x.leaves.end(), y.leaves.begin(),
                       y.leaves.end(), std::back_inserter(merged.leaves));
        if (static_cast<int>(merged.leaves.size()) > opt_.cut_size) continue;
        add_cut(std::move(merged));
      }
    }
    // Prefer small cuts; keep the list bounded.
    std::sort(result.begin(), result.end(), [](const Cut& x, const Cut& y) {
      return x.leaves.size() < y.leaves.size();
    });
    if (static_cast<int>(result.size()) > opt_.cuts_per_node)
      result.resize(static_cast<std::size_t>(opt_.cuts_per_node));
    // The trivial cut {n} is kept last so larger cuts of fanouts can stop
    // at this node.
    result.push_back(Cut{{n}});
    cuts_[n] = std::move(result);
  }
}

TruthTable Mapper::cut_function(std::uint32_t node, const Cut& cut) const {
  const int k = static_cast<int>(cut.leaves.size());
  std::unordered_map<std::uint32_t, TruthTable> memo;
  for (int i = 0; i < k; ++i)
    memo.emplace(cut.leaves[static_cast<std::size_t>(i)],
                 TruthTable::variable(k, i));
  memo.emplace(0, TruthTable::constant(k, false));
  auto rec = [&](auto&& self, std::uint32_t n) -> const TruthTable& {
    const auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    POWDER_CHECK_MSG(aig_.is_and(n), "cut does not cover its cone");
    const AigLit f0 = aig_.fanin0(n), f1 = aig_.fanin1(n);
    TruthTable t0 = self(self, aig_node(f0));
    TruthTable t1 = self(self, aig_node(f1));
    if (aig_is_complemented(f0)) t0 = ~t0;
    if (aig_is_complemented(f1)) t1 = ~t1;
    return memo.emplace(n, t0 & t1).first->second;
  };
  return rec(rec, node);
}

double Mapper::match_cost(const Cell& cell, const std::vector<int>& perm,
                          const Cut& cut) const {
  if (opt_.mode == MapMode::kArea) return cell.area;
  // Power mode: pin capacitance weighted by the (independence-estimated)
  // activity of the leaf each pin connects to, with a small area tiebreak.
  double cost = 0.0;
  for (int pin = 0; pin < cell.num_inputs(); ++pin) {
    const std::uint32_t leaf =
        cut.leaves[static_cast<std::size_t>(perm[static_cast<std::size_t>(pin)])];
    cost += cell.pins[static_cast<std::size_t>(pin)].input_cap *
            activity(leaf);
  }
  return cost + 1e-6 * cell.area;
}

double Mapper::leaf_cost(std::uint32_t leaf) const {
  return best_[leaf][0].cost;
}

void Mapper::run_dp() {
  best_.assign(aig_.num_nodes(), {});
  const CellId inv = lib_.inverter();
  POWDER_CHECK_MSG(inv != kInvalidCell, "library must contain an inverter");
  const Cell& inv_cell = lib_.cell(inv);
  const double inv_cost =
      opt_.mode == MapMode::kArea ? inv_cell.area : 1e-6 * inv_cell.area;

  for (std::uint32_t n = 1; n < aig_.num_nodes(); ++n) {
    if (aig_.is_input(n)) {
      best_[n][0].cost = 0.0;
      best_[n][1].cost =
          opt_.mode == MapMode::kArea
              ? inv_cell.area
              : inv_cell.pins[0].input_cap * activity(n) + 1e-6 * inv_cell.area;
      best_[n][1].via_inverter = true;
      continue;
    }
    Choice cand[2];
    const auto& node_cuts = cuts_[n];
    for (int ci = 0; ci < static_cast<int>(node_cuts.size()); ++ci) {
      const Cut& cut = node_cuts[static_cast<std::size_t>(ci)];
      if (cut.leaves.size() == 1 && cut.leaves[0] == n) continue;  // trivial
      TruthTable f = cut_function(n, cut);
      // Shrink away leaves the function does not depend on.
      Cut shrunk = cut;
      for (int v = f.num_vars() - 1; v >= 0; --v) {
        if (f.depends_on(v)) continue;
        f = f.cofactor(v, false);
        // Remove variable v by permuting it last and dropping: rebuild.
        std::vector<int> perm;
        for (int i = 0; i < f.num_vars(); ++i)
          if (i != v) perm.push_back(i);
        perm.push_back(v);
        f = f.permute(perm);  // moves var v to the top position
        TruthTable g(f.num_vars() - 1);
        for (std::uint64_t m = 0; m < g.num_minterms_capacity(); ++m)
          g.set_bit(m, f.bit(m));
        f = std::move(g);
        shrunk.leaves.erase(shrunk.leaves.begin() + v);
      }
      if (shrunk.leaves.empty()) continue;  // constant: handled at outputs
      double leaves_cost = 0.0;
      for (std::uint32_t leaf : shrunk.leaves) leaves_cost += leaf_cost(leaf);
      for (int phase = 0; phase < 2; ++phase) {
        const TruthTable target = phase ? ~f : f;
        for (const auto& m : lib_.match_function(target)) {
          const Cell& cell = lib_.cell(m.cell);
          const double c =
              match_cost(cell, m.perm, shrunk) + leaves_cost;
          if (c < cand[phase].cost) {
            cand[phase].cost = c;
            cand[phase].cut = ci;
            cand[phase].cell = m.cell;
            cand[phase].perm = m.perm;
            cand[phase].via_inverter = false;
            // Stash the shrunk leaves by re-deriving at realization time;
            // we store the cut index and re-shrink deterministically.
          }
        }
      }
    }
    // Inverter closure between phases.
    for (int phase = 0; phase < 2; ++phase) {
      const double via_inv =
          cand[phase ^ 1].cost +
          (opt_.mode == MapMode::kArea
               ? inv_cell.area
               : inv_cell.pins[0].input_cap * activity(n) + inv_cost);
      if (via_inv < cand[phase].cost) {
        cand[phase].cost = via_inv;
        cand[phase].cut = -1;
        cand[phase].cell = kInvalidCell;
        cand[phase].perm.clear();
        cand[phase].via_inverter = true;
      }
    }
    POWDER_CHECK_MSG(cand[0].cost < std::numeric_limits<double>::infinity() ||
                         cand[1].cost < std::numeric_limits<double>::infinity(),
                     "unmappable node — library too sparse");
    best_[n][0] = cand[0];
    best_[n][1] = cand[1];
  }
}

GateId Mapper::realize(std::uint32_t node, bool inverted) {
  const std::uint64_t key = (static_cast<std::uint64_t>(node) << 1) |
                            static_cast<std::uint64_t>(inverted);
  if (const auto it = realized_.find(key); it != realized_.end())
    return it->second;

  GateId g = kNullGate;
  if (aig_.is_input(node) && !inverted) {
    g = pi_gates_[node - 1];
  } else {
    const Choice& ch = best_[node][inverted ? 1 : 0];
    if (ch.via_inverter) {
      const GateId src = realize(node, !inverted);
      g = out_->add_gate(lib_.inverter(), {src});
    } else {
      POWDER_CHECK(ch.cell != kInvalidCell && ch.cut >= 0);
      // Re-derive the shrunk cut exactly as the DP did.
      const Cut& cut = cuts_[node][static_cast<std::size_t>(ch.cut)];
      TruthTable f = cut_function(node, cut);
      Cut shrunk = cut;
      for (int v = f.num_vars() - 1; v >= 0; --v) {
        if (f.depends_on(v)) continue;
        std::vector<int> perm;
        for (int i = 0; i < f.num_vars(); ++i)
          if (i != v) perm.push_back(i);
        perm.push_back(v);
        f = f.permute(perm);
        TruthTable g2(f.num_vars() - 1);
        for (std::uint64_t m = 0; m < g2.num_minterms_capacity(); ++m)
          g2.set_bit(m, f.bit(m));
        f = std::move(g2);
        shrunk.leaves.erase(shrunk.leaves.begin() + v);
      }
      std::vector<GateId> fanins;
      const Cell& cell = lib_.cell(ch.cell);
      fanins.reserve(static_cast<std::size_t>(cell.num_inputs()));
      for (int pin = 0; pin < cell.num_inputs(); ++pin) {
        const std::uint32_t leaf = shrunk.leaves[static_cast<std::size_t>(
            ch.perm[static_cast<std::size_t>(pin)])];
        fanins.push_back(realize(leaf, false));
      }
      g = out_->add_gate(ch.cell, fanins);
    }
  }
  realized_.emplace(key, g);
  return g;
}

Netlist Mapper::run() {
  compute_probs();
  enumerate_cuts();
  run_dp();

  Netlist netlist(&lib_, aig_.name());
  out_ = &netlist;
  pi_gates_.clear();
  for (int i = 0; i < aig_.num_inputs(); ++i)
    pi_gates_.push_back(netlist.add_input(aig_.input_name(i)));

  for (int i = 0; i < aig_.num_outputs(); ++i) {
    const AigLit o = aig_.output(i);
    GateId driver;
    if (aig_node(o) == 0) {
      // Constant output.
      const CellId cid = aig_is_complemented(o) ? lib_.const1() : lib_.const0();
      POWDER_CHECK_MSG(cid != kInvalidCell, "library lacks constants");
      driver = netlist.add_gate(cid, {});
    } else {
      driver = realize(aig_node(o), aig_is_complemented(o));
    }
    netlist.add_output(aig_.output_name(i), driver, opt_.po_load);
  }
  netlist.sweep_dead();
  return netlist;
}

}  // namespace

Netlist map_aig(const Aig& aig, const CellLibrary& library,
                const MapperOptions& options) {
  Mapper mapper(aig, library, options);
  return mapper.run();
}

}  // namespace powder
