#pragma once
// Technology mapping: covering the AIG subject graph with library cells.
//
// Cut-based structural covering with exact truth-table matching:
//  1. enumerate k-feasible cuts per AND node (k = 4 by default),
//  2. compute each cut's local function and match it — in both output
//     polarities — against the library by exact function + permutation,
//  3. dynamic programming over both polarities of every node picks the
//     cheapest cover; inverters stitch phase mismatches,
//  4. the chosen cover is instantiated as a mapped Netlist.
//
// Cost modes:
//  * kArea  — classic minimum-area covering,
//  * kPower — switched-capacitance-aware covering (pin capacitance times
//    estimated leaf activity), the POSE-style "technology mapping for low
//    power" stand-in used to produce the paper's initial circuits.

#include "aig/aig.hpp"
#include "netlist/netlist.hpp"

namespace powder {

enum class MapMode { kArea, kPower };

struct MapperOptions {
  int cut_size = 4;
  int cuts_per_node = 8;
  MapMode mode = MapMode::kPower;
  std::vector<double> pi_probs;  ///< empty = all 0.5 (kPower mode)
  double po_load = 1.0;          ///< external load on each primary output
};

/// Maps `aig` onto `library`. The resulting netlist preserves input/output
/// names and order.
Netlist map_aig(const Aig& aig, const CellLibrary& library,
                const MapperOptions& options = {});

}  // namespace powder
