#pragma once
// Checkpoint recorder and resume cursor (DESIGN.md §10.1–§10.2).
//
// SessionRecorder sits on the optimizer's commit path: after the signature
// guard accepts a substitution, record_commit() appends one fsync'd WAL
// frame. Mid-run I/O failures never abort optimization — checkpointing
// degrades (the log is closed, an audit event + metric is published, and
// the run continues un-checkpointed).
//
// SessionResume is the replay cursor for `--resume FILE`: the optimizer
// re-executes its deterministic loop from iteration 1 ("fast-forward"),
// with the proof stage answered by the log instead of the engines — a
// candidate matching the next recorded commit was proved permissible by
// the original run, any other candidate that reaches the proof stage was
// rejected by it. When the cursor is exhausted the run switches to live
// proofs and, because every other stage is a pure function of (netlist,
// options, seed), continues bit-identically to the uninterrupted run.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "session/wal.hpp"

namespace powder {

class Netlist;
struct PowderOptions;
class MetricsRegistry;
class AuditLog;
class Counter;

/// Structural hash of a netlist: liveness, cells, fanins, names, PI/PO
/// lists. Two netlists with equal fingerprints are byte-identical inputs
/// for the deterministic optimizer loop.
std::uint64_t netlist_fingerprint(const Netlist& netlist);

/// Hash of every PowderOptions field that influences the deterministic
/// decision sequence (objective, patterns, seed, harvest/selection knobs,
/// proof-engine choice and per-call limits, guard flags). Execution-only
/// knobs — threads, deadline, pools, trace sinks, session paths — are
/// excluded, so a resume may legally change them.
std::uint64_t options_fingerprint(const PowderOptions& options);

class SessionRecorder {
 public:
  SessionRecorder(MetricsRegistry* metrics, AuditLog* audit);

  /// Opens the WAL and writes the header frame. Throws Error(kIo) when the
  /// log cannot even be created — a user who asked for checkpointing gets
  /// a fast, typed failure instead of a silently unprotected run.
  void open(const std::string& path, const Netlist& netlist,
            const PowderOptions& options);

  bool enabled() const { return writer_.is_open(); }
  /// True once a mid-run I/O failure forced checkpointing off.
  bool degraded() const { return degraded_; }
  const std::string& error() const { return error_; }

  /// Appends one commit frame (fsync'd). No-op when disabled; never throws.
  /// `window` is the id of the window the commit was merged from, or
  /// kGlobalWindow for the global optimizer loop.
  void record_commit(int outer, int performed, const CandidateSub& cand,
                     const AppliedSub& applied,
                     std::uint32_t window = kGlobalWindow);

  /// Appends one functional-reduction pre-pass frame (fsync'd). Same
  /// degradation contract as record_commit; `round`/`ordinal` identify the
  /// merge's position in the pre-pass's deterministic sequence.
  void record_prepass(int round, int ordinal, const CandidateSub& cand,
                      const AppliedSub& applied);

  /// Appends the kEnd frame and closes the log.
  void record_end();

  long long frames() const { return frames_; }

  /// Chaos seam: fired after each commit frame is durable (1-based index).
  void set_after_frame_hook(std::function<void(long long)> hook) {
    after_frame_ = std::move(hook);
  }

 private:
  void degrade(const std::string& why);

  WalWriter writer_;
  long long frames_ = 0;
  bool degraded_ = false;
  std::string error_;
  std::function<void(long long)> after_frame_;
  Counter* frames_counter_ = nullptr;
  Counter* disabled_counter_ = nullptr;
  AuditLog* audit_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

class SessionResume {
 public:
  SessionResume() = default;

  /// Loads and validates a WAL against the freshly-read input netlist and
  /// the run's options. Throws Error(kInput) on fingerprint/seed mismatch
  /// or a missing header, Error(kIo) on an unreadable or mid-file-corrupt
  /// log. A torn trailing frame is tolerated (crash-while-writing is the
  /// expected case).
  void load(const std::string& path, const Netlist& netlist,
            const PowderOptions& options);

  /// True while recorded commits remain to fast-forward through.
  bool active() const { return cursor_ < contents_.commits.size(); }

  /// Does `cand` structurally match the next recorded commit?
  bool matches(const CandidateSub& cand) const {
    return active() && same_candidate(contents_.commits[cursor_].cand, cand);
  }

  const WalCommit& current() const { return contents_.commits[cursor_]; }
  void advance() { ++cursor_; }

  /// Pre-pass replay cursor: the functional-reduction merges recorded
  /// before the greedy loop, fast-forwarded in lockstep ahead of the
  /// commit cursor above.
  bool prepass_active() const {
    return prepass_cursor_ < contents_.prepass.size();
  }
  bool prepass_matches(const CandidateSub& cand) const {
    return prepass_active() &&
           same_candidate(contents_.prepass[prepass_cursor_].cand, cand);
  }
  const WalCommit& prepass_current() const {
    return contents_.prepass[prepass_cursor_];
  }
  void prepass_advance() { ++prepass_cursor_; }
  long long prepass_total() const {
    return static_cast<long long>(contents_.prepass.size());
  }

  /// Full recorded commit sequence, for window-scoped replay: the windowed
  /// loop builds per-window oracle views from this while the merge path
  /// still verifies against the global cursor above.
  const std::vector<WalCommit>& commits() const { return contents_.commits; }

  long long replayed() const { return static_cast<long long>(cursor_); }
  long long total() const {
    return static_cast<long long>(contents_.commits.size());
  }
  bool loaded() const { return loaded_; }
  WalReadStatus status() const { return contents_.status; }

 private:
  WalContents contents_;
  std::size_t cursor_ = 0;
  std::size_t prepass_cursor_ = 0;
  bool loaded_ = false;
};

}  // namespace powder
