#include "session/wal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace powder {
namespace {

// --- byte codec ----------------------------------------------------------

void put_u8(std::string* b, std::uint8_t v) {
  b->push_back(static_cast<char>(v));
}

void put_u32(std::string* b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string* b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string* b, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}

/// Bounds-checked reader over a payload: any overrun sets ok=false and
/// every later read returns zero, so decoders can check once at the end.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_gate_vec(std::string* b, const std::vector<GateId>& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  for (const GateId g : v) put_u32(b, static_cast<std::uint32_t>(g));
}

bool get_gate_vec(Cursor* c, std::vector<GateId>* v) {
  const std::uint32_t n = c->u32();
  if (!c->ok() || n > (1u << 24)) return false;  // sanity bound
  v->clear();
  v->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    v->push_back(static_cast<GateId>(c->u32()));
  return c->ok();
}

void put_truth_table(std::string* b, const TruthTable& tt) {
  put_u8(b, static_cast<std::uint8_t>(tt.num_vars()));
  put_u32(b, static_cast<std::uint32_t>(tt.words().size()));
  for (const std::uint64_t w : tt.words()) put_u64(b, w);
}

bool get_truth_table(Cursor* c, TruthTable* tt) {
  const int num_vars = c->u8();
  const std::uint32_t num_words = c->u32();
  if (!c->ok() || num_vars > TruthTable::kMaxVars) return false;
  if (num_words == 0) {
    // A default-constructed table (kSignal/kConstant replacements) owns no
    // storage; rebuild it as such so round-trip equality is exact.
    *tt = TruthTable();
    return num_vars == 0;
  }
  TruthTable t(num_vars);
  const std::uint64_t minterms = t.num_minterms_capacity();
  for (std::uint32_t wi = 0; wi < num_words; ++wi) {
    const std::uint64_t w = c->u64();
    for (int bit = 0; bit < 64; ++bit) {
      const std::uint64_t m = std::uint64_t{wi} * 64 + bit;
      if (m < minterms && ((w >> bit) & 1)) t.set_bit(m, true);
    }
  }
  if (!c->ok()) return false;
  *tt = std::move(t);
  return true;
}

void put_candidate(std::string* b, const CandidateSub& s) {
  put_u8(b, static_cast<std::uint8_t>(s.cls));
  put_u32(b, static_cast<std::uint32_t>(s.target));
  put_u8(b, s.branch.has_value() ? 1 : 0);
  if (s.branch.has_value()) {
    put_u32(b, static_cast<std::uint32_t>(s.branch->gate));
    put_u32(b, static_cast<std::uint32_t>(s.branch->pin));
  }
  put_u8(b, static_cast<std::uint8_t>(s.rep.kind));
  put_u8(b, s.rep.constant_value ? 1 : 0);
  put_u32(b, static_cast<std::uint32_t>(s.rep.b));
  put_u8(b, s.rep.invert_b ? 1 : 0);
  put_u32(b, static_cast<std::uint32_t>(s.rep.c));
  put_u8(b, s.rep.invert_c ? 1 : 0);
  put_truth_table(b, s.rep.two_input_fn);
  put_gate_vec(b, s.rep.divisors);
  put_u32(b, static_cast<std::uint32_t>(s.new_cell));
}

bool get_candidate(Cursor* c, CandidateSub* s) {
  s->cls = static_cast<SubstClass>(c->u8());
  s->target = static_cast<GateId>(c->u32());
  if (c->u8() != 0) {
    FanoutRef ref;
    ref.gate = static_cast<GateId>(c->u32());
    ref.pin = static_cast<int>(c->u32());
    s->branch = ref;
  } else {
    s->branch.reset();
  }
  s->rep.kind = static_cast<ReplacementFunction::Kind>(c->u8());
  s->rep.constant_value = c->u8() != 0;
  s->rep.b = static_cast<GateId>(c->u32());
  s->rep.invert_b = c->u8() != 0;
  s->rep.c = static_cast<GateId>(c->u32());
  s->rep.invert_c = c->u8() != 0;
  if (!get_truth_table(c, &s->rep.two_input_fn)) return false;
  if (!get_gate_vec(c, &s->rep.divisors)) return false;
  s->new_cell = static_cast<CellId>(c->u32());
  s->pg_a = s->pg_b = s->pg_c = 0.0;
  return c->ok();
}

void put_applied(std::string* b, const AppliedSub& a) {
  put_gate_vec(b, a.removed_gates);
  put_u32(b, static_cast<std::uint32_t>(a.removed_fanins.size()));
  for (const std::vector<GateId>& fanins : a.removed_fanins)
    put_gate_vec(b, fanins);
  put_u32(b, static_cast<std::uint32_t>(a.rewired_pins.size()));
  for (const RewiredPin& p : a.rewired_pins) {
    put_u32(b, static_cast<std::uint32_t>(p.sink));
    put_u32(b, static_cast<std::uint32_t>(p.pin));
    put_u32(b, static_cast<std::uint32_t>(p.old_driver));
    put_u32(b, static_cast<std::uint32_t>(p.new_driver));
  }
  put_u32(b, static_cast<std::uint32_t>(a.resized_cells.size()));
  for (const ResizedCell& r : a.resized_cells) {
    put_u32(b, static_cast<std::uint32_t>(r.gate));
    put_u32(b, static_cast<std::uint32_t>(r.old_cell));
    put_u32(b, static_cast<std::uint32_t>(r.new_cell));
  }
  put_u32(b, static_cast<std::uint32_t>(a.new_gate));
  put_gate_vec(b, a.changed_roots);
  put_f64(b, a.area_delta);
}

bool get_applied(Cursor* c, AppliedSub* a) {
  if (!get_gate_vec(c, &a->removed_gates)) return false;
  const std::uint32_t num_fanins = c->u32();
  if (!c->ok() || num_fanins > (1u << 24)) return false;
  a->removed_fanins.clear();
  a->removed_fanins.resize(num_fanins);
  for (std::uint32_t i = 0; i < num_fanins; ++i)
    if (!get_gate_vec(c, &a->removed_fanins[i])) return false;
  const std::uint32_t num_pins = c->u32();
  if (!c->ok() || num_pins > (1u << 24)) return false;
  a->rewired_pins.clear();
  a->rewired_pins.reserve(num_pins);
  for (std::uint32_t i = 0; i < num_pins; ++i) {
    RewiredPin p;
    p.sink = static_cast<GateId>(c->u32());
    p.pin = static_cast<int>(c->u32());
    p.old_driver = static_cast<GateId>(c->u32());
    p.new_driver = static_cast<GateId>(c->u32());
    a->rewired_pins.push_back(p);
  }
  const std::uint32_t num_resized = c->u32();
  if (!c->ok() || num_resized > (1u << 24)) return false;
  a->resized_cells.clear();
  a->resized_cells.reserve(num_resized);
  for (std::uint32_t i = 0; i < num_resized; ++i) {
    ResizedCell r;
    r.gate = static_cast<GateId>(c->u32());
    r.old_cell = static_cast<CellId>(c->u32());
    r.new_cell = static_cast<CellId>(c->u32());
    a->resized_cells.push_back(r);
  }
  a->new_gate = static_cast<GateId>(c->u32());
  if (!get_gate_vec(c, &a->changed_roots)) return false;
  a->area_delta = c->f64();
  return c->ok();
}

}  // namespace

// --- payload codecs ------------------------------------------------------

std::string encode_header(const WalHeader& h) {
  std::string b;
  put_u32(&b, h.version);
  put_u64(&b, h.netlist_hash);
  put_u64(&b, h.options_hash);
  put_u64(&b, h.seed);
  put_u32(&b, h.num_patterns);
  return b;
}

bool decode_header(std::string_view payload, WalHeader* out) {
  Cursor c(payload);
  out->version = c.u32();
  out->netlist_hash = c.u64();
  out->options_hash = c.u64();
  out->seed = c.u64();
  out->num_patterns = c.u32();
  return c.exhausted();
}

std::string encode_commit(const WalCommit& commit) {
  std::string b;
  put_u32(&b, commit.outer);
  put_u32(&b, commit.performed);
  put_u32(&b, commit.window);
  put_candidate(&b, commit.cand);
  put_applied(&b, commit.applied);
  return b;
}

bool decode_commit(std::string_view payload, WalCommit* out) {
  Cursor c(payload);
  out->outer = c.u32();
  out->performed = c.u32();
  out->window = c.u32();
  if (!get_candidate(&c, &out->cand)) return false;
  if (!get_applied(&c, &out->applied)) return false;
  return c.exhausted();
}

std::string encode_end(std::uint64_t commit_frames) {
  std::string b;
  put_u64(&b, commit_frames);
  return b;
}

// --- frame envelope ------------------------------------------------------

std::string encode_frame(WalFrameType type, std::string_view payload) {
  std::string body;
  body.reserve(payload.size() + 5);
  put_u8(&body, static_cast<std::uint8_t>(type));
  put_u32(&body, static_cast<std::uint32_t>(payload.size()));
  body.append(payload.data(), payload.size());

  std::string frame;
  frame.reserve(body.size() + 12);
  put_u32(&frame, kWalMagic);
  frame += body;
  put_u64(&frame, fnv1a(body));
  return frame;
}

const char* wal_read_status_name(WalReadStatus s) {
  switch (s) {
    case WalReadStatus::kClean: return "clean";
    case WalReadStatus::kTruncated: return "truncated";
    case WalReadStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

WalContents parse_wal(std::string_view bytes) {
  WalContents out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // A partial envelope at the tail is a torn frame, not corruption.
    if (bytes.size() - pos < 4 + 1 + 4) {
      out.status = WalReadStatus::kTruncated;
      out.error = "torn trailing frame (short envelope)";
      return out;
    }
    Cursor head(bytes.substr(pos, 9));
    const std::uint32_t magic = head.u32();
    if (magic != kWalMagic) {
      out.status = WalReadStatus::kCorrupt;
      std::ostringstream os;
      os << "bad frame magic at offset " << pos;
      out.error = os.str();
      return out;
    }
    const std::uint8_t type = head.u8();
    const std::uint32_t len = head.u32();
    if (len > (1u << 28)) {
      out.status = WalReadStatus::kCorrupt;
      out.error = "implausible frame length";
      return out;
    }
    const std::size_t frame_size = 4 + 1 + 4 + std::size_t{len} + 8;
    if (bytes.size() - pos < frame_size) {
      out.status = WalReadStatus::kTruncated;
      out.error = "torn trailing frame (short payload)";
      return out;
    }
    const std::string_view body = bytes.substr(pos + 4, 5 + len);
    const std::string_view payload = bytes.substr(pos + 9, len);
    Cursor tail(bytes.substr(pos + 9 + len, 8));
    if (tail.u64() != fnv1a(body)) {
      out.status = WalReadStatus::kCorrupt;
      std::ostringstream os;
      os << "checksum mismatch at offset " << pos;
      out.error = os.str();
      return out;
    }
    switch (static_cast<WalFrameType>(type)) {
      case WalFrameType::kHeader: {
        WalHeader h;
        if (!decode_header(payload, &h)) {
          out.status = WalReadStatus::kCorrupt;
          out.error = "undecodable header frame";
          return out;
        }
        out.header = h;
        out.has_header = true;
        break;
      }
      case WalFrameType::kCommit: {
        WalCommit c;
        if (!decode_commit(payload, &c)) {
          out.status = WalReadStatus::kCorrupt;
          out.error = "undecodable commit frame";
          return out;
        }
        out.commits.push_back(std::move(c));
        break;
      }
      case WalFrameType::kPrepass: {
        WalCommit c;
        if (!decode_commit(payload, &c)) {
          out.status = WalReadStatus::kCorrupt;
          out.error = "undecodable prepass frame";
          return out;
        }
        out.prepass.push_back(std::move(c));
        break;
      }
      case WalFrameType::kEnd:
        out.ended = true;
        break;
      default:
        out.status = WalReadStatus::kCorrupt;
        out.error = "unknown frame type";
        return out;
    }
    pos += frame_size;
  }
  out.status = WalReadStatus::kClean;
  return out;
}

WalContents read_wal(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error::io("cannot open checkpoint '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return parse_wal(os.str());
}

// --- writer --------------------------------------------------------------

WalWriter::~WalWriter() { close(); }

bool WalWriter::open(const std::string& path, std::string* error) {
#ifdef _WIN32
  if (error != nullptr) *error = "WAL writer unsupported on this platform";
  return false;
#else
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    if (error != nullptr)
      *error = "cannot create checkpoint '" + path +
               "': " + std::strerror(errno);
    return false;
  }
  return true;
#endif
}

bool WalWriter::append(WalFrameType type, std::string_view payload,
                       std::string* error) {
#ifdef _WIN32
  (void)type;
  (void)payload;
  if (error != nullptr) *error = "WAL writer unsupported on this platform";
  return false;
#else
  if (fd_ < 0) {
    if (error != nullptr) *error = "checkpoint writer is closed";
    return false;
  }
  const std::string frame = encode_frame(type, payload);
  std::size_t want = frame.size();
  // Injected short write: half the frame reaches the disk, then the device
  // "fails" — leaving a genuinely torn tail for the reader to tolerate.
  const bool short_write = inject_fault(FaultInjector::Site::kCheckpointWrite);
  if (short_write) want /= 2;
  std::size_t done = 0;
  while (done < want) {
    const ssize_t n = ::write(fd_, frame.data() + done, want - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("checkpoint write failed: ") +
                 std::strerror(errno);
      close();
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (short_write) {
    (void)::fsync(fd_);
    if (error != nullptr) *error = "checkpoint write failed: injected ENOSPC";
    close();
    return false;
  }
  const bool fsync_fault = inject_fault(FaultInjector::Site::kCheckpointFsync);
  if (fsync_fault || ::fsync(fd_) != 0) {
    if (error != nullptr)
      *error = fsync_fault ? "checkpoint fsync failed: injected fault"
                           : std::string("checkpoint fsync failed: ") +
                                 std::strerror(errno);
    close();
    return false;
  }
  return true;
#endif
}

void WalWriter::close() {
#ifndef _WIN32
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

// --- equality ------------------------------------------------------------

bool same_candidate(const CandidateSub& a, const CandidateSub& b) {
  return a.cls == b.cls && a.target == b.target && a.branch == b.branch &&
         a.rep.kind == b.rep.kind &&
         a.rep.constant_value == b.rep.constant_value && a.rep.b == b.rep.b &&
         a.rep.invert_b == b.rep.invert_b && a.rep.c == b.rep.c &&
         a.rep.invert_c == b.rep.invert_c &&
         a.rep.two_input_fn == b.rep.two_input_fn &&
         a.rep.divisors == b.rep.divisors && a.new_cell == b.new_cell;
}

bool same_applied(const AppliedSub& a, const AppliedSub& b) {
  if (a.removed_gates != b.removed_gates) return false;
  if (a.removed_fanins != b.removed_fanins) return false;
  if (a.rewired_pins.size() != b.rewired_pins.size()) return false;
  for (std::size_t i = 0; i < a.rewired_pins.size(); ++i) {
    const RewiredPin& p = a.rewired_pins[i];
    const RewiredPin& q = b.rewired_pins[i];
    if (p.sink != q.sink || p.pin != q.pin || p.old_driver != q.old_driver ||
        p.new_driver != q.new_driver)
      return false;
  }
  if (a.resized_cells.size() != b.resized_cells.size()) return false;
  for (std::size_t i = 0; i < a.resized_cells.size(); ++i) {
    const ResizedCell& p = a.resized_cells[i];
    const ResizedCell& q = b.resized_cells[i];
    if (p.gate != q.gate || p.old_cell != q.old_cell ||
        p.new_cell != q.new_cell)
      return false;
  }
  return a.new_gate == b.new_gate && a.changed_roots == b.changed_roots &&
         a.area_delta == b.area_delta;
}

}  // namespace powder
