#pragma once
// Graceful-degradation ladder (DESIGN.md §10.2): instead of dying or
// silently stalling when resources run out, the optimizer steps down an
// explicit, monotone ladder —
//
//   kFullProof      — configured proof engine (SAT/hybrid/PODEM)
//   kPodemOnly      — SAT bypassed; PODEM-only proofs (cheap, may abort)
//   kSignatureOnly  — proofs off: every candidate reaching the proof stage
//                     is rejected; the loop drains toward a clean stop
//                     while guards keep protecting already-committed work
//   kStop           — clean stop, best-so-far netlist emitted
//
// Sensors: wall-clock deadline fractions, proof-pool exhaustion, and RSS
// against --mem-limit. Every transition is published as a typed audit
// event and a metrics counter; the ladder never steps up, so the audit
// trail of a starved run reads as a monotone staircase.

#include <cstdint>

#include "atpg/sat_checker.hpp"
#include "session/options.hpp"
#include "util/budget.hpp"

namespace powder {

class MetricsRegistry;
class AuditLog;
class Counter;
class Gauge;
class ProgressStream;

enum class DegradationLevel : int {
  kFullProof = 0,
  kPodemOnly = 1,
  kSignatureOnly = 2,
  kStop = 3,
};

const char* degradation_level_name(DegradationLevel level);

/// Why the ladder reached kStop (kNone while still running).
enum class StopReason { kNone, kDeadline, kProofBudget, kMemLimit };

class DegradationLadder {
 public:
  /// `deadline_seconds` is the run's total wall budget (<0 = none);
  /// `engine` the configured proof engine (a PODEM-only configuration has
  /// no SAT stage to shed, so the kPodemOnly rung is a no-op for it).
  DegradationLadder(const SessionOptions& session, double deadline_seconds,
                    ProofEngine engine, MetricsRegistry* metrics,
                    AuditLog* audit);

  /// Re-reads the sensors and steps down if needed. Cheap enough for the
  /// inner loop: a couple of relaxed loads; RSS is sampled once every 32
  /// calls. Returns the (possibly new) level.
  DegradationLevel evaluate(const ResourceBudget& budget);

  DegradationLevel level() const { return level_; }
  StopReason stop_reason() const { return stop_reason_; }
  int transitions() const { return transitions_; }
  bool mem_limit_hit() const { return mem_limit_hit_; }

  /// Optional live progress sink: every step-down is also published as a
  /// `degradation` event on the stream (null = off).
  void set_progress(ProgressStream* progress) { progress_ = progress; }

  /// Pure ladder policy, separated for unit testing: what level do these
  /// sensor readings demand? (Monotonicity is applied by evaluate().)
  struct Sensors {
    bool deadline_expired = false;
    double deadline_total = -1.0;     ///< <=0: no deadline
    double deadline_remaining = 0.0;
    bool sat_pool_dry = false;
    bool atpg_pool_dry = false;
    long long rss_bytes = 0;          ///< 0: unknown / not sampled
  };
  struct Decision {
    DegradationLevel level = DegradationLevel::kFullProof;
    StopReason stop_reason = StopReason::kNone;
    const char* reason = nullptr;  ///< audit string for the step
  };
  Decision decide(const Sensors& sensors) const;

 private:
  void step_to(DegradationLevel to, StopReason stop, const char* reason,
               long long value);

  SessionOptions session_;
  double deadline_total_;
  ProofEngine engine_;
  MetricsRegistry* metrics_;
  AuditLog* audit_;
  ProgressStream* progress_ = nullptr;
  Counter* transitions_counter_ = nullptr;
  Gauge* level_gauge_ = nullptr;

  DegradationLevel level_ = DegradationLevel::kFullProof;
  StopReason stop_reason_ = StopReason::kNone;
  int transitions_ = 0;
  bool mem_limit_hit_ = false;
  unsigned calls_ = 0;
  long long last_rss_ = 0;
};

}  // namespace powder
