#pragma once
// Write-ahead session log: frame codec + durable writer + tolerant reader
// (DESIGN.md §10.1).
//
// File layout — a flat sequence of frames, nothing else:
//
//   frame   := magic:u32 type:u8 len:u32 payload:len*u8 checksum:u64
//   magic   = 0x50574652 ("PWFR")
//   checksum= FNV-1a over [type][len][payload]
//
// All integers little-endian, fixed width. Three frame types:
//
//   kHeader — once, first: WAL version, netlist fingerprint, options
//             fingerprint, seed, pattern count. Resume refuses a log whose
//             fingerprints do not match the freshly-read input.
//   kCommit — one per guard-accepted substitution: the outer-iteration
//             cursor plus the full CandidateSub and AppliedSub (including
//             tombstone/revive fanin lists and resize records), enough to
//             both verify a replay and audit the log offline.
//   kEnd    — the run closed the log cleanly (informational; a resume of a
//             crashed log simply sees a missing kEnd or a torn tail).
//
// The reader is tolerant by design: a torn trailing frame (the crash wrote
// half a frame before dying) yields status kTruncated with every complete
// frame preserved; a checksum/decode failure mid-file yields kCorrupt.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "opt/substitution.hpp"

namespace powder {

inline constexpr std::uint32_t kWalMagic = 0x50574652u;  // "PWFR"
/// Version 2 added the per-commit window id (window-scoped runs record which
/// window produced each commit so --resume can replay them window-by-window).
/// Version 3 added the kCell replacement kind (ordered divisor set of a
/// k-input gate) to the candidate codec and the kPrepass frame recording
/// functional-reduction merges made before the greedy loop.
inline constexpr std::uint32_t kWalVersion = 3;

/// WalCommit::window value for commits made by the global (non-windowed)
/// optimizer loop.
inline constexpr std::uint32_t kGlobalWindow = 0xFFFFFFFFu;

enum class WalFrameType : std::uint8_t {
  kHeader = 1,
  kCommit = 2,
  kEnd = 3,
  /// A functional-reduction merge committed by the pre-pass, before any
  /// kCommit frame. Payload is the WalCommit codec (outer = pre-pass round,
  /// performed = merge ordinal within the round).
  kPrepass = 4,
};

struct WalHeader {
  std::uint32_t version = kWalVersion;
  std::uint64_t netlist_hash = 0;  ///< netlist_fingerprint() of the input
  std::uint64_t options_hash = 0;  ///< options_fingerprint() of the run
  std::uint64_t seed = 0;
  std::uint32_t num_patterns = 0;
};

/// One committed substitution, as recorded at journal-commit time (after
/// the signature guard accepted it).
struct WalCommit {
  std::uint32_t outer = 0;      ///< 1-based outer iteration of the commit
  std::uint32_t performed = 0;  ///< commit ordinal within that iteration
  std::uint32_t window = kGlobalWindow;  ///< window id, kGlobalWindow if none
  CandidateSub cand;            ///< pg_* gains are not round-tripped
  AppliedSub applied;
};

std::string encode_header(const WalHeader& h);
std::string encode_commit(const WalCommit& c);
std::string encode_end(std::uint64_t commit_frames);
bool decode_header(std::string_view payload, WalHeader* out);
bool decode_commit(std::string_view payload, WalCommit* out);

/// Wraps a payload in the on-disk frame envelope (magic/type/len/checksum).
std::string encode_frame(WalFrameType type, std::string_view payload);

enum class WalReadStatus {
  kClean,      ///< every byte parsed
  kTruncated,  ///< torn trailing frame dropped; complete prefix kept
  kCorrupt,    ///< checksum/decode failure mid-file; prefix kept
};

const char* wal_read_status_name(WalReadStatus s);

struct WalContents {
  bool has_header = false;
  WalHeader header;
  std::vector<WalCommit> prepass;  ///< functional-reduction merges, in order
  std::vector<WalCommit> commits;
  bool ended = false;  ///< a kEnd frame closed the log
  WalReadStatus status = WalReadStatus::kClean;
  std::string error;   ///< human-readable detail for kTruncated/kCorrupt
};

/// Parses a WAL file. Throws Error(kIo) only when the file cannot be
/// opened; parse problems are reported via status/error with the readable
/// prefix intact.
WalContents read_wal(const std::string& path);

/// Parses an in-memory WAL image (the file reader delegates here; tests
/// use it to bit-flip and truncate images without touching disk).
WalContents parse_wal(std::string_view bytes);

/// Durable appender. Frames are written with a single write(2) call and
/// fsync'd before append() returns, so a frame either exists whole on disk
/// or is a recognizable torn tail. I/O failures (real or injected via
/// FaultInjector sites kCheckpointWrite / kCheckpointFsync) are reported by
/// return value — checkpointing degrades, it never throws mid-run.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates/truncates `path`. Returns false with *error filled on failure.
  bool open(const std::string& path, std::string* error);
  bool is_open() const { return fd_ >= 0; }

  /// Appends one frame durably. On failure (short write, fsync failure)
  /// fills *error and returns false; the writer is then closed — a torn
  /// frame may remain on disk, which the reader tolerates.
  bool append(WalFrameType type, std::string_view payload, std::string* error);

  void close();

 private:
  int fd_ = -1;
};

/// Structural candidate identity: the fields that name *what* is being
/// substituted (class, site, replacement shape, new cell) — the same slice
/// the proof cache keys on. Gains are excluded: they are recomputed state,
/// not identity.
bool same_candidate(const CandidateSub& a, const CandidateSub& b);

/// Full delta equality, used to verify that a replayed commit reproduced
/// the recorded mutation bit-for-bit.
bool same_applied(const AppliedSub& a, const AppliedSub& b);

}  // namespace powder
