#include "session/checkpoint.hpp"

#include <new>

#include "netlist/netlist.hpp"
#include "opt/powder.hpp"
#include "trace/audit.hpp"
#include "trace/metrics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace powder {
namespace {

class Fnv {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte((v >> (8 * i)) & 0xFF);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(std::string_view s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  std::uint64_t digest() const { return h_; }

 private:
  void byte(std::uint64_t b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  std::uint64_t h_ = 14695981039346656037ull;
};

}  // namespace

std::uint64_t netlist_fingerprint(const Netlist& netlist) {
  Fnv h;
  h.u64(netlist.num_slots());
  for (GateId g = 0; g < static_cast<GateId>(netlist.num_slots()); ++g) {
    if (!netlist.alive(g)) {
      h.u64(0xDEAD);
      continue;
    }
    h.u64(static_cast<std::uint64_t>(netlist.kind(g)));
    h.i64(netlist.cell_id(g));
    h.bytes(netlist.gate_name(g));
    for (const GateId fi : netlist.fanins(g))
      h.u64(static_cast<std::uint64_t>(fi));
    h.u64(0xF00D);  // fanin-list terminator: {a,b},{c} != {a},{b,c}
  }
  h.u64(0x1217);
  for (const GateId g : netlist.inputs()) h.u64(g);
  h.u64(0x0D17);
  for (const GateId g : netlist.outputs()) h.u64(g);
  h.u64(0x1A7C);
  for (const Latch& l : netlist.latches()) {
    h.u64(l.input);
    h.u64(l.output);
    h.i64(l.init);
  }
  return h.digest();
}

std::uint64_t options_fingerprint(const PowderOptions& o) {
  // Only fields that steer the deterministic decision sequence; execution
  // knobs (threads, deadline, pools, sinks, session paths) excluded so a
  // resume may change them. Keep in sync with DESIGN.md §10.2.
  Fnv h;
  h.u64(static_cast<std::uint64_t>(o.objective));
  h.i64(o.num_patterns);
  h.u64(o.pi_probs.size());
  for (const double p : o.pi_probs) h.f64(p);
  h.u64(o.seed);
  h.i64(o.repeat);
  h.f64(o.delay_limit_factor);
  h.f64(o.min_gain);
  h.i64(o.shortlist);
  h.i64(o.max_outer_iterations);
  h.u64(static_cast<std::uint64_t>(o.proof.engine));
  h.i64(o.candidates.local_pool_size);
  h.i64(o.candidates.random_pool_size);
  h.i64(o.candidates.resub.enable_three_subs ? 1 : 0);
  h.i64(o.candidates.resub.three_sub_b_pool);
  h.i64(o.candidates.resub.max_three_per_target);
  h.i64(o.candidates.resub.max_divisors);
  h.i64(o.candidates.resub.ksub_b_pool);
  h.i64(o.candidates.resub.max_k_per_target);
  h.i64(o.candidates.resub.funcred ? 1 : 0);
  h.i64(o.candidates.max_candidates);
  h.i64(o.candidates.allow_constants ? 1 : 0);
  h.i64(o.guard.signature_check ? 1 : 0);
  h.i64(o.guard.final_equivalence_check ? 1 : 0);
  h.i64(o.proof.atpg.backtrack_limit);
  h.i64(o.proof.sat.conflict_budget);
  // Window knobs steer which candidates are even considered (partition
  // shape, merge order, re-run policy), so a resume must not change them.
  h.u64(static_cast<std::uint64_t>(o.window.mode));
  h.i64(o.window.max_gates);
  h.i64(o.window.overlap);
  h.u64(o.window.order_seed);
  h.i64(o.window.rerun_limit);
  // The power model defines the objective landscape (activities, PG_C), so
  // a resume under a different model would replay foreign decisions.
  h.u64(static_cast<std::uint64_t>(o.power_model));
  h.i64(o.glitch.num_vector_pairs);
  h.i64(o.glitch.max_events_per_pair);
  h.u64(o.glitch.seed);
  h.u64(o.glitch.stimulus.prob.size());
  for (const double p : o.glitch.stimulus.prob) h.f64(p);
  for (const double d : o.glitch.stimulus.toggle) h.f64(d);
  return h.digest();
}

// --- SessionRecorder -----------------------------------------------------

SessionRecorder::SessionRecorder(MetricsRegistry* metrics, AuditLog* audit)
    : audit_(audit), metrics_(metrics) {
  if (metrics_ != nullptr) {
    frames_counter_ = metrics_->counter(
        "powder_checkpoint_frames_total",
        "WAL commit frames durably written");
    disabled_counter_ = metrics_->counter(
        "powder_checkpoint_disabled_total",
        "checkpointing lost to an I/O failure mid-run");
  }
}

void SessionRecorder::open(const std::string& path, const Netlist& netlist,
                           const PowderOptions& options) {
  std::string err;
  if (!writer_.open(path, &err)) throw Error::io(err);
  WalHeader h;
  h.netlist_hash = netlist_fingerprint(netlist);
  h.options_hash = options_fingerprint(options);
  h.seed = options.seed;
  h.num_patterns = static_cast<std::uint32_t>(options.num_patterns);
  if (!writer_.append(WalFrameType::kHeader, encode_header(h), &err))
    throw Error::io(err);
}

void SessionRecorder::record_commit(int outer, int performed,
                                    const CandidateSub& cand,
                                    const AppliedSub& applied,
                                    std::uint32_t window) {
  if (!enabled()) return;
  std::string payload;
  try {
    if (inject_fault(FaultInjector::Site::kAllocFail)) throw std::bad_alloc();
    WalCommit commit;
    commit.outer = static_cast<std::uint32_t>(outer);
    commit.performed = static_cast<std::uint32_t>(performed);
    commit.window = window;
    commit.cand = cand;
    commit.applied = applied;
    payload = encode_commit(commit);
  } catch (const std::bad_alloc&) {
    degrade("allocation failure while encoding commit frame");
    return;
  }
  std::string err;
  if (!writer_.append(WalFrameType::kCommit, payload, &err)) {
    degrade(err);
    return;
  }
  ++frames_;
  if (frames_counter_ != nullptr) frames_counter_->inc();
  if (after_frame_) after_frame_(frames_);
}

void SessionRecorder::record_prepass(int round, int ordinal,
                                     const CandidateSub& cand,
                                     const AppliedSub& applied) {
  if (!enabled()) return;
  std::string payload;
  try {
    if (inject_fault(FaultInjector::Site::kAllocFail)) throw std::bad_alloc();
    WalCommit commit;
    commit.outer = static_cast<std::uint32_t>(round);
    commit.performed = static_cast<std::uint32_t>(ordinal);
    commit.window = kGlobalWindow;
    commit.cand = cand;
    commit.applied = applied;
    payload = encode_commit(commit);
  } catch (const std::bad_alloc&) {
    degrade("allocation failure while encoding prepass frame");
    return;
  }
  std::string err;
  if (!writer_.append(WalFrameType::kPrepass, payload, &err)) {
    degrade(err);
    return;
  }
  ++frames_;
  if (frames_counter_ != nullptr) frames_counter_->inc();
  if (after_frame_) after_frame_(frames_);
}

void SessionRecorder::record_end() {
  if (!enabled()) return;
  std::string err;
  if (!writer_.append(WalFrameType::kEnd,
                      encode_end(static_cast<std::uint64_t>(frames_)), &err)) {
    degrade(err);
    return;
  }
  writer_.close();
}

void SessionRecorder::degrade(const std::string& why) {
  writer_.close();
  degraded_ = true;
  error_ = why;
  if (disabled_counter_ != nullptr) disabled_counter_->inc();
  if (audit_ != nullptr) {
    AuditEvent e;
    e.event = "checkpoint_disabled";
    e.reason = "io";
    e.detail = why.c_str();
    e.value = frames_;
    audit_->write_event(e);
  }
}

// --- SessionResume -------------------------------------------------------

void SessionResume::load(const std::string& path, const Netlist& netlist,
                         const PowderOptions& options) {
  contents_ = read_wal(path);
  if (contents_.status == WalReadStatus::kCorrupt)
    throw Error::io("checkpoint '" + path + "' is corrupt: " +
                    contents_.error);
  if (!contents_.has_header)
    throw Error::input("checkpoint '" + path +
                       "' has no header frame (empty or foreign file)");
  if (contents_.header.version != kWalVersion)
    throw Error::input("checkpoint '" + path + "' has WAL version " +
                       std::to_string(contents_.header.version) +
                       ", expected " + std::to_string(kWalVersion));
  if (contents_.header.netlist_hash != netlist_fingerprint(netlist))
    throw Error::input("checkpoint '" + path +
                       "' was recorded for a different input netlist");
  if (contents_.header.options_hash != options_fingerprint(options))
    throw Error::input(
        "checkpoint '" + path +
        "' was recorded with different optimization options (seed, "
        "patterns, selection or proof knobs)");
  cursor_ = 0;
  loaded_ = true;
}

}  // namespace powder
