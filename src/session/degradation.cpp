#include "session/degradation.hpp"

#include <string_view>

#include "trace/audit.hpp"
#include "trace/metrics.hpp"
#include "trace/progress.hpp"
#include "util/memstats.hpp"

namespace powder {

const char* degradation_level_name(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFullProof: return "full_proof";
    case DegradationLevel::kPodemOnly: return "podem_only";
    case DegradationLevel::kSignatureOnly: return "signature_only";
    case DegradationLevel::kStop: return "stop";
  }
  return "unknown";
}

DegradationLadder::DegradationLadder(const SessionOptions& session,
                                     double deadline_seconds,
                                     ProofEngine engine,
                                     MetricsRegistry* metrics, AuditLog* audit)
    : session_(session),
      deadline_total_(deadline_seconds),
      engine_(engine),
      metrics_(metrics),
      audit_(audit) {
  if (metrics_ != nullptr) {
    transitions_counter_ = metrics_->counter(
        "powder_degradation_transitions_total",
        "degradation-ladder step-downs this run");
    level_gauge_ = metrics_->gauge("powder_degradation_level",
                                   "current ladder level (0=full .. 3=stop)");
  }
}

DegradationLadder::Decision DegradationLadder::decide(
    const Sensors& s) const {
  Decision d;
  auto raise = [&d](DegradationLevel lvl, StopReason stop,
                    const char* reason) {
    if (static_cast<int>(lvl) <= static_cast<int>(d.level)) return;
    d.level = lvl;
    d.stop_reason = stop;
    d.reason = reason;
  };

  if (s.deadline_expired) {
    raise(DegradationLevel::kStop, StopReason::kDeadline, "deadline");
  } else if (s.deadline_total > 0.0) {
    if (s.deadline_remaining <
        session_.signature_only_fraction * s.deadline_total)
      raise(DegradationLevel::kSignatureOnly, StopReason::kNone,
            "deadline_near");
    else if (s.deadline_remaining <
             session_.podem_only_fraction * s.deadline_total)
      raise(DegradationLevel::kPodemOnly, StopReason::kNone, "deadline_near");
  }

  if (s.atpg_pool_dry && s.sat_pool_dry)
    raise(DegradationLevel::kStop, StopReason::kProofBudget, "proof_budget");
  else if (s.sat_pool_dry && engine_ != ProofEngine::kPodem)
    raise(DegradationLevel::kPodemOnly, StopReason::kNone, "sat_pool_dry");
  else if (s.atpg_pool_dry && engine_ == ProofEngine::kPodem)
    raise(DegradationLevel::kStop, StopReason::kProofBudget, "proof_budget");

  if (session_.mem_limit_bytes > 0 && s.rss_bytes > 0) {
    if (s.rss_bytes > session_.mem_limit_bytes +
                          session_.mem_limit_bytes / 2)
      raise(DegradationLevel::kStop, StopReason::kMemLimit, "mem_limit");
    else if (s.rss_bytes > session_.mem_limit_bytes)
      raise(DegradationLevel::kSignatureOnly, StopReason::kNone,
            "mem_limit_near");
  }
  return d;
}

DegradationLevel DegradationLadder::evaluate(const ResourceBudget& budget) {
  if (level_ == DegradationLevel::kStop) return level_;

  Sensors s;
  s.deadline_total = deadline_total_;
  if (budget.has_deadline()) {
    s.deadline_expired = budget.expired();
    s.deadline_remaining = budget.remaining_seconds();
  }
  s.atpg_pool_dry = budget.atpg_pool_dry();
  s.sat_pool_dry = budget.sat_pool_dry();
  if (session_.mem_limit_bytes > 0) {
    // /proc reads are not inner-loop cheap; sample every 32 evaluations.
    if (calls_ % 32 == 0)
      last_rss_ = static_cast<long long>(current_rss_bytes());
    s.rss_bytes = last_rss_;
  }
  ++calls_;

  const Decision d = decide(s);
  if (static_cast<int>(d.level) > static_cast<int>(level_)) {
    const bool mem_involved =
        d.stop_reason == StopReason::kMemLimit ||
        (d.reason != nullptr &&
         std::string_view(d.reason) == "mem_limit_near");
    if (mem_involved) mem_limit_hit_ = true;
    step_to(d.level, d.stop_reason, d.reason, s.rss_bytes);
  }
  return level_;
}

void DegradationLadder::step_to(DegradationLevel to, StopReason stop,
                                const char* reason, long long value) {
  const DegradationLevel from = level_;
  level_ = to;
  if (to == DegradationLevel::kStop) stop_reason_ = stop;
  ++transitions_;
  if (transitions_counter_ != nullptr) transitions_counter_->inc();
  if (level_gauge_ != nullptr)
    level_gauge_->set(static_cast<double>(static_cast<int>(to)));
  if (audit_ != nullptr) {
    AuditEvent e;
    e.event = "degradation";
    e.from = degradation_level_name(from);
    e.to = degradation_level_name(to);
    e.reason = reason;
    e.value = value > 0 ? value : -1;
    audit_->write_event(e);
  }
  if (progress_ != nullptr)
    progress_->degradation(degradation_level_name(from),
                           degradation_level_name(to), reason);
}

}  // namespace powder
