#pragma once
// Session durability and graceful-degradation configuration (DESIGN.md §10).
//
// A "session" is one optimizer run viewed as a restartable, budgeted job:
// it can checkpoint every committed substitution into a write-ahead log,
// resume from such a log after a crash, and step down a degradation ladder
// instead of dying when the deadline nears, the proof pools drain, or RSS
// crosses a memory limit.

#include <functional>
#include <string>

namespace powder {

struct SessionOptions {
  /// Write-ahead log path; every guard-accepted commit appends one fsync'd,
  /// checksummed frame. Empty disables checkpointing entirely (the fast
  /// path costs one branch per commit).
  std::string checkpoint_out;

  /// Resume from this WAL: the run fast-forwards through the recorded
  /// commits (the proof stage is served by the log instead of the engines)
  /// and then continues live. Empty = fresh run. May equal checkpoint_out —
  /// the log is read fully before the new one is opened.
  std::string resume_from;

  /// Degradation-ladder memory sensor: when VmRSS exceeds this many bytes
  /// the ladder steps to signature-reject-only, and at 1.5x it stops the
  /// run cleanly with best-so-far. 0 disables the sensor.
  long long mem_limit_bytes = 0;

  /// Pipeline watchdog: how long the commit thread waits on an in-flight
  /// speculative proof before declaring the worker stuck and re-proving
  /// inline. <= 0 waits forever (pre-watchdog behavior).
  double watchdog_seconds = 30.0;

  /// Transient proof-engine failures (an engine throwing, not returning a
  /// verdict) are retried this many times with capped exponential backoff
  /// before the candidate is treated as kAborted (rejected, sound).
  int proof_retries = 2;

  /// Deadline fractions (of the total budget) at which the ladder steps
  /// down: below podem_only_fraction remaining, SAT is bypassed; below
  /// signature_only_fraction, proofs stop and every candidate is rejected
  /// (the loop drains toward a clean stop).
  double podem_only_fraction = 0.25;
  double signature_only_fraction = 0.10;

  /// Chaos-test seam: invoked after each commit frame reaches the disk
  /// (argument = 1-based frame number). The crash-recovery test SIGKILLs
  /// the process from inside this hook to land exactly on a commit
  /// boundary. Null in production.
  std::function<void(long long)> after_checkpoint_frame;
};

}  // namespace powder
