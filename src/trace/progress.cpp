#include "trace/progress.hpp"

#include <cmath>
#include <cstdio>

#include "util/json.hpp"

namespace powder {

namespace {

void append_double(std::string* line, const char* key, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%.17g", key, v);
  } else {
    std::snprintf(buf, sizeof buf, ",\"%s\":null", key);
  }
  *line += buf;
}

void append_long(std::string* line, const char* key, long long v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":%lld", key, v);
  *line += buf;
}

void append_string(std::string* line, const char* key, std::string_view v) {
  *line += ",\"";
  *line += key;
  *line += "\":";
  *line += json_quote(v);
}

}  // namespace

ProgressStream::ProgressStream(std::ostream* os, double heartbeat_seconds)
    : os_(os),
      heartbeat_seconds_(heartbeat_seconds),
      start_(Clock::now()),
      last_heartbeat_(start_) {}

void ProgressStream::begin_line(std::string* line, const char* event) {
  const double t_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_)
          .count();
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"v\":%d,\"seq\":%lld,\"t_ms\":%.3f",
                kProgressSchemaVersion, seq_, t_ms);
  *line += buf;
  append_string(line, "event", event);
  ++seq_;
}

void ProgressStream::end_line(std::string* line) {
  *line += "}\n";
  // One write + flush per event: the stream must be tailable while the
  // optimizer still holds it.
  os_->write(line->data(), static_cast<std::streamsize>(line->size()));
  os_->flush();
}

void ProgressStream::run_start(std::string_view circuit, long gates,
                               int inputs, int outputs, int threads,
                               bool windowed, const char* power_model) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "run_start");
  append_string(&line, "circuit", circuit);
  append_long(&line, "gates", gates);
  append_long(&line, "inputs", inputs);
  append_long(&line, "outputs", outputs);
  append_long(&line, "threads", threads);
  line += windowed ? ",\"windowed\":true" : ",\"windowed\":false";
  append_string(&line, "power_model", power_model);
  end_line(&line);
}

void ProgressStream::phase(int iteration, const char* name, long long count,
                           const char* count_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "phase");
  append_long(&line, "iter", iteration);
  append_string(&line, "phase", name);
  if (count >= 0 && count_key != nullptr) append_long(&line, count_key, count);
  end_line(&line);
}

void ProgressStream::window_event(int iteration, int window, const char* what,
                                  long long gates, long long commits) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "window");
  append_long(&line, "iter", iteration);
  append_long(&line, "window", window);
  append_string(&line, "what", what);
  if (gates >= 0) append_long(&line, "gates", gates);
  if (commits >= 0) append_long(&line, "commits", commits);
  end_line(&line);
}

void ProgressStream::commit(int iteration, const char* cls, int window,
                            double gain, double power_after) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "commit");
  append_long(&line, "iter", iteration);
  append_string(&line, "cls", cls);
  append_long(&line, "window", window);
  append_double(&line, "gain", gain);
  append_double(&line, "power", power_after);
  end_line(&line);
}

bool ProgressStream::heartbeat_due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (heartbeats_ == 0) return true;
  const double since =
      std::chrono::duration<double>(Clock::now() - last_heartbeat_).count();
  return since >= heartbeat_seconds_;
}

void ProgressStream::heartbeat(const Stats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  const double since =
      std::chrono::duration<double>(now - last_heartbeat_).count();
  if (heartbeats_ > 0 && since < heartbeat_seconds_) return;

  std::string line;
  begin_line(&line, "heartbeat");
  append_long(&line, "iter", stats.iteration);
  append_long(&line, "max_iter", stats.max_iterations);
  append_double(&line, "power", stats.power);
  append_long(&line, "applied", stats.applied);
  append_long(&line, "harvested", stats.harvested);
  append_long(&line, "proofs", stats.proofs);
  // Rates over the window since the previous heartbeat (or run start).
  const double dt = heartbeats_ == 0
                        ? std::chrono::duration<double>(now - start_).count()
                        : since;
  if (dt > 0.0) {
    append_double(&line, "applied_per_s",
                  static_cast<double>(stats.applied - last_stats_.applied) /
                      dt);
    append_double(
        &line, "candidates_per_s",
        static_cast<double>(stats.harvested - last_stats_.harvested) / dt);
  }
  // Coarse upper bound: greedy runs usually exit early on no-progress, so
  // this assumes every remaining outer iteration costs as much as the
  // average so far.
  if (stats.iteration > 0 && stats.max_iterations > stats.iteration) {
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    append_double(&line, "eta_s",
                  elapsed / stats.iteration *
                      (stats.max_iterations - stats.iteration));
  }
  end_line(&line);
  last_heartbeat_ = now;
  last_stats_ = stats;
  ++heartbeats_;
}

void ProgressStream::degradation(const char* from, const char* to,
                                 const char* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "degradation");
  append_string(&line, "from", from);
  append_string(&line, "to", to);
  if (reason != nullptr) append_string(&line, "reason", reason);
  end_line(&line);
}

void ProgressStream::checkpoint(long long frames) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "checkpoint");
  append_long(&line, "frames", frames);
  end_line(&line);
}

void ProgressStream::run_end(double power, long long applied,
                             int iterations) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(&line, "run_end");
  append_double(&line, "power", power);
  append_long(&line, "applied", applied);
  append_long(&line, "iterations", iterations);
  end_line(&line);
}

ProgressValidation validate_progress_stream(std::string_view text) {
  ProgressValidation out;
  long long expected_seq = 0;
  double last_t = -1.0;
  bool saw_run_start = false;
  bool saw_run_end = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++out.lines;

    std::string parse_error;
    const auto doc = json_parse(line, &parse_error);
    if (doc == nullptr || !doc->is_object()) {
      out.error = "progress line " + std::to_string(out.lines) +
                  ": not a JSON object (" + parse_error + ")";
      return out;
    }
    if (saw_run_end) {
      out.error = "progress: events after run_end";
      return out;
    }
    const JsonValue* v = doc->find_number("v");
    if (v == nullptr ||
        v->as_number() != static_cast<double>(kProgressSchemaVersion)) {
      out.error = "progress line " + std::to_string(out.lines) +
                  ": missing or unexpected schema version";
      return out;
    }
    const JsonValue* seq = doc->find_number("seq");
    if (seq == nullptr || seq->as_number() != expected_seq) {
      out.error = "progress line " + std::to_string(out.lines) +
                  ": seq not contiguous";
      return out;
    }
    ++expected_seq;
    const JsonValue* t = doc->find_number("t_ms");
    if (t == nullptr || t->as_number() < last_t) {
      out.error = "progress line " + std::to_string(out.lines) +
                  ": t_ms missing or non-monotone";
      return out;
    }
    last_t = t->as_number();
    const JsonValue* event = doc->find_string("event");
    if (event == nullptr) {
      out.error = "progress line " + std::to_string(out.lines) +
                  ": missing event";
      return out;
    }
    const std::string& ev = event->as_string();
    if (out.lines == 1 && ev != "run_start") {
      out.error = "progress: first event is not run_start";
      return out;
    }
    if (ev == "run_start") saw_run_start = true;
    if (ev == "run_end") saw_run_end = true;
    if (ev == "heartbeat") ++out.heartbeats;
    if (ev == "phase") ++out.phases;
    if (ev == "window") ++out.windows;
    // Unknown event types are legal by the stability rules; count only.
  }
  if (!saw_run_start) {
    out.error = "progress: no run_start event";
    return out;
  }
  if (!saw_run_end) {
    out.error = "progress: no run_end event";
    return out;
  }
  if (out.heartbeats == 0) {
    out.error = "progress: no heartbeat emitted";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace powder
