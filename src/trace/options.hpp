#pragma once
// Nullable observability sinks, threaded through an optimization run (and
// carried by PowderOptions as the public `trace` field).
//
// Every instrumentation site in the library is guarded by a single branch
// on one of these pointers: a null sink costs one compare-and-skip, no
// clock read, no allocation. That is the contract that lets the
// instrumentation stay compiled into release builds (measured <= 2%
// off-mode overhead by bench/trace_overhead.cpp).

namespace powder {

class TraceSession;
class MetricsRegistry;
class AuditLog;
class ProgressStream;
class PowerAttribution;

struct TraceOptions {
  /// Span/event collector exported as Chrome trace-event JSON (Perfetto).
  TraceSession* trace = nullptr;
  /// Counter/gauge/histogram registry exported as JSON + Prometheus text.
  /// The optimizer uses a private registry when this is null, so the
  /// metrics block of the report is always populated.
  MetricsRegistry* metrics = nullptr;
  /// NDJSON decision log: one record per candidate considered.
  AuditLog* audit = nullptr;
  /// Live NDJSON event stream (heartbeats, phases, windows, commits).
  ProgressStream* progress = nullptr;
  /// Per-gate power heatmap + per-class applied-gain ledger.
  PowerAttribution* attribution = nullptr;

  bool any() const {
    return trace != nullptr || metrics != nullptr || audit != nullptr ||
           progress != nullptr || attribution != nullptr;
  }
};

}  // namespace powder
