#pragma once
// Typed metrics for the optimizer pipeline: counters, gauges, and fixed
// log-bucket latency histograms, registered once by name and then updated
// with single relaxed atomic operations — no allocation, no locking, no
// formatting on the hot path.
//
// The registry is the successor of the ad-hoc PowderReport::Diagnostics
// fields: the optimizer registers one instrument per diagnostic, updates
// instruments during the run, and snapshots them back into the Diagnostics
// struct at end of run (the compatibility shim that keeps --report-json
// keys stable). Exports: a JSON object (merged into --report-json as the
// "metrics" field) and Prometheus text exposition (--metrics-out).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace powder {

class Counter {
 public:
  void inc(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over nanoseconds with fixed logarithmic buckets:
/// bucket 0 holds v == 0 and bucket i (1 <= i < kNumBuckets-1) holds
/// v in [2^(i-1), 2^i), i.e. values with bit_width i; the last bucket is
/// the +Inf catch-all. 40 buckets cover sub-nanosecond granularity up to
/// ~4.6 minutes, observed with two relaxed fetch_adds and no allocation.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void observe(std::uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<long long>(ns), std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  static int bucket_index(std::uint64_t ns) {
    int bits = 0;
    while (ns != 0) {
      ++bits;
      ns >>= 1;
    }
    return bits < kNumBuckets - 1 ? bits : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket i in ns; the last bucket is +Inf
  /// (returned as UINT64_MAX).
  static std::uint64_t bucket_upper_bound_ns(int i) {
    if (i >= kNumBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  long long count() const { return count_.load(std::memory_order_relaxed); }
  long long sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  long long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile estimate in ns from the log2 buckets: walks the cumulative
  /// counts to the bucket holding the ceil(q*count)-th observation and
  /// returns its inclusive upper bound (so the estimate never understates
  /// the true quantile by more than one bucket). Returns 0 on an empty
  /// histogram and +Inf when the target lands in the catch-all bucket.
  double percentile_ns(double q) const {
    const long long total = count();
    if (total <= 0) return 0.0;
    long long target =
        static_cast<long long>(std::ceil(q * static_cast<double>(total)));
    if (target < 1) target = 1;
    if (target > total) target = total;
    long long cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cumulative += bucket(i);
      if (cumulative >= target) {
        if (i == kNumBuckets - 1)
          return std::numeric_limits<double>::infinity();
        return static_cast<double>(bucket_upper_bound_ns(i));
      }
    }
    return std::numeric_limits<double>::infinity();
  }

 private:
  std::atomic<long long> buckets_[kNumBuckets] = {};
  std::atomic<long long> sum_ns_{0};
  std::atomic<long long> count_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent by name (the existing instrument is
  /// returned) and thread-safe; registering the same name as a different
  /// kind throws CheckError. Returned pointers stay valid for the
  /// registry's lifetime. Register at setup, not per event.
  Counter* counter(const std::string& name, const std::string& help = {});
  Gauge* gauge(const std::string& name, const std::string& help = {});
  Histogram* histogram(const std::string& name, const std::string& help = {});

  /// One flat JSON object, instruments in name order: counters and gauges
  /// as numbers, histograms as {"count","sum_ns","p50","p90","p99",
  /// "buckets":[[le_ns,n],...]} with only non-empty buckets listed.
  /// Percentiles are bucket upper bounds in ns (null when the observation
  /// falls in the +Inf catch-all bucket).
  std::string to_json() const;

  /// Prometheus text exposition format (histogram `le` labels in seconds,
  /// cumulative, with the mandatory +Inf bucket and _sum/_count series).
  void write_prometheus(std::ostream& os) const;
  std::string prometheus_text() const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_or_create(const std::string& name, const std::string& help,
                        Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< ordered: deterministic export
};

}  // namespace powder
