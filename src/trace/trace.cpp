#include "trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace powder {

namespace {

std::atomic<std::uint64_t> g_next_session_id{1};

/// Per-thread cache of the last session this thread registered with. The
/// (pointer, id) pair guards against a destroyed session's address being
/// reused by a new one.
struct ThreadSlot {
  const void* owner = nullptr;
  std::uint64_t session_id = 0;
  void* buf = nullptr;
};
thread_local ThreadSlot t_slot;

}  // namespace

TraceSession::TraceSession(std::size_t events_per_thread)
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      t0_ns_(trace_now_ns()),
      events_per_thread_(events_per_thread) {}

TraceSession::~TraceSession() = default;

TraceSession::ThreadBuf* TraceSession::thread_buf() {
  if (t_slot.owner == this && t_slot.session_id == id_)
    return static_cast<ThreadBuf*>(t_slot.buf);
  std::lock_guard<std::mutex> lock(mutex_);
  auto buf = std::make_unique<ThreadBuf>(events_per_thread_);
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuf* raw = buf.get();
  buffers_.push_back(std::move(buf));
  t_slot = ThreadSlot{this, id_, raw};
  return raw;
}

void TraceSession::record(const TraceEvent& event) {
  ThreadBuf* buf = thread_buf();
  if (buf->ring.try_push(event)) {
    recorded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceSession::record_span(const char* name, const char* cat,
                               std::uint64_t ts_ns, std::uint64_t dur_ns,
                               const char* arg1_name, long long arg1,
                               const char* arg2_name, long long arg2) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.ph = 'X';
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  record(ev);
}

void TraceSession::record_instant(const char* name, const char* cat,
                                  const char* arg1_name, long long arg1) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = trace_now_ns();
  ev.ph = 'i';
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  record(ev);
}

void TraceSession::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> tmp;
  for (const auto& buf : buffers_) {
    tmp.clear();
    buf->ring.pop_all(&tmp);
    for (const TraceEvent& ev : tmp)
      drained_.push_back(TaggedEvent{ev, buf->tid});
  }
}

std::size_t TraceSession::threads_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

namespace {

void append_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microseconds with nanosecond resolution, printed as a decimal (Chrome's
/// `ts`/`dur` unit is microseconds; fractions are allowed).
void append_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

void TraceSession::write_chrome_json(std::ostream& os) {
  drain();
  std::vector<TaggedEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = drained_;
  }
  // Start time, then longest-first: parents sort before their children, so
  // the output order is deterministic and human-scannable.
  std::stable_sort(events.begin(), events.end(),
                   [](const TaggedEvent& a, const TaggedEvent& b) {
                     if (a.event.ts_ns != b.event.ts_ns)
                       return a.event.ts_ns < b.event.ts_ns;
                     if (a.event.dur_ns != b.event.dur_ns)
                       return a.event.dur_ns > b.event.dur_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return std::strcmp(a.event.name, b.event.name) < 0;
                   });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"powder\"}}";
  for (const TaggedEvent& te : events) {
    const TraceEvent& ev = te.event;
    os << ",\n{\"name\":";
    append_json_string(os, ev.name);
    os << ",\"cat\":";
    append_json_string(os, ev.cat != nullptr ? ev.cat : "default");
    os << ",\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":" << te.tid
       << ",\"ts\":";
    append_us(os, ev.ts_ns >= t0_ns_ ? ev.ts_ns - t0_ns_ : 0);
    if (ev.ph == 'X') {
      os << ",\"dur\":";
      append_us(os, ev.dur_ns);
    }
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    if (ev.arg1_name != nullptr || ev.arg2_name != nullptr) {
      os << ",\"args\":{";
      bool first = true;
      if (ev.arg1_name != nullptr) {
        append_json_string(os, ev.arg1_name);
        os << ":" << ev.arg1;
        first = false;
      }
      if (ev.arg2_name != nullptr) {
        if (!first) os << ",";
        append_json_string(os, ev.arg2_name);
        os << ":" << ev.arg2;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::string TraceSession::chrome_json() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal Chrome-JSON schema validation (no external JSON dependency): a
// recursive-descent parser that keeps only what the checks need.

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }
  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
};

bool skip_value(JsonCursor* c);

bool parse_string(JsonCursor* c, std::string* out) {
  c->skip_ws();
  if (c->p == c->end || *c->p != '"') return c->fail("expected string");
  ++c->p;
  while (c->p != c->end && *c->p != '"') {
    if (*c->p == '\\') {
      ++c->p;
      if (c->p == c->end) return c->fail("bad escape");
    }
    if (out != nullptr) out->push_back(*c->p);
    ++c->p;
  }
  if (c->p == c->end) return c->fail("unterminated string");
  ++c->p;
  return true;
}

bool parse_number(JsonCursor* c, double* out) {
  c->skip_ws();
  char* num_end = nullptr;
  const double v = std::strtod(c->p, &num_end);
  if (num_end == c->p) return c->fail("expected number");
  c->p = num_end;
  if (out != nullptr) *out = v;
  return true;
}

bool skip_object(JsonCursor* c) {
  if (!c->consume('{')) return c->fail("expected object");
  c->skip_ws();
  if (c->consume('}')) return true;
  while (true) {
    if (!parse_string(c, nullptr)) return false;
    if (!c->consume(':')) return c->fail("expected ':'");
    if (!skip_value(c)) return false;
    if (c->consume('}')) return true;
    if (!c->consume(',')) return c->fail("expected ',' in object");
  }
}

bool skip_array(JsonCursor* c) {
  if (!c->consume('[')) return c->fail("expected array");
  c->skip_ws();
  if (c->consume(']')) return true;
  while (true) {
    if (!skip_value(c)) return false;
    if (c->consume(']')) return true;
    if (!c->consume(',')) return c->fail("expected ',' in array");
  }
}

bool skip_value(JsonCursor* c) {
  c->skip_ws();
  if (c->p == c->end) return c->fail("unexpected end");
  switch (*c->p) {
    case '{': return skip_object(c);
    case '[': return skip_array(c);
    case '"': return parse_string(c, nullptr);
    case 't':
      if (c->end - c->p >= 4 && std::strncmp(c->p, "true", 4) == 0) {
        c->p += 4;
        return true;
      }
      return c->fail("bad literal");
    case 'f':
      if (c->end - c->p >= 5 && std::strncmp(c->p, "false", 5) == 0) {
        c->p += 5;
        return true;
      }
      return c->fail("bad literal");
    case 'n':
      if (c->end - c->p >= 4 && std::strncmp(c->p, "null", 4) == 0) {
        c->p += 4;
        return true;
      }
      return c->fail("bad literal");
    default: return parse_number(c, nullptr);
  }
}

/// Parses one trace event object and checks the minimal schema.
bool check_event(JsonCursor* c, std::size_t index) {
  const auto ctx = [index](const std::string& msg) {
    return "event " + std::to_string(index) + ": " + msg;
  };
  if (!c->consume('{')) return c->fail(ctx("expected object"));
  bool has_name = false, has_ph = false, has_ts = false, has_pid = false,
       has_tid = false, has_dur = false;
  std::string ph;
  c->skip_ws();
  if (!c->consume('}')) {
    while (true) {
      std::string key;
      if (!parse_string(c, &key)) return false;
      if (!c->consume(':')) return c->fail(ctx("expected ':'"));
      if (key == "name") {
        if (!parse_string(c, nullptr)) return c->fail(ctx("name not a string"));
        has_name = true;
      } else if (key == "ph") {
        if (!parse_string(c, &ph)) return c->fail(ctx("ph not a string"));
        has_ph = true;
      } else if (key == "ts") {
        double v = 0;
        if (!parse_number(c, &v)) return c->fail(ctx("ts not a number"));
        if (v < 0) return c->fail(ctx("negative ts"));
        has_ts = true;
      } else if (key == "dur") {
        double v = 0;
        if (!parse_number(c, &v)) return c->fail(ctx("dur not a number"));
        if (v < 0) return c->fail(ctx("negative dur"));
        has_dur = true;
      } else if (key == "pid") {
        if (!parse_number(c, nullptr)) return c->fail(ctx("pid not a number"));
        has_pid = true;
      } else if (key == "tid") {
        if (!parse_number(c, nullptr)) return c->fail(ctx("tid not a number"));
        has_tid = true;
      } else {
        if (!skip_value(c)) return false;
      }
      if (c->consume('}')) break;
      if (!c->consume(',')) return c->fail(ctx("expected ','"));
    }
  }
  if (!has_name) return c->fail(ctx("missing name"));
  if (!has_ph || ph.size() != 1) return c->fail(ctx("missing/bad ph"));
  if (!has_pid) return c->fail(ctx("missing pid"));
  if (!has_tid) return c->fail(ctx("missing tid"));
  // Metadata events carry no timestamp requirement; everything else does.
  if (ph != "M" && !has_ts) return c->fail(ctx("missing ts"));
  if (ph == "X" && !has_dur) return c->fail(ctx("complete event missing dur"));
  return true;
}

}  // namespace

bool validate_chrome_json(std::string_view json, std::size_t* num_events,
                          std::string* error) {
  // Own a null-terminated copy: parse_number leans on strtod, which needs a
  // terminator to be safe when a number ends the document.
  const std::string owned(json);
  JsonCursor c{owned.data(), owned.data() + owned.size(), {}};
  const auto done = [&](bool ok) {
    if (!ok && error != nullptr) *error = c.error;
    return ok;
  };
  if (!c.consume('{')) return done(c.fail("top level is not an object"));
  bool saw_events = false;
  std::size_t count = 0;
  c.skip_ws();
  if (!c.consume('}')) {
    while (true) {
      std::string key;
      if (!parse_string(&c, &key)) return done(false);
      if (!c.consume(':')) return done(c.fail("expected ':'"));
      if (key == "traceEvents") {
        saw_events = true;
        if (!c.consume('[')) return done(c.fail("traceEvents not an array"));
        c.skip_ws();
        if (!c.consume(']')) {
          while (true) {
            if (!check_event(&c, count)) return done(false);
            ++count;
            if (c.consume(']')) break;
            if (!c.consume(',')) return done(c.fail("expected ','"));
          }
        }
      } else {
        if (!skip_value(&c)) return done(false);
      }
      if (c.consume('}')) break;
      if (!c.consume(',')) return done(c.fail("expected ',' at top level"));
    }
  }
  c.skip_ws();
  if (c.p != c.end) return done(c.fail("trailing content"));
  if (!saw_events) return done(c.fail("missing traceEvents"));
  if (num_events != nullptr) *num_events = count;
  return true;
}

bool validate_window_nesting(std::string_view json, std::size_t* num_windows,
                             std::string* error) {
  struct Span {
    double ts = 0.0;
    double dur = 0.0;
    double tid = 0.0;
    bool has_window_arg = false;
  };
  std::vector<Span> windows;
  std::vector<Span> iterations;

  const std::string owned(json);
  JsonCursor c{owned.data(), owned.data() + owned.size(), {}};
  const auto done = [&](bool ok) {
    if (!ok && error != nullptr) *error = c.error;
    return ok;
  };

  // Same walk as validate_chrome_json, but collecting the complete ('X')
  // "window" and "iteration" spans instead of only schema-checking.
  if (!c.consume('{')) return done(c.fail("top level is not an object"));
  c.skip_ws();
  if (!c.consume('}')) {
    while (true) {
      std::string key;
      if (!parse_string(&c, &key)) return done(false);
      if (!c.consume(':')) return done(c.fail("expected ':'"));
      if (key == "traceEvents") {
        if (!c.consume('[')) return done(c.fail("traceEvents not an array"));
        c.skip_ws();
        if (!c.consume(']')) {
          while (true) {
            if (!c.consume('{')) return done(c.fail("event not an object"));
            std::string name, ph;
            Span s;
            c.skip_ws();
            if (!c.consume('}')) {
              while (true) {
                std::string ekey;
                if (!parse_string(&c, &ekey)) return done(false);
                if (!c.consume(':')) return done(c.fail("expected ':'"));
                if (ekey == "name") {
                  if (!parse_string(&c, &name)) return done(false);
                } else if (ekey == "ph") {
                  if (!parse_string(&c, &ph)) return done(false);
                } else if (ekey == "ts") {
                  if (!parse_number(&c, &s.ts)) return done(false);
                } else if (ekey == "dur") {
                  if (!parse_number(&c, &s.dur)) return done(false);
                } else if (ekey == "tid") {
                  if (!parse_number(&c, &s.tid)) return done(false);
                } else if (ekey == "args") {
                  c.skip_ws();
                  if (!c.consume('{')) return done(c.fail("args not object"));
                  c.skip_ws();
                  if (!c.consume('}')) {
                    while (true) {
                      std::string akey;
                      if (!parse_string(&c, &akey)) return done(false);
                      if (!c.consume(':'))
                        return done(c.fail("expected ':'"));
                      if (akey == "window") {
                        if (!parse_number(&c, nullptr)) return done(false);
                        s.has_window_arg = true;
                      } else {
                        if (!skip_value(&c)) return done(false);
                      }
                      if (c.consume('}')) break;
                      if (!c.consume(','))
                        return done(c.fail("expected ',' in args"));
                    }
                  }
                } else {
                  if (!skip_value(&c)) return done(false);
                }
                if (c.consume('}')) break;
                if (!c.consume(',')) return done(c.fail("expected ','"));
              }
            }
            if (ph == "X") {
              if (name == "window") windows.push_back(s);
              if (name == "iteration") iterations.push_back(s);
            }
            if (c.consume(']')) break;
            if (!c.consume(',')) return done(c.fail("expected ','"));
          }
        }
      } else {
        if (!skip_value(&c)) return done(false);
      }
      if (c.consume('}')) break;
      if (!c.consume(',')) return done(c.fail("expected ',' at top level"));
    }
  }

  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Span& w = windows[i];
    if (!w.has_window_arg)
      return done(c.fail("window span " + std::to_string(i) +
                         " has no window arg"));
    bool contained = false;
    for (const Span& it : iterations)
      if (w.ts >= it.ts && w.ts + w.dur <= it.ts + it.dur) {
        contained = true;
        break;
      }
    if (!contained)
      return done(c.fail("window span " + std::to_string(i) +
                         " not nested in any iteration span"));
  }
  // Per thread, window spans must be disjoint or fully nested: the fan-out
  // runs one window at a time per pool thread, so a partial overlap means
  // interleaved (miscounted) spans.
  std::vector<const Span*> by_time;
  for (const Span& w : windows) by_time.push_back(&w);
  std::sort(by_time.begin(), by_time.end(),
            [](const Span* a, const Span* b) { return a->ts < b->ts; });
  for (std::size_t i = 0; i < by_time.size(); ++i)
    for (std::size_t j = i + 1; j < by_time.size(); ++j) {
      const Span& a = *by_time[i];
      const Span& b = *by_time[j];
      if (a.tid != b.tid) continue;
      if (b.ts >= a.ts + a.dur) break;  // disjoint (and all later j too)
      if (b.ts + b.dur > a.ts + a.dur)
        return done(c.fail("window spans on tid " +
                           std::to_string(static_cast<long long>(a.tid)) +
                           " partially overlap"));
    }
  if (num_windows != nullptr) *num_windows = windows.size();
  return true;
}

}  // namespace powder
