#include "trace/audit.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace powder {

namespace {

void append_escaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void append_double(std::string* out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", key, v);
  *out += buf;
}

}  // namespace

AuditLog::AuditLog(std::ostream* os) : os_(os) {
  POWDER_CHECK(os_ != nullptr);
}

void AuditLog::write(const AuditRecord& r) {
  // Format into a local buffer first so the stream sees whole lines only.
  std::string line;
  line.reserve(256);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%lld,\"iter\":%d,\"window\":%d,\"epoch\":%llu,"
                "\"cls\":\"",
                r.seq, r.iteration, r.window, r.epoch);
  line += buf;
  append_escaped(&line, r.cls);
  std::snprintf(buf, sizeof(buf), "\",\"target\":%lld", r.target);
  line += buf;
  if (!r.target_name.empty()) {
    line += ",\"target_name\":\"";
    append_escaped(&line, r.target_name);
    line += '"';
  }
  if (r.branch_sink >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"branch\":{\"sink\":%lld,\"pin\":%d}",
                  r.branch_sink, r.branch_pin);
    line += buf;
  }
  line += ",\"rep\":{\"kind\":\"";
  append_escaped(&line, r.rep_kind);
  line += '"';
  if (r.rep_b >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"b\":%lld", r.rep_b);
    line += buf;
  }
  if (r.rep_c >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"c\":%lld", r.rep_c);
    line += buf;
  }
  if (!r.rep_divisors.empty()) {
    line += ",\"divisors\":[";
    for (std::size_t i = 0; i < r.rep_divisors.size(); ++i) {
      std::snprintf(buf, sizeof(buf), i == 0 ? "%lld" : ",%lld",
                    r.rep_divisors[i]);
      line += buf;
    }
    line += ']';
  }
  line += '}';
  append_double(&line, "pg_a", r.pg_a);
  append_double(&line, "pg_b", r.pg_b);
  if (r.pg_c_known) append_double(&line, "pg_c", r.pg_c);
  if (r.proof_engine != nullptr) {
    line += ",\"proof\":{\"engine\":\"";
    append_escaped(&line, r.proof_engine);
    line += "\",\"verdict\":\"";
    append_escaped(&line, r.proof_verdict != nullptr ? r.proof_verdict : "");
    line += '"';
    if (r.proof_us >= 0.0) {
      std::snprintf(buf, sizeof(buf), ",\"us\":%.3f", r.proof_us);
      line += buf;
    }
    line += '}';
  }
  line += ",\"decision\":\"";
  append_escaped(&line, r.decision);
  line += "\"}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  records_.fetch_add(1, std::memory_order_relaxed);
}

void AuditLog::write_event(const AuditEvent& e) {
  std::string line;
  line.reserve(160);
  line += "{\"event\":\"";
  append_escaped(&line, e.event);
  line += '"';
  if (e.from != nullptr) {
    line += ",\"from\":\"";
    append_escaped(&line, e.from);
    line += '"';
  }
  if (e.to != nullptr) {
    line += ",\"to\":\"";
    append_escaped(&line, e.to);
    line += '"';
  }
  if (e.reason != nullptr) {
    line += ",\"reason\":\"";
    append_escaped(&line, e.reason);
    line += '"';
  }
  if (e.detail != nullptr) {
    line += ",\"detail\":\"";
    append_escaped(&line, e.detail);
    line += '"';
  }
  if (e.elapsed_seconds >= 0.0)
    append_double(&line, "elapsed_s", e.elapsed_seconds);
  if (e.value >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"value\":%lld", e.value);
    line += buf;
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  events_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace powder
