// Live progress streaming: a versioned NDJSON event stream written while
// the optimizer runs, so a long run is watchable instead of a black box.
//
// This is the future daemon's client wire protocol (ROADMAP item 1), so it
// carries a `schema_version` on every line and follows the DESIGN.md §11.4
// stability rules: adding keys to an event does not bump the version;
// removing or redefining one does. Consumers must ignore unknown keys and
// unknown event types.
//
// Event vocabulary (schema version 1); every line also carries
// `{"v":1,"seq":N,"t_ms":T}` with `seq` strictly increasing and `t_ms`
// monotone (steady clock, milliseconds since stream creation):
//
//   run_start    circuit, gates, inputs, outputs, threads, windowed, model
//   phase        iter + phase name (funcred/harvest/proof/commit/
//                window_partition/window_merge/final_guard), optional count
//   window       iter, window id, what (extracted/merged/conflict/rerun),
//                optional gates/commits counts
//   commit       iter, cls, window (-1 = global), gain, power-after
//   heartbeat    iter, power, applied, harvested, proofs, rates, ETA
//   degradation  from, to, reason
//   checkpoint   frames persisted so far
//   run_end      final power, applied, iterations
//
// The stream is written directly (no atomic-rename staging): live tailing
// is the point, and a torn final line on crash is exactly what NDJSON
// consumers are built to tolerate.
#ifndef POWDER_TRACE_PROGRESS_HPP
#define POWDER_TRACE_PROGRESS_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace powder {

/// Wire version of the progress stream. See header comment for the rules.
inline constexpr int kProgressSchemaVersion = 1;

class ProgressStream {
 public:
  /// Counter snapshot the optimizer hands to heartbeat ticks; rates are
  /// derived here from consecutive snapshots.
  struct Stats {
    int iteration = 0;
    int max_iterations = 0;
    double power = 0.0;
    long long applied = 0;
    long long harvested = 0;
    long long proofs = 0;
  };

  /// `os` must outlive the stream. `heartbeat_seconds` rate-limits
  /// heartbeat events; the first tick always emits so every run produces
  /// at least one heartbeat.
  explicit ProgressStream(std::ostream* os, double heartbeat_seconds = 1.0);

  ProgressStream(const ProgressStream&) = delete;
  ProgressStream& operator=(const ProgressStream&) = delete;

  void run_start(std::string_view circuit, long gates, int inputs,
                 int outputs, int threads, bool windowed,
                 const char* power_model);

  /// Stage marker. `count` with its `count_key` is optional (pass -1 /
  /// nullptr to omit), e.g. phase(2, "proof", 91, "candidates").
  void phase(int iteration, const char* name, long long count = -1,
             const char* count_key = nullptr);

  /// Window lifecycle event; `gates`/`commits` are optional (-1 omits).
  void window_event(int iteration, int window, const char* what,
                    long long gates = -1, long long commits = -1);

  /// One accepted substitution. `window` is -1 for the global loop.
  void commit(int iteration, const char* cls, int window, double gain,
              double power_after);

  /// Rate-limited heartbeat; no-op unless the interval elapsed (or it is
  /// the first heartbeat of the run).
  void heartbeat(const Stats& stats);

  /// Cheap pre-check so callers can skip building Stats when no heartbeat
  /// would be emitted.
  bool heartbeat_due() const;

  void degradation(const char* from, const char* to, const char* reason);
  void checkpoint(long long frames);
  void run_end(double power, long long applied, int iterations);

  long long events_written() const { return seq_; }
  long long heartbeats_written() const { return heartbeats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Opens a line with the common prefix and returns the elapsed ms.
  void begin_line(std::string* line, const char* event);
  void end_line(std::string* line);

  std::ostream* os_;
  double heartbeat_seconds_;
  Clock::time_point start_;
  Clock::time_point last_heartbeat_;
  Stats last_stats_;
  long long seq_ = 0;
  long long heartbeats_ = 0;
  mutable std::mutex mu_;
};

/// Result of validating a progress stream (trace_check, tests).
struct ProgressValidation {
  bool ok = false;
  std::string error;
  long long lines = 0;
  long long heartbeats = 0;
  long long phases = 0;
  long long windows = 0;
};

/// Validates a captured stream: every line parses, carries v/seq/t_ms/
/// event, seq starts at 0 and increases by 1, t_ms is monotone
/// nondecreasing, the first event is run_start, exactly one run_end sits
/// last, and at least one heartbeat was emitted.
ProgressValidation validate_progress_stream(std::string_view text);

}  // namespace powder

#endif  // POWDER_TRACE_PROGRESS_HPP
