#include "trace/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace powder {

MetricsRegistry::Entry* MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, Kind kind) {
  POWDER_CHECK_MSG(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    POWDER_CHECK_MSG(it->second.kind == kind,
                     "metric '" << name
                                << "' re-registered as a different kind");
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return find_or_create(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return find_or_create(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  return find_or_create(name, help, Kind::kHistogram)->histogram.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

namespace {

void append_double(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{";
  std::lock_guard<std::mutex> lock(mutex_);
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    switch (entry.kind) {
      case Kind::kCounter: os << entry.counter->value(); break;
      case Kind::kGauge: append_double(os, entry.gauge->value()); break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        os << "{\"count\":" << h.count() << ",\"sum_ns\":" << h.sum_ns();
        os << ",\"p50\":";
        append_double(os, h.percentile_ns(0.50));
        os << ",\"p90\":";
        append_double(os, h.percentile_ns(0.90));
        os << ",\"p99\":";
        append_double(os, h.percentile_ns(0.99));
        os << ",\"buckets\":[";
        bool bf = true;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const long long n = h.bucket(i);
          if (n == 0) continue;
          if (!bf) os << ",";
          bf = false;
          if (i == Histogram::kNumBuckets - 1) {
            os << "[null," << n << "]";  // +Inf bucket
          } else {
            os << "[" << Histogram::bucket_upper_bound_ns(i) << "," << n
               << "]";
          }
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) os << "# HELP " << name << " " << entry.help
                               << "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge: {
        os << "# TYPE " << name << " gauge\n";
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", entry.gauge->value());
        os << name << " " << buf << "\n";
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        os << "# TYPE " << name << " histogram\n";
        long long cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const long long n = h.bucket(i);
          cumulative += n;
          // Keep the exposition compact: only emit a boundary when it holds
          // observations, plus the mandatory +Inf bucket.
          if (n == 0 && i != Histogram::kNumBuckets - 1) continue;
          if (i == Histogram::kNumBuckets - 1) {
            os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
          } else {
            char buf[48];
            std::snprintf(
                buf, sizeof(buf), "%.9g",
                static_cast<double>(Histogram::bucket_upper_bound_ns(i)) /
                    1e9);
            os << name << "_bucket{le=\"" << buf << "\"} " << cumulative
               << "\n";
          }
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g",
                      static_cast<double>(h.sum_ns()) / 1e9);
        os << name << "_sum " << buf << "\n";
        os << name << "_count " << h.count() << "\n";
        // Derived quantiles (bucket upper bounds, seconds), exposed as
        // labelled series the way summary metrics are — cheap to read for
        // dashboards that do not want to run histogram_quantile().
        static constexpr struct { const char* label; double q; } kQuantiles[] =
            {{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}};
        for (const auto& [label, q] : kQuantiles) {
          const double ns = h.percentile_ns(q);
          if (std::isinf(ns)) {
            os << name << "{quantile=\"" << label << "\"} +Inf\n";
          } else {
            std::snprintf(buf, sizeof(buf), "%.17g", ns / 1e9);
            os << name << "{quantile=\"" << label << "\"} " << buf << "\n";
          }
        }
        break;
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace powder
