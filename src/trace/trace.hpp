#pragma once
// TraceSession: low-overhead span/event collection for the optimizer
// pipeline, exported as Chrome trace-event JSON (load the file in
// ui.perfetto.dev or chrome://tracing).
//
// Threading model: every emitting thread lazily registers a private
// bounded SPSC ring with the session (one mutex acquisition per thread per
// session, ever) and then records events wait-free into its own ring. The
// session is the single consumer: drain() — serialized internally — pops
// every ring into the merged event list, and the exporters drain first. A
// full ring drops the event and counts it (`dropped()`); tracing never
// blocks the optimizer.
//
// Event names, categories, and argument names must be string literals (or
// otherwise outlive the session): events store the pointers, not copies,
// which is what keeps the hot path allocation-free.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/spsc_ring.hpp"
#include "util/trace_clock.hpp"

namespace powder {

struct TraceEvent {
  const char* name = nullptr;  ///< static literal
  const char* cat = nullptr;   ///< static literal
  std::uint64_t ts_ns = 0;     ///< steady-clock start time
  std::uint64_t dur_ns = 0;    ///< span duration; 0 for instants
  char ph = 'X';               ///< 'X' complete span, 'i' instant
  const char* arg1_name = nullptr;  ///< static literal; null = no arg
  long long arg1 = 0;
  const char* arg2_name = nullptr;
  long long arg2 = 0;
};

class TraceSession {
 public:
  /// `events_per_thread` bounds each thread's ring (rounded up to a power
  /// of two); overflow drops events, counted by dropped().
  explicit TraceSession(std::size_t events_per_thread = std::size_t{1} << 16);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Session epoch: exported timestamps are relative to this.
  std::uint64_t start_ns() const { return t0_ns_; }

  /// Records one event from the calling thread (wait-free after the
  /// thread's first event).
  void record(const TraceEvent& event);

  /// Convenience wrappers; `ts_ns` from trace_now_ns().
  void record_span(const char* name, const char* cat, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, const char* arg1_name = nullptr,
                   long long arg1 = 0, const char* arg2_name = nullptr,
                   long long arg2 = 0);
  void record_instant(const char* name, const char* cat,
                      const char* arg1_name = nullptr, long long arg1 = 0);

  /// Moves every ring's pending events into the merged list. Callable any
  /// time (internally serialized against other drains and registrations);
  /// the exporters call it implicitly.
  void drain();

  /// An event as merged at drain time: the per-thread ring it came from
  /// becomes the Chrome `tid`.
  struct TaggedEvent {
    TraceEvent event;
    std::uint32_t tid = 0;
  };
  /// Drained events so far (call drain() first for an up-to-date view).
  const std::vector<TaggedEvent>& merged() const { return drained_; }

  /// Drains and writes the full Chrome trace-event JSON document. Events
  /// are sorted (start time, longest-first on ties) so output is
  /// deterministic given deterministic timestamps.
  void write_chrome_json(std::ostream& os);
  std::string chrome_json();

  std::uint64_t events_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t threads_seen() const;

 private:
  struct ThreadBuf {
    explicit ThreadBuf(std::size_t cap) : ring(cap) {}
    SpscRing<TraceEvent> ring;
    std::uint32_t tid = 0;
  };

  ThreadBuf* thread_buf();

  const std::uint64_t id_;
  const std::uint64_t t0_ns_;
  const std::size_t events_per_thread_;

  mutable std::mutex mutex_;  ///< guards buffers_ and drained_
  std::vector<std::unique_ptr<ThreadBuf>> buffers_;
  std::vector<TaggedEvent> drained_;

  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: records a complete ('X') event over its lifetime. With a
/// null session the constructor and destructor are a single branch each —
/// the disabled cost the whole instrumentation layer is budgeted on.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, const char* name, const char* cat)
      : session_(session) {
    if (session_ == nullptr) return;
    name_ = name;
    cat_ = cat;
    t0_ = trace_now_ns();
  }
  ~TraceSpan() {
    if (session_ == nullptr) return;
    session_->record_span(name_, cat_, t0_, trace_now_ns() - t0_, arg1_name_,
                          arg1_, arg2_name_, arg2_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two integer args (shown in Perfetto's span details).
  void arg(const char* name, long long value) {
    if (session_ == nullptr) return;
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_ = value;
    } else {
      arg2_name_ = name;
      arg2_ = value;
    }
  }

 private:
  TraceSession* session_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t t0_ = 0;
  const char* arg1_name_ = nullptr;
  long long arg1_ = 0;
  const char* arg2_name_ = nullptr;
  long long arg2_ = 0;
};

/// Minimal structural validation of a Chrome trace-event JSON document:
/// top-level object with a `traceEvents` array; every event is an object
/// with string `name`/`ph` and numeric `ts`/`pid`/`tid`; complete ('X')
/// events also carry a numeric non-negative `dur`. On success fills
/// `*num_events`; on failure fills `*error`. Shared by tools/trace_check
/// and the trace tests.
bool validate_chrome_json(std::string_view json, std::size_t* num_events,
                          std::string* error);

/// Windowed-mode structural validation on top of validate_chrome_json:
/// every complete "window" span must carry a numeric `window` arg, nest
/// temporally inside an "iteration" span, and window spans sharing a tid
/// must be disjoint or fully nested (never partially overlapping). Fills
/// `*num_windows` with the window-span count (0 for global-mode traces,
/// which pass trivially). Intended for complete traces: a session that
/// dropped events on a full ring may fail containment spuriously.
bool validate_window_nesting(std::string_view json, std::size_t* num_windows,
                             std::string* error);

}  // namespace powder
