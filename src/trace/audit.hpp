#pragma once
// Decision audit log: one NDJSON record per candidate the optimizer
// actually considered, with enough signal to replay *why* each was
// accepted or rejected — the substitution class, the PG_A/PG_B/PG_C
// economics, the permissibility verdict with its engine and cost, and the
// final decision. Feed it to jq/pandas to attribute wins and rejections
// per candidate class the way per-run totals never can.
//
// Writing happens on the optimizer's commit thread only (candidate
// selection is single-threaded even in pipeline mode), so the log needs no
// hot-path synchronization; a mutex still serializes writers defensively
// so a misuse cannot interleave half-lines.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace powder {

struct AuditRecord {
  long long seq = 0;           ///< 0-based record index within the run
  int iteration = 0;           ///< outer-loop iteration (1-based)
  int window = -1;             ///< window id for windowed merges; -1 = global
  /// Netlist journal epoch at decision time: joins a decision line to the
  /// delta-bus generation (and WAL frames) it was taken against.
  unsigned long long epoch = 0;
  const char* cls = "";        ///< OS2 / IS2 / OS3 / IS3 / OSK / ISK / FUNCRED
  long long target = -1;       ///< substituted stem gate id
  std::string_view target_name{};
  long long branch_sink = -1;  ///< IS2/IS3 branch sink gate id, else -1
  int branch_pin = -1;
  const char* rep_kind = "";   ///< constant / signal / two_input / cell
  long long rep_b = -1;        ///< substituting signal(s); -1 = n/a
  long long rep_c = -1;
  /// kCell replacements: the ordered divisor set (emitted as
  /// `"divisors":[...]` inside the rep object; empty = n/a).
  std::vector<long long> rep_divisors;
  double pg_a = 0.0;
  double pg_b = 0.0;
  double pg_c = 0.0;
  bool pg_c_known = false;     ///< PG_C is only computed for the shortlist
  /// Permissibility proof, when one ran: engine "podem"/"sat"/"hybrid"
  /// (inline) or "speculative" (verdict served by the proof pipeline's
  /// cache), verdict "untestable"/"test_found"/"aborted".
  const char* proof_engine = nullptr;
  const char* proof_verdict = nullptr;
  double proof_us = -1.0;      ///< inline proof wall time; <0 = n/a
  /// accepted / rejected_stale / rejected_delay / rejected_presim /
  /// rejected_proof / apply_failed / guard_rollback
  const char* decision = "";
};

/// A run-level event line, distinct from per-candidate decision records:
/// degradation-ladder transitions, checkpoint failures, watchdog firings.
/// Events render as `{"event":...}` NDJSON lines interleaved with decision
/// records but counted separately (records() stays a pure decision count).
struct AuditEvent {
  const char* event = "";       ///< "degradation" / "checkpoint_disabled" / …
  const char* from = nullptr;   ///< ladder level stepped down from
  const char* to = nullptr;     ///< ladder level stepped down to
  const char* reason = nullptr; ///< "deadline" / "proof_budget" / "mem_limit" …
  const char* detail = nullptr; ///< free-form context (error message, path)
  double elapsed_seconds = -1.0;///< run wall time at the event; <0 = n/a
  long long value = -1;         ///< free numeric slot (RSS bytes, frame); <0 = n/a
};

class AuditLog {
 public:
  /// Writes NDJSON lines to `os` (borrowed; must outlive the log).
  explicit AuditLog(std::ostream* os);
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  void write(const AuditRecord& record);
  void write_event(const AuditEvent& event);

  long long records() const {
    return records_.load(std::memory_order_relaxed);
  }
  long long events() const { return events_.load(std::memory_order_relaxed); }

 private:
  std::ostream* os_;
  std::mutex mutex_;
  std::atomic<long long> records_{0};
  std::atomic<long long> events_{0};
};

}  // namespace powder
