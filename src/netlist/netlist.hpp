#pragma once
// Technology-mapped netlist: a DAG of library gates.
//
// Terminology follows the paper (§2): every gate output is a signal, named
// by the gate's label. A signal with several fanout pins is a *stem*; each
// individual (sink gate, pin) connection is a *branch*. Primary inputs are
// modeled as gates of kind kInput, primary outputs as single-input gates of
// kind kOutput carrying an external load.
//
// The structure is mutable: POWDER's substitutions rewire branches
// (`set_fanin`) or whole stems (`replace_all_fanouts`), insert new gates,
// and sweep dead logic. Gates are tombstoned on removal so GateIds stay
// stable (simulation/power caches are indexed by GateId).
//
// Storage is struct-of-arrays (DESIGN.md §7): per-gate scalars live in
// parallel flat vectors, fanin/fanout pin lists live in pooled PinArenas
// (power-of-two slabs, freelist-recycled across rewires and tombstones),
// and gate names are interned into a NameTable so no hot path touches a
// std::string. Accessors hand out std::spans into the arenas; those spans
// are invalidated by any mutation, the same way the delta bus already
// forbids mutating while iterating.
//
// Incremental core (DESIGN.md §6): every mutation publishes a typed
// NetlistDelta — appended to a bounded delta log, bumping the monotone
// epoch, and pushed to every registered NetlistObserver. Analyses subscribe
// once and stay coherent by construction instead of being resynchronized by
// hand after each edit. Deltas are published from the mutating thread only
// (the optimizer's single-writer commit path); observers must not assume
// any locking beyond that. The topological order is cached inside the
// netlist and invalidated through the same publish point, so repeated
// topo_order() calls between mutations are free.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "library/cell_library.hpp"
#include "netlist/name_table.hpp"
#include "netlist/pin_arena.hpp"
#include "util/small_vec.hpp"

namespace powder {

using GateId = std::uint32_t;
inline constexpr GateId kNullGate = static_cast<GateId>(-1);

enum class GateKind : std::uint8_t {
  kInput,   ///< primary input; no fanins
  kOutput,  ///< primary output; exactly one fanin; presents `po_load`
  kCell,    ///< instance of a library cell
};

/// One (sink gate, input pin) connection — a *branch* of the driver's signal.
struct FanoutRef {
  GateId gate = kNullGate;
  int pin = 0;
  bool operator==(const FanoutRef&) const = default;
};

/// One sequential element, represented combinationally: the latch's data
/// input D is sampled by a pseudo primary output (the kOutput gate `input`)
/// and its state output Q driven by a pseudo primary input (the kInput gate
/// `output`). Cutting the circuit at latch boundaries this way keeps every
/// combinational analysis — simulation, STA, ATPG/SAT permissibility proofs,
/// the PO signature guard — sound without change: Q is a free input, D a
/// protected output. `init` is the BLIF reset state (0, 1, 2 = don't care,
/// 3 = unknown) and seeds the sequential probability fixed point.
struct Latch {
  GateId input = kNullGate;   ///< kOutput gate sampling the D signal
  GateId output = kNullGate;  ///< kInput gate driving the Q signal
  int init = 2;               ///< reset state: 0, 1, 2 = don't care, 3 = unknown
};

/// Delta taxonomy: the six mutation shapes the netlist can publish. Every
/// public mutator maps onto a sequence of these (see DESIGN.md §6 for the
/// exact mapping and the replay semantics of each kind).
enum class DeltaKind : std::uint8_t {
  kGateAdded,    ///< new slot created (input, output, or cell)
  kFaninChanged, ///< one input pin of `gate` rewired old_driver -> new_driver
  kCellChanged,  ///< cell swapped for a functionally identical one
  kGateRemoved,  ///< fanout-free gate tombstoned (`fanins` = pre-removal list)
  kGateRevived,  ///< tombstoned gate re-activated with `fanins`
  kRebuilt,      ///< wholesale replacement; all per-gate state is invalid
};

/// One published mutation, rich enough to replay forward onto a replica
/// netlist (replay_delta) and to drive incremental cache maintenance.
/// Fields beyond `kind`/`epoch`/`gate` are meaningful per kind only.
/// Publishing a delta is allocation-free in steady state: the fanin
/// snapshot uses inline small-buffer storage (spills only past 8 pins) and
/// the name travels as a NameId into the netlist's NameTable, not a string
/// copy (layout_test.cpp asserts this).
struct NetlistDelta {
  DeltaKind kind = DeltaKind::kRebuilt;
  std::uint64_t epoch = 0;  ///< netlist epoch *after* this delta
  GateId gate = kNullGate;  ///< subject gate (the sink for kFaninChanged)
  GateKind gate_kind = GateKind::kCell;  ///< kGateAdded
  CellId old_cell = kInvalidCell;        ///< kCellChanged
  CellId new_cell = kInvalidCell;        ///< kGateAdded (cells), kCellChanged
  int pin = -1;                          ///< kFaninChanged
  GateId old_driver = kNullGate;         ///< kFaninChanged
  GateId new_driver = kNullGate;         ///< kFaninChanged
  SmallVec<GateId, 8> fanins;  ///< kGateAdded / kGateRemoved / kGateRevived
  NameId name = kNullName;     ///< kGateAdded; resolve via Netlist::names()
  double po_load = 1.0;        ///< kGateAdded outputs
};

/// Subscriber interface. on_delta runs synchronously inside the mutator, on
/// the mutating thread, after the structural change is complete — observers
/// may read the netlist but must never mutate it re-entrantly.
class NetlistObserver {
 public:
  virtual ~NetlistObserver() = default;
  virtual void on_delta(const NetlistDelta& delta) = 0;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* library, std::string name = "top");

  /// Owning constructor: the netlist shares ownership of its library, so
  /// the library can never dangle no matter how the netlist (or copies of
  /// it) travel. Prefer this (with CellLibrary::standard_shared()) in any
  /// helper that returns a Netlist by value.
  explicit Netlist(std::shared_ptr<const CellLibrary> library,
                   std::string name = "top");

  // Copying transfers structure only: the copy starts with no observers and
  // an empty delta log (observers are identities bound to one instance).
  // Copy-assignment keeps the destination's observers and notifies them
  // with a single kRebuilt delta. Moving a netlist that still has observers
  // attached is a checked error — the observers hold a pointer to the
  // moved-from object.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&& other);
  Netlist& operator=(Netlist&& other);
  ~Netlist() = default;

  const CellLibrary& library() const { return *library_; }

  /// Retrofits shared ownership of the library onto a netlist built with
  /// the borrowing constructor (e.g. the result of map_aig). `library`
  /// must be the same object the netlist already points at — adopting a
  /// different library would silently re-interpret every CellId. The
  /// ownership travels with copies and moves of the netlist.
  void adopt_library(std::shared_ptr<const CellLibrary> library);

  /// The shared owner handle; null when the netlist merely borrows.
  const std::shared_ptr<const CellLibrary>& library_owner() const {
    return library_owner_;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction / mutation -------------------------------------------
  GateId add_input(std::string name);
  GateId add_output(std::string name, GateId driver, double load = 1.0);
  GateId add_gate(CellId cell, const std::vector<GateId>& fanins,
                  std::string name = "");

  /// Pre-sizes the gate table and both pin arenas (BLIF/AIG readers know
  /// the circuit size up front; bulk construction then never reallocates).
  void reserve(std::size_t gates, std::size_t pins);

  /// Rewires input pin `pin` of `gate` to `new_driver` (the IS2 primitive).
  void set_fanin(GateId gate, int pin, GateId new_driver);

  /// Swaps a gate's cell for a functionally identical one (gate
  /// re-sizing). The new cell must have the same arity and truth table.
  void set_cell(GateId gate, CellId new_cell);

  /// Moves every fanout branch of `old_driver` to `new_driver` (the OS2
  /// primitive). `new_driver` must not be in the transitive fanout of
  /// `old_driver` (checked).
  void replace_all_fanouts(GateId old_driver, GateId new_driver);

  /// Tombstones every gate from which no primary output is reachable.
  /// Returns the removed gates. Inputs and outputs are never removed.
  std::vector<GateId> sweep_dead();

  /// Removes a specific dead gate (no fanouts). Recursively sweeps fanins
  /// that become dead. Returns all removed gates. When `removed_fanins` is
  /// non-null it receives, parallel to the returned vector, the fanin list
  /// each gate had before removal — everything `revive_gate` needs to undo
  /// the sweep.
  std::vector<GateId> remove_gate_recursive(
      GateId gate, std::vector<std::vector<GateId>>* removed_fanins = nullptr);

  /// Tombstones a single fanout-free cell gate without the recursive sweep
  /// (used to undo an insertion). The slot keeps its cell and name so the
  /// gate could be revived again; its pin slabs return to the arena
  /// freelists.
  void remove_single_gate(GateId gate);

  /// Re-activates a tombstoned cell gate with the given fanins — the exact
  /// inverse of a removal; fanout back-edges are re-created on the fanins,
  /// which must all be alive.
  void revive_gate(GateId gate, const std::vector<GateId>& fanins);

  /// Binds an existing pseudo-PO (`input`, the D sample point) and
  /// pseudo-PI (`output`, the Q signal) into a latch record. Publishes no
  /// delta: the combinational structure is unchanged, only the sequential
  /// interpretation is recorded (call during construction, like the BLIF
  /// reader does, before analyses subscribe).
  void add_latch(GateId input, GateId output, int init = 2);

  // ---- access --------------------------------------------------------------
  std::size_t num_slots() const { return kind_.size(); }
  GateKind kind(GateId id) const { return kind_[id]; }
  bool alive(GateId id) const { return alive_[id] != 0; }
  CellId cell_id(GateId id) const { return cell_[id]; }
  double po_load(GateId id) const { return po_load_[id]; }

  /// The gate's input pins, one driver per pin. The span points into the
  /// pin arena: valid until the next mutation.
  std::span<const GateId> fanins(GateId id) const {
    return fanin_pins_.view(fanin_ref_[id]);
  }
  /// The branches of the gate's output signal. Same lifetime rule.
  std::span<const FanoutRef> fanouts(GateId id) const {
    return fanout_pins_.view(fanout_ref_[id]);
  }
  GateId fanin(GateId id, int pin) const {
    return fanin_pins_.at(fanin_ref_[id], static_cast<std::size_t>(pin));
  }
  // Pin counts are stored as uint32 slab sizes bounded by cell arity and
  // fanout degree, so the int conversion is always exact (the old Gate
  // accessors narrowed from size_t).
  int num_fanins(GateId id) const {
    return static_cast<int>(fanin_ref_[id].size);
  }
  int num_fanouts(GateId id) const {
    return static_cast<int>(fanout_ref_[id].size);
  }

  /// Visits each fanin driver in pin order without materializing a span.
  template <typename Fn>
  void for_each_fanin(GateId id, Fn&& fn) const {
    for (const GateId fi : fanins(id)) fn(fi);
  }

  /// Interned name id and spelling. The view is null-terminated and stable
  /// for the netlist's lifetime (names are never un-interned).
  NameId name_id(GateId id) const { return gate_name_[id]; }
  std::string_view gate_name(GateId id) const {
    return names_.view(gate_name_[id]);
  }
  const NameTable& names() const { return names_; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  /// Sequential elements. `inputs()`/`outputs()` include the latch pseudo
  /// gates; these records tell them apart from the real PIs/POs.
  const std::vector<Latch>& latches() const { return latches_; }
  int num_latches() const { return static_cast<int>(latches_.size()); }
  /// True when `id` is the Q pseudo-PI of some latch (linear scan; latch
  /// counts are tiny next to gate counts).
  bool is_latch_output(GateId id) const;
  /// True when `id` is the D pseudo-PO of some latch.
  bool is_latch_input(GateId id) const;

  /// Number of live kCell gates.
  int num_cells() const;

  /// The cell of a kCell gate.
  const Cell& cell_of(GateId id) const;

  /// Capacitive load presented by input pin `pin` of `gate`.
  double pin_cap(GateId gate, int pin) const;

  /// Total capacitive load on the signal driven by `gate`
  /// (sum of the pin caps of all its fanout branches).
  double signal_cap(GateId gate) const;

  /// Sum of cell areas of live gates.
  double total_area() const;

  /// Live gates in topological order (inputs first, outputs last). Cached;
  /// recomputed lazily after a structural delta (kCellChanged keeps the
  /// cache — resizing never changes the DAG). The reference is valid until
  /// the next structural mutation; callers that mutate while iterating must
  /// copy first. Safe to call from concurrent readers between mutations.
  const std::vector<GateId>& topo_order() const;

  /// True if `descendant` is reachable from `ancestor` (strictly; a gate is
  /// not its own transitive fanout).
  bool in_tfo(GateId ancestor, GateId descendant) const;

  /// All live gates in the transitive fanout of `g` (excluding `g`).
  std::vector<GateId> tfo(GateId g) const;

  /// Maximal fanout-free cone of `g`: the gates (including `g`) that die if
  /// `g`'s signal is no longer used. PIs are never part of an MFFC. Gates
  /// in `keep_alive` are treated as externally used and are never absorbed
  /// (used when a substitution's replacement sources live inside the cone).
  std::vector<GateId> mffc(GateId g,
                           const std::vector<GateId>& keep_alive = {}) const;

  /// Structural invariants: fanin/fanout cross-consistency, pin counts vs
  /// cell arity, acyclicity, liveness of referenced gates. Throws
  /// CheckError on violation.
  void check_consistency() const;

  /// Generation counter bumped on every published delta; lets caches detect
  /// staleness cheaply. `epoch()` is the delta-bus name for the same value.
  std::uint64_t generation() const { return generation_; }
  std::uint64_t epoch() const { return generation_; }

  // ---- delta bus -----------------------------------------------------------

  /// Registers `observer` for every future delta. Const because analyses
  /// hold `const Netlist&`; observation does not mutate the structure.
  void attach_observer(NetlistObserver* observer) const;
  void detach_observer(NetlistObserver* observer) const;

  /// The deltas published after `epoch`, oldest first — or nullopt when the
  /// bounded log has already evicted part of that range (caller must fall
  /// back to a full rebuild).
  std::optional<std::vector<NetlistDelta>> deltas_since(
      std::uint64_t epoch) const;

  /// Lifetime totals, for diagnostics: deltas published and observer
  /// notifications delivered (published * attached observers).
  std::uint64_t deltas_published() const { return deltas_published_; }
  std::uint64_t observer_notifications() const { return notifications_; }

  // ---- storage diagnostics -------------------------------------------------
  std::uint64_t pin_slabs_allocated() const {
    return fanin_pins_.slabs_allocated() + fanout_pins_.slabs_allocated();
  }
  std::uint64_t pin_slabs_recycled() const {
    return fanin_pins_.slabs_recycled() + fanout_pins_.slabs_recycled();
  }
  std::size_t name_pool_bytes() const { return names_.pool_bytes(); }

  /// Returns a fresh name not used by any gate yet.
  std::string fresh_name(const std::string& prefix);

  /// Returns a copy without the tombstoned slots (long optimization runs
  /// accumulate dead gates; caches indexed by GateId shrink accordingly).
  /// When `remap` is non-null it receives old-id -> new-id (kNullGate for
  /// dead gates).
  Netlist compacted(std::vector<GateId>* remap = nullptr) const;

 private:
  const CellLibrary* library_;
  /// Optional shared ownership of *library_ (see adopt_library). Keeping
  /// the raw pointer as the hot-path accessor leaves cell lookups free of
  /// shared_ptr overhead.
  std::shared_ptr<const CellLibrary> library_owner_;
  std::string name_;

  // Struct-of-arrays gate table: one entry per slot in each vector.
  std::vector<GateKind> kind_;
  std::vector<std::uint8_t> alive_;
  std::vector<CellId> cell_;
  std::vector<NameId> gate_name_;
  std::vector<double> po_load_;
  std::vector<PinArena<GateId>::Ref> fanin_ref_;
  std::vector<PinArena<FanoutRef>::Ref> fanout_ref_;
  PinArena<GateId> fanin_pins_;
  PinArena<FanoutRef> fanout_pins_;
  NameTable names_;

  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<Latch> latches_;
  std::uint64_t generation_ = 0;
  std::uint64_t name_counter_ = 0;

  // Observation state is identity-bound, not value-bound: mutable so that
  // const analyses can subscribe, excluded from copies, and guarded against
  // moves while non-empty (see the copy/move contracts above).
  mutable std::vector<NetlistObserver*> observers_;
  // Bounded delta log as a ring buffer: grows to capacity once, then
  // overwrites in place — steady-state publishing never allocates.
  std::vector<NetlistDelta> delta_log_;
  std::size_t log_head_ = 0;  ///< oldest entry once the ring wrapped
  std::uint64_t deltas_published_ = 0;
  std::uint64_t notifications_ = 0;

  // Lazily-maintained topological order (see topo_order()). Guarded by a
  // mutex because pool workers may race to refill the cache between
  // mutations; mutators run strictly single-threaded (delta-bus contract).
  mutable std::vector<GateId> topo_cache_;
  mutable bool topo_dirty_ = true;
  mutable std::mutex topo_mutex_;

  // Reused DFS scratch for the in_tfo cycle guard: set_fanin runs once per
  // committed rewire and must not allocate in steady state.
  mutable std::vector<std::uint8_t> tfo_seen_;
  mutable std::vector<GateId> tfo_stack_;

  GateId new_gate(GateKind kind);
  void connect(GateId driver, GateId sink, int pin);
  void disconnect(GateId driver, GateId sink, int pin);
  std::vector<GateId> compute_topo() const;

  /// Stamps the delta with the next epoch, invalidates the topo cache for
  /// structural kinds, notifies every observer, and appends it to the
  /// bounded log. The single mutation point for generation_ — every mutator
  /// funnels through here.
  void publish(NetlistDelta&& delta);
};

/// Applies one recorded delta to `netlist`, which must be in the exact
/// pre-delta state (same GateIds). `names` is the table of the netlist the
/// delta was recorded from (deltas carry NameIds, not strings). Replaying
/// an observer's delta stream onto a copy taken at subscription time
/// reproduces the source netlist; the tombstone-lifecycle property test
/// relies on this. kRebuilt is not replayable (it announces that per-gate
/// history was discarded) and is a checked error.
void replay_delta(Netlist& netlist, const NetlistDelta& delta,
                  const NameTable& names);

}  // namespace powder
