#pragma once
// Technology-mapped netlist: a DAG of library gates.
//
// Terminology follows the paper (§2): every gate output is a signal, named
// by the gate's label. A signal with several fanout pins is a *stem*; each
// individual (sink gate, pin) connection is a *branch*. Primary inputs are
// modeled as gates of kind kInput, primary outputs as single-input gates of
// kind kOutput carrying an external load.
//
// The structure is mutable: POWDER's substitutions rewire branches
// (`set_fanin`) or whole stems (`replace_all_fanouts`), insert new gates,
// and sweep dead logic. Gates are tombstoned on removal so GateIds stay
// stable (simulation/power caches are indexed by GateId).
//
// Incremental core (DESIGN.md §6): every mutation publishes a typed
// NetlistDelta — appended to a bounded delta log, bumping the monotone
// epoch, and pushed to every registered NetlistObserver. Analyses subscribe
// once and stay coherent by construction instead of being resynchronized by
// hand after each edit. Deltas are published from the mutating thread only
// (the optimizer's single-writer commit path); observers must not assume
// any locking beyond that.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "library/cell_library.hpp"

namespace powder {

using GateId = std::uint32_t;
inline constexpr GateId kNullGate = static_cast<GateId>(-1);

enum class GateKind : std::uint8_t {
  kInput,   ///< primary input; no fanins
  kOutput,  ///< primary output; exactly one fanin; presents `po_load`
  kCell,    ///< instance of a library cell
};

/// One (sink gate, input pin) connection — a *branch* of the driver's signal.
struct FanoutRef {
  GateId gate = kNullGate;
  int pin = 0;
  bool operator==(const FanoutRef&) const = default;
};

struct Gate {
  GateKind kind = GateKind::kCell;
  CellId cell = kInvalidCell;      ///< valid iff kind == kCell
  std::string name;                ///< unique label == output signal name
  std::vector<GateId> fanins;      ///< one entry per input pin
  std::vector<FanoutRef> fanouts;  ///< maintained by Netlist
  double po_load = 1.0;            ///< external load iff kind == kOutput
  bool alive = true;

  int num_fanins() const { return static_cast<int>(fanins.size()); }
  int num_fanouts() const { return static_cast<int>(fanouts.size()); }
};

/// Delta taxonomy: the six mutation shapes the netlist can publish. Every
/// public mutator maps onto a sequence of these (see DESIGN.md §6 for the
/// exact mapping and the replay semantics of each kind).
enum class DeltaKind : std::uint8_t {
  kGateAdded,    ///< new slot created (input, output, or cell)
  kFaninChanged, ///< one input pin of `gate` rewired old_driver -> new_driver
  kCellChanged,  ///< cell swapped for a functionally identical one
  kGateRemoved,  ///< fanout-free gate tombstoned (`fanins` = pre-removal list)
  kGateRevived,  ///< tombstoned gate re-activated with `fanins`
  kRebuilt,      ///< wholesale replacement; all per-gate state is invalid
};

/// One published mutation, rich enough to replay forward onto a replica
/// netlist (replay_delta) and to drive incremental cache maintenance.
/// Fields beyond `kind`/`epoch`/`gate` are meaningful per kind only.
struct NetlistDelta {
  DeltaKind kind = DeltaKind::kRebuilt;
  std::uint64_t epoch = 0;  ///< netlist epoch *after* this delta
  GateId gate = kNullGate;  ///< subject gate (the sink for kFaninChanged)
  GateKind gate_kind = GateKind::kCell;  ///< kGateAdded
  CellId old_cell = kInvalidCell;        ///< kCellChanged
  CellId new_cell = kInvalidCell;        ///< kGateAdded (cells), kCellChanged
  int pin = -1;                          ///< kFaninChanged
  GateId old_driver = kNullGate;         ///< kFaninChanged
  GateId new_driver = kNullGate;         ///< kFaninChanged
  std::vector<GateId> fanins;  ///< kGateAdded / kGateRemoved / kGateRevived
  std::string name;            ///< kGateAdded
  double po_load = 1.0;        ///< kGateAdded outputs
};

/// Subscriber interface. on_delta runs synchronously inside the mutator, on
/// the mutating thread, after the structural change is complete — observers
/// may read the netlist but must never mutate it re-entrantly.
class NetlistObserver {
 public:
  virtual ~NetlistObserver() = default;
  virtual void on_delta(const NetlistDelta& delta) = 0;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* library, std::string name = "top");

  // Copying transfers structure only: the copy starts with no observers and
  // an empty delta log (observers are identities bound to one instance).
  // Copy-assignment keeps the destination's observers and notifies them
  // with a single kRebuilt delta. Moving a netlist that still has observers
  // attached is a checked error — the observers hold a pointer to the
  // moved-from object.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&& other);
  Netlist& operator=(Netlist&& other);
  ~Netlist() = default;

  const CellLibrary& library() const { return *library_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction / mutation -------------------------------------------
  GateId add_input(std::string name);
  GateId add_output(std::string name, GateId driver, double load = 1.0);
  GateId add_gate(CellId cell, const std::vector<GateId>& fanins,
                  std::string name = "");

  /// Rewires input pin `pin` of `gate` to `new_driver` (the IS2 primitive).
  void set_fanin(GateId gate, int pin, GateId new_driver);

  /// Swaps a gate's cell for a functionally identical one (gate
  /// re-sizing). The new cell must have the same arity and truth table.
  void set_cell(GateId gate, CellId new_cell);

  /// Moves every fanout branch of `old_driver` to `new_driver` (the OS2
  /// primitive). `new_driver` must not be in the transitive fanout of
  /// `old_driver` (checked).
  void replace_all_fanouts(GateId old_driver, GateId new_driver);

  /// Tombstones every gate from which no primary output is reachable.
  /// Returns the removed gates. Inputs and outputs are never removed.
  std::vector<GateId> sweep_dead();

  /// Removes a specific dead gate (no fanouts). Recursively sweeps fanins
  /// that become dead. Returns all removed gates. When `removed_fanins` is
  /// non-null it receives, parallel to the returned vector, the fanin list
  /// each gate had before removal — everything `revive_gate` needs to undo
  /// the sweep.
  std::vector<GateId> remove_gate_recursive(
      GateId gate, std::vector<std::vector<GateId>>* removed_fanins = nullptr);

  /// Tombstones a single fanout-free cell gate without the recursive sweep
  /// (used to undo an insertion). The slot keeps its cell and name so the
  /// gate could be revived again.
  void remove_single_gate(GateId gate);

  /// Re-activates a tombstoned cell gate with the given fanins — the exact
  /// inverse of a removal; fanout back-edges are re-created on the fanins,
  /// which must all be alive.
  void revive_gate(GateId gate, const std::vector<GateId>& fanins);

  // ---- access --------------------------------------------------------------
  std::size_t num_slots() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  GateKind kind(GateId id) const { return gates_[id].kind; }
  bool alive(GateId id) const { return gates_[id].alive; }
  const std::string& gate_name(GateId id) const { return gates_[id].name; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  /// Number of live kCell gates.
  int num_cells() const;

  /// The cell of a kCell gate.
  const Cell& cell_of(GateId id) const;

  /// Capacitive load presented by input pin `pin` of `gate`.
  double pin_cap(GateId gate, int pin) const;

  /// Total capacitive load on the signal driven by `gate`
  /// (sum of the pin caps of all its fanout branches).
  double signal_cap(GateId gate) const;

  /// Sum of cell areas of live gates.
  double total_area() const;

  /// Live gates in topological order (inputs first, outputs last).
  /// Recomputed on demand after mutations.
  std::vector<GateId> topo_order() const;

  /// True if `descendant` is reachable from `ancestor` (strictly; a gate is
  /// not its own transitive fanout).
  bool in_tfo(GateId ancestor, GateId descendant) const;

  /// All live gates in the transitive fanout of `g` (excluding `g`).
  std::vector<GateId> tfo(GateId g) const;

  /// Maximal fanout-free cone of `g`: the gates (including `g`) that die if
  /// `g`'s signal is no longer used. PIs are never part of an MFFC. Gates
  /// in `keep_alive` are treated as externally used and are never absorbed
  /// (used when a substitution's replacement sources live inside the cone).
  std::vector<GateId> mffc(GateId g,
                           const std::vector<GateId>& keep_alive = {}) const;

  /// Structural invariants: fanin/fanout cross-consistency, pin counts vs
  /// cell arity, acyclicity, liveness of referenced gates. Throws
  /// CheckError on violation.
  void check_consistency() const;

  /// Generation counter bumped on every published delta; lets caches detect
  /// staleness cheaply. `epoch()` is the delta-bus name for the same value.
  std::uint64_t generation() const { return generation_; }
  std::uint64_t epoch() const { return generation_; }

  // ---- delta bus -----------------------------------------------------------

  /// Registers `observer` for every future delta. Const because analyses
  /// hold `const Netlist&`; observation does not mutate the structure.
  void attach_observer(NetlistObserver* observer) const;
  void detach_observer(NetlistObserver* observer) const;

  /// The deltas published after `epoch`, oldest first — or nullopt when the
  /// bounded log has already evicted part of that range (caller must fall
  /// back to a full rebuild).
  std::optional<std::vector<NetlistDelta>> deltas_since(
      std::uint64_t epoch) const;

  /// Lifetime totals, for diagnostics: deltas published and observer
  /// notifications delivered (published * attached observers).
  std::uint64_t deltas_published() const { return deltas_published_; }
  std::uint64_t observer_notifications() const { return notifications_; }

  /// Returns a fresh name not used by any gate yet.
  std::string fresh_name(const std::string& prefix);

  /// Returns a copy without the tombstoned slots (long optimization runs
  /// accumulate dead gates; caches indexed by GateId shrink accordingly).
  /// When `remap` is non-null it receives old-id -> new-id (kNullGate for
  /// dead gates).
  Netlist compacted(std::vector<GateId>* remap = nullptr) const;

 private:
  const CellLibrary* library_;
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::uint64_t generation_ = 0;
  std::uint64_t name_counter_ = 0;
  std::unordered_set<std::string> used_names_;

  // Observation state is identity-bound, not value-bound: mutable so that
  // const analyses can subscribe, excluded from copies, and guarded against
  // moves while non-empty (see the copy/move contracts above).
  mutable std::vector<NetlistObserver*> observers_;
  std::deque<NetlistDelta> delta_log_;
  std::uint64_t deltas_published_ = 0;
  std::uint64_t notifications_ = 0;

  GateId new_gate(GateKind kind);
  void connect(GateId driver, GateId sink, int pin);
  void disconnect(GateId driver, GateId sink, int pin);

  /// Stamps the delta with the next epoch, notifies every observer, and
  /// appends it to the bounded log. The single mutation point for
  /// generation_ — every mutator funnels through here.
  void publish(NetlistDelta&& delta);
};

/// Applies one recorded delta to `netlist`, which must be in the exact
/// pre-delta state (same GateIds). Replaying an observer's delta stream
/// onto a copy taken at subscription time reproduces the source netlist;
/// the tombstone-lifecycle property test relies on this. kRebuilt is not
/// replayable (it announces that per-gate history was discarded) and is a
/// checked error.
void replay_delta(Netlist& netlist, const NetlistDelta& delta);

}  // namespace powder
