#pragma once

// Pooled storage for per-gate pin lists (fanins and fanouts). All lists
// live in one contiguous std::vector<T>, carved into power-of-two
// capacity-class slabs; each gate holds a small Ref {offset, size, class}
// instead of its own heap vector. Freed slabs (rewire shrink, gate
// tombstone) go onto per-class freelists and are recycled before the pool
// grows, so long optimization runs reach a steady state with zero slab
// allocation (see Netlist::pin_slabs_recycled in the report diagnostics).
//
// Invariants the rest of the system depends on:
//  - erase_at() is order-preserving (shifts the tail down). Fanout
//    iteration order feeds floating-point accumulation order and delta
//    publish order, so it must match what a plain std::vector would do.
//  - view() spans are invalidated by ANY mutating arena call (the pool may
//    reallocate). Callers that mutate while iterating must copy first —
//    the same rule the delta bus already imposes on netlist mutation.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace powder {

template <typename T>
class PinArena {
 public:
  /// Handle to one slab. capacity = cls == 0 ? 0 : 1 << (cls - 1).
  struct Ref {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint8_t cls = 0;
  };

  static constexpr std::uint32_t capacity_of(std::uint8_t cls) {
    return cls == 0 ? 0u : 1u << (cls - 1);
  }

  std::span<const T> view(const Ref& ref) const {
    return {pool_.data() + ref.offset, ref.size};
  }
  std::span<T> view_mut(const Ref& ref) {
    return {pool_.data() + ref.offset, ref.size};
  }
  const T& at(const Ref& ref, std::size_t i) const {
    POWDER_DCHECK(i < ref.size);
    return pool_[ref.offset + i];
  }
  T& at_mut(const Ref& ref, std::size_t i) {
    POWDER_DCHECK(i < ref.size);
    return pool_[ref.offset + i];
  }

  void push_back(Ref& ref, const T& value) {
    if (ref.size == capacity_of(ref.cls)) grow(ref, ref.size + 1);
    pool_[ref.offset + ref.size++] = value;
  }

  void assign(Ref& ref, const T* data, std::size_t n) {
    if (n > capacity_of(ref.cls)) grow(ref, static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) pool_[ref.offset + i] = data[i];
    ref.size = static_cast<std::uint32_t>(n);
  }

  /// Order-preserving removal: shifts the tail left by one.
  void erase_at(Ref& ref, std::size_t i) {
    POWDER_DCHECK(i < ref.size);
    T* base = pool_.data() + ref.offset;
    for (std::size_t j = i + 1; j < ref.size; ++j) base[j - 1] = base[j];
    --ref.size;
  }

  /// Keeps the slab, drops the contents.
  void clear(Ref& ref) { ref.size = 0; }

  /// Returns the slab to its class freelist; ref becomes empty/slab-less.
  void release(Ref& ref) {
    if (ref.cls != 0) free_[ref.cls].push_back(ref.offset);
    ref = Ref{};
  }

  std::uint64_t slabs_allocated() const { return slabs_allocated_; }
  std::uint64_t slabs_recycled() const { return slabs_recycled_; }
  std::size_t pool_bytes() const { return pool_.capacity() * sizeof(T); }
  void reserve(std::size_t pins) { pool_.reserve(pins); }

 private:
  static std::uint8_t class_for(std::uint32_t n) {
    std::uint8_t cls = 0;
    while (capacity_of(cls) < n) ++cls;
    return cls;
  }

  /// Moves the slab to one of capacity >= need, preserving contents.
  void grow(Ref& ref, std::uint32_t need) {
    const std::uint8_t cls = class_for(need);
    std::uint32_t offset;
    if (!free_[cls].empty()) {
      offset = free_[cls].back();
      free_[cls].pop_back();
      ++slabs_recycled_;
    } else {
      offset = static_cast<std::uint32_t>(pool_.size());
      pool_.resize(pool_.size() + capacity_of(cls));
      ++slabs_allocated_;
    }
    for (std::uint32_t i = 0; i < ref.size; ++i)
      pool_[offset + i] = pool_[ref.offset + i];
    if (ref.cls != 0) free_[ref.cls].push_back(ref.offset);
    ref.offset = offset;
    ref.cls = cls;
  }

  std::vector<T> pool_;
  // Freelists indexed by capacity class; class 31 would be a 2^30-pin gate,
  // far beyond anything the mapper emits.
  std::array<std::vector<std::uint32_t>, 32> free_;
  std::uint64_t slabs_allocated_ = 0;
  std::uint64_t slabs_recycled_ = 0;
};

}  // namespace powder
