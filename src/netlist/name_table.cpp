#include "netlist/name_table.hpp"

#include <cstring>

namespace powder {

NameTable::NameTable(const NameTable& other) {
  for (const Entry& e : other.entries_) intern({e.text, e.len});
}

NameTable& NameTable::operator=(const NameTable& other) {
  if (this == &other) return *this;
  NameTable copy(other);
  *this = std::move(copy);
  return *this;
}

NameId NameTable::intern(std::string_view name) {
  auto it = map_.find(name);
  if (it != map_.end()) return it->second;
  const char* text = store(name);
  const NameId id = static_cast<NameId>(entries_.size());
  entries_.push_back(Entry{text, name.size()});
  map_.emplace(std::string_view{text, name.size()}, id);
  return id;
}

NameId NameTable::find(std::string_view name) const {
  auto it = map_.find(name);
  return it == map_.end() ? kNullName : it->second;
}

const char* NameTable::store(std::string_view name) {
  const std::size_t need = name.size() + 1;  // keep entries null-terminated
  char* dst;
  if (need > kChunkSize) {
    // Oversized name: dedicated chunk; the open chunk stays open.
    chunks_.push_back(std::make_unique<char[]>(need));
    pool_bytes_ += need;
    dst = chunks_.back().get();
  } else {
    if (need > cursor_left_) {
      chunks_.push_back(std::make_unique<char[]>(kChunkSize));
      pool_bytes_ += kChunkSize;
      cursor_ = chunks_.back().get();
      cursor_left_ = kChunkSize;
    }
    dst = cursor_;
    cursor_ += need;
    cursor_left_ -= need;
  }
  std::memcpy(dst, name.data(), name.size());
  dst[name.size()] = '\0';
  return dst;
}

}  // namespace powder
