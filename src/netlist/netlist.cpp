#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

namespace {
/// Delta-log bound: old deltas are evicted FIFO. Large enough that any
/// inner-loop consumer (one commit plus its rollback) fits comfortably;
/// consumers of deltas_since fall back to a full rebuild on eviction.
constexpr std::size_t kDeltaLogCapacity = 1024;
}  // namespace

Netlist::Netlist(const CellLibrary* library, std::string name)
    : library_(library), name_(std::move(name)) {
  POWDER_CHECK(library_ != nullptr);
}

Netlist::Netlist(const Netlist& other)
    : library_(other.library_),
      name_(other.name_),
      gates_(other.gates_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      generation_(other.generation_),
      name_counter_(other.name_counter_),
      used_names_(other.used_names_) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  library_ = other.library_;
  name_ = other.name_;
  gates_ = other.gates_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  used_names_ = other.used_names_;
  delta_log_.clear();
  NetlistDelta d;
  d.kind = DeltaKind::kRebuilt;
  publish(std::move(d));
  return *this;
}

Netlist::Netlist(Netlist&& other) {
  POWDER_CHECK_MSG(other.observers_.empty(),
                   "moving a netlist that still has observers attached");
  library_ = other.library_;
  name_ = std::move(other.name_);
  gates_ = std::move(other.gates_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  used_names_ = std::move(other.used_names_);
  delta_log_ = std::move(other.delta_log_);
  deltas_published_ = other.deltas_published_;
  notifications_ = other.notifications_;
}

Netlist& Netlist::operator=(Netlist&& other) {
  if (this == &other) return *this;
  POWDER_CHECK_MSG(other.observers_.empty(),
                   "moving a netlist that still has observers attached");
  library_ = other.library_;
  name_ = std::move(other.name_);
  gates_ = std::move(other.gates_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  used_names_ = std::move(other.used_names_);
  delta_log_.clear();
  NetlistDelta d;
  d.kind = DeltaKind::kRebuilt;
  publish(std::move(d));
  return *this;
}

void Netlist::attach_observer(NetlistObserver* observer) const {
  POWDER_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Netlist::detach_observer(NetlistObserver* observer) const {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  POWDER_CHECK_MSG(it != observers_.end(), "detaching unattached observer");
  observers_.erase(it);
}

void Netlist::publish(NetlistDelta&& delta) {
  delta.epoch = ++generation_;
  ++deltas_published_;
  for (NetlistObserver* obs : observers_) {
    obs->on_delta(delta);
    ++notifications_;
  }
  delta_log_.push_back(std::move(delta));
  if (delta_log_.size() > kDeltaLogCapacity) delta_log_.pop_front();
}

std::optional<std::vector<NetlistDelta>> Netlist::deltas_since(
    std::uint64_t epoch) const {
  if (epoch > generation_) return std::nullopt;  // from the future
  if (epoch == generation_) return std::vector<NetlistDelta>{};
  // The log must still hold the delta with epoch+1.
  if (delta_log_.empty() || delta_log_.front().epoch > epoch + 1)
    return std::nullopt;
  std::vector<NetlistDelta> out;
  for (const NetlistDelta& d : delta_log_)
    if (d.epoch > epoch) out.push_back(d);
  return out;
}

void replay_delta(Netlist& netlist, const NetlistDelta& delta) {
  switch (delta.kind) {
    case DeltaKind::kGateAdded: {
      GateId id = kNullGate;
      switch (delta.gate_kind) {
        case GateKind::kInput:
          id = netlist.add_input(delta.name);
          break;
        case GateKind::kOutput:
          id = netlist.add_output(delta.name, delta.fanins.at(0),
                                  delta.po_load);
          break;
        case GateKind::kCell:
          id = netlist.add_gate(delta.new_cell, delta.fanins, delta.name);
          break;
      }
      POWDER_CHECK_MSG(id == delta.gate,
                       "replay_delta: slot mismatch (replica diverged)");
      break;
    }
    case DeltaKind::kFaninChanged:
      netlist.set_fanin(delta.gate, delta.pin, delta.new_driver);
      break;
    case DeltaKind::kCellChanged:
      netlist.set_cell(delta.gate, delta.new_cell);
      break;
    case DeltaKind::kGateRemoved:
      // Removal order in the source guarantees the gate is fanout-free by
      // the time its delta is replayed.
      netlist.remove_single_gate(delta.gate);
      break;
    case DeltaKind::kGateRevived:
      netlist.revive_gate(delta.gate, delta.fanins);
      break;
    case DeltaKind::kRebuilt:
      POWDER_CHECK_MSG(false, "kRebuilt deltas are not replayable");
      break;
  }
}

GateId Netlist::new_gate(GateKind kind) {
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = kind;
  gates_.push_back(std::move(g));
  return id;
}

std::string Netlist::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string cand = prefix + "_" + std::to_string(name_counter_++);
    if (used_names_.insert(cand).second) return cand;
  }
}

GateId Netlist::add_input(std::string name) {
  const GateId id = new_gate(GateKind::kInput);
  if (!name.empty()) used_names_.insert(name);
  gates_[id].name = name.empty() ? fresh_name("pi") : std::move(name);
  inputs_.push_back(id);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kInput;
  d.name = gates_[id].name;
  publish(std::move(d));
  return id;
}

GateId Netlist::add_output(std::string name, GateId driver, double load) {
  POWDER_CHECK(driver < gates_.size() && gates_[driver].alive);
  const GateId id = new_gate(GateKind::kOutput);
  if (!name.empty()) used_names_.insert(name);
  gates_[id].name = name.empty() ? fresh_name("po") : std::move(name);
  gates_[id].po_load = load;
  gates_[id].fanins.push_back(driver);
  connect(driver, id, 0);
  outputs_.push_back(id);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kOutput;
  d.name = gates_[id].name;
  d.po_load = load;
  d.fanins = gates_[id].fanins;
  publish(std::move(d));
  return id;
}

GateId Netlist::add_gate(CellId cell, const std::vector<GateId>& fanins,
                         std::string name) {
  POWDER_CHECK(cell != kInvalidCell);
  const Cell& c = library_->cell(cell);
  POWDER_CHECK_MSG(static_cast<int>(fanins.size()) == c.num_inputs(),
                   "gate arity mismatch for cell " << c.name);
  for (const GateId fi : fanins)
    POWDER_CHECK(fi < gates_.size() && gates_[fi].alive);
  const GateId id = new_gate(GateKind::kCell);
  gates_[id].cell = cell;
  if (!name.empty()) used_names_.insert(name);
  gates_[id].name = name.empty() ? fresh_name("g") : std::move(name);
  gates_[id].fanins = fanins;
  for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
    connect(fanins[pin], id, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kCell;
  d.new_cell = cell;
  d.name = gates_[id].name;
  d.fanins = fanins;
  publish(std::move(d));
  return id;
}

void Netlist::connect(GateId driver, GateId sink, int pin) {
  gates_[driver].fanouts.push_back(FanoutRef{sink, pin});
}

void Netlist::disconnect(GateId driver, GateId sink, int pin) {
  auto& fo = gates_[driver].fanouts;
  const auto it = std::find(fo.begin(), fo.end(), FanoutRef{sink, pin});
  POWDER_CHECK_MSG(it != fo.end(), "fanout edge missing on disconnect");
  fo.erase(it);
}

void Netlist::set_fanin(GateId gate, int pin, GateId new_driver) {
  POWDER_CHECK(gate < gates_.size() && gates_[gate].alive);
  POWDER_CHECK(new_driver < gates_.size() && gates_[new_driver].alive);
  POWDER_CHECK(pin >= 0 && pin < gates_[gate].num_fanins());
  const GateId old_driver = gates_[gate].fanins[pin];
  if (old_driver == new_driver) return;
  POWDER_CHECK_MSG(!in_tfo(gate, new_driver),
                   "set_fanin would create a combinational cycle");
  disconnect(old_driver, gate, pin);
  gates_[gate].fanins[pin] = new_driver;
  connect(new_driver, gate, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kFaninChanged;
  d.gate = gate;
  d.pin = pin;
  d.old_driver = old_driver;
  d.new_driver = new_driver;
  publish(std::move(d));
}

void Netlist::set_cell(GateId gate, CellId new_cell) {
  POWDER_CHECK(gate < gates_.size() && gates_[gate].alive);
  POWDER_CHECK(gates_[gate].kind == GateKind::kCell);
  const CellId old_cell = gates_[gate].cell;
  if (old_cell == new_cell) return;
  const Cell& old_c = library_->cell(old_cell);
  const Cell& new_c = library_->cell(new_cell);
  POWDER_CHECK_MSG(old_c.num_inputs() == new_c.num_inputs() &&
                       old_c.function == new_c.function,
                   "set_cell requires a functionally identical cell");
  gates_[gate].cell = new_cell;
  NetlistDelta d;
  d.kind = DeltaKind::kCellChanged;
  d.gate = gate;
  d.old_cell = old_cell;
  d.new_cell = new_cell;
  publish(std::move(d));
}

void Netlist::replace_all_fanouts(GateId old_driver, GateId new_driver) {
  POWDER_CHECK(old_driver != new_driver);
  POWDER_CHECK(gates_[old_driver].alive && gates_[new_driver].alive);
  POWDER_CHECK_MSG(!in_tfo(old_driver, new_driver),
                   "replace_all_fanouts would create a cycle");
  // Move branches one by one, publishing one kFaninChanged per branch so
  // the delta stream replays exactly; copy the list because the rewiring
  // mutates it.
  const std::vector<FanoutRef> branches = gates_[old_driver].fanouts;
  for (const FanoutRef& br : branches) {
    disconnect(old_driver, br.gate, br.pin);
    gates_[br.gate].fanins[br.pin] = new_driver;
    connect(new_driver, br.gate, br.pin);
    NetlistDelta d;
    d.kind = DeltaKind::kFaninChanged;
    d.gate = br.gate;
    d.pin = br.pin;
    d.old_driver = old_driver;
    d.new_driver = new_driver;
    publish(std::move(d));
  }
}

std::vector<GateId> Netlist::remove_gate_recursive(
    GateId gate, std::vector<std::vector<GateId>>* removed_fanins) {
  std::vector<GateId> removed;
  std::vector<GateId> stack{gate};
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (!gates_[g].alive || gates_[g].kind != GateKind::kCell) continue;
    if (!gates_[g].fanouts.empty()) continue;
    const std::vector<GateId> fanins = gates_[g].fanins;
    gates_[g].alive = false;
    removed.push_back(g);
    if (removed_fanins != nullptr) removed_fanins->push_back(fanins);
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      const GateId fi = fanins[static_cast<std::size_t>(pin)];
      disconnect(fi, g, pin);
      if (gates_[fi].fanouts.empty()) stack.push_back(fi);
    }
    gates_[g].fanins.clear();
    NetlistDelta d;
    d.kind = DeltaKind::kGateRemoved;
    d.gate = g;
    d.fanins = fanins;
    publish(std::move(d));
  }
  return removed;
}

void Netlist::remove_single_gate(GateId gate) {
  POWDER_CHECK(gate < gates_.size() && gates_[gate].alive);
  POWDER_CHECK(gates_[gate].kind == GateKind::kCell);
  POWDER_CHECK_MSG(gates_[gate].fanouts.empty(),
                   "removing gate " << gates_[gate].name
                                    << " which still drives fanout");
  const std::vector<GateId> fanins = gates_[gate].fanins;
  for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
    disconnect(fanins[static_cast<std::size_t>(pin)], gate, pin);
  gates_[gate].fanins.clear();
  gates_[gate].alive = false;
  NetlistDelta d;
  d.kind = DeltaKind::kGateRemoved;
  d.gate = gate;
  d.fanins = fanins;
  publish(std::move(d));
}

void Netlist::revive_gate(GateId gate, const std::vector<GateId>& fanins) {
  POWDER_CHECK(gate < gates_.size() && !gates_[gate].alive);
  Gate& g = gates_[gate];
  POWDER_CHECK(g.kind == GateKind::kCell && g.cell != kInvalidCell);
  POWDER_CHECK_MSG(
      static_cast<int>(fanins.size()) == library_->cell(g.cell).num_inputs(),
      "revive_gate arity mismatch for " << g.name);
  for (GateId fi : fanins)
    POWDER_CHECK_MSG(fi < gates_.size() && gates_[fi].alive,
                     "revive_gate with dead fanin into " << g.name);
  g.alive = true;
  g.fanins = fanins;
  for (int pin = 0; pin < g.num_fanins(); ++pin)
    connect(fanins[static_cast<std::size_t>(pin)], gate, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kGateRevived;
  d.gate = gate;
  d.fanins = fanins;
  publish(std::move(d));
}

std::vector<GateId> Netlist::sweep_dead() {
  std::vector<GateId> removed;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].alive && gates_[g].kind == GateKind::kCell &&
        gates_[g].fanouts.empty()) {
      const auto r = remove_gate_recursive(g);
      removed.insert(removed.end(), r.begin(), r.end());
    }
  }
  return removed;
}

int Netlist::num_cells() const {
  int n = 0;
  for (const Gate& g : gates_)
    if (g.alive && g.kind == GateKind::kCell) ++n;
  return n;
}

const Cell& Netlist::cell_of(GateId id) const {
  POWDER_DCHECK(gates_[id].kind == GateKind::kCell);
  return library_->cell(gates_[id].cell);
}

double Netlist::pin_cap(GateId gate, int pin) const {
  const Gate& g = gates_[gate];
  if (g.kind == GateKind::kOutput) return g.po_load;
  POWDER_DCHECK(g.kind == GateKind::kCell);
  return library_->cell(g.cell).pins[static_cast<std::size_t>(pin)].input_cap;
}

double Netlist::signal_cap(GateId gate) const {
  double c = 0.0;
  for (const FanoutRef& br : gates_[gate].fanouts)
    c += pin_cap(br.gate, br.pin);
  return c;
}

double Netlist::total_area() const {
  double a = 0.0;
  for (const Gate& g : gates_)
    if (g.alive && g.kind == GateKind::kCell) a += library_->cell(g.cell).area;
  return a;
}

std::vector<GateId> Netlist::topo_order() const {
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<std::uint8_t> state(gates_.size(), 0);  // 0=new 1=open 2=done
  std::vector<GateId> stack;
  for (GateId root = 0; root < gates_.size(); ++root) {
    if (!gates_[root].alive || state[root] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const GateId g = stack.back();
      if (state[g] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[g] == 0) {
        state[g] = 1;
        for (GateId fi : gates_[g].fanins) {
          POWDER_CHECK_MSG(state[fi] != 1, "combinational cycle detected");
          if (state[fi] == 0) stack.push_back(fi);
        }
      } else {
        state[g] = 2;
        order.push_back(g);
        stack.pop_back();
      }
    }
  }
  return order;
}

bool Netlist::in_tfo(GateId ancestor, GateId descendant) const {
  if (ancestor == descendant) return false;
  std::vector<std::uint8_t> seen(gates_.size(), 0);
  std::vector<GateId> stack{ancestor};
  seen[ancestor] = 1;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : gates_[g].fanouts) {
      if (br.gate == descendant) return true;
      if (!seen[br.gate]) {
        seen[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  return false;
}

std::vector<GateId> Netlist::tfo(GateId g) const {
  std::vector<GateId> out;
  std::vector<std::uint8_t> seen(gates_.size(), 0);
  std::vector<GateId> stack{g};
  seen[g] = 1;
  while (!stack.empty()) {
    const GateId cur = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : gates_[cur].fanouts) {
      if (!seen[br.gate]) {
        seen[br.gate] = 1;
        out.push_back(br.gate);
        stack.push_back(br.gate);
      }
    }
  }
  return out;
}

std::vector<GateId> Netlist::mffc(GateId g,
                                  const std::vector<GateId>& keep_alive) const {
  // Gates that die if g loses all fanout: g itself plus, transitively, each
  // fanin whose every fanout lies inside the cone built so far.
  std::vector<GateId> cone;
  if (gates_[g].kind != GateKind::kCell) return cone;
  std::vector<std::uint8_t> pinned(gates_.size(), 0);
  for (GateId k : keep_alive)
    if (k != g) pinned[k] = 1;
  std::vector<std::uint8_t> in_cone(gates_.size(), 0);
  cone.push_back(g);
  in_cone[g] = 1;
  // Process in reverse-topological manner: repeatedly try to absorb fanins.
  for (std::size_t i = 0; i < cone.size(); ++i) {
    for (GateId fi : gates_[cone[i]].fanins) {
      if (in_cone[fi] || pinned[fi] || gates_[fi].kind != GateKind::kCell)
        continue;
      bool all_inside = true;
      for (const FanoutRef& br : gates_[fi].fanouts) {
        if (!in_cone[br.gate]) {
          all_inside = false;
          break;
        }
      }
      if (all_inside) {
        in_cone[fi] = 1;
        cone.push_back(fi);
      }
    }
  }
  // A fanin rejected earlier (because one of its fanouts was still outside
  // the cone) can become absorbable after the cone grows; iterate over the
  // cone's fanins until a fixed point. Candidates are always fanins of
  // cone members, so the rescan stays local.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cone.size(); ++i) {
      for (GateId fi : gates_[cone[i]].fanins) {
        if (in_cone[fi] || pinned[fi] ||
            gates_[fi].kind != GateKind::kCell)
          continue;
        bool all_inside = true;
        for (const FanoutRef& br : gates_[fi].fanouts)
          if (!in_cone[br.gate]) {
            all_inside = false;
            break;
          }
        if (all_inside) {
          in_cone[fi] = 1;
          cone.push_back(fi);
          changed = true;
        }
      }
    }
  }
  return cone;
}

Netlist Netlist::compacted(std::vector<GateId>* remap) const {
  Netlist out(library_, name_);
  std::vector<GateId> map(gates_.size(), kNullGate);
  // Inputs keep their order; cells follow in topological order; outputs
  // keep their order last.
  for (GateId g : inputs_) map[g] = out.add_input(gates_[g].name);
  for (GateId g : topo_order()) {
    const Gate& gate = gates_[g];
    if (gate.kind != GateKind::kCell) continue;
    std::vector<GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (GateId fi : gate.fanins) {
      POWDER_CHECK(map[fi] != kNullGate);
      fanins.push_back(map[fi]);
    }
    map[g] = out.add_gate(gate.cell, fanins, gate.name);
  }
  for (GateId g : outputs_) {
    const Gate& gate = gates_[g];
    map[g] = out.add_output(gate.name, map[gate.fanins[0]], gate.po_load);
  }
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

void Netlist::check_consistency() const {
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    if (!gate.alive) {
      POWDER_CHECK_MSG(gate.fanins.empty() && gate.fanouts.empty(),
                       "dead gate " << gate.name << " still connected");
      continue;
    }
    switch (gate.kind) {
      case GateKind::kInput:
        POWDER_CHECK(gate.fanins.empty());
        break;
      case GateKind::kOutput:
        POWDER_CHECK_MSG(gate.fanins.size() == 1,
                         "output " << gate.name << " must have one fanin");
        POWDER_CHECK(gate.fanouts.empty());
        break;
      case GateKind::kCell: {
        POWDER_CHECK(gate.cell != kInvalidCell);
        const Cell& c = library_->cell(gate.cell);
        POWDER_CHECK_MSG(gate.num_fanins() == c.num_inputs(),
                         "gate " << gate.name << " arity mismatch");
        break;
      }
    }
    for (int pin = 0; pin < gate.num_fanins(); ++pin) {
      const GateId fi = gate.fanins[pin];
      POWDER_CHECK_MSG(fi < gates_.size() && gates_[fi].alive,
                       "gate " << gate.name << " has dead fanin");
      const auto& fo = gates_[fi].fanouts;
      POWDER_CHECK_MSG(
          std::find(fo.begin(), fo.end(), FanoutRef{g, pin}) != fo.end(),
          "missing fanout back-edge into " << gate.name);
    }
    for (const FanoutRef& br : gate.fanouts) {
      POWDER_CHECK(br.gate < gates_.size() && gates_[br.gate].alive);
      POWDER_CHECK_MSG(
          br.pin < gates_[br.gate].num_fanins() &&
              gates_[br.gate].fanins[static_cast<std::size_t>(br.pin)] == g,
          "dangling fanout edge from " << gate.name);
    }
  }
  (void)topo_order();  // throws on cycles
}

}  // namespace powder
