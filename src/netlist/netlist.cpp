#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

namespace {
/// Delta-log bound: old deltas are evicted FIFO. Large enough that any
/// inner-loop consumer (one commit plus its rollback) fits comfortably;
/// consumers of deltas_since fall back to a full rebuild on eviction.
constexpr std::size_t kDeltaLogCapacity = 1024;
}  // namespace

Netlist::Netlist(const CellLibrary* library, std::string name)
    : library_(library), name_(std::move(name)) {
  POWDER_CHECK(library_ != nullptr);
}

Netlist::Netlist(std::shared_ptr<const CellLibrary> library, std::string name)
    : library_(library.get()),
      library_owner_(std::move(library)),
      name_(std::move(name)) {
  POWDER_CHECK(library_ != nullptr);
}

void Netlist::adopt_library(std::shared_ptr<const CellLibrary> library) {
  POWDER_CHECK_MSG(library.get() == library_,
                   "adopt_library: the shared handle must own the library "
                   "this netlist was built against");
  library_owner_ = std::move(library);
}

Netlist::Netlist(const Netlist& other)
    : library_(other.library_),
      library_owner_(other.library_owner_),
      name_(other.name_),
      kind_(other.kind_),
      alive_(other.alive_),
      cell_(other.cell_),
      gate_name_(other.gate_name_),
      po_load_(other.po_load_),
      fanin_ref_(other.fanin_ref_),
      fanout_ref_(other.fanout_ref_),
      fanin_pins_(other.fanin_pins_),
      fanout_pins_(other.fanout_pins_),
      names_(other.names_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      latches_(other.latches_),
      generation_(other.generation_),
      name_counter_(other.name_counter_) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  library_ = other.library_;
  library_owner_ = other.library_owner_;
  name_ = other.name_;
  kind_ = other.kind_;
  alive_ = other.alive_;
  cell_ = other.cell_;
  gate_name_ = other.gate_name_;
  po_load_ = other.po_load_;
  fanin_ref_ = other.fanin_ref_;
  fanout_ref_ = other.fanout_ref_;
  fanin_pins_ = other.fanin_pins_;
  fanout_pins_ = other.fanout_pins_;
  names_ = other.names_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  latches_ = other.latches_;
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  delta_log_.clear();
  log_head_ = 0;
  NetlistDelta d;
  d.kind = DeltaKind::kRebuilt;
  publish(std::move(d));
  return *this;
}

Netlist::Netlist(Netlist&& other) {
  POWDER_CHECK_MSG(other.observers_.empty(),
                   "moving a netlist that still has observers attached");
  library_ = other.library_;
  library_owner_ = std::move(other.library_owner_);
  name_ = std::move(other.name_);
  kind_ = std::move(other.kind_);
  alive_ = std::move(other.alive_);
  cell_ = std::move(other.cell_);
  gate_name_ = std::move(other.gate_name_);
  po_load_ = std::move(other.po_load_);
  fanin_ref_ = std::move(other.fanin_ref_);
  fanout_ref_ = std::move(other.fanout_ref_);
  fanin_pins_ = std::move(other.fanin_pins_);
  fanout_pins_ = std::move(other.fanout_pins_);
  names_ = std::move(other.names_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  latches_ = std::move(other.latches_);
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  delta_log_ = std::move(other.delta_log_);
  log_head_ = other.log_head_;
  deltas_published_ = other.deltas_published_;
  notifications_ = other.notifications_;
}

Netlist& Netlist::operator=(Netlist&& other) {
  if (this == &other) return *this;
  POWDER_CHECK_MSG(other.observers_.empty(),
                   "moving a netlist that still has observers attached");
  library_ = other.library_;
  library_owner_ = std::move(other.library_owner_);
  name_ = std::move(other.name_);
  kind_ = std::move(other.kind_);
  alive_ = std::move(other.alive_);
  cell_ = std::move(other.cell_);
  gate_name_ = std::move(other.gate_name_);
  po_load_ = std::move(other.po_load_);
  fanin_ref_ = std::move(other.fanin_ref_);
  fanout_ref_ = std::move(other.fanout_ref_);
  fanin_pins_ = std::move(other.fanin_pins_);
  fanout_pins_ = std::move(other.fanout_pins_);
  names_ = std::move(other.names_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  latches_ = std::move(other.latches_);
  generation_ = other.generation_;
  name_counter_ = other.name_counter_;
  delta_log_.clear();
  log_head_ = 0;
  NetlistDelta d;
  d.kind = DeltaKind::kRebuilt;
  publish(std::move(d));
  return *this;
}

void Netlist::attach_observer(NetlistObserver* observer) const {
  POWDER_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Netlist::detach_observer(NetlistObserver* observer) const {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  POWDER_CHECK_MSG(it != observers_.end(), "detaching unattached observer");
  observers_.erase(it);
}

void Netlist::publish(NetlistDelta&& delta) {
  delta.epoch = ++generation_;
  ++deltas_published_;
  // Resizing (kCellChanged) never changes the DAG; everything else does.
  if (delta.kind != DeltaKind::kCellChanged) topo_dirty_ = true;
  for (NetlistObserver* obs : observers_) {
    obs->on_delta(delta);
    ++notifications_;
  }
  if (delta_log_.size() < kDeltaLogCapacity) {
    delta_log_.push_back(std::move(delta));
  } else {
    delta_log_[log_head_] = std::move(delta);  // overwrite the oldest
    log_head_ = (log_head_ + 1) % kDeltaLogCapacity;
  }
}

std::optional<std::vector<NetlistDelta>> Netlist::deltas_since(
    std::uint64_t epoch) const {
  if (epoch > generation_) return std::nullopt;  // from the future
  if (epoch == generation_) return std::vector<NetlistDelta>{};
  // The log must still hold the delta with epoch+1.
  const std::size_t n = delta_log_.size();
  if (n == 0 || delta_log_[log_head_ % n].epoch > epoch + 1)
    return std::nullopt;
  std::vector<NetlistDelta> out;
  for (std::size_t i = 0; i < n; ++i) {
    const NetlistDelta& d = delta_log_[(log_head_ + i) % n];
    if (d.epoch > epoch) out.push_back(d);
  }
  return out;
}

void replay_delta(Netlist& netlist, const NetlistDelta& delta,
                  const NameTable& names) {
  switch (delta.kind) {
    case DeltaKind::kGateAdded: {
      GateId id = kNullGate;
      const std::string name(names.view(delta.name));
      switch (delta.gate_kind) {
        case GateKind::kInput:
          id = netlist.add_input(name);
          break;
        case GateKind::kOutput:
          POWDER_CHECK(delta.fanins.size() == 1);
          id = netlist.add_output(name, delta.fanins[0], delta.po_load);
          break;
        case GateKind::kCell:
          id = netlist.add_gate(
              delta.new_cell,
              std::vector<GateId>(delta.fanins.begin(), delta.fanins.end()),
              name);
          break;
      }
      POWDER_CHECK_MSG(id == delta.gate,
                       "replay_delta: slot mismatch (replica diverged)");
      break;
    }
    case DeltaKind::kFaninChanged:
      netlist.set_fanin(delta.gate, delta.pin, delta.new_driver);
      break;
    case DeltaKind::kCellChanged:
      netlist.set_cell(delta.gate, delta.new_cell);
      break;
    case DeltaKind::kGateRemoved:
      // Removal order in the source guarantees the gate is fanout-free by
      // the time its delta is replayed.
      netlist.remove_single_gate(delta.gate);
      break;
    case DeltaKind::kGateRevived:
      netlist.revive_gate(
          delta.gate,
          std::vector<GateId>(delta.fanins.begin(), delta.fanins.end()));
      break;
    case DeltaKind::kRebuilt:
      POWDER_CHECK_MSG(false, "kRebuilt deltas are not replayable");
      break;
  }
}

GateId Netlist::new_gate(GateKind kind) {
  const GateId id = static_cast<GateId>(kind_.size());
  kind_.push_back(kind);
  alive_.push_back(1);
  cell_.push_back(kInvalidCell);
  gate_name_.push_back(kNullName);
  po_load_.push_back(1.0);
  fanin_ref_.emplace_back();
  fanout_ref_.emplace_back();
  return id;
}

void Netlist::reserve(std::size_t gates, std::size_t pins) {
  kind_.reserve(gates);
  alive_.reserve(gates);
  cell_.reserve(gates);
  gate_name_.reserve(gates);
  po_load_.reserve(gates);
  fanin_ref_.reserve(gates);
  fanout_ref_.reserve(gates);
  // Slabs round pin lists up to powers of two; double the estimate to
  // cover fanout slack so bulk construction stays reallocation-free.
  fanin_pins_.reserve(2 * pins);
  fanout_pins_.reserve(2 * pins);
}

std::string Netlist::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string cand = prefix + "_" + std::to_string(name_counter_++);
    if (!names_.contains(cand)) {
      names_.intern(cand);  // reserve it for the caller
      return cand;
    }
  }
}

GateId Netlist::add_input(std::string name) {
  const GateId id = new_gate(GateKind::kInput);
  gate_name_[id] = names_.intern(name.empty() ? fresh_name("pi") : name);
  inputs_.push_back(id);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kInput;
  d.name = gate_name_[id];
  publish(std::move(d));
  return id;
}

GateId Netlist::add_output(std::string name, GateId driver, double load) {
  POWDER_CHECK(driver < kind_.size() && alive_[driver] != 0);
  const GateId id = new_gate(GateKind::kOutput);
  gate_name_[id] = names_.intern(name.empty() ? fresh_name("po") : name);
  po_load_[id] = load;
  fanin_pins_.push_back(fanin_ref_[id], driver);
  connect(driver, id, 0);
  outputs_.push_back(id);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kOutput;
  d.name = gate_name_[id];
  d.po_load = load;
  d.fanins.push_back(driver);
  publish(std::move(d));
  return id;
}

GateId Netlist::add_gate(CellId cell, const std::vector<GateId>& fanins,
                         std::string name) {
  POWDER_CHECK(cell != kInvalidCell);
  const Cell& c = library_->cell(cell);
  POWDER_CHECK_MSG(static_cast<int>(fanins.size()) == c.num_inputs(),
                   "gate arity mismatch for cell " << c.name);
  for (const GateId fi : fanins)
    POWDER_CHECK(fi < kind_.size() && alive_[fi] != 0);
  const GateId id = new_gate(GateKind::kCell);
  cell_[id] = cell;
  gate_name_[id] = names_.intern(name.empty() ? fresh_name("g") : name);
  fanin_pins_.assign(fanin_ref_[id], fanins.data(), fanins.size());
  for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
    connect(fanins[static_cast<std::size_t>(pin)], id, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kGateAdded;
  d.gate = id;
  d.gate_kind = GateKind::kCell;
  d.new_cell = cell;
  d.name = gate_name_[id];
  d.fanins.assign(fanins.data(), fanins.size());
  publish(std::move(d));
  return id;
}

void Netlist::add_latch(GateId input, GateId output, int init) {
  POWDER_CHECK(input < kind_.size() && alive_[input] != 0);
  POWDER_CHECK_MSG(kind_[input] == GateKind::kOutput,
                   "latch input must be a pseudo-PO gate");
  POWDER_CHECK(output < kind_.size() && alive_[output] != 0);
  POWDER_CHECK_MSG(kind_[output] == GateKind::kInput,
                   "latch output must be a pseudo-PI gate");
  POWDER_CHECK_MSG(init >= 0 && init <= 3,
                   "latch init state must be 0, 1, 2 or 3");
  for (const Latch& l : latches_)
    POWDER_CHECK_MSG(l.input != input && l.output != output,
                     "gate already bound to a latch");
  latches_.push_back(Latch{input, output, init});
}

bool Netlist::is_latch_output(GateId id) const {
  for (const Latch& l : latches_)
    if (l.output == id) return true;
  return false;
}

bool Netlist::is_latch_input(GateId id) const {
  for (const Latch& l : latches_)
    if (l.input == id) return true;
  return false;
}

void Netlist::connect(GateId driver, GateId sink, int pin) {
  fanout_pins_.push_back(fanout_ref_[driver], FanoutRef{sink, pin});
}

void Netlist::disconnect(GateId driver, GateId sink, int pin) {
  const std::span<const FanoutRef> fo = fanout_pins_.view(fanout_ref_[driver]);
  const auto it = std::find(fo.begin(), fo.end(), FanoutRef{sink, pin});
  POWDER_CHECK_MSG(it != fo.end(), "fanout edge missing on disconnect");
  fanout_pins_.erase_at(fanout_ref_[driver],
                        static_cast<std::size_t>(it - fo.begin()));
}

void Netlist::set_fanin(GateId gate, int pin, GateId new_driver) {
  POWDER_CHECK(gate < kind_.size() && alive_[gate] != 0);
  POWDER_CHECK(new_driver < kind_.size() && alive_[new_driver] != 0);
  POWDER_CHECK(pin >= 0 && pin < num_fanins(gate));
  const GateId old_driver = fanin(gate, pin);
  if (old_driver == new_driver) return;
  POWDER_CHECK_MSG(!in_tfo(gate, new_driver),
                   "set_fanin would create a combinational cycle");
  disconnect(old_driver, gate, pin);
  fanin_pins_.at_mut(fanin_ref_[gate], static_cast<std::size_t>(pin)) =
      new_driver;
  connect(new_driver, gate, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kFaninChanged;
  d.gate = gate;
  d.pin = pin;
  d.old_driver = old_driver;
  d.new_driver = new_driver;
  publish(std::move(d));
}

void Netlist::set_cell(GateId gate, CellId new_cell) {
  POWDER_CHECK(gate < kind_.size() && alive_[gate] != 0);
  POWDER_CHECK(kind_[gate] == GateKind::kCell);
  const CellId old_cell = cell_[gate];
  if (old_cell == new_cell) return;
  const Cell& old_c = library_->cell(old_cell);
  const Cell& new_c = library_->cell(new_cell);
  POWDER_CHECK_MSG(old_c.num_inputs() == new_c.num_inputs() &&
                       old_c.function == new_c.function,
                   "set_cell requires a functionally identical cell");
  cell_[gate] = new_cell;
  NetlistDelta d;
  d.kind = DeltaKind::kCellChanged;
  d.gate = gate;
  d.old_cell = old_cell;
  d.new_cell = new_cell;
  publish(std::move(d));
}

void Netlist::replace_all_fanouts(GateId old_driver, GateId new_driver) {
  POWDER_CHECK(old_driver != new_driver);
  POWDER_CHECK(alive_[old_driver] != 0 && alive_[new_driver] != 0);
  POWDER_CHECK_MSG(!in_tfo(old_driver, new_driver),
                   "replace_all_fanouts would create a cycle");
  // Move branches one by one, publishing one kFaninChanged per branch so
  // the delta stream replays exactly; copy the list because the rewiring
  // mutates it (and may grow the arena pool under the span).
  const std::span<const FanoutRef> fo =
      fanout_pins_.view(fanout_ref_[old_driver]);
  const std::vector<FanoutRef> branches(fo.begin(), fo.end());
  for (const FanoutRef& br : branches) {
    disconnect(old_driver, br.gate, br.pin);
    fanin_pins_.at_mut(fanin_ref_[br.gate],
                       static_cast<std::size_t>(br.pin)) = new_driver;
    connect(new_driver, br.gate, br.pin);
    NetlistDelta d;
    d.kind = DeltaKind::kFaninChanged;
    d.gate = br.gate;
    d.pin = br.pin;
    d.old_driver = old_driver;
    d.new_driver = new_driver;
    publish(std::move(d));
  }
}

std::vector<GateId> Netlist::remove_gate_recursive(
    GateId gate, std::vector<std::vector<GateId>>* removed_fanins) {
  std::vector<GateId> removed;
  std::vector<GateId> stack{gate};
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (alive_[g] == 0 || kind_[g] != GateKind::kCell) continue;
    if (fanout_ref_[g].size != 0) continue;
    const std::span<const GateId> fi_span = fanin_pins_.view(fanin_ref_[g]);
    const std::vector<GateId> fanins(fi_span.begin(), fi_span.end());
    alive_[g] = 0;
    removed.push_back(g);
    if (removed_fanins != nullptr) removed_fanins->push_back(fanins);
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      const GateId fi = fanins[static_cast<std::size_t>(pin)];
      disconnect(fi, g, pin);
      if (fanout_ref_[fi].size == 0) stack.push_back(fi);
    }
    fanin_pins_.release(fanin_ref_[g]);
    fanout_pins_.release(fanout_ref_[g]);
    NetlistDelta d;
    d.kind = DeltaKind::kGateRemoved;
    d.gate = g;
    d.fanins.assign(fanins.data(), fanins.size());
    publish(std::move(d));
  }
  return removed;
}

void Netlist::remove_single_gate(GateId gate) {
  POWDER_CHECK(gate < kind_.size() && alive_[gate] != 0);
  POWDER_CHECK(kind_[gate] == GateKind::kCell);
  POWDER_CHECK_MSG(fanout_ref_[gate].size == 0,
                   "removing gate " << gate_name(gate)
                                    << " which still drives fanout");
  const std::span<const GateId> fi_span = fanin_pins_.view(fanin_ref_[gate]);
  const std::vector<GateId> fanins(fi_span.begin(), fi_span.end());
  for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
    disconnect(fanins[static_cast<std::size_t>(pin)], gate, pin);
  fanin_pins_.release(fanin_ref_[gate]);
  fanout_pins_.release(fanout_ref_[gate]);
  alive_[gate] = 0;
  NetlistDelta d;
  d.kind = DeltaKind::kGateRemoved;
  d.gate = gate;
  d.fanins.assign(fanins.data(), fanins.size());
  publish(std::move(d));
}

void Netlist::revive_gate(GateId gate, const std::vector<GateId>& fanins) {
  POWDER_CHECK(gate < kind_.size() && alive_[gate] == 0);
  POWDER_CHECK(kind_[gate] == GateKind::kCell && cell_[gate] != kInvalidCell);
  POWDER_CHECK_MSG(static_cast<int>(fanins.size()) ==
                       library_->cell(cell_[gate]).num_inputs(),
                   "revive_gate arity mismatch for " << gate_name(gate));
  for (GateId fi : fanins)
    POWDER_CHECK_MSG(fi < kind_.size() && alive_[fi] != 0,
                     "revive_gate with dead fanin into " << gate_name(gate));
  alive_[gate] = 1;
  fanin_pins_.assign(fanin_ref_[gate], fanins.data(), fanins.size());
  for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
    connect(fanins[static_cast<std::size_t>(pin)], gate, pin);
  NetlistDelta d;
  d.kind = DeltaKind::kGateRevived;
  d.gate = gate;
  d.fanins.assign(fanins.data(), fanins.size());
  publish(std::move(d));
}

std::vector<GateId> Netlist::sweep_dead() {
  std::vector<GateId> removed;
  for (GateId g = 0; g < kind_.size(); ++g) {
    if (alive_[g] != 0 && kind_[g] == GateKind::kCell &&
        fanout_ref_[g].size == 0) {
      const auto r = remove_gate_recursive(g);
      removed.insert(removed.end(), r.begin(), r.end());
    }
  }
  return removed;
}

int Netlist::num_cells() const {
  int n = 0;
  for (GateId g = 0; g < kind_.size(); ++g)
    if (alive_[g] != 0 && kind_[g] == GateKind::kCell) ++n;
  return n;
}

const Cell& Netlist::cell_of(GateId id) const {
  POWDER_DCHECK(kind_[id] == GateKind::kCell);
  return library_->cell(cell_[id]);
}

double Netlist::pin_cap(GateId gate, int pin) const {
  if (kind_[gate] == GateKind::kOutput) return po_load_[gate];
  POWDER_DCHECK(kind_[gate] == GateKind::kCell);
  return library_->cell(cell_[gate])
      .pins[static_cast<std::size_t>(pin)]
      .input_cap;
}

double Netlist::signal_cap(GateId gate) const {
  double c = 0.0;
  for (const FanoutRef& br : fanouts(gate)) c += pin_cap(br.gate, br.pin);
  return c;
}

double Netlist::total_area() const {
  double a = 0.0;
  for (GateId g = 0; g < kind_.size(); ++g)
    if (alive_[g] != 0 && kind_[g] == GateKind::kCell)
      a += library_->cell(cell_[g]).area;
  return a;
}

std::vector<GateId> Netlist::compute_topo() const {
  std::vector<GateId> order;
  order.reserve(kind_.size());
  std::vector<std::uint8_t> state(kind_.size(), 0);  // 0=new 1=open 2=done
  std::vector<GateId> stack;
  for (GateId root = 0; root < kind_.size(); ++root) {
    if (alive_[root] == 0 || state[root] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const GateId g = stack.back();
      if (state[g] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[g] == 0) {
        state[g] = 1;
        for (GateId fi : fanins(g)) {
          POWDER_CHECK_MSG(state[fi] != 1, "combinational cycle detected");
          if (state[fi] == 0) stack.push_back(fi);
        }
      } else {
        state[g] = 2;
        order.push_back(g);
        stack.pop_back();
      }
    }
  }
  return order;
}

const std::vector<GateId>& Netlist::topo_order() const {
  std::lock_guard<std::mutex> lock(topo_mutex_);
  if (topo_dirty_) {
    topo_cache_ = compute_topo();
    topo_dirty_ = false;
  }
  return topo_cache_;
}

bool Netlist::in_tfo(GateId ancestor, GateId descendant) const {
  if (ancestor == descendant) return false;
  // Reused scratch: called on every rewire, must not allocate once warm.
  tfo_seen_.assign(kind_.size(), 0);
  tfo_stack_.clear();
  tfo_stack_.push_back(ancestor);
  tfo_seen_[ancestor] = 1;
  while (!tfo_stack_.empty()) {
    const GateId g = tfo_stack_.back();
    tfo_stack_.pop_back();
    for (const FanoutRef& br : fanouts(g)) {
      if (br.gate == descendant) return true;
      if (!tfo_seen_[br.gate]) {
        tfo_seen_[br.gate] = 1;
        tfo_stack_.push_back(br.gate);
      }
    }
  }
  return false;
}

std::vector<GateId> Netlist::tfo(GateId g) const {
  std::vector<GateId> out;
  std::vector<std::uint8_t> seen(kind_.size(), 0);
  std::vector<GateId> stack{g};
  seen[g] = 1;
  while (!stack.empty()) {
    const GateId cur = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : fanouts(cur)) {
      if (!seen[br.gate]) {
        seen[br.gate] = 1;
        out.push_back(br.gate);
        stack.push_back(br.gate);
      }
    }
  }
  return out;
}

std::vector<GateId> Netlist::mffc(GateId g,
                                  const std::vector<GateId>& keep_alive) const {
  // Gates that die if g loses all fanout: g itself plus, transitively, each
  // fanin whose every fanout lies inside the cone built so far.
  std::vector<GateId> cone;
  if (kind_[g] != GateKind::kCell) return cone;
  std::vector<std::uint8_t> pinned(kind_.size(), 0);
  for (GateId k : keep_alive)
    if (k != g) pinned[k] = 1;
  std::vector<std::uint8_t> in_cone(kind_.size(), 0);
  cone.push_back(g);
  in_cone[g] = 1;
  // Process in reverse-topological manner: repeatedly try to absorb fanins.
  for (std::size_t i = 0; i < cone.size(); ++i) {
    for (GateId fi : fanins(cone[i])) {
      if (in_cone[fi] || pinned[fi] || kind_[fi] != GateKind::kCell) continue;
      bool all_inside = true;
      for (const FanoutRef& br : fanouts(fi)) {
        if (!in_cone[br.gate]) {
          all_inside = false;
          break;
        }
      }
      if (all_inside) {
        in_cone[fi] = 1;
        cone.push_back(fi);
      }
    }
  }
  // A fanin rejected earlier (because one of its fanouts was still outside
  // the cone) can become absorbable after the cone grows; iterate over the
  // cone's fanins until a fixed point. Candidates are always fanins of
  // cone members, so the rescan stays local.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cone.size(); ++i) {
      for (GateId fi : fanins(cone[i])) {
        if (in_cone[fi] || pinned[fi] || kind_[fi] != GateKind::kCell)
          continue;
        bool all_inside = true;
        for (const FanoutRef& br : fanouts(fi))
          if (!in_cone[br.gate]) {
            all_inside = false;
            break;
          }
        if (all_inside) {
          in_cone[fi] = 1;
          cone.push_back(fi);
          changed = true;
        }
      }
    }
  }
  return cone;
}

Netlist Netlist::compacted(std::vector<GateId>* remap) const {
  Netlist out(library_, name_);
  out.library_owner_ = library_owner_;
  out.reserve(kind_.size(), fanin_pins_.pool_bytes() / sizeof(GateId));
  std::vector<GateId> map(kind_.size(), kNullGate);
  // Inputs keep their order; cells follow in topological order; outputs
  // keep their order last.
  for (GateId g : inputs_) map[g] = out.add_input(std::string(gate_name(g)));
  for (GateId g : topo_order()) {
    if (kind_[g] != GateKind::kCell) continue;
    std::vector<GateId> mapped;
    mapped.reserve(fanins(g).size());
    for (GateId fi : fanins(g)) {
      POWDER_CHECK(map[fi] != kNullGate);
      mapped.push_back(map[fi]);
    }
    map[g] = out.add_gate(cell_[g], mapped, std::string(gate_name(g)));
  }
  for (GateId g : outputs_) {
    map[g] = out.add_output(std::string(gate_name(g)), map[fanin(g, 0)],
                            po_load_[g]);
  }
  for (const Latch& l : latches_)
    out.add_latch(map[l.input], map[l.output], l.init);
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

void Netlist::check_consistency() const {
  for (GateId g = 0; g < kind_.size(); ++g) {
    if (alive_[g] == 0) {
      POWDER_CHECK_MSG(fanin_ref_[g].size == 0 && fanout_ref_[g].size == 0,
                       "dead gate " << gate_name(g) << " still connected");
      continue;
    }
    switch (kind_[g]) {
      case GateKind::kInput:
        POWDER_CHECK(fanin_ref_[g].size == 0);
        break;
      case GateKind::kOutput:
        POWDER_CHECK_MSG(fanin_ref_[g].size == 1,
                         "output " << gate_name(g) << " must have one fanin");
        POWDER_CHECK(fanout_ref_[g].size == 0);
        break;
      case GateKind::kCell: {
        POWDER_CHECK(cell_[g] != kInvalidCell);
        const Cell& c = library_->cell(cell_[g]);
        POWDER_CHECK_MSG(num_fanins(g) == c.num_inputs(),
                         "gate " << gate_name(g) << " arity mismatch");
        break;
      }
    }
    for (int pin = 0; pin < num_fanins(g); ++pin) {
      const GateId fi = fanin(g, pin);
      POWDER_CHECK_MSG(fi < kind_.size() && alive_[fi] != 0,
                       "gate " << gate_name(g) << " has dead fanin");
      const std::span<const FanoutRef> fo = fanouts(fi);
      POWDER_CHECK_MSG(
          std::find(fo.begin(), fo.end(), FanoutRef{g, pin}) != fo.end(),
          "missing fanout back-edge into " << gate_name(g));
    }
    for (const FanoutRef& br : fanouts(g)) {
      POWDER_CHECK(br.gate < kind_.size() && alive_[br.gate] != 0);
      POWDER_CHECK_MSG(br.pin < num_fanins(br.gate) &&
                           fanin(br.gate, br.pin) == g,
                       "dangling fanout edge from " << gate_name(g));
    }
  }
  for (std::size_t i = 0; i < latches_.size(); ++i) {
    const Latch& l = latches_[i];
    POWDER_CHECK_MSG(l.input < kind_.size() && alive_[l.input] != 0 &&
                         kind_[l.input] == GateKind::kOutput,
                     "latch " << i << " input is not a live pseudo-PO");
    POWDER_CHECK_MSG(l.output < kind_.size() && alive_[l.output] != 0 &&
                         kind_[l.output] == GateKind::kInput,
                     "latch " << i << " output is not a live pseudo-PI");
    POWDER_CHECK(l.init >= 0 && l.init <= 3);
    for (std::size_t j = i + 1; j < latches_.size(); ++j)
      POWDER_CHECK_MSG(latches_[j].input != l.input &&
                           latches_[j].output != l.output,
                       "duplicate latch binding");
  }
  (void)compute_topo();  // throws on cycles, bypassing the cache
}

}  // namespace powder
