#pragma once

// Interned gate names. Every distinct name is stored exactly once in a
// chunked character pool and addressed by a dense 32-bit NameId; the
// netlist's SoA gate table and every NetlistDelta carry NameIds, so no hot
// path ever hashes or copies a std::string. Pool chunks are never
// reallocated, which keeps the string_views (and the C strings behind
// them — every entry is null-terminated for printf-style consumers)
// stable for the lifetime of the table.

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace powder {

using NameId = std::uint32_t;
inline constexpr NameId kNullName = static_cast<NameId>(-1);

class NameTable {
 public:
  NameTable() = default;
  /// Copying re-interns every entry in order, so ids are preserved.
  NameTable(const NameTable& other);
  NameTable& operator=(const NameTable& other);
  NameTable(NameTable&&) noexcept = default;
  NameTable& operator=(NameTable&&) noexcept = default;

  /// Returns the id of `name`, interning it on first sight.
  NameId intern(std::string_view name);
  /// Returns the id of `name` or kNullName when it was never interned.
  NameId find(std::string_view name) const;
  bool contains(std::string_view name) const {
    return find(name) != kNullName;
  }

  /// The interned spelling. The view is null-terminated (`view(id).data()`
  /// is a valid C string) and stable for the table's lifetime.
  std::string_view view(NameId id) const {
    const Entry& e = entries_[id];
    return {e.text, e.len};
  }

  std::size_t size() const { return entries_.size(); }
  /// Bytes committed to the character pool (diagnostics).
  std::size_t pool_bytes() const { return pool_bytes_; }

 private:
  struct Entry {
    const char* text;
    std::size_t len;
  };

  const char* store(std::string_view name);

  static constexpr std::size_t kChunkSize = 64 * 1024;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cursor_ = nullptr;       // write position in the open chunk
  std::size_t cursor_left_ = 0;  // bytes left in the open chunk
  std::size_t pool_bytes_ = 0;
  std::vector<Entry> entries_;
  // Keys are views into the pool, so the map never owns string data.
  std::unordered_map<std::string_view, NameId> map_;
};

}  // namespace powder
