#pragma once
// Static timing analysis with the paper's linear delay model (§2):
//   D(gate) = tau + C_load * R_drive
// Arrival times propagate from primary inputs; required times from the
// primary outputs given a delay constraint. POWDER consults this to discard
// substitutions that would push the circuit past the constraint (§3.4).

#include "netlist/netlist.hpp"
#include "util/gate_map.hpp"

namespace powder {

struct TimingAnalysis {
  GateMap<double> arrival;   ///< indexed by GateId (signal at output)
  GateMap<double> required;  ///< meaningful after analyze(.., constraint)
  double circuit_delay = 0.0;  ///< max PO arrival

  double slack(GateId g) const { return required[g] - arrival[g]; }
};

/// Delay of one gate given its current load.
double gate_delay(const Netlist& netlist, GateId g);

/// Full STA. If `constraint < 0`, required times are computed against the
/// circuit's own delay (zero-slack critical path).
TimingAnalysis analyze_timing(const Netlist& netlist, double constraint = -1.0);

}  // namespace powder
