#pragma once
// Incremental static timing: a delta-bus subscriber that keeps arrival and
// required times coherent across netlist mutations (DESIGN.md §6).
//
// The full analyze_timing() recomputes every gate on every query; POWDER's
// §3.4 delay check calls it once per attempted substitution, which makes
// the constraint check the dominant cost on larger circuits. This class
// instead accumulates a dirty region from the published deltas and, on
// refresh, re-propagates only that region:
//  * arrival times flow forward through a topo-position min-heap with an
//    exact-equality early cutoff (a gate whose recomputed arrival is
//    bit-identical does not enqueue its fanouts);
//  * required times flow backward through a max-heap with the same cutoff,
//    using the pull form required[g] = min over sinks s of
//    (required[s] - gate_delay(s)).
// Both recomputations perform the same max/min reductions as the full STA,
// and min/max over doubles are order-independent, so refreshed values are
// bit-identical to analyze_timing() on the same netlist object.
//
// Structural deltas (rewire / add / remove / revive) invalidate the
// required graph wholesale (required_full_); cell swaps — the re-sizing
// pass's bread and butter — take the incremental required path. When the
// delay target is derived from the circuit's own delay (constraint < 0),
// any change of the max PO arrival also forces a full required pass.

#include <cstdint>
#include <queue>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/timing.hpp"
#include "util/gate_map.hpp"

namespace powder {

class TraceSession;
class MetricsRegistry;

class IncrementalTiming final : public NetlistObserver {
 public:
  /// Attaches to `netlist`'s delta bus (the netlist must outlive this
  /// object). If `constraint < 0`, required times are computed against the
  /// circuit's own delay (zero-slack critical path), like analyze_timing.
  explicit IncrementalTiming(const Netlist& netlist, double constraint = -1.0);

  /// Seeded construction for scratch copies: `netlist` must be structurally
  /// identical to `seed`'s netlist (e.g. a fresh copy of it). Arrival state
  /// is transplanted from `seed` (which is refreshed first) so the scratch
  /// analysis starts warm and only re-propagates the trial mutations.
  IncrementalTiming(const Netlist& netlist, IncrementalTiming& seed);

  ~IncrementalTiming() override;
  IncrementalTiming(const IncrementalTiming&) = delete;
  IncrementalTiming& operator=(const IncrementalTiming&) = delete;

  void on_delta(const NetlistDelta& delta) override;

  /// Attaches observability sinks (both borrowed, either may be null).
  /// Refreshes that actually re-propagate then emit "sta_resync_arrival" /
  /// "sta_resync_required" spans and feed the resync latency histogram.
  void set_trace(TraceSession* trace, MetricsRegistry* metrics);

  double constraint() const { return constraint_; }
  void set_constraint(double constraint);

  /// Brings arrival and required times up to date with every observed
  /// delta. Queries below refresh lazily; call this to pay the cost at a
  /// chosen point instead.
  void refresh();

  /// Max primary-output arrival (refreshes arrival times).
  double circuit_delay();

  double arrival(GateId g);
  double required(GateId g);
  double slack(GateId g);

  // Diagnostics: gates actually re-evaluated by refreshes, and what a full
  // forward+backward STA would have evaluated for the same refreshes.
  std::uint64_t nodes_visited() const { return nodes_visited_; }
  std::uint64_t full_equiv_visits() const { return full_equiv_visits_; }

 private:
  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);

  const Netlist* netlist_;
  double constraint_;
  double last_target_ = -1.0;  ///< target the current required times use

  GateMap<double> arrival_;
  GateMap<double> required_;
  double circuit_delay_ = 0.0;

  std::vector<GateId> topo_;       ///< live gates, topological order
  GateMap<std::uint32_t> pos_;     ///< topo position; kNoPos when dead
  bool topo_dirty_ = true;

  bool arrival_full_ = true;
  bool required_full_ = true;
  std::vector<GateId> pending_arrival_;   ///< dirty seeds, forward pass
  std::vector<GateId> pending_required_;  ///< dirty seeds, backward pass
  GateMap<std::uint8_t> pending_arrival_flag_;
  GateMap<std::uint8_t> pending_required_flag_;
  GateMap<std::uint8_t> in_queue_;  ///< heap dedup, zeroed by each drain

  std::uint64_t nodes_visited_ = 0;
  std::uint64_t full_equiv_visits_ = 0;

  TraceSession* trace_ = nullptr;
  class Counter* m_resyncs_ = nullptr;
  class Histogram* h_resync_ns_ = nullptr;

  bool tracing() const { return trace_ != nullptr || m_resyncs_ != nullptr; }
  void record_resync(const char* name, std::uint64_t t0, bool full,
                     std::uint64_t visited);

  void seed_arrival(GateId g);
  void seed_required(GateId g);
  void ensure_topo();
  void refresh_arrival();
  void refresh_required();
  double recompute_arrival(GateId g) const;
  double recompute_required(GateId g, double target) const;
};

}  // namespace powder
