#include "timing/incremental_timing.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace powder {

namespace {

void clear_seeds(std::vector<GateId>& seeds, GateMap<std::uint8_t>& flags) {
  for (GateId g : seeds) flags[g] = 0;
  seeds.clear();
}

}  // namespace

IncrementalTiming::IncrementalTiming(const Netlist& netlist, double constraint)
    : netlist_(&netlist), constraint_(constraint) {
  netlist_->attach_observer(this);
}

IncrementalTiming::IncrementalTiming(const Netlist& netlist,
                                     IncrementalTiming& seed)
    : netlist_(&netlist), constraint_(seed.constraint_) {
  POWDER_CHECK_MSG(netlist_->num_slots() == seed.netlist_->num_slots(),
                   "seeded IncrementalTiming needs a structural twin");
  seed.refresh_arrival();
  arrival_ = seed.arrival_;
  topo_ = seed.topo_;
  pos_ = seed.pos_;
  circuit_delay_ = seed.circuit_delay_;
  topo_dirty_ = false;
  arrival_full_ = false;
  required_full_ = true;
  netlist_->attach_observer(this);
}

IncrementalTiming::~IncrementalTiming() { netlist_->detach_observer(this); }

void IncrementalTiming::seed_arrival(GateId g) {
  pending_arrival_flag_.ensure(netlist_->num_slots());
  if (pending_arrival_flag_[g]) return;
  pending_arrival_flag_[g] = 1;
  pending_arrival_.push_back(g);
}

void IncrementalTiming::seed_required(GateId g) {
  pending_required_flag_.ensure(netlist_->num_slots());
  if (pending_required_flag_[g]) return;
  pending_required_flag_[g] = 1;
  pending_required_.push_back(g);
}

void IncrementalTiming::on_delta(const NetlistDelta& delta) {
  switch (delta.kind) {
    case DeltaKind::kFaninChanged:
      // The rewired sink sees a new input arrival; both drivers' loads
      // (hence delays) changed. The required graph changed shape.
      seed_arrival(delta.gate);
      if (delta.old_driver != kNullGate) seed_arrival(delta.old_driver);
      if (delta.new_driver != kNullGate) seed_arrival(delta.new_driver);
      topo_dirty_ = true;
      required_full_ = true;
      break;
    case DeltaKind::kCellChanged: {
      // The swap changes the gate's own drive and its input pin caps, so
      // the delay-dirty set is {g} ∪ fanins(g); required times are dirty
      // for the fanins of every delay-dirty gate.
      seed_arrival(delta.gate);
      for (GateId fi : netlist_->fanins(delta.gate)) {
        seed_arrival(fi);
        seed_required(fi);
        for (GateId ff : netlist_->fanins(fi)) seed_required(ff);
      }
      break;
    }
    case DeltaKind::kGateAdded:
    case DeltaKind::kGateRevived:
      seed_arrival(delta.gate);
      for (GateId fi : delta.fanins) seed_arrival(fi);
      topo_dirty_ = true;
      required_full_ = true;
      break;
    case DeltaKind::kGateRemoved:
      // The tombstoned gate itself is filtered by its dead topo position;
      // its former fanins lost a fanout pin of load.
      for (GateId fi : delta.fanins) seed_arrival(fi);
      topo_dirty_ = true;
      required_full_ = true;
      break;
    case DeltaKind::kRebuilt:
      clear_seeds(pending_arrival_, pending_arrival_flag_);
      clear_seeds(pending_required_, pending_required_flag_);
      arrival_full_ = true;
      required_full_ = true;
      topo_dirty_ = true;
      break;
  }
}

void IncrementalTiming::set_constraint(double constraint) {
  constraint_ = constraint;  // refresh_required() notices a target change
}

void IncrementalTiming::ensure_topo() {
  if (!topo_dirty_) return;
  topo_ = netlist_->topo_order();
  pos_.assign(netlist_->num_slots(), kNoPos);
  for (std::uint32_t i = 0; i < topo_.size(); ++i) pos_[topo_[i]] = i;
  topo_dirty_ = false;
}

double IncrementalTiming::recompute_arrival(GateId g) const {
  if (netlist_->kind(g) == GateKind::kInput) return 0.0;
  double in_arr = 0.0;
  for (GateId fi : netlist_->fanins(g))
    in_arr = std::max(in_arr, arrival_[fi]);
  return in_arr + gate_delay(*netlist_, g);
}

double IncrementalTiming::recompute_required(GateId g, double target) const {
  if (netlist_->kind(g) == GateKind::kOutput) return target;
  double r = std::numeric_limits<double>::infinity();
  for (const FanoutRef& br : netlist_->fanouts(g)) {
    const double rs = required_[br.gate];
    r = std::min(r, netlist_->kind(br.gate) == GateKind::kCell
                        ? rs - gate_delay(*netlist_, br.gate)
                        : rs);
  }
  return r;
}

void IncrementalTiming::set_trace(TraceSession* trace,
                                  MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics != nullptr) {
    m_resyncs_ = metrics->counter(
        "powder_sta_resyncs_total",
        "Incremental STA refreshes that re-propagated timing");
    h_resync_ns_ = metrics->histogram("powder_sta_resync_duration_ns",
                                      "Wall time per STA resync pass");
  } else {
    m_resyncs_ = nullptr;
    h_resync_ns_ = nullptr;
  }
}

void IncrementalTiming::record_resync(const char* name, std::uint64_t t0,
                                      bool full, std::uint64_t visited) {
  const std::uint64_t dur = trace_now_ns() - t0;
  if (m_resyncs_ != nullptr) {
    m_resyncs_->inc();
    h_resync_ns_->observe(dur);
  }
  if (trace_ != nullptr)
    trace_->record_span(name, "sta", t0, dur, "visited",
                        static_cast<long long>(visited), "full",
                        full ? 1 : 0);
}

void IncrementalTiming::refresh_arrival() {
  if (!arrival_full_ && pending_arrival_.empty()) return;
  const bool was_full = arrival_full_;
  const std::uint64_t t0 = tracing() ? trace_now_ns() : 0;
  const std::uint64_t nv0 = nodes_visited_;
  const Netlist& nl = *netlist_;
  ensure_topo();
  arrival_.ensure(nl.num_slots());

  if (arrival_full_) {
    arrival_.assign(nl.num_slots(), 0.0);
    for (GateId g : topo_) {
      arrival_[g] = recompute_arrival(g);
      ++nodes_visited_;
    }
    clear_seeds(pending_arrival_, pending_arrival_flag_);
    arrival_full_ = false;
  } else {
    using Entry = std::pair<std::uint32_t, GateId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    in_queue_.ensure(nl.num_slots());
    for (GateId g : pending_arrival_) {
      pending_arrival_flag_[g] = 0;
      if (pos_[g] == kNoPos) continue;  // dead (e.g. rolled-back insertion)
      if (!in_queue_[g]) {
        in_queue_[g] = 1;
        heap.emplace(pos_[g], g);
      }
    }
    pending_arrival_.clear();
    while (!heap.empty()) {
      const GateId g = heap.top().second;
      heap.pop();
      in_queue_[g] = 0;
      ++nodes_visited_;
      const double a = recompute_arrival(g);
      if (a == arrival_[g]) continue;  // exact cutoff: fanout unaffected
      arrival_[g] = a;
      for (const FanoutRef& br : nl.fanouts(g)) {
        const GateId s = br.gate;
        if (pos_[s] == kNoPos || in_queue_[s]) continue;
        in_queue_[s] = 1;
        heap.emplace(pos_[s], s);
      }
    }
  }

  circuit_delay_ = 0.0;
  for (GateId o : nl.outputs())
    circuit_delay_ = std::max(circuit_delay_, arrival_[o]);
  full_equiv_visits_ += topo_.size();
  if (tracing())
    record_resync("sta_resync_arrival", t0, was_full, nodes_visited_ - nv0);
}

void IncrementalTiming::refresh_required() {
  refresh_arrival();  // a self-referenced target tracks the circuit delay
  const double target = constraint_ < 0.0 ? circuit_delay_ : constraint_;
  if (target != last_target_) required_full_ = true;
  if (!required_full_ && pending_required_.empty()) return;
  const bool was_full = required_full_;
  const std::uint64_t t0 = tracing() ? trace_now_ns() : 0;
  const std::uint64_t nv0 = nodes_visited_;
  const Netlist& nl = *netlist_;
  ensure_topo();

  if (required_full_) {
    // Mirror of analyze_timing's backward pass — bit-identical by
    // construction.
    required_.assign(nl.num_slots(), std::numeric_limits<double>::infinity());
    for (GateId o : nl.outputs()) required_[o] = target;
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const GateId g = *it;
      ++nodes_visited_;
      if (nl.kind(g) == GateKind::kOutput) {
        const GateId drv = nl.fanin(g, 0);
        required_[drv] = std::min(required_[drv], required_[g]);
        continue;
      }
      const double d = gate_delay(nl, g);
      for (GateId fi : nl.fanins(g))
        required_[fi] = std::min(required_[fi], required_[g] - d);
    }
    clear_seeds(pending_required_, pending_required_flag_);
    required_full_ = false;
  } else {
    using Entry = std::pair<std::uint32_t, GateId>;
    std::priority_queue<Entry> heap;  // max-heap: reverse topological order
    in_queue_.ensure(nl.num_slots());
    for (GateId g : pending_required_) {
      pending_required_flag_[g] = 0;
      if (pos_[g] == kNoPos) continue;
      if (!in_queue_[g]) {
        in_queue_[g] = 1;
        heap.emplace(pos_[g], g);
      }
    }
    pending_required_.clear();
    while (!heap.empty()) {
      const GateId g = heap.top().second;
      heap.pop();
      in_queue_[g] = 0;
      ++nodes_visited_;
      const double r = recompute_required(g, target);
      if (r == required_[g]) continue;
      required_[g] = r;
      for (GateId fi : nl.fanins(g)) {
        if (pos_[fi] == kNoPos || in_queue_[fi]) continue;
        in_queue_[fi] = 1;
        heap.emplace(pos_[fi], fi);
      }
    }
  }
  last_target_ = target;
  full_equiv_visits_ += topo_.size();
  if (tracing())
    record_resync("sta_resync_required", t0, was_full, nodes_visited_ - nv0);
}

void IncrementalTiming::refresh() { refresh_required(); }

double IncrementalTiming::circuit_delay() {
  refresh_arrival();
  return circuit_delay_;
}

double IncrementalTiming::arrival(GateId g) {
  refresh_arrival();
  return arrival_[g];
}

double IncrementalTiming::required(GateId g) {
  refresh_required();
  return required_[g];
}

double IncrementalTiming::slack(GateId g) {
  refresh_required();
  return required_[g] - arrival_[g];
}

}  // namespace powder
