#include "timing/timing.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace powder {

double gate_delay(const Netlist& netlist, GateId g) {
  if (netlist.kind(g) != GateKind::kCell) return 0.0;
  const Cell& c = netlist.cell_of(g);
  return c.intrinsic_delay + netlist.signal_cap(g) * c.drive_resistance;
}

TimingAnalysis analyze_timing(const Netlist& netlist, double constraint) {
  TimingAnalysis ta;
  ta.arrival.assign(netlist.num_slots(), 0.0);
  ta.required.assign(netlist.num_slots(),
                     std::numeric_limits<double>::infinity());

  const std::vector<GateId>& order = netlist.topo_order();
  for (GateId g : order) {
    if (netlist.kind(g) == GateKind::kInput) {
      ta.arrival[g] = 0.0;
      continue;
    }
    double in_arr = 0.0;
    for (GateId fi : netlist.fanins(g))
      in_arr = std::max(in_arr, ta.arrival[fi]);
    ta.arrival[g] = in_arr + gate_delay(netlist, g);
  }
  for (GateId o : netlist.outputs())
    ta.circuit_delay = std::max(ta.circuit_delay, ta.arrival[o]);

  const double target = constraint < 0.0 ? ta.circuit_delay : constraint;
  for (GateId o : netlist.outputs()) ta.required[o] = target;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId g = *it;
    if (netlist.kind(g) == GateKind::kOutput) {
      // The PO's driver must arrive by the PO's required time.
      const GateId drv = netlist.fanin(g, 0);
      ta.required[drv] = std::min(ta.required[drv], ta.required[g]);
      continue;
    }
    const double d = gate_delay(netlist, g);
    for (GateId fi : netlist.fanins(g))
      ta.required[fi] = std::min(ta.required[fi], ta.required[g] - d);
  }
  return ta;
}

}  // namespace powder
