#include "window/window_optimizer.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>

#include "atpg/sat_checker.hpp"
#include "opt/journal.hpp"
#include "opt/power_gain.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

/// One local permissibility check. A CheckError from an engine is treated
/// as kAborted — a sound rejection — so a transient failure inside a pool
/// thread can never accept an unproven candidate or tear down the window
/// fan-out.
AtpgResult prove_local(AtpgChecker& atpg, SatChecker& sat, ProofEngine engine,
                       const CandidateSub& cand) {
  try {
    switch (engine) {
      case ProofEngine::kPodem:
        return atpg.check_replacement(cand.site(), cand.rep);
      case ProofEngine::kSat:
        return sat.check_replacement(cand.site(), cand.rep);
      case ProofEngine::kHybrid: {
        const AtpgResult r = atpg.check_replacement(cand.site(), cand.rep);
        if (r != AtpgResult::kAborted) return r;
        return sat.check_replacement(cand.site(), cand.rep);
      }
    }
  } catch (const CheckError&) {
  }
  return AtpgResult::kAborted;
}

}  // namespace

WindowResult optimize_window(WindowExtraction& ex,
                             const WindowRunOptions& wo) {
  POWDER_CHECK(wo.base != nullptr);
  const PowderOptions& base = *wo.base;
  Netlist& nl = ex.local;
  WindowResult result;

  TraceSpan window_span(wo.trace, "window", "window");
  window_span.arg("window", ex.id);
  window_span.arg("gates", static_cast<long long>(ex.gates.size()));

  // Local twins of the global loop's analyses, all sized by the window.
  Simulator sim(nl, base.num_patterns, ex.input_probs, wo.seed);
  PowerEstimator est(&sim);
  // The window inherits the parent's power model: under the timed model
  // the local boundary inputs switch with the probabilities sampled from
  // the parent (their arrival-time profile is approximated as t = 0).
  std::optional<TimedPowerModel> timed;
  if (base.power_model == PowerModelKind::kTimed) {
    GlitchOptions gopt = base.glitch;
    gopt.stimulus.prob = ex.input_probs;
    gopt.stimulus.toggle.clear();
    timed.emplace(&est, std::move(gopt));
  }
  PowerModel& model = timed.has_value() ? static_cast<PowerModel&>(*timed)
                                        : static_cast<PowerModel&>(est);
  Simulator verify_sim(nl, base.num_patterns, ex.input_probs,
                       wo.seed ^ 0x5EC0DD5EEDull);

  // Local PO-signature guard: the synthetic outputs pin every boundary
  // signal, so a guard pass here means the window's externally visible
  // values are bit-identical on the independent pattern set.
  const std::vector<GateId> po_gates = nl.outputs();
  std::vector<std::uint64_t> po_snapshot;
  for (const GateId o : po_gates) {
    const auto words = verify_sim.value(o);
    po_snapshot.insert(po_snapshot.end(), words.begin(), words.end());
  }
  auto po_signatures_ok = [&]() {
    std::size_t k = 0;
    for (const GateId o : po_gates)
      for (const std::uint64_t w : verify_sim.value(o))
        if (w != po_snapshot[k++]) return false;
    return true;
  };

  AtpgOptions atpg_options = base.proof.atpg;
  atpg_options.budget = wo.budget;
  atpg_options.trace = wo.trace;
  atpg_options.metrics = nullptr;
  SatCheckerOptions sat_options = base.proof.sat;
  sat_options.budget = wo.budget;
  sat_options.trace = wo.trace;
  sat_options.metrics = nullptr;
  AtpgChecker atpg(nl, atpg_options);
  SatChecker sat(nl, sat_options);

  SubstJournal journal(&nl);
  CandidateFinder finder(nl, model, base.candidates, wo.seed, nullptr);

  auto resync = [&]() {
    model.refresh();
    verify_sim.refresh();
  };

  // WAL replay oracle. Matching needs parent ids, so the extraction's
  // local->parent map is copied and extended as replayed commits insert
  // gates (the record carries the parent id the original merge assigned).
  std::vector<GateId> to_parent = ex.to_parent;
  std::size_t replay_cursor = 0;
  auto next_record = [&]() -> const WalCommit* {
    if (wo.replay == nullptr || replay_cursor >= wo.replay->size())
      return nullptr;
    return (*wo.replay)[replay_cursor];
  };
  auto map_gate = [&](GateId local, GateId* parent) {
    if (local >= to_parent.size() || to_parent[local] == kNullGate)
      return false;
    *parent = to_parent[local];
    return true;
  };
  auto map_to_parent = [&](const CandidateSub& c, CandidateSub* out) {
    *out = c;
    if (!map_gate(c.target, &out->target)) return false;
    if (c.branch.has_value() && !map_gate(c.branch->gate, &out->branch->gate))
      return false;
    for (int i = 0; i < c.rep.num_sources(); ++i)
      if (!map_gate(c.rep.source(i), &out->rep.source_ref(i))) return false;
    return true;
  };

  const bool area_mode = base.objective == Objective::kArea;
  for (int round = 0; round < wo.rounds; ++round) {
    finder.reseed(wo.seed + 17 * static_cast<std::uint64_t>(round));
    std::vector<CandidateSub> cands = finder.find();
    result.stats.harvested += static_cast<long>(cands.size());
    result.stats.truncated += static_cast<long>(finder.last_truncated());
    for (const CandidateSub& c : cands)
      ++result.stats.harvested_by_class[static_cast<std::size_t>(c.cls)];

    int performed = 0;
    bool progress = false;
    while (performed < base.repeat && !cands.empty()) {
      // Selection: identical to the global loop's
      // select_power_red_subst, plus the two windowed soundness filters
      // (see the header comment).
      std::vector<std::size_t> order;
      std::vector<double> metric(cands.size(), 0.0);
      for (std::size_t i = 0; i < cands.size();) {
        const CandidateSub& c = cands[i];
        const bool representable =
            nl.kind(c.target) == GateKind::kCell &&
            !(c.branch.has_value() &&
              nl.kind(c.branch->gate) == GateKind::kOutput);
        if (!representable || !substitution_still_valid(nl, c)) {
          ++result.stats.stale;
          cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        cands[i].pg_a = compute_pg_a(nl, model, cands[i]);
        cands[i].pg_b = compute_pg_b(nl, model, cands[i]);
        metric[i] = area_mode ? compute_area_gain(nl, cands[i])
                              : cands[i].preselect_gain();
        order.push_back(i);
        ++i;
      }
      if (order.empty()) break;
      std::sort(order.begin(), order.end(),
                [&](std::size_t x, std::size_t y) {
                  return metric[x] > metric[y];
                });
      const std::size_t shortlist = std::min<std::size_t>(
          order.size(), static_cast<std::size_t>(base.shortlist));
      std::size_t best = cands.size();
      double best_gain = base.min_gain;
      if (area_mode) {
        if (metric[order[0]] > best_gain) best = order[0];
      } else {
        for (std::size_t k = 0; k < shortlist; ++k) {
          CandidateSub& cand = cands[order[k]];
          cand.pg_c = compute_pg_c(nl, model, cand);
          if (cand.total_gain() > best_gain) {
            best_gain = cand.total_gain();
            best = order[k];
          }
        }
      }
      if (best == cands.size()) break;

      CandidateSub chosen = cands[best];
      cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(best));

      // Pre-proof refutation on the independent pattern set.
      {
        const std::vector<std::uint64_t> words =
            replacement_words(verify_sim, chosen.rep);
        const FanoutRef* branch =
            chosen.branch.has_value() ? &*chosen.branch : nullptr;
        const auto diff = verify_sim.output_diff_with_replacement(
            chosen.target, branch, words);
        bool refuted = false;
        for (const std::uint64_t w : diff)
          if (w) {
            refuted = true;
            break;
          }
        if (refuted) {
          ++result.stats.presim_rejected;
          continue;
        }
      }

      // Permissibility: the WAL oracle answers candidates it recorded for
      // this window; everything else is proved live (a conflict-skipped
      // local commit never reached the WAL, so no-match must not mean
      // rejected here).
      const WalCommit* record = next_record();
      CandidateSub parent_cand;
      const bool matched = record != nullptr &&
                           map_to_parent(chosen, &parent_cand) &&
                           same_candidate(record->cand, parent_cand);
      if (!matched) {
        ++result.stats.inline_proofs;
        const AtpgResult verdict =
            prove_local(atpg, sat, base.proof.engine, chosen);
        if (verdict != AtpgResult::kUntestable) {
          ++result.stats.proof_rejected;
          continue;
        }
      } else {
        ++result.stats.replayed;
      }
      ++result.stats.proved_by_class[static_cast<std::size_t>(chosen.cls)];

      AppliedSub applied;
      try {
        applied = journal.apply(chosen);
      } catch (const CheckError&) {
        ++result.stats.stale;
        continue;
      }
      resync();

      if (base.guard.signature_check && !po_signatures_ok()) {
        ++result.stats.guard_rollbacks;
        try {
          journal.rollback_last();
          resync();
        } catch (const CheckError&) {
          // A rollback failure means the local journal is corrupted; the
          // published deltas keep the caches truthful, but nothing from
          // this window can be trusted — abandon it without commits.
          resync();
          result.commits.clear();
          return result;
        }
        continue;
      }

      if (matched) {
        if (applied.new_gate != kNullGate) {
          if (applied.new_gate >= to_parent.size())
            to_parent.resize(applied.new_gate + 1, kNullGate);
          to_parent[applied.new_gate] = record->applied.new_gate;
        }
        ++replay_cursor;
      }
      result.commits.push_back(WindowCommit{chosen, applied});
      ++performed;
      progress = true;
    }
    if (!progress) break;
  }

  window_span.arg("commits", static_cast<long long>(result.commits.size()));
  return result;
}

}  // namespace powder
