#include "window/extract.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace powder {

WindowExtraction extract_window(const Netlist& parent,
                                const PowerModel& estimator,
                                std::vector<GateId> gates, int id) {
  WindowExtraction ex(&parent.library());
  if (parent.library_owner() != nullptr)
    ex.local.adopt_library(parent.library_owner());
  ex.local.set_name(parent.name() + ".w" + std::to_string(id));
  ex.id = id;
  ex.gates = std::move(gates);

  std::vector<std::uint8_t> in_window(parent.num_slots(), 0);
  for (const GateId g : ex.gates) in_window[g] = 1;

  std::vector<GateId> parent_to_local(parent.num_slots(), kNullGate);

  // Pass 1 (parent topo order): clone the window gates, creating a local
  // primary input the first time an external driver is referenced.
  for (const GateId g : ex.gates) {
    POWDER_CHECK_MSG(parent.alive(g) && parent.kind(g) == GateKind::kCell,
                     "extract_window: gate " << g
                                             << " is not a live cell gate");
    std::vector<GateId> local_fanins;
    local_fanins.reserve(static_cast<std::size_t>(parent.num_fanins(g)));
    for (const GateId f : parent.fanins(g)) {
      if (parent_to_local[f] == kNullGate) {
        POWDER_CHECK_MSG(!in_window[f],
                         "extract_window: window gates not in topological "
                         "order (fanin " << f << " of gate " << g << ")");
        parent_to_local[f] =
            ex.local.add_input(std::string(parent.gate_name(f)));
        ex.to_parent.push_back(f);
        ex.input_probs.push_back(estimator.probability(f));
      }
      local_fanins.push_back(parent_to_local[f]);
    }
    parent_to_local[g] = ex.local.add_gate(parent.cell_id(g), local_fanins,
                                           std::string(parent.gate_name(g)));
    ex.to_parent.push_back(g);
  }

  // Pass 2: pin every boundary signal. A window gate whose signal leaves
  // the window (external cell sink or parent primary output) — or that has
  // no fanout at all, so a local sweep could diverge from the parent —
  // gets a synthetic local output carrying the summed external load.
  for (const GateId g : ex.gates) {
    bool external = parent.fanouts(g).empty();
    double external_load = 0.0;
    for (const FanoutRef& fr : parent.fanouts(g)) {
      if (in_window[fr.gate]) continue;
      external = true;
      external_load += parent.pin_cap(fr.gate, fr.pin);
    }
    if (!external) continue;
    ex.local.add_output("__win_po_" + std::string(parent.gate_name(g)),
                        parent_to_local[g], external_load);
    ex.to_parent.push_back(kNullGate);
    ++ex.pinned_outputs;
  }

  // Support set: window gates plus external input drivers, sorted for the
  // merge-time conflict intersection.
  ex.support = ex.gates;
  for (std::size_t i = 0; i < ex.local.inputs().size(); ++i)
    ex.support.push_back(ex.to_parent[ex.local.inputs()[i]]);
  std::sort(ex.support.begin(), ex.support.end());
  ex.support.erase(std::unique(ex.support.begin(), ex.support.end()),
                   ex.support.end());
  return ex;
}

}  // namespace powder
