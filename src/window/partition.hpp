#pragma once
// Window partitioner (DESIGN.md §11.1): carves the live cell gates of a
// netlist, in cached topological order, into overlapping windows of bounded
// size. Consecutive windows share `overlap` trailing gates, so commits that
// land in a shared region are detected at merge time as boundary conflicts.
//
// The partition is a pure function of (netlist structure, options): no RNG,
// no thread count, no wall clock — the foundation of the windowed mode's
// bit-identical-across-thread-counts guarantee.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "window/options.hpp"

namespace powder {

/// Splits the live kCell gates of `netlist` (topological order) into
/// windows of at most `options.max_gates` gates where each window after the
/// first starts `options.max_gates - options.overlap` gates into its
/// predecessor. Every live cell gate is covered by at least one window; the
/// last window may be smaller than max_gates. Returns an empty vector for a
/// netlist with no cell gates.
std::vector<std::vector<GateId>> partition_windows(const Netlist& netlist,
                                                   const WindowOptions& options);

/// The order in which windows are merged back into the parent. order_seed
/// == 0 keeps the natural (topological) order; any other value applies a
/// Fisher-Yates shuffle seeded with it. Deterministic for a fixed seed.
std::vector<std::size_t> window_merge_order(std::size_t num_windows,
                                            std::uint64_t order_seed);

/// Deterministic per-window seed derivation (splitmix64-style): mixes the
/// run seed with the window's globally unique id so every window owns an
/// independent RNG/pattern stream at any thread count.
std::uint64_t window_seed(std::uint64_t run_seed, std::uint64_t window_id);

}  // namespace powder
