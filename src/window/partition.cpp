#include "window/partition.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace powder {

std::vector<std::vector<GateId>> partition_windows(
    const Netlist& netlist, const WindowOptions& options) {
  std::vector<GateId> cells;
  for (const GateId g : netlist.topo_order())
    if (netlist.kind(g) == GateKind::kCell) cells.push_back(g);

  const std::size_t max_gates =
      static_cast<std::size_t>(std::max(1, options.max_gates));
  const std::size_t overlap = std::min(
      static_cast<std::size_t>(std::max(0, options.overlap)), max_gates - 1);
  const std::size_t stride = max_gates - overlap;

  std::vector<std::vector<GateId>> windows;
  for (std::size_t start = 0; start < cells.size(); start += stride) {
    const std::size_t end = std::min(cells.size(), start + max_gates);
    windows.emplace_back(cells.begin() + static_cast<std::ptrdiff_t>(start),
                         cells.begin() + static_cast<std::ptrdiff_t>(end));
    if (end == cells.size()) break;  // the last window absorbed the tail
  }
  return windows;
}

std::vector<std::size_t> window_merge_order(std::size_t num_windows,
                                            std::uint64_t order_seed) {
  std::vector<std::size_t> order(num_windows);
  for (std::size_t i = 0; i < num_windows; ++i) order[i] = i;
  if (order_seed == 0 || num_windows < 2) return order;
  Rng rng(order_seed);
  for (std::size_t i = num_windows - 1; i > 0; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[i], order[j]);
  }
  return order;
}

std::uint64_t window_seed(std::uint64_t run_seed, std::uint64_t window_id) {
  std::uint64_t x = run_seed + 0x9E3779B97F4A7C15ull * (window_id + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace powder
