#pragma once
// Windowed-optimization configuration (DESIGN.md §11).
//
// In windowed mode the optimizer no longer runs one global
// harvest→proof→commit loop: the netlist is carved into overlapping
// windows of bounded gate count (seeded from the cached topological
// order), each window is optimized against a boundary-pinned local
// extraction — local signatures, local proof cones clipped at the window
// inputs — and the resulting commits are merged back serially through the
// delta bus with boundary-overlap conflict detection. Per-candidate cost
// then scales with the window size, not the netlist size.

#include <cstdint>

namespace powder {

enum class WindowMode : std::uint8_t {
  kGlobal,    ///< the classic whole-netlist loop (default)
  kWindowed,  ///< partition / locally optimize / merge (DESIGN.md §11)
};

struct WindowOptions {
  WindowMode mode = WindowMode::kGlobal;

  /// Maximum live cell gates per window. Proof engines, signatures and
  /// candidate indices in a window run are all sized by this bound.
  int max_gates = 512;

  /// Trailing gates each window shares with its successor. Overlap widens
  /// the local optimization horizon at the seams; commits landing in a
  /// shared region surface as boundary conflicts and trigger a serial
  /// re-run of the later window.
  int overlap = 64;

  /// Seed for the deterministic shuffle of the merge order. 0 keeps the
  /// natural (topological) window order. Any fixed value yields a
  /// reproducible run; results are bit-identical across thread counts
  /// either way.
  std::uint64_t order_seed = 0;

  /// How many serial re-run rounds conflicted windows get before their
  /// remaining substitutions are abandoned for this outer iteration.
  int rerun_limit = 1;
};

}  // namespace powder
