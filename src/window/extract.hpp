#pragma once
// Window extraction (DESIGN.md §11.2): materializes one window as a small
// self-contained netlist against the parent's cell library.
//
//   * every fanin driven from outside the window becomes a local primary
//     input whose signal probability is sampled from the parent's power
//     estimator (so local pattern generation matches the parent's signal
//     statistics);
//   * every window gate with a fanout outside the window — an external cell
//     sink or a parent primary output — is *pinned* by a synthetic local
//     primary output carrying the summed external pin load.
//
// The pinning is what makes local permissibility proofs globally sound: a
// substitution that is untestable through the local outputs is untestable
// in the parent, because the local inputs range over a superset of the
// value combinations the parent can actually produce, and every externally
// visible signal is directly observed by a local output (forcing exact
// value preservation at the boundary).

#include <vector>

#include "netlist/netlist.hpp"
#include "power/power.hpp"

namespace powder {

struct WindowExtraction {
  explicit WindowExtraction(const CellLibrary* library) : local(library) {}

  int id = 0;         ///< globally unique window id (stable across a run)
  Netlist local;      ///< the extracted window circuit

  /// Parent ids of the window's cell gates, in parent topological order.
  std::vector<GateId> gates;

  /// local slot -> parent id; kNullGate for synthetic locals (the pinned
  /// outputs). Extended at merge time as local commits insert new gates.
  std::vector<GateId> to_parent;

  /// Sorted unique parent ids the window's proofs depend on: the window
  /// gates plus the external input drivers. Merge-time conflict detection
  /// intersects this with the set of parent gates earlier merges touched.
  std::vector<GateId> support;

  /// Signal probability per local primary input (parallel to
  /// local.inputs()), sampled from the parent estimator at extraction time.
  std::vector<double> input_probs;

  int pinned_outputs = 0;  ///< synthetic POs added for boundary signals
};

/// Builds the local netlist for `gates` (parent ids in parent topological
/// order — the partitioner's output). `estimator` supplies boundary input
/// probabilities and must be coherent with the parent's current state.
WindowExtraction extract_window(const Netlist& parent,
                                const PowerModel& estimator,
                                std::vector<GateId> gates, int id);

}  // namespace powder
