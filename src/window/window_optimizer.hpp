#pragma once
// Window-scoped optimizer (DESIGN.md §11.3): runs the POWDER
// harvest→proof→commit loop against one extracted window.
//
// The loop is a deliberately serial miniature of the global one — local
// simulators and signature words, a local candidate index, local proof
// cones clipped at the window inputs, a local journal with its own
// PO-signature guard — with three windowed-mode differences:
//
//   * candidates targeting a synthetic local input are rejected (an OS2
//     there would rewire parent fanouts outside the window that the local
//     proof never saw), and IS2/IS3 branches into a synthetic local output
//     are rejected (one synthetic pin stands for several parent sinks, so
//     the edit has no parent representation);
//   * there is no delay check — the merge layer applies it against the
//     parent's incremental STA, where arrival times are real;
//   * proofs can be answered by a per-window WAL replay oracle: a
//     candidate matching the next recorded commit for this window skips
//     the engines, anything else is proved live (a merge-conflicted local
//     commit never reached the WAL, so an unmatched candidate must not be
//     auto-rejected the way the global resume path does).
//
// Each accepted commit is returned in local GateIds; the merge layer maps
// them onto the parent via WindowExtraction::to_parent.

#include <array>
#include <cstdint>
#include <vector>

#include "opt/powder.hpp"
#include "session/wal.hpp"
#include "window/extract.hpp"

namespace powder {

class ResourceBudget;
class TraceSession;

/// One locally accepted substitution, in local GateIds.
struct WindowCommit {
  CandidateSub cand;
  AppliedSub applied;
};

/// Decision counters of one window run, folded serially into the parent
/// run's metrics at merge time so registry totals stay deterministic.
struct WindowLocalStats {
  long harvested = 0;
  long stale = 0;
  long presim_rejected = 0;
  long proof_rejected = 0;
  long guard_rollbacks = 0;
  long inline_proofs = 0;
  long replayed = 0;   ///< proofs answered by the WAL oracle
  long truncated = 0;  ///< candidates dropped by the max_candidates cap
  /// Per-resubstitution-class harvest/proof counts (diagnostics.resub).
  std::array<long, kNumResubClasses> harvested_by_class{};
  std::array<long, kNumResubClasses> proved_by_class{};
};

struct WindowResult {
  std::vector<WindowCommit> commits;
  WindowLocalStats stats;
};

struct WindowRunOptions {
  /// The parent run's options; the local loop reads num_patterns,
  /// objective, candidates, shortlist, min_gain, repeat and proof.
  const PowderOptions* base = nullptr;
  std::uint64_t seed = 1;   ///< premixed per-window seed (window_seed())
  int rounds = 2;           ///< local harvest rounds
  ResourceBudget* budget = nullptr;  ///< shared proof pools (may be null)
  TraceSession* trace = nullptr;     ///< span sink (may be null)
  /// WAL commits recorded for this window id, in recorded order; null or
  /// empty outside a resume.
  const std::vector<const WalCommit*>* replay = nullptr;
};

/// Optimizes `ex.local` in place and returns the accepted local commits in
/// commit order. Pure function of (extraction, options) — safe to run for
/// disjoint extractions on pool threads concurrently.
WindowResult optimize_window(WindowExtraction& ex,
                             const WindowRunOptions& options);

}  // namespace powder
