#pragma once
// Structurally hashed AND-inverter graph — the technology-independent
// subject graph between logic optimization and technology mapping.
//
// Literals encode (node << 1) | complemented. Node 0 is the constant-0
// node, so literal 0 is FALSE and literal 1 is TRUE. Nodes are created in
// topological order (fanins always have smaller indices).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cube.hpp"
#include "logic/factor.hpp"
#include "logic/truth_table.hpp"

namespace powder {

using AigLit = std::uint32_t;

inline constexpr AigLit kAigFalse = 0;
inline constexpr AigLit kAigTrue = 1;

inline AigLit aig_not(AigLit a) { return a ^ 1u; }
inline std::uint32_t aig_node(AigLit a) { return a >> 1; }
inline bool aig_is_complemented(AigLit a) { return a & 1u; }
inline AigLit aig_lit(std::uint32_t node, bool complemented) {
  return (node << 1) | static_cast<AigLit>(complemented);
}

class Aig {
 public:
  explicit Aig(std::string name = "aig");

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds a primary input; returns its (positive) literal.
  AigLit add_input(std::string name = "");
  /// Registers a primary output.
  void add_output(AigLit lit, std::string name = "");

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  /// Number of AND nodes (excludes constant and PIs).
  int num_ands() const;
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  AigLit input(int i) const { return inputs_[static_cast<std::size_t>(i)]; }
  const std::string& input_name(int i) const {
    return input_names_[static_cast<std::size_t>(i)];
  }
  AigLit output(int i) const { return outputs_[static_cast<std::size_t>(i)]; }
  const std::string& output_name(int i) const {
    return output_names_[static_cast<std::size_t>(i)];
  }

  bool is_input(std::uint32_t node) const {
    return node >= 1 && node <= inputs_.size();
  }
  bool is_and(std::uint32_t node) const { return node > inputs_.size(); }
  AigLit fanin0(std::uint32_t node) const { return nodes_[node].fan0; }
  AigLit fanin1(std::uint32_t node) const { return nodes_[node].fan1; }

  // ---- construction (with structural hashing & simplification) ----------
  AigLit land(AigLit a, AigLit b);
  AigLit lor(AigLit a, AigLit b) {
    return aig_not(land(aig_not(a), aig_not(b)));
  }
  AigLit lxor(AigLit a, AigLit b);
  AigLit lmux(AigLit sel, AigLit t, AigLit e);
  AigLit land_many(const std::vector<AigLit>& lits);
  AigLit lor_many(std::vector<AigLit> lits);

  /// Builds a factored form over `var_lits`.
  AigLit from_factor(const FactorNode& node,
                     const std::vector<AigLit>& var_lits);
  /// Builds a cover (SOP) over `var_lits`.
  AigLit from_cover(const Cover& cover, const std::vector<AigLit>& var_lits);

  /// Exhaustive functional evaluation for verification (<= 20 inputs).
  /// Returns one truth-table bit vector per output.
  std::vector<TruthTable> output_truth_tables() const;

  /// Number of AND nodes reachable from the outputs (dead nodes excluded).
  int live_and_count() const;

 private:
  struct Node {
    AigLit fan0 = 0, fan1 = 0;
  };

  std::string name_;
  std::vector<Node> nodes_;  // [0]=const0, [1..n]=PIs, rest = ANDs
  std::vector<AigLit> inputs_;
  std::vector<std::string> input_names_;
  std::vector<AigLit> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> strash_;
};

}  // namespace powder
