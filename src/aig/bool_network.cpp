#include "aig/bool_network.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "logic/factor.hpp"
#include "util/check.hpp"

namespace powder {

// ---------------------------------------------------------------------------
// BoolNetwork basics
// ---------------------------------------------------------------------------

BnId BoolNetwork::add_input(std::string name) {
  Node n;
  n.is_input = true;
  n.name = name.empty() ? "i" + std::to_string(name_counter_++)
                        : std::move(name);
  nodes_.push_back(std::move(n));
  const BnId id = static_cast<BnId>(nodes_.size() - 1);
  inputs_.push_back(id);
  return id;
}

BnId BoolNetwork::add_node(std::vector<BnId> fanins, Cover cover,
                           std::string name) {
  POWDER_CHECK(cover.num_vars() == static_cast<int>(fanins.size()));
  for (BnId f : fanins) POWDER_CHECK(f < nodes_.size());
  Node n;
  n.name = name.empty() ? "n" + std::to_string(name_counter_++)
                        : std::move(name);
  n.fanins = std::move(fanins);
  n.cover = std::move(cover);
  nodes_.push_back(std::move(n));
  return static_cast<BnId>(nodes_.size() - 1);
}

void BoolNetwork::add_output(BnId node, std::string name) {
  POWDER_CHECK(node < nodes_.size());
  outputs_.push_back(node);
  output_names_.push_back(std::move(name));
}

int BoolNetwork::total_literals() const {
  int lits = 0;
  for (const Node& n : nodes_)
    if (!n.is_input) lits += n.cover.num_literals();
  return lits;
}

std::vector<BnId> BoolNetwork::topo_order() const {
  std::vector<BnId> order;
  std::vector<std::uint8_t> state(nodes_.size(), 0);
  std::vector<BnId> stack;
  for (BnId root = 0; root < nodes_.size(); ++root) {
    if (state[root] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const BnId n = stack.back();
      if (state[n] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[n] == 0) {
        state[n] = 1;
        for (BnId f : nodes_[n].fanins) {
          POWDER_CHECK_MSG(state[f] != 1, "cycle in Boolean network");
          if (state[f] == 0) stack.push_back(f);
        }
      } else {
        state[n] = 2;
        order.push_back(n);
        stack.pop_back();
      }
    }
  }
  return order;
}

Aig BoolNetwork::to_aig(const std::string& name) const {
  Aig aig(name);
  std::vector<AigLit> lit_of(nodes_.size(), kAigFalse);
  for (BnId i : inputs_) lit_of[i] = aig.add_input(nodes_[i].name);
  for (BnId n : topo_order()) {
    if (nodes_[n].is_input) continue;
    std::vector<AigLit> vars;
    vars.reserve(nodes_[n].fanins.size());
    for (BnId f : nodes_[n].fanins) vars.push_back(lit_of[f]);
    lit_of[n] = aig.from_cover(nodes_[n].cover, vars);
  }
  for (int o = 0; o < num_outputs(); ++o)
    aig.add_output(lit_of[outputs_[static_cast<std::size_t>(o)]],
                   output_names_[static_cast<std::size_t>(o)]);
  return aig;
}

BoolNetwork BoolNetwork::from_sop(const SopNetwork& sop) {
  BoolNetwork bn;
  std::vector<BnId> input_ids;
  for (const std::string& n : sop.input_names)
    input_ids.push_back(bn.add_input(n));
  for (int o = 0; o < sop.num_outputs(); ++o) {
    const Cover& full = sop.outputs[static_cast<std::size_t>(o)];
    // Compress to the cover's support.
    std::vector<int> support;
    for (int v = 0; v < full.num_vars(); ++v) {
      bool used = false;
      for (const Cube& c : full.cubes())
        if (c.lit(v) != Lit::kDash) used = true;
      if (used) support.push_back(v);
    }
    Cover compact(static_cast<int>(support.size()));
    for (const Cube& c : full.cubes()) {
      Cube cc(static_cast<int>(support.size()));
      for (std::size_t i = 0; i < support.size(); ++i)
        cc.set_lit(static_cast<int>(i),
                   c.lit(support[i]));
      compact.add(std::move(cc));
    }
    std::vector<BnId> fanins;
    for (int v : support)
      fanins.push_back(input_ids[static_cast<std::size_t>(v)]);
    const BnId node = bn.add_node(std::move(fanins), std::move(compact));
    bn.add_output(node, sop.output_names[static_cast<std::size_t>(o)]);
  }
  return bn;
}

// ---------------------------------------------------------------------------
// Algebraic machinery on "global cubes" — sorted literal-id vectors, where
// a literal id is 2*var + (complemented ? 1 : 0).
// ---------------------------------------------------------------------------

namespace {

using GCube = std::vector<int>;     // sorted, duplicate-free
using GCover = std::vector<GCube>;  // sorted cube list (set semantics)

bool gcube_contains(const GCube& big, const GCube& small) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

GCube gcube_minus(const GCube& a, const GCube& b) {
  GCube out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

GCube gcube_union(const GCube& a, const GCube& b) {
  GCube out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void gcover_normalize(GCover* f) {
  std::sort(f->begin(), f->end());
  f->erase(std::unique(f->begin(), f->end()), f->end());
}

int gcover_literals(const GCover& f) {
  int lits = 0;
  for (const GCube& c : f) lits += static_cast<int>(c.size());
  return lits;
}

/// Quotient of f by a single cube d.
GCover gcover_divide_cube(const GCover& f, const GCube& d) {
  GCover q;
  for (const GCube& c : f)
    if (gcube_contains(c, d)) q.push_back(gcube_minus(c, d));
  gcover_normalize(&q);
  return q;
}

/// Largest cube dividing every cube of f.
GCube gcover_common_cube(const GCover& f) {
  if (f.empty()) return {};
  GCube common = f.front();
  for (const GCube& c : f) {
    GCube next;
    std::set_intersection(common.begin(), common.end(), c.begin(), c.end(),
                          std::back_inserter(next));
    common = std::move(next);
    if (common.empty()) break;
  }
  return common;
}

/// Algebraic division by a multi-cube divisor: Q = intersection of the
/// single-cube quotients; R = f - D*Q.
bool gcover_divide(const GCover& f, const GCover& d, GCover* quotient,
                   GCover* remainder) {
  POWDER_CHECK(!d.empty());
  GCover q = gcover_divide_cube(f, d.front());
  for (std::size_t i = 1; i < d.size() && !q.empty(); ++i) {
    const GCover qi = gcover_divide_cube(f, d[i]);
    GCover inter;
    std::set_intersection(q.begin(), q.end(), qi.begin(), qi.end(),
                          std::back_inserter(inter));
    q = std::move(inter);
  }
  if (q.empty()) return false;
  // Product D*Q, removed from f.
  std::set<GCube> product;
  for (const GCube& qc : q)
    for (const GCube& dc : d) product.insert(gcube_union(qc, dc));
  GCover r;
  for (const GCube& c : f)
    if (product.find(c) == product.end()) r.push_back(c);
  gcover_normalize(&r);
  *quotient = std::move(q);
  *remainder = std::move(r);
  return true;
}

/// All kernels (cube-free quotients) of f, with a cap. Standard recursive
/// kernel enumeration over the literals.
void kernels_rec(const GCover& f, int min_lit, int max_kernels,
                 std::set<GCover>* out) {
  if (static_cast<int>(out->size()) >= max_kernels) return;
  // Literal occurrence counts.
  std::map<int, int> counts;
  for (const GCube& c : f)
    for (int l : c) ++counts[l];
  for (const auto& [lit, count] : counts) {
    if (lit < min_lit || count < 2) continue;
    GCover q = gcover_divide_cube(f, GCube{lit});
    const GCube common = gcover_common_cube(q);
    if (!common.empty()) {
      // Make cube-free.
      GCover cf;
      for (const GCube& c : q) cf.push_back(gcube_minus(c, common));
      gcover_normalize(&cf);
      q = std::move(cf);
    }
    if (q.size() < 2) continue;  // single-cube quotient: not a kernel
    if (out->insert(q).second) {
      kernels_rec(q, lit + 1, max_kernels, out);
      if (static_cast<int>(out->size()) >= max_kernels) return;
    }
  }
}

GCover to_gcover(const BoolNetwork::Node& node) {
  GCover f;
  for (const Cube& c : node.cover.cubes()) {
    GCube gc;
    for (int v = 0; v < c.num_vars(); ++v) {
      if (c.lit(v) == Lit::kDash) continue;
      const int var = static_cast<int>(node.fanins[static_cast<std::size_t>(v)]);
      gc.push_back(2 * var + (c.lit(v) == Lit::kZero ? 1 : 0));
    }
    std::sort(gc.begin(), gc.end());
    f.push_back(std::move(gc));
  }
  gcover_normalize(&f);
  return f;
}

void from_gcover(const GCover& f, BoolNetwork::Node* node) {
  std::set<int> vars;
  for (const GCube& c : f)
    for (int l : c) vars.insert(l / 2);
  std::vector<BnId> fanins(vars.begin(), vars.end());
  std::map<int, int> var_pos;
  for (std::size_t i = 0; i < fanins.size(); ++i)
    var_pos[static_cast<int>(fanins[i])] = static_cast<int>(i);
  Cover cover(static_cast<int>(fanins.size()));
  for (const GCube& c : f) {
    Cube cube(static_cast<int>(fanins.size()));
    for (int l : c)
      cube.set_lit(var_pos[l / 2], (l & 1) ? Lit::kZero : Lit::kOne);
    cover.add(std::move(cube));
  }
  node->fanins = std::move(fanins);
  node->cover = std::move(cover);
}

}  // namespace

// Public Cover-level wrappers (for tests and reuse).

std::vector<Cover> compute_kernels(const Cover& cover, int max_kernels) {
  // Build a fake single-node view where fanin i == variable i.
  BoolNetwork::Node node;
  node.cover = cover;
  for (int v = 0; v < cover.num_vars(); ++v)
    node.fanins.push_back(static_cast<BnId>(v));
  const GCover f = to_gcover(node);
  std::set<GCover> kernels;
  kernels_rec(f, 0, max_kernels, &kernels);
  // The cover itself, made cube-free, is a kernel by convention.
  {
    const GCube common = gcover_common_cube(f);
    GCover cf;
    for (const GCube& c : f) cf.push_back(gcube_minus(c, common));
    gcover_normalize(&cf);
    if (cf.size() >= 2) kernels.insert(cf);
  }
  std::vector<Cover> out;
  for (const GCover& k : kernels) {
    BoolNetwork::Node tmp;
    from_gcover(k, &tmp);
    // Re-expand to the original variable count for caller convenience.
    Cover wide(cover.num_vars());
    for (const Cube& c : tmp.cover.cubes()) {
      Cube wc(cover.num_vars());
      for (int v = 0; v < c.num_vars(); ++v)
        wc.set_lit(static_cast<int>(tmp.fanins[static_cast<std::size_t>(v)]),
                   c.lit(v));
      wide.add(std::move(wc));
    }
    out.push_back(std::move(wide));
  }
  return out;
}

bool algebraic_divide(const Cover& f, const Cover& d, Cover* quotient,
                      Cover* remainder) {
  POWDER_CHECK(f.num_vars() == d.num_vars());
  BoolNetwork::Node nf, nd;
  nf.cover = f;
  nd.cover = d;
  for (int v = 0; v < f.num_vars(); ++v) {
    nf.fanins.push_back(static_cast<BnId>(v));
    nd.fanins.push_back(static_cast<BnId>(v));
  }
  GCover q, r;
  if (!gcover_divide(to_gcover(nf), to_gcover(nd), &q, &r)) return false;
  auto widen = [&](const GCover& g) {
    Cover wide(f.num_vars());
    for (const GCube& c : g) {
      Cube wc(f.num_vars());
      for (int l : c)
        wc.set_lit(l / 2, (l & 1) ? Lit::kZero : Lit::kOne);
      wide.add(std::move(wc));
    }
    return wide;
  };
  *quotient = widen(q);
  *remainder = widen(r);
  return true;
}

// ---------------------------------------------------------------------------
// Greedy extraction
// ---------------------------------------------------------------------------

ExtractReport extract_divisors(BoolNetwork* network,
                               const ExtractOptions& options) {
  POWDER_CHECK(network != nullptr);
  ExtractReport report;
  report.literals_before = network->total_literals();

  for (int round = 0; round < options.max_rounds; ++round) {
    // Gather node functions in global-cube form.
    std::vector<BnId> internal;
    std::vector<GCover> funcs;
    for (BnId n = 0; n < network->num_nodes(); ++n) {
      if (network->node(n).is_input) continue;
      internal.push_back(n);
      funcs.push_back(to_gcover(network->node(n)));
    }

    // Candidate divisors: kernels of every node, plus multi-literal cubes.
    std::set<GCover> candidates;
    for (const GCover& f : funcs) {
      std::set<GCover> ks;
      kernels_rec(f, 0, options.max_kernels_per_node, &ks);
      candidates.insert(ks.begin(), ks.end());
      for (const GCube& c : f)
        if (c.size() >= 2) candidates.insert(GCover{c});
    }

    // Evaluate each candidate by exact literal delta.
    const GCover* best = nullptr;
    int best_saving = options.min_literal_saving - 1;
    std::vector<std::uint8_t> best_uses;
    for (const GCover& d : candidates) {
      int saving = -gcover_literals(d);  // cost of the new node
      std::vector<std::uint8_t> uses(funcs.size(), 0);
      int nuses = 0;
      for (std::size_t i = 0; i < funcs.size(); ++i) {
        GCover q, r;
        if (!gcover_divide(funcs[i], d, &q, &r)) continue;
        if (d.size() == 1 && funcs[i].size() == 1) continue;  // no-op split
        // After substitution: cubes {q+t} plus r.
        const int new_lits = gcover_literals(q) + static_cast<int>(q.size()) +
                             gcover_literals(r);
        const int delta = gcover_literals(funcs[i]) - new_lits;
        if (delta > 0) {
          saving += delta;
          uses[i] = 1;
          ++nuses;
        }
      }
      // A divisor used once only re-shuffles literals; require sharing or
      // a genuinely large single-use saving.
      if (nuses < 2) continue;
      if (saving > best_saving) {
        best_saving = saving;
        best = &d;
        best_uses = std::move(uses);
      }
    }
    if (best == nullptr) break;

    // Materialize the divisor as a new node and substitute.
    BoolNetwork::Node divisor_node;
    from_gcover(*best, &divisor_node);
    const BnId t = network->add_node(std::move(divisor_node.fanins),
                                     std::move(divisor_node.cover));
    const int t_lit = 2 * static_cast<int>(t);
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      if (!best_uses[i]) continue;
      GCover q, r;
      POWDER_CHECK(gcover_divide(funcs[i], *best, &q, &r));
      GCover rewritten = std::move(r);
      for (const GCube& qc : q) {
        GCube c = qc;
        c.insert(std::lower_bound(c.begin(), c.end(), t_lit), t_lit);
        rewritten.push_back(std::move(c));
      }
      gcover_normalize(&rewritten);
      from_gcover(rewritten, &network->node(internal[i]));
    }
    ++report.divisors_extracted;
  }

  report.literals_after = network->total_literals();
  return report;
}

}  // namespace powder
