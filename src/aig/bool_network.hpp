#pragma once
// A multi-level Boolean network: nodes carry a sum-of-products over their
// fanins (the classic SIS network model). Used by the technology-
// independent front end for algebraic extraction of shared divisors —
// the "logic optimization" box of the paper's Figure 1 that POSE covers
// with [6, 7].
//
// The network is deliberately simple: enough to express extraction and to
// lower into the AIG for mapping, not a full SIS replacement.

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "logic/cube.hpp"
#include "logic/sop_network.hpp"

namespace powder {

using BnId = std::uint32_t;
inline constexpr BnId kBnNull = static_cast<BnId>(-1);

class BoolNetwork {
 public:
  struct Node {
    std::string name;
    bool is_input = false;
    std::vector<BnId> fanins;  ///< variables of `cover`, in order
    Cover cover;               ///< over fanins.size() variables
  };

  BoolNetwork() = default;

  BnId add_input(std::string name);
  BnId add_node(std::vector<BnId> fanins, Cover cover, std::string name = "");
  void add_output(BnId node, std::string name);

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(BnId id) const { return nodes_[id]; }
  Node& node(BnId id) { return nodes_[id]; }
  const std::vector<BnId>& inputs() const { return inputs_; }
  const std::vector<BnId>& outputs() const { return outputs_; }
  const std::string& output_name(int i) const {
    return output_names_[static_cast<std::size_t>(i)];
  }

  /// Total literal count over all internal nodes (the extraction metric).
  int total_literals() const;

  /// Nodes in topological order (inputs first).
  std::vector<BnId> topo_order() const;

  /// Lowers the network into an AIG (factoring every node cover).
  Aig to_aig(const std::string& name = "bn") const;

  /// Builds a flat (two-level) network from a SopNetwork.
  static BoolNetwork from_sop(const SopNetwork& sop);

 private:
  std::vector<Node> nodes_;
  std::vector<BnId> inputs_;
  std::vector<BnId> outputs_;
  std::vector<std::string> output_names_;
  std::uint64_t name_counter_ = 0;
};

// ---- algebraic extraction --------------------------------------------------

struct ExtractOptions {
  int max_rounds = 64;        ///< divisor extractions performed at most
  int max_kernels_per_node = 24;
  int min_literal_saving = 1;
};

struct ExtractReport {
  int divisors_extracted = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Greedy shared-divisor extraction (kernels and cubes) across all nodes.
/// Strictly reduces the literal count; preserves all output functions.
ExtractReport extract_divisors(BoolNetwork* network,
                               const ExtractOptions& options = {});

/// All kernels of `cover` (cube-free quotients by cube divisors), capped.
/// The trivial kernel (the cover itself, when cube-free) is included.
std::vector<Cover> compute_kernels(const Cover& cover, int max_kernels);

/// Algebraic division F / D. Returns true and fills quotient/remainder
/// when the quotient is non-empty.
bool algebraic_divide(const Cover& f, const Cover& d, Cover* quotient,
                      Cover* remainder);

}  // namespace powder
