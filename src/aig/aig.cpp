#include "aig/aig.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

Aig::Aig(std::string name) : name_(std::move(name)) {
  nodes_.push_back(Node{});  // constant-0 node
}

AigLit Aig::add_input(std::string name) {
  POWDER_CHECK_MSG(nodes_.size() == inputs_.size() + 1,
                   "inputs must be added before AND nodes");
  const std::uint32_t node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  const AigLit lit = aig_lit(node, false);
  inputs_.push_back(lit);
  input_names_.push_back(name.empty() ? "pi" + std::to_string(inputs_.size())
                                      : std::move(name));
  return lit;
}

void Aig::add_output(AigLit lit, std::string name) {
  POWDER_CHECK(aig_node(lit) < nodes_.size());
  outputs_.push_back(lit);
  output_names_.push_back(name.empty() ? "po" + std::to_string(outputs_.size())
                                       : std::move(name));
}

int Aig::num_ands() const {
  return static_cast<int>(nodes_.size() - 1 - inputs_.size());
}

AigLit Aig::land(AigLit a, AigLit b) {
  // Trivial simplifications.
  if (a == kAigFalse || b == kAigFalse) return kAigFalse;
  if (a == kAigTrue) return b;
  if (b == kAigTrue) return a;
  if (a == b) return a;
  if (a == aig_not(b)) return kAigFalse;
  if (a > b) std::swap(a, b);  // canonical operand order

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
  auto& chain = strash_[h];
  for (std::uint32_t n : chain)
    if (nodes_[n].fan0 == a && nodes_[n].fan1 == b) return aig_lit(n, false);

  const std::uint32_t node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  chain.push_back(node);
  return aig_lit(node, false);
}

AigLit Aig::lxor(AigLit a, AigLit b) {
  // a ^ b = !(!(a !b) !( !a b))
  return aig_not(land(aig_not(land(a, aig_not(b))),
                      aig_not(land(aig_not(a), b))));
}

AigLit Aig::lmux(AigLit sel, AigLit t, AigLit e) {
  return aig_not(land(aig_not(land(sel, t)), aig_not(land(aig_not(sel), e))));
}

AigLit Aig::land_many(const std::vector<AigLit>& lits) {
  if (lits.empty()) return kAigTrue;
  // Balanced reduction keeps depth logarithmic.
  std::vector<AigLit> level = lits;
  while (level.size() > 1) {
    std::vector<AigLit> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(land(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

AigLit Aig::lor_many(std::vector<AigLit> lits) {
  for (AigLit& l : lits) l = aig_not(l);
  return aig_not(land_many(lits));
}

AigLit Aig::from_factor(const FactorNode& node,
                        const std::vector<AigLit>& var_lits) {
  switch (node.kind) {
    case FactorNode::Kind::kConst0: return kAigFalse;
    case FactorNode::Kind::kConst1: return kAigTrue;
    case FactorNode::Kind::kLiteral: {
      const AigLit v = var_lits[static_cast<std::size_t>(node.var)];
      return node.complemented ? aig_not(v) : v;
    }
    case FactorNode::Kind::kAnd: {
      std::vector<AigLit> parts;
      parts.reserve(node.children.size());
      for (const auto& c : node.children)
        parts.push_back(from_factor(*c, var_lits));
      return land_many(parts);
    }
    case FactorNode::Kind::kOr: {
      std::vector<AigLit> parts;
      parts.reserve(node.children.size());
      for (const auto& c : node.children)
        parts.push_back(from_factor(*c, var_lits));
      return lor_many(std::move(parts));
    }
  }
  POWDER_CHECK(false);
}

AigLit Aig::from_cover(const Cover& cover, const std::vector<AigLit>& var_lits) {
  const auto factored = quick_factor(cover);
  return from_factor(*factored, var_lits);
}

std::vector<TruthTable> Aig::output_truth_tables() const {
  POWDER_CHECK_MSG(num_inputs() <= 20, "exhaustive evaluation too wide");
  const int n = num_inputs();
  // Bit-parallel over 64-pattern words.
  const std::uint64_t total = 1ull << n;
  const std::size_t words = static_cast<std::size_t>((total + 63) / 64);
  std::vector<std::vector<std::uint64_t>> val(
      nodes_.size(), std::vector<std::uint64_t>(words, 0));
  for (int i = 0; i < n; ++i) {
    auto& v = val[aig_node(inputs_[static_cast<std::size_t>(i)])];
    for (std::uint64_t m = 0; m < words * 64; ++m)
      if (((m & (total - 1)) >> i) & 1) v[m >> 6] |= 1ull << (m & 63);
  }
  for (std::uint32_t node = static_cast<std::uint32_t>(inputs_.size()) + 1;
       node < nodes_.size(); ++node) {
    const Node& nd = nodes_[node];
    const auto& v0 = val[aig_node(nd.fan0)];
    const auto& v1 = val[aig_node(nd.fan1)];
    auto& out = val[node];
    const bool c0 = aig_is_complemented(nd.fan0);
    const bool c1 = aig_is_complemented(nd.fan1);
    for (std::size_t w = 0; w < words; ++w)
      out[w] = (c0 ? ~v0[w] : v0[w]) & (c1 ? ~v1[w] : v1[w]);
  }
  std::vector<TruthTable> result;
  result.reserve(outputs_.size());
  for (AigLit o : outputs_) {
    TruthTable t(n);
    const auto& v = val[aig_node(o)];
    for (std::uint64_t m = 0; m < total; ++m) {
      bool bit = (v[m >> 6] >> (m & 63)) & 1;
      if (aig_is_complemented(o)) bit = !bit;
      t.set_bit(m, bit);
    }
    result.push_back(std::move(t));
  }
  return result;
}

int Aig::live_and_count() const {
  std::vector<std::uint8_t> seen(nodes_.size(), 0);
  std::vector<std::uint32_t> stack;
  for (AigLit o : outputs_) {
    const std::uint32_t n = aig_node(o);
    if (!seen[n]) {
      seen[n] = 1;
      stack.push_back(n);
    }
  }
  int count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!is_and(n)) continue;
    ++count;
    for (AigLit f : {nodes_[n].fan0, nodes_[n].fan1}) {
      const std::uint32_t fn = aig_node(f);
      if (!seen[fn]) {
        seen[fn] = 1;
        stack.push_back(fn);
      }
    }
  }
  return count;
}

}  // namespace powder
