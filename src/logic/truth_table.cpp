#include "logic/truth_table.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/check.hpp"

namespace powder {

namespace {
// Masks selecting the bits where variable v (v < 6) is 0, within one word.
constexpr std::uint64_t kVarMask0[6] = {
    0x5555555555555555ull, 0x3333333333333333ull, 0x0F0F0F0F0F0F0F0Full,
    0x00FF00FF00FF00FFull, 0x0000FFFF0000FFFFull, 0x00000000FFFFFFFFull,
};

std::size_t word_count(int num_vars) {
  return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}
}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  POWDER_CHECK(num_vars >= 0 && num_vars <= kMaxVars);
  words_.assign(word_count(num_vars), 0);
}

void TruthTable::mask_tail() {
  if (num_vars_ < 6) words_[0] &= (1ull << (1u << num_vars_)) - 1;
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    std::fill(t.words_.begin(), t.words_.end(), ~0ull);
    t.mask_tail();
  }
  return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  POWDER_CHECK(var >= 0 && var < num_vars);
  TruthTable t(num_vars);
  if (var < 6) {
    for (auto& w : t.words_) w = ~kVarMask0[var];
  } else {
    // Variable >= 6 selects whole words.
    const std::size_t period = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i)
      if (i & period) t.words_[i] = ~0ull;
  }
  t.mask_tail();
  return t;
}

void TruthTable::set_bit(std::uint64_t minterm, bool value) {
  POWDER_DCHECK(minterm < num_minterms_capacity());
  if (value)
    words_[minterm >> 6] |= 1ull << (minterm & 63);
  else
    words_[minterm >> 6] &= ~(1ull << (minterm & 63));
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

bool TruthTable::is_constant(bool value) const {
  return *this == constant(num_vars_, value);
}

bool TruthTable::depends_on(int var) const {
  return cofactor(var, false) != cofactor(var, true);
}

TruthTable TruthTable::operator~() const {
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] = ~words_[i];
  t.mask_tail();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  POWDER_CHECK(num_vars_ == o.num_vars_);
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    t.words_[i] = words_[i] & o.words_[i];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  POWDER_CHECK(num_vars_ == o.num_vars_);
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    t.words_[i] = words_[i] | o.words_[i];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  POWDER_CHECK(num_vars_ == o.num_vars_);
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    t.words_[i] = words_[i] ^ o.words_[i];
  return t;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  POWDER_CHECK(var >= 0 && var < num_vars_);
  TruthTable t(num_vars_);
  if (var < 6) {
    const std::uint64_t m0 = kVarMask0[var];
    const int shift = 1 << var;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i];
      std::uint64_t half;
      if (value)
        half = (w >> shift) & m0;  // bits where var==1, moved to var==0 slots
      else
        half = w & m0;
      t.words_[i] = half | (half << shift);
    }
  } else {
    const std::size_t period = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::size_t src = value ? (i | period) : (i & ~period);
      t.words_[i] = words_[src];
    }
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::flip_var(int var) const {
  TruthTable c0 = cofactor(var, false);
  TruthTable c1 = cofactor(var, true);
  // f' = var ? c0 : c1
  TruthTable v = variable(num_vars_, var);
  return (v & c0) | (~v & c1);
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
  POWDER_CHECK(static_cast<int>(perm.size()) == num_vars_);
  TruthTable t(num_vars_);
  const std::uint64_t n = num_minterms_capacity();
  for (std::uint64_t m = 0; m < n; ++m) {
    if (!bit(m)) continue;
    // Minterm m assigns old input j the bit (m >> j) & 1. In the permuted
    // function, new input i plays the role of old input perm[i].
    std::uint64_t pm = 0;
    for (int i = 0; i < num_vars_; ++i)
      if ((m >> perm[i]) & 1) pm |= 1ull << i;
    t.set_bit(pm, true);
  }
  return t;
}

TruthTable TruthTable::extended(int new_num_vars) const {
  POWDER_CHECK(new_num_vars >= num_vars_ && new_num_vars <= kMaxVars);
  TruthTable t(new_num_vars);
  const std::uint64_t n = t.num_minterms_capacity();
  const std::uint64_t mask = num_minterms_capacity() - 1;
  for (std::uint64_t m = 0; m < n; ++m) t.set_bit(m, bit(m & mask));
  return t;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (auto it = words_.rbegin(); it != words_.rend(); ++it)
    for (int nib = 15; nib >= 0; --nib)
      s.push_back(digits[(*it >> (4 * nib)) & 0xF]);
  return s;
}

std::string TruthTable::npn_canonical_key() const {
  POWDER_CHECK_MSG(num_vars_ <= 6, "NPN canonicalization is exhaustive");
  std::vector<int> perm(num_vars_);
  std::iota(perm.begin(), perm.end(), 0);
  std::string best;
  do {
    TruthTable p = permute(perm);
    for (std::uint32_t phases = 0; phases < (1u << num_vars_); ++phases) {
      TruthTable q = p;
      for (int v = 0; v < num_vars_; ++v)
        if ((phases >> v) & 1) q = q.flip_var(v);
      for (int out = 0; out < 2; ++out) {
        const std::string key = out ? (~q).to_hex() : q.to_hex();
        if (best.empty() || key < best) best = key;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace powder
