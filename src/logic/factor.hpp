#pragma once
// Algebraic factoring of single-output covers ("quick factor").
//
// Produces a factored expression tree which the synthesis front end turns
// into a multi-level subject graph. Factoring quality directly controls the
// quality of the initial mapped circuits (the POSE substitute in this
// reproduction), but not the correctness of the POWDER optimizer itself.

#include <memory>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace powder {

/// Node of a factored form. Leaves are literals; internal nodes are n-ary
/// AND/OR. Constants appear only as a whole-tree result.
struct FactorNode {
  enum class Kind { kConst0, kConst1, kLiteral, kAnd, kOr };

  Kind kind = Kind::kConst0;
  int var = -1;              // for kLiteral
  bool complemented = false; // for kLiteral
  std::vector<std::unique_ptr<FactorNode>> children;

  static std::unique_ptr<FactorNode> constant(bool value);
  static std::unique_ptr<FactorNode> literal(int var, bool complemented);

  /// Number of literal leaves — the classic factored-form cost.
  int num_literals() const;

  /// Rebuilds the function for verification.
  TruthTable to_truth_table(int num_vars) const;

  /// Human-readable form, e.g. "(a' b + c) d".
  std::string to_string(const std::vector<std::string>& var_names) const;
};

/// Factors the cover. The result computes exactly the cover's function.
std::unique_ptr<FactorNode> quick_factor(const Cover& cover);

}  // namespace powder
