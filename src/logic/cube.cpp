#include "logic/cube.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

Cube Cube::parse(std::string_view pla) {
  Cube c(static_cast<int>(pla.size()));
  for (std::size_t i = 0; i < pla.size(); ++i) {
    switch (pla[i]) {
      case '0': c.lits_[i] = Lit::kZero; break;
      case '1': c.lits_[i] = Lit::kOne; break;
      case '-':
      case '2': c.lits_[i] = Lit::kDash; break;
      default: POWDER_CHECK_MSG(false, "bad PLA literal '" << pla[i] << "'");
    }
  }
  return c;
}

int Cube::num_literals() const {
  int n = 0;
  for (Lit l : lits_)
    if (l != Lit::kDash) ++n;
  return n;
}

bool Cube::contains(const Cube& o) const {
  POWDER_DCHECK(num_vars() == o.num_vars());
  for (int v = 0; v < num_vars(); ++v)
    if (lits_[v] != Lit::kDash && lits_[v] != o.lits_[v]) return false;
  return true;
}

int Cube::distance(const Cube& o) const {
  POWDER_DCHECK(num_vars() == o.num_vars());
  int d = 0;
  for (int v = 0; v < num_vars(); ++v) {
    const Lit a = lits_[v], b = o.lits_[v];
    if (a != Lit::kDash && b != Lit::kDash && a != b) ++d;
  }
  return d;
}

Cube Cube::consensus(const Cube& o) const {
  POWDER_DCHECK(distance(o) == 1);
  Cube c(num_vars());
  for (int v = 0; v < num_vars(); ++v) {
    const Lit a = lits_[v], b = o.lits_[v];
    if (a == b)
      c.lits_[v] = a;
    else if (a == Lit::kDash)
      c.lits_[v] = b;
    else if (b == Lit::kDash)
      c.lits_[v] = a;
    else
      c.lits_[v] = Lit::kDash;  // the conflicting variable drops out
  }
  return c;
}

bool Cube::covers_minterm(std::uint64_t minterm) const {
  for (int v = 0; v < num_vars(); ++v) {
    const bool bit = (minterm >> v) & 1;
    if (lits_[v] == Lit::kZero && bit) return false;
    if (lits_[v] == Lit::kOne && !bit) return false;
  }
  return true;
}

TruthTable Cube::to_truth_table(int num_vars) const {
  POWDER_CHECK(num_vars >= this->num_vars());
  TruthTable t = TruthTable::constant(num_vars, true);
  for (int v = 0; v < this->num_vars(); ++v) {
    if (lits_[v] == Lit::kOne)
      t = t & TruthTable::variable(num_vars, v);
    else if (lits_[v] == Lit::kZero)
      t = t & ~TruthTable::variable(num_vars, v);
  }
  return t;
}

std::string Cube::to_pla() const {
  std::string s;
  s.reserve(lits_.size());
  for (Lit l : lits_)
    s.push_back(l == Lit::kZero ? '0' : (l == Lit::kOne ? '1' : '-'));
  return s;
}

int Cover::num_literals() const {
  int n = 0;
  for (const Cube& c : cubes_) n += c.num_literals();
  return n;
}

void Cover::add(Cube c) {
  POWDER_CHECK(c.num_vars() == num_vars_);
  cubes_.push_back(std::move(c));
}

TruthTable Cover::to_truth_table() const {
  POWDER_CHECK(num_vars_ <= TruthTable::kMaxVars);
  TruthTable t(num_vars_);
  for (const Cube& c : cubes_) t = t | c.to_truth_table(num_vars_);
  return t;
}

Cover Cover::from_truth_table(const TruthTable& t) {
  Cover c(t.num_vars());
  for (std::uint64_t m = 0; m < t.num_minterms_capacity(); ++m) {
    if (!t.bit(m)) continue;
    Cube cube(t.num_vars());
    for (int v = 0; v < t.num_vars(); ++v)
      cube.set_lit(v, ((m >> v) & 1) ? Lit::kOne : Lit::kZero);
    c.add(std::move(cube));
  }
  c.minimize();
  return c;
}

namespace {
/// Recursion for tautology checking: all cubes restricted to a subcube.
bool tautology_rec(const std::vector<Cube>& cubes, Cube context, int depth) {
  // A cube of all dashes within the context makes it a tautology.
  for (const Cube& c : cubes) {
    bool all_dash = true;
    for (int v = 0; v < c.num_vars(); ++v) {
      if (c.lit(v) != Lit::kDash && context.lit(v) == Lit::kDash) {
        all_dash = false;
        break;
      }
    }
    if (all_dash) return true;
  }
  // Pick the most constrained variable to split on.
  const int n = context.num_vars();
  int best_var = -1, best_count = -1;
  for (int v = 0; v < n; ++v) {
    if (context.lit(v) != Lit::kDash) continue;
    int count = 0;
    for (const Cube& c : cubes)
      if (c.lit(v) != Lit::kDash) ++count;
    if (count > best_count) {
      best_count = count;
      best_var = v;
    }
  }
  if (best_var < 0) return !cubes.empty();  // no free variable left
  if (best_count == 0) {
    // No cube constrains any free variable: cover is a tautology iff any
    // cube survives (it would be all-dash on free vars — handled above),
    // so reaching here means no.
    return false;
  }
  (void)depth;
  for (int phase = 0; phase < 2; ++phase) {
    std::vector<Cube> sub;
    sub.reserve(cubes.size());
    const Lit want = phase ? Lit::kOne : Lit::kZero;
    for (const Cube& c : cubes) {
      if (c.lit(best_var) == Lit::kDash || c.lit(best_var) == want)
        sub.push_back(c);
    }
    Cube ctx = context;
    ctx.set_lit(best_var, want);
    if (!tautology_rec(sub, ctx, depth + 1)) return false;
  }
  return true;
}
}  // namespace

bool Cover::is_tautology() const {
  if (cubes_.empty()) return num_vars_ == 0 ? false : false;
  return tautology_rec(cubes_, Cube(num_vars_), 0);
}

bool Cover::covers_cube(const Cube& c) const {
  // c => cover  iff  cover cofactored by c is a tautology.
  std::vector<Cube> cof;
  for (const Cube& q : cubes_) {
    if (q.distance(c) > 0) continue;  // disjoint from c
    Cube r(num_vars_);
    bool ok = true;
    for (int v = 0; v < num_vars_; ++v) {
      if (c.lit(v) != Lit::kDash) {
        // Inside c this variable is fixed; q must be compatible (checked by
        // distance) and the literal drops out.
        r.set_lit(v, Lit::kDash);
      } else {
        r.set_lit(v, q.lit(v));
      }
    }
    (void)ok;
    cof.push_back(std::move(r));
  }
  if (cof.empty()) return false;
  // Tautology over the free variables of c only; fixed vars are all dash in
  // cof, so the generic check works directly.
  Cover tmp(num_vars_);
  tmp.cubes_ = std::move(cof);
  return tmp.is_tautology();
}

void Cover::remove_contained() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      if (cubes_[j].contains(cubes_[i])) {
        // Break ties (equal cubes) by index so exactly one survives.
        contained = !cubes_[i].contains(cubes_[j]) || j < i;
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

bool Cover::merge_distance_one() {
  bool changed = false;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    for (std::size_t j = i + 1; j < cubes_.size(); ++j) {
      if (cubes_[i].distance(cubes_[j]) != 1) continue;
      const Cube cons = cubes_[i].consensus(cubes_[j]);
      // Safe merge: only if the consensus covers both parents
      // (i.e. they differ in exactly the one conflicting literal).
      if (cons.contains(cubes_[i]) && cons.contains(cubes_[j])) {
        cubes_[i] = cons;
        cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
        --j;
      }
    }
  }
  return changed;
}

bool Cover::expand_literals() {
  // Try to drop literals from each cube; a literal may be dropped when the
  // expanded cube is still covered by the full cover (so the ON-set is
  // unchanged — the expansion only absorbs already-covered minterms).
  bool changed = false;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    for (int v = 0; v < num_vars_; ++v) {
      if (cubes_[i].lit(v) == Lit::kDash) continue;
      Cube expanded = cubes_[i];
      expanded.set_lit(v, Lit::kDash);
      if (covers_cube(expanded)) {
        cubes_[i] = expanded;
        changed = true;
      }
    }
  }
  return changed;
}

void Cover::make_irredundant() {
  // Remove cubes covered by the union of the others, one at a time.
  for (std::size_t i = 0; i < cubes_.size();) {
    Cover rest(num_vars_);
    for (std::size_t j = 0; j < cubes_.size(); ++j)
      if (j != i) rest.cubes_.push_back(cubes_[j]);
    if (rest.covers_cube(cubes_[i]))
      cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
}

void Cover::minimize() {
  remove_contained();
  for (int round = 0; round < 8; ++round) {
    bool changed = merge_distance_one();
    changed |= expand_literals();
    remove_contained();
    if (!changed) break;
  }
  make_irredundant();
}

void Cover::minimize_with_dc(const Cover& dc) {
  POWDER_CHECK(dc.num_vars() == num_vars_);
  const std::vector<Cube> on_set = cubes_;  // must stay covered

  remove_contained();
  for (int round = 0; round < 8; ++round) {
    bool changed = merge_distance_one();
    // Expansion against ON ∪ DC.
    {
      Cover combined = *this;
      for (const Cube& c : dc.cubes()) combined.cubes_.push_back(c);
      for (std::size_t i = 0; i < cubes_.size(); ++i) {
        for (int v = 0; v < num_vars_; ++v) {
          if (cubes_[i].lit(v) == Lit::kDash) continue;
          Cube expanded = cubes_[i];
          expanded.set_lit(v, Lit::kDash);
          if (combined.covers_cube(expanded)) {
            combined.cubes_[i] = expanded;
            cubes_[i] = expanded;
            changed = true;
          }
        }
      }
    }
    remove_contained();
    if (!changed) break;
  }

  // Irredundant with respect to the original ON-set only: a cube may go
  // when every original on-cube stays covered by the remaining cover.
  for (std::size_t i = 0; i < cubes_.size();) {
    Cover rest(num_vars_);
    for (std::size_t j = 0; j < cubes_.size(); ++j)
      if (j != i) rest.cubes_.push_back(cubes_[j]);
    bool removable = true;
    for (const Cube& f : on_set)
      if (!rest.covers_cube(f)) {
        removable = false;
        break;
      }
    if (removable)
      cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
}

}  // namespace powder
