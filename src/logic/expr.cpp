#include "logic/expr.hpp"

#include <algorithm>
#include <cctype>

#include "util/check.hpp"

namespace powder {

namespace {

// Two-pass approach: first collect input names in order of appearance, then
// evaluate the expression over truth tables of the right width.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParsedExpr run() {
    collect_names();
    pos_ = 0;
    ParsedExpr out;
    out.input_names = names_;
    out.function = parse_or();
    skip_ws();
    POWDER_CHECK_MSG(pos_ == text_.size(),
                     "trailing characters in expression: " << text_);
    return out;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::vector<std::string> names_;

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])))
      ++pos_;
  }

  bool is_ident_char(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '[' || c == ']' || c == '.';
  }

  void collect_names() {
    pos_ = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = pos_;
        while (j < text_.size() && is_ident_char(text_[j])) ++j;
        std::string name(text_.substr(pos_, j - pos_));
        if (name != "CONST0" && name != "CONST1" &&
            std::find(names_.begin(), names_.end(), name) == names_.end())
          names_.push_back(name);
        pos_ = j;
      } else {
        ++pos_;
      }
    }
    POWDER_CHECK_MSG(names_.size() <= TruthTable::kMaxVars,
                     "too many inputs in expression: " << text_);
  }

  int var_index(std::string_view name) const {
    const auto it = std::find(names_.begin(), names_.end(), name);
    POWDER_CHECK(it != names_.end());
    return static_cast<int>(it - names_.begin());
  }

  int n() const { return static_cast<int>(names_.size()); }

  TruthTable parse_or() {
    TruthTable t = parse_xor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        t = t | parse_xor();
      } else {
        return t;
      }
    }
  }

  TruthTable parse_xor() {
    TruthTable t = parse_and();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        t = t ^ parse_and();
      } else {
        return t;
      }
    }
  }

  bool at_factor_start() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return c == '(' || c == '!' || c == '0' || c == '1' ||
           std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }

  TruthTable parse_and() {
    TruthTable t = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        t = t & parse_factor();
      } else if (at_factor_start()) {
        t = t & parse_factor();  // juxtaposition
      } else {
        return t;
      }
    }
  }

  TruthTable parse_factor() {
    skip_ws();
    POWDER_CHECK_MSG(pos_ < text_.size(), "unexpected end of expression");
    TruthTable t;
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      t = ~parse_factor();
    } else if (c == '(') {
      ++pos_;
      t = parse_or();
      skip_ws();
      POWDER_CHECK_MSG(pos_ < text_.size() && text_[pos_] == ')',
                       "missing ')' in expression: " << text_);
      ++pos_;
    } else if (c == '0') {
      ++pos_;
      t = TruthTable::constant(n(), false);
    } else if (c == '1') {
      ++pos_;
      t = TruthTable::constant(n(), true);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = pos_;
      while (j < text_.size() && is_ident_char(text_[j])) ++j;
      const std::string name(text_.substr(pos_, j - pos_));
      pos_ = j;
      if (name == "CONST0")
        t = TruthTable::constant(n(), false);
      else if (name == "CONST1")
        t = TruthTable::constant(n(), true);
      else
        t = TruthTable::variable(n(), var_index(name));
    } else {
      POWDER_CHECK_MSG(false, "unexpected character '" << c
                                                       << "' in expression");
    }
    // Postfix '
    skip_ws();
    while (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      t = ~t;
      skip_ws();
    }
    return t;
  }
};

}  // namespace

ParsedExpr parse_boolean_expr(std::string_view text) {
  return Parser(text).run();
}

}  // namespace powder
