#pragma once
// A multi-output two-level specification (PLA-style): the input format of
// the synthesis front end.

#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace powder {

struct SopNetwork {
  std::string name = "circuit";
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<Cover> outputs;  ///< one cover per output, over the inputs
  /// Optional external don't-care sets (espresso 'fd' semantics): either
  /// empty, or one cover per output. Synthesis may implement any function
  /// between outputs[o] and outputs[o] ∪ dc_sets[o].
  std::vector<Cover> dc_sets;

  int num_inputs() const { return static_cast<int>(input_names.size()); }
  int num_outputs() const { return static_cast<int>(outputs.size()); }
  bool has_dc() const { return !dc_sets.empty(); }
};

}  // namespace powder
