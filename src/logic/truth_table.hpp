#pragma once
// Dense truth tables over a small number of variables.
//
// Used for: library-cell functions (≤ 8 inputs), cut functions during
// technology mapping (≤ 6 inputs), exhaustive functional verification of
// small circuits in tests (≤ 16 inputs).

#include <cstdint>
#include <string>
#include <vector>

namespace powder {

/// A completely specified Boolean function of `num_vars()` variables,
/// stored as a bit vector of 2^n minterm values (variable 0 is the fastest
/// toggling input, i.e. bit i of the table is f(i_0, i_1, ...)).
class TruthTable {
 public:
  static constexpr int kMaxVars = 16;

  TruthTable() = default;
  /// Constant-zero function of `num_vars` variables.
  explicit TruthTable(int num_vars);

  static TruthTable constant(int num_vars, bool value);
  /// Projection onto variable `var`.
  static TruthTable variable(int num_vars, int var);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms_capacity() const { return 1ull << num_vars_; }

  bool bit(std::uint64_t minterm) const {
    return (words_[minterm >> 6] >> (minterm & 63)) & 1;
  }
  void set_bit(std::uint64_t minterm, bool value);

  /// Number of minterms where the function is 1.
  std::uint64_t count_ones() const;

  bool is_constant(bool value) const;

  /// Does the function depend on `var` at all?
  bool depends_on(int var) const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  bool operator==(const TruthTable& o) const = default;

  /// Positive/negative cofactor with respect to `var` (result keeps the same
  /// variable count; the cofactored variable becomes irrelevant).
  TruthTable cofactor(int var, bool value) const;

  /// Returns f with its inputs permuted: new input i feeds old input
  /// `perm[i]`. `perm` must be a permutation of 0..n-1.
  TruthTable permute(const std::vector<int>& perm) const;

  /// Returns f with input `var` complemented.
  TruthTable flip_var(int var) const;

  /// Evaluate under a full assignment packed into the low bits of `input`.
  bool evaluate(std::uint64_t input) const { return bit(input); }

  /// Extends the function to `new_num_vars` (added variables are don't
  /// cares). new_num_vars must be >= num_vars().
  TruthTable extended(int new_num_vars) const;

  /// Canonical form under input complementation and permutation plus output
  /// complementation (NPN). Exhaustive over permutations — intended for
  /// n <= 6. Returned string is a stable key usable for hashing.
  std::string npn_canonical_key() const;

  /// Hex dump, most significant word first; stable across runs.
  std::string to_hex() const;

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  int num_vars_ = 0;
  std::vector<std::uint64_t> words_;  // ceil(2^n / 64) words, tail bits zero.

  void mask_tail();
};

}  // namespace powder
