#pragma once
// Cubes and single-output covers (SOPs) for two-level minimization.
//
// A cube assigns each input variable one of {0, 1, -}. Covers are kept
// small by an espresso-style loop of containment removal, distance-1
// merging, and literal expansion against the cover itself.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.hpp"

namespace powder {

/// Per-variable literal value inside a cube.
enum class Lit : std::uint8_t { kZero = 0, kOne = 1, kDash = 2 };

/// A product term over n variables.
class Cube {
 public:
  Cube() = default;
  explicit Cube(int num_vars) : lits_(num_vars, Lit::kDash) {}
  /// Parses PLA notation, e.g. "1-0" => x0 & !x2.
  static Cube parse(std::string_view pla);

  int num_vars() const { return static_cast<int>(lits_.size()); }
  Lit lit(int v) const { return lits_[v]; }
  void set_lit(int v, Lit l) { lits_[v] = l; }

  int num_literals() const;

  /// True if this cube's minterm set contains `o`'s.
  bool contains(const Cube& o) const;

  /// Number of variables where the cubes have opposing literals (0 vs 1).
  int distance(const Cube& o) const;

  /// True if the cubes share at least one minterm.
  bool intersects(const Cube& o) const { return distance(o) == 0; }

  /// Consensus on the unique conflicting variable of two distance-1 cubes.
  Cube consensus(const Cube& o) const;

  /// True if the cube evaluates to 1 under the given minterm.
  bool covers_minterm(std::uint64_t minterm) const;

  TruthTable to_truth_table(int num_vars) const;

  std::string to_pla() const;

  bool operator==(const Cube& o) const = default;

 private:
  std::vector<Lit> lits_;
};

/// A sum of products over a fixed variable count.
class Cover {
 public:
  Cover() = default;
  explicit Cover(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  int num_cubes() const { return static_cast<int>(cubes_.size()); }
  int num_literals() const;

  void add(Cube c);

  TruthTable to_truth_table() const;
  static Cover from_truth_table(const TruthTable& t);

  /// True if the cover is a tautology (covers every minterm). Uses
  /// Shannon-expansion recursion, so it works for wide covers.
  bool is_tautology() const;

  /// True if cube `c` is covered by this cover (c => cover).
  bool covers_cube(const Cube& c) const;

  /// Espresso-lite: containment removal + distance-1 merge + per-cube
  /// literal expansion + irredundant pass, iterated to a fixed point.
  /// Preserves the ON-set exactly (no don't-care input in this variant).
  void minimize();

  /// Espresso-lite with an external don't-care set: the result R satisfies
  /// ON ⊆ R ⊆ ON ∪ DC. Expansion may absorb DC minterms; the irredundant
  /// pass only guarantees coverage of the original ON-set.
  void minimize_with_dc(const Cover& dc);

  bool operator==(const Cover& o) const = default;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;

  void remove_contained();
  bool merge_distance_one();
  bool expand_literals();
  void make_irredundant();
};

}  // namespace powder
