#pragma once
// Parser for genlib-style Boolean expressions, e.g. "!((a*b)+c)".
//
// Supported syntax: identifiers, constants CONST0/CONST1 (also "0"/"1"),
// '!' prefix negation, '\'' postfix negation, '*' or juxtaposition for AND,
// '+' for OR, '^' for XOR, parentheses.

#include <string>
#include <string_view>
#include <vector>

#include "logic/truth_table.hpp"

namespace powder {

/// Result of parsing: the function plus the input names in order of first
/// appearance (this order defines the cell's pin order when a genlib GATE
/// line does not list PIN entries for every input).
struct ParsedExpr {
  TruthTable function;
  std::vector<std::string> input_names;
};

/// Parses `text`. Throws CheckError on malformed input.
ParsedExpr parse_boolean_expr(std::string_view text);

}  // namespace powder
