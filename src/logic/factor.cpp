#include "logic/factor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

std::unique_ptr<FactorNode> FactorNode::constant(bool value) {
  auto n = std::make_unique<FactorNode>();
  n->kind = value ? Kind::kConst1 : Kind::kConst0;
  return n;
}

std::unique_ptr<FactorNode> FactorNode::literal(int var, bool complemented) {
  auto n = std::make_unique<FactorNode>();
  n->kind = Kind::kLiteral;
  n->var = var;
  n->complemented = complemented;
  return n;
}

int FactorNode::num_literals() const {
  if (kind == Kind::kLiteral) return 1;
  int n = 0;
  for (const auto& c : children) n += c->num_literals();
  return n;
}

TruthTable FactorNode::to_truth_table(int num_vars) const {
  switch (kind) {
    case Kind::kConst0: return TruthTable::constant(num_vars, false);
    case Kind::kConst1: return TruthTable::constant(num_vars, true);
    case Kind::kLiteral: {
      TruthTable v = TruthTable::variable(num_vars, var);
      return complemented ? ~v : v;
    }
    case Kind::kAnd: {
      TruthTable t = TruthTable::constant(num_vars, true);
      for (const auto& c : children) t = t & c->to_truth_table(num_vars);
      return t;
    }
    case Kind::kOr: {
      TruthTable t = TruthTable::constant(num_vars, false);
      for (const auto& c : children) t = t | c->to_truth_table(num_vars);
      return t;
    }
  }
  POWDER_CHECK(false);
}

std::string FactorNode::to_string(
    const std::vector<std::string>& var_names) const {
  switch (kind) {
    case Kind::kConst0: return "0";
    case Kind::kConst1: return "1";
    case Kind::kLiteral: {
      std::string s = var < static_cast<int>(var_names.size())
                          ? var_names[var]
                          : "x" + std::to_string(var);
      if (complemented) s += '\'';
      return s;
    }
    case Kind::kAnd: {
      std::string s;
      for (const auto& c : children) {
        if (!s.empty()) s += ' ';
        const bool paren = c->kind == Kind::kOr;
        if (paren) s += '(';
        s += c->to_string(var_names);
        if (paren) s += ')';
      }
      return s;
    }
    case Kind::kOr: {
      std::string s;
      for (const auto& c : children) {
        if (!s.empty()) s += " + ";
        s += c->to_string(var_names);
      }
      return s;
    }
  }
  POWDER_CHECK(false);
}

namespace {

/// Counts occurrences of each literal across the cover's cubes.
/// Index: 2*var + (complemented ? 1 : 0).
std::vector<int> literal_counts(const Cover& cover) {
  std::vector<int> counts(static_cast<std::size_t>(2 * cover.num_vars()), 0);
  for (const Cube& c : cover.cubes()) {
    for (int v = 0; v < cover.num_vars(); ++v) {
      if (c.lit(v) == Lit::kOne) ++counts[2 * v];
      if (c.lit(v) == Lit::kZero) ++counts[2 * v + 1];
    }
  }
  return counts;
}

std::unique_ptr<FactorNode> factor_rec(const Cover& cover);

/// Builds the AND of a single cube's literals.
std::unique_ptr<FactorNode> cube_node(const Cube& c) {
  std::vector<std::unique_ptr<FactorNode>> lits;
  for (int v = 0; v < c.num_vars(); ++v) {
    if (c.lit(v) == Lit::kOne) lits.push_back(FactorNode::literal(v, false));
    if (c.lit(v) == Lit::kZero) lits.push_back(FactorNode::literal(v, true));
  }
  if (lits.empty()) return FactorNode::constant(true);
  if (lits.size() == 1) return std::move(lits[0]);
  auto n = std::make_unique<FactorNode>();
  n->kind = FactorNode::Kind::kAnd;
  n->children = std::move(lits);
  return n;
}

/// Extracts the largest cube common to all cubes of the cover; returns an
/// all-dash cube if none.
Cube common_cube(const Cover& cover) {
  Cube common = cover.cubes().front();
  for (const Cube& c : cover.cubes()) {
    for (int v = 0; v < cover.num_vars(); ++v)
      if (common.lit(v) != Lit::kDash && common.lit(v) != c.lit(v))
        common.set_lit(v, Lit::kDash);
  }
  return common;
}

std::unique_ptr<FactorNode> factor_rec(const Cover& cover) {
  if (cover.empty()) return FactorNode::constant(false);
  if (cover.num_cubes() == 1) return cube_node(cover.cubes().front());

  // 1) Pull out a common cube divisor if one exists.
  const Cube common = common_cube(cover);
  if (common.num_literals() > 0) {
    Cover quotient(cover.num_vars());
    for (const Cube& c : cover.cubes()) {
      Cube q = c;
      for (int v = 0; v < cover.num_vars(); ++v)
        if (common.lit(v) != Lit::kDash) q.set_lit(v, Lit::kDash);
      quotient.add(std::move(q));
    }
    auto n = std::make_unique<FactorNode>();
    n->kind = FactorNode::Kind::kAnd;
    n->children.push_back(cube_node(common));
    n->children.push_back(factor_rec(quotient));
    return n;
  }

  // 2) Divide by the most frequent literal: f = l*Q + R.
  const std::vector<int> counts = literal_counts(cover);
  const int best =
      static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                       counts.begin());
  const int var = best / 2;
  const Lit want = (best % 2) ? Lit::kZero : Lit::kOne;
  if (counts[static_cast<std::size_t>(best)] <= 1) {
    // No sharing to exploit: plain OR of cube ANDs.
    auto n = std::make_unique<FactorNode>();
    n->kind = FactorNode::Kind::kOr;
    for (const Cube& c : cover.cubes()) n->children.push_back(cube_node(c));
    return n;
  }

  Cover quotient(cover.num_vars());
  Cover remainder(cover.num_vars());
  for (const Cube& c : cover.cubes()) {
    if (c.lit(var) == want) {
      Cube q = c;
      q.set_lit(var, Lit::kDash);
      quotient.add(std::move(q));
    } else {
      remainder.add(c);
    }
  }

  auto prod = std::make_unique<FactorNode>();
  prod->kind = FactorNode::Kind::kAnd;
  prod->children.push_back(FactorNode::literal(var, want == Lit::kZero));
  prod->children.push_back(factor_rec(quotient));
  if (remainder.empty()) return prod;

  auto sum = std::make_unique<FactorNode>();
  sum->kind = FactorNode::Kind::kOr;
  sum->children.push_back(std::move(prod));
  sum->children.push_back(factor_rec(remainder));
  return sum;
}

}  // namespace

std::unique_ptr<FactorNode> quick_factor(const Cover& cover) {
  if (cover.empty()) return FactorNode::constant(false);
  // A cover with an all-dash cube is constant 1.
  for (const Cube& c : cover.cubes())
    if (c.num_literals() == 0) return FactorNode::constant(true);
  return factor_rec(cover);
}

}  // namespace powder
