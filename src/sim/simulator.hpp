#pragma once
// Bit-parallel (64 patterns per word) logic simulation of mapped netlists.
//
// This is the workhorse behind both POWDER ingredients:
//  * signal probabilities / transition activities for power estimation
//    (weighted random patterns honoring the primary-input probabilities),
//  * signatures and observability masks for candidate-substitution
//    harvesting (a fault-simulation style flip-and-diff pass).
//
// Values are indexed by GateId and survive netlist mutation: the simulator
// subscribes to the netlist's delta bus, accumulates the dirty roots of
// every published mutation itself, and `refresh()` recomputes exactly the
// affected transitive fanout — callers no longer thread `changed_roots`
// through by hand. Queries require a clean simulator (refresh() after any
// mutation); the flip-and-diff passes check this.
//
// Threading model: the const query methods (value, signal_prob, the
// observability / replacement-diff / trial-probability passes) are safe to
// call from several threads at once — every pass works on a scratch buffer
// acquired from an internal pool, never on shared mutable state. The
// mutating methods (resimulate_*, use_exhaustive_patterns) are
// single-writer: they must not overlap with each other or with queries.
// When a ThreadPool is attached via set_thread_pool, the mutating passes
// and top-level flip-and-diff queries additionally shard their inner loops
// across per-thread word ranges; results are bit-identical to the serial
// computation for any thread count.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace powder {

class TraceSession;
class MetricsRegistry;

/// Word-level evaluator for library cells: a minimized SOP per cell,
/// shared by all simulator instances over the same library.
class CellEvaluator {
 public:
  explicit CellEvaluator(const CellLibrary& library);

  /// Evaluates one 64-pattern word of cell `cell` from fanin words.
  std::uint64_t evaluate(CellId cell,
                         std::span<const std::uint64_t> fanin_words) const;

 private:
  struct WordCube {
    std::uint64_t care = 0;   ///< bit i set: input i appears in the cube
    std::uint64_t value = 0;  ///< bit i: required phase of input i
  };
  struct CellSop {
    std::vector<WordCube> cubes;
    bool const_one = false;
  };
  std::vector<CellSop> sops_;
};

class Simulator final : public NetlistObserver {
 public:
  /// `num_patterns` is rounded up to a multiple of 64. `pi_probs` gives the
  /// probability of each primary input being 1 (empty = all 0.5). The
  /// simulator attaches itself to the netlist's delta bus; the netlist must
  /// outlive it.
  Simulator(const Netlist& netlist, int num_patterns,
            std::vector<double> pi_probs = {},
            std::uint64_t seed = 0xB0DD5EEDull);
  ~Simulator() override;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const Netlist& netlist() const { return *netlist_; }
  int num_words() const { return num_words_; }
  int num_patterns() const { return 64 * num_words_; }
  const std::vector<double>& pi_probs() const { return pi_probs_; }

  /// Attaches a thread pool used to shard the simulation kernels across
  /// word ranges (nullptr restores serial execution). The pool is borrowed
  /// and must outlive the simulator's use of it.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Attaches observability sinks (both borrowed, either may be null).
  /// Full and incremental resimulations then emit "sim_resim_full" /
  /// "sim_resim_incremental" spans and feed the resim latency histogram.
  void set_trace(TraceSession* trace, MetricsRegistry* metrics);

  /// Replaces the PI stimulus with exhaustive patterns (requires
  /// num_inputs() <= 16; pattern count becomes 2^n rounded up to 64).
  void use_exhaustive_patterns();

  /// Full resimulation of every live gate (also resizes internal storage
  /// after gates were added). Clears any pending dirty state.
  void resimulate_all();

  /// Result of one incremental refresh: either a full resimulation
  /// happened, or exactly `gates` (roots plus transitive fanout, in
  /// topological order) were re-evaluated.
  struct RefreshResult {
    bool full = false;
    std::vector<GateId> gates;
  };

  /// Brings the values up to date with every netlist delta observed since
  /// the last refresh. No-op (empty result) when nothing is pending.
  RefreshResult refresh();

  /// True when a netlist mutation was observed and refresh() is due.
  bool pending() const { return full_resim_ || !dirty_roots_.empty(); }

  /// Single-consumer drain of the gates re-evaluated since the last drain
  /// (by refresh or resimulate_all). `full` means "assume everything" —
  /// set by full resimulations and by accumulator overflow. The candidate
  /// index uses this to re-hash only value-dirty signals.
  struct Refreshed {
    bool full = false;
    std::vector<GateId> gates;
  };
  Refreshed drain_refreshed() const;

  /// Delta-bus subscription (called by the netlist; not for users).
  void on_delta(const NetlistDelta& delta) override;

  std::span<const std::uint64_t> value(GateId g) const {
    return {values_.data() + static_cast<std::size_t>(g) * num_words_,
            static_cast<std::size_t>(num_words_)};
  }

  /// Fraction of patterns where the signal is 1.
  double signal_prob(GateId g) const;

  /// Zero-delay transition activity E(s) = 2 p (1-p).
  double activity(GateId g) const {
    const double p = signal_prob(g);
    return 2.0 * p * (1.0 - p);
  }

  /// Observability mask of stem `g`: bit set for every pattern where
  /// complementing g's signal changes at least one primary output.
  std::vector<std::uint64_t> stem_observability(GateId g) const;

  /// Observability mask of one fanout branch of `g` (flip only that pin).
  std::vector<std::uint64_t> branch_observability(GateId g,
                                                  FanoutRef branch) const;

  /// OR of output differences if gate `site`'s signal (stem) or one branch
  /// is *replaced* by the given value words (not just complemented).
  /// Used to validate candidate substitutions against the sampled patterns.
  std::vector<std::uint64_t> output_diff_with_replacement(
      GateId site, const FanoutRef* branch,
      std::span<const std::uint64_t> replacement) const;

  /// Trial evaluation of a replacement: returns (gate, new signal
  /// probability) for every gate in the site's transitive fanout whose
  /// value vector actually changes under the replacement (the inputs to
  /// the paper's PG_C term). The netlist is not modified.
  std::vector<std::pair<GateId, double>> trial_new_probs(
      GateId site, const FanoutRef* branch,
      std::span<const std::uint64_t> replacement) const;

  /// Word-level evaluator shared with candidate generation.
  const CellEvaluator& evaluator() const { return evaluator_; }

 private:
  /// One flip-and-diff working set: a full values-shaped word array plus
  /// the per-gate dirty flags. Passes acquire one from the pool below so
  /// concurrent const queries never share mutable state.
  struct Scratch {
    std::vector<std::uint64_t> words;  // slots * num_words_
    std::vector<std::uint8_t> dirty;   // slots; 1 = read words, not values_
  };

  /// RAII lease of a Scratch from the simulator's pool.
  class ScratchLease {
   public:
    ScratchLease(const Simulator* sim, std::unique_ptr<Scratch> scratch)
        : sim_(sim), scratch_(std::move(scratch)) {}
    ~ScratchLease() { sim_->release_scratch(std::move(scratch_)); }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    Scratch& operator*() const { return *scratch_; }
    Scratch* operator->() const { return scratch_.get(); }

   private:
    const Simulator* sim_;
    std::unique_ptr<Scratch> scratch_;
  };

  const Netlist* netlist_;
  CellEvaluator evaluator_;
  int num_words_;
  std::vector<double> pi_probs_;
  Rng rng_;
  std::vector<std::uint64_t> values_;       // slots * num_words_
  std::vector<std::uint64_t> pi_stimulus_;  // frozen PI words
  ThreadPool* pool_ = nullptr;

  TraceSession* trace_ = nullptr;
  class Counter* m_resims_ = nullptr;
  class Counter* m_resim_gates_ = nullptr;
  class Histogram* h_resim_ns_ = nullptr;

  mutable std::mutex scratch_mutex_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_pool_;

  // Dirty state accumulated by on_delta (mutated on the single writer
  // thread only; queries never run concurrently with mutations).
  bool full_resim_ = false;
  std::vector<GateId> dirty_roots_;
  std::vector<std::uint8_t> dirty_flag_;  // dedup for dirty_roots_

  // Refreshed-gate accumulator for drain_refreshed (bounded; overflow
  // degrades to `full`). Mutable so the const single consumer can drain.
  mutable bool refreshed_full_ = true;  // a fresh simulator = everything new
  mutable std::vector<GateId> refreshed_accum_;

  void ensure_capacity();
  void generate_stimulus();
  void mark_dirty_root(GateId g);
  void record_refreshed(const std::vector<GateId>& gates);

  /// Recomputes the values of `roots` and their transitive fanout only;
  /// returns the re-evaluated gates in topological order.
  std::vector<GateId> resimulate_from(std::span<const GateId> roots);

  ScratchLease acquire_scratch() const;
  void release_scratch(std::unique_ptr<Scratch> scratch) const;

  /// Number of word-range shards the current call may use (1 = serial).
  int word_shards() const;

  /// Computes words [w0, w1) of gate g's value into `dest + w0`, reading
  /// each fanin from `scratch_words` when its bit is set in `dirty`
  /// (nullable = never), else from `values_`.
  void eval_gate_mixed(GateId g, std::uint64_t* dest,
                       const std::uint8_t* dirty,
                       const std::uint64_t* scratch_words, int w0,
                       int w1) const;

  /// Propagates preset scratch values of the gates in `dirty` through the
  /// TFO; returns OR over outputs of (faulty ^ good). When `changed` is
  /// non-null it collects, in topological order, the gates whose value
  /// vector changed (their new values live in scratch.words until the
  /// lease is released). Shards the per-gate evaluation across word ranges
  /// when a pool is attached and the call does not already run on a pool
  /// worker; the result is bit-identical either way.
  std::vector<std::uint64_t> propagate_diff(
      Scratch& scratch, const std::vector<GateId>& frontier,
      std::vector<GateId>* changed = nullptr) const;
};

}  // namespace powder
