#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

#include "logic/cube.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace powder {

namespace {
/// Smallest word range worth handing to a pool lane; below this the wake-up
/// cost of a parallel region outweighs the evaluation work.
constexpr std::size_t kMinWordsPerShard = 4;

/// Refreshed-gate accumulator bound: past this the single consumer is
/// clearly not draining (or the circuit churned wholesale) and the
/// accumulator degrades to the `full` flag instead of growing unbounded.
constexpr std::size_t kRefreshedAccumCap = 1 << 16;

/// Stack-buffer bound for per-gate evaluation (WordCube packs one bit per
/// fanin into a 64-bit word, so arity can never exceed 64).
constexpr std::size_t kMaxEvalArity = 64;
}  // namespace

// ---------------------------------------------------------------------------
// CellEvaluator
// ---------------------------------------------------------------------------

CellEvaluator::CellEvaluator(const CellLibrary& library) {
  sops_.resize(static_cast<std::size_t>(library.num_cells()));
  for (CellId id = 0; id < library.num_cells(); ++id) {
    const Cell& c = library.cell(id);
    CellSop& sop = sops_[static_cast<std::size_t>(id)];
    if (c.function.is_constant(true)) {
      sop.const_one = true;
      continue;
    }
    if (c.function.is_constant(false)) continue;  // empty cube list = 0
    const Cover cover = Cover::from_truth_table(c.function);
    for (const Cube& cube : cover.cubes()) {
      WordCube wc;
      for (int v = 0; v < cube.num_vars(); ++v) {
        if (cube.lit(v) == Lit::kDash) continue;
        wc.care |= 1ull << v;
        if (cube.lit(v) == Lit::kOne) wc.value |= 1ull << v;
      }
      sop.cubes.push_back(wc);
    }
  }
}

std::uint64_t CellEvaluator::evaluate(
    CellId cell, std::span<const std::uint64_t> fanin_words) const {
  const CellSop& sop = sops_[static_cast<std::size_t>(cell)];
  if (sop.const_one) return ~0ull;
  std::uint64_t out = 0;
  for (const WordCube& cube : sop.cubes) {
    std::uint64_t term = ~0ull;
    std::uint64_t care = cube.care;
    while (care) {
      const int v = std::countr_zero(care);
      care &= care - 1;
      const std::uint64_t w = fanin_words[static_cast<std::size_t>(v)];
      term &= (cube.value >> v) & 1 ? w : ~w;
      if (!term) break;
    }
    out |= term;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator(const Netlist& netlist, int num_patterns,
                     std::vector<double> pi_probs, std::uint64_t seed)
    : netlist_(&netlist),
      evaluator_(netlist.library()),
      num_words_((num_patterns + 63) / 64),
      pi_probs_(std::move(pi_probs)),
      rng_(seed) {
  POWDER_CHECK(num_patterns > 0);
  if (pi_probs_.empty())
    pi_probs_.assign(static_cast<std::size_t>(netlist.num_inputs()), 0.5);
  POWDER_CHECK(static_cast<int>(pi_probs_.size()) == netlist.num_inputs());
  generate_stimulus();
  resimulate_all();
  netlist_->attach_observer(this);
}

Simulator::~Simulator() { netlist_->detach_observer(this); }

void Simulator::mark_dirty_root(GateId g) {
  if (dirty_flag_.size() < netlist_->num_slots())
    dirty_flag_.resize(netlist_->num_slots(), 0);
  if (dirty_flag_[g]) return;
  dirty_flag_[g] = 1;
  dirty_roots_.push_back(g);
}

void Simulator::on_delta(const NetlistDelta& delta) {
  switch (delta.kind) {
    case DeltaKind::kGateAdded:
    case DeltaKind::kGateRevived:
    case DeltaKind::kCellChanged:
      // A cell swap is functionally identity (set_cell checks the truth
      // table), but re-evaluating it keeps the downstream equivalence
      // guards honest against library bugs.
      mark_dirty_root(delta.gate);
      break;
    case DeltaKind::kFaninChanged:
      mark_dirty_root(delta.gate);
      break;
    case DeltaKind::kGateRemoved:
      // Dead gates drop out of the netlist's cached topological order;
      // their stale values are never read (refresh skips dead roots).
      break;
    case DeltaKind::kRebuilt:
      full_resim_ = true;
      break;
  }
}

void Simulator::set_trace(TraceSession* trace, MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics != nullptr) {
    m_resims_ = metrics->counter("powder_sim_resims_total",
                                 "Resimulation passes (full or incremental)");
    m_resim_gates_ = metrics->counter(
        "powder_sim_resim_gates_total",
        "Gates re-evaluated across all resimulation passes");
    h_resim_ns_ = metrics->histogram("powder_sim_resim_duration_ns",
                                     "Wall time per resimulation pass");
  } else {
    m_resims_ = nullptr;
    m_resim_gates_ = nullptr;
    h_resim_ns_ = nullptr;
  }
}

Simulator::RefreshResult Simulator::refresh() {
  RefreshResult res;
  if (full_resim_) {
    resimulate_all();  // clears the dirty state and flags the accumulator
    res.full = true;
    return res;
  }
  if (dirty_roots_.empty()) return res;
  const bool traced = trace_ != nullptr || m_resims_ != nullptr;
  const std::uint64_t t0 = traced ? trace_now_ns() : 0;
  std::vector<GateId> roots;
  roots.swap(dirty_roots_);
  for (GateId g : roots) dirty_flag_[g] = 0;
  std::erase_if(roots, [&](GateId g) { return !netlist_->alive(g); });
  res.gates = resimulate_from(roots);
  record_refreshed(res.gates);
  if (traced) {
    const std::uint64_t dur = trace_now_ns() - t0;
    if (m_resims_ != nullptr) {
      m_resims_->inc();
      m_resim_gates_->inc(static_cast<long long>(res.gates.size()));
      h_resim_ns_->observe(dur);
    }
    if (trace_ != nullptr)
      trace_->record_span("sim_resim_incremental", "sim", t0, dur, "gates",
                          static_cast<long long>(res.gates.size()));
  }
  return res;
}

void Simulator::record_refreshed(const std::vector<GateId>& gates) {
  if (refreshed_full_) return;
  if (refreshed_accum_.size() + gates.size() > kRefreshedAccumCap) {
    refreshed_full_ = true;
    refreshed_accum_.clear();
    return;
  }
  refreshed_accum_.insert(refreshed_accum_.end(), gates.begin(), gates.end());
}

Simulator::Refreshed Simulator::drain_refreshed() const {
  Refreshed out;
  out.full = refreshed_full_;
  out.gates.swap(refreshed_accum_);
  refreshed_full_ = false;
  return out;
}

void Simulator::generate_stimulus() {
  pi_stimulus_.assign(
      static_cast<std::size_t>(netlist_->num_inputs()) * num_words_, 0);
  for (int i = 0; i < netlist_->num_inputs(); ++i)
    for (int w = 0; w < num_words_; ++w)
      pi_stimulus_[static_cast<std::size_t>(i) * num_words_ + w] =
          rng_.biased_word(pi_probs_[static_cast<std::size_t>(i)]);
}

void Simulator::use_exhaustive_patterns() {
  const int n = netlist_->num_inputs();
  POWDER_CHECK_MSG(n <= 16, "exhaustive simulation limited to 16 inputs");
  const std::uint64_t total = 1ull << n;
  num_words_ = static_cast<int>((total + 63) / 64);
  pi_stimulus_.assign(static_cast<std::size_t>(n) * num_words_, 0);
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t m = 0; m < static_cast<std::uint64_t>(num_words_) * 64;
         ++m) {
      // Pattern index m assigns input i the bit (m >> i) & 1; indices past
      // 2^n wrap around, which keeps the value distribution exact.
      if (((m & (total - 1)) >> i) & 1)
        pi_stimulus_[static_cast<std::size_t>(i) * num_words_ + (m >> 6)] |=
            1ull << (m & 63);
    }
  }
  // Pattern width changed: existing scratch buffers are the wrong shape.
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    scratch_pool_.clear();
  }
  resimulate_all();
}

void Simulator::ensure_capacity() {
  const std::size_t need =
      netlist_->num_slots() * static_cast<std::size_t>(num_words_);
  if (values_.size() < need) values_.resize(need, 0);
}

Simulator::ScratchLease Simulator::acquire_scratch() const {
  // Flip-and-diff passes read `values_` as the good reference, so the
  // simulator must be clean: every observed delta refreshed, every slot
  // covered.
  POWDER_CHECK_MSG(!pending(),
                   "flip-and-diff query on a stale simulator — call "
                   "refresh() after netlist mutations");
  POWDER_CHECK(values_.size() >=
               netlist_->num_slots() * static_cast<std::size_t>(num_words_));
  std::unique_ptr<Scratch> s;
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      s = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
    }
  }
  if (!s) s = std::make_unique<Scratch>();
  const std::size_t slots = netlist_->num_slots();
  if (s->words.size() < slots * static_cast<std::size_t>(num_words_))
    s->words.resize(slots * static_cast<std::size_t>(num_words_), 0);
  s->dirty.assign(slots, 0);
  return ScratchLease(this, std::move(s));
}

void Simulator::release_scratch(std::unique_ptr<Scratch> scratch) const {
  if (!scratch) return;
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

int Simulator::word_shards() const {
  if (pool_ == nullptr || ThreadPool::in_parallel_region()) return 1;
  const std::size_t by_words =
      static_cast<std::size_t>(num_words_) / kMinWordsPerShard;
  const std::size_t shards = std::min<std::size_t>(
      by_words, static_cast<std::size_t>(pool_->parallelism()));
  return shards < 1 ? 1 : static_cast<int>(shards);
}

void Simulator::resimulate_all() {
  const bool traced = trace_ != nullptr || m_resims_ != nullptr;
  const std::uint64_t t0 = traced ? trace_now_ns() : 0;
  ensure_capacity();
  full_resim_ = false;
  for (GateId g : dirty_roots_) dirty_flag_[g] = 0;
  dirty_roots_.clear();
  refreshed_full_ = true;
  refreshed_accum_.clear();
  // PIs first.
  for (int i = 0; i < netlist_->num_inputs(); ++i) {
    const GateId g = netlist_->inputs()[static_cast<std::size_t>(i)];
    std::copy_n(pi_stimulus_.data() + static_cast<std::size_t>(i) * num_words_,
                num_words_,
                values_.data() + static_cast<std::size_t>(g) * num_words_);
  }
  const std::vector<GateId>& topo = netlist_->topo_order();
  // Word columns are independent, so each lane walks the whole topological
  // order over its own [lo, hi) word range; within a lane the fanin words it
  // reads were produced earlier in the same lane.
  auto eval_range = [&](std::size_t lo, std::size_t hi) {
    for (GateId g : topo) {
      if (netlist_->kind(g) == GateKind::kInput) continue;
      std::uint64_t* dest =
          values_.data() + static_cast<std::size_t>(g) * num_words_;
      eval_gate_mixed(g, dest, nullptr, nullptr, static_cast<int>(lo),
                      static_cast<int>(hi));
    }
  };
  if (word_shards() > 1) {
    pool_->parallel_for(static_cast<std::size_t>(num_words_),
                        kMinWordsPerShard, eval_range);
  } else {
    eval_range(0, static_cast<std::size_t>(num_words_));
  }
  if (traced) {
    const std::uint64_t dur = trace_now_ns() - t0;
    if (m_resims_ != nullptr) {
      m_resims_->inc();
      m_resim_gates_->inc(static_cast<long long>(topo.size()));
      h_resim_ns_->observe(dur);
    }
    if (trace_ != nullptr)
      trace_->record_span("sim_resim_full", "sim", t0, dur, "gates",
                          static_cast<long long>(topo.size()));
  }
}

void Simulator::eval_gate_mixed(GateId g, std::uint64_t* dest,
                                const std::uint8_t* dirty,
                                const std::uint64_t* scratch_words, int w0,
                                int w1) const {
  auto src = [&](GateId fi) -> const std::uint64_t* {
    const bool use_scratch = dirty != nullptr && dirty[fi];
    const std::uint64_t* from = use_scratch ? scratch_words : values_.data();
    return from + static_cast<std::size_t>(fi) * num_words_;
  };
  const std::span<const GateId> fanins = netlist_->fanins(g);
  if (netlist_->kind(g) == GateKind::kOutput) {
    std::copy(src(fanins[0]) + w0, src(fanins[0]) + w1, dest + w0);
    return;
  }
  POWDER_DCHECK(netlist_->kind(g) == GateKind::kCell);
  // Fixed stack buffers: this runs once per (gate, word-range) visit and
  // must not allocate. Library cells never approach the WordCube's 64-var
  // ceiling.
  POWDER_DCHECK(fanins.size() <= kMaxEvalArity);
  const std::uint64_t* fi_ptr[kMaxEvalArity];
  std::uint64_t fanin_words[kMaxEvalArity];
  const std::size_t n = fanins.size();
  for (std::size_t k = 0; k < n; ++k) fi_ptr[k] = src(fanins[k]);
  const CellId cell = netlist_->cell_id(g);
  for (int w = w0; w < w1; ++w) {
    for (std::size_t k = 0; k < n; ++k) fanin_words[k] = fi_ptr[k][w];
    dest[w] = evaluator_.evaluate(cell, {fanin_words, n});
  }
}

std::vector<GateId> Simulator::resimulate_from(std::span<const GateId> roots) {
  ensure_capacity();
  std::vector<std::uint8_t> affected(netlist_->num_slots(), 0);
  std::vector<GateId> stack;
  for (GateId r : roots) {
    if (!affected[r]) {
      affected[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : netlist_->fanouts(g)) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  std::vector<GateId> order;
  for (GateId g : netlist_->topo_order()) {
    if (!affected[g]) continue;
    if (netlist_->kind(g) == GateKind::kInput) continue;
    order.push_back(g);
  }
  auto eval_range = [&](std::size_t lo, std::size_t hi) {
    for (GateId g : order)
      eval_gate_mixed(g,
                      values_.data() + static_cast<std::size_t>(g) * num_words_,
                      nullptr, nullptr, static_cast<int>(lo),
                      static_cast<int>(hi));
  };
  if (order.size() >= 4 && word_shards() > 1) {
    pool_->parallel_for(static_cast<std::size_t>(num_words_),
                        kMinWordsPerShard, eval_range);
  } else {
    eval_range(0, static_cast<std::size_t>(num_words_));
  }
  return order;
}

double Simulator::signal_prob(GateId g) const {
  std::uint64_t ones = 0;
  const std::uint64_t* v =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w)
    ones += static_cast<std::uint64_t>(std::popcount(v[w]));
  return static_cast<double>(ones) / (64.0 * num_words_);
}

std::vector<std::uint64_t> Simulator::propagate_diff(
    Scratch& scratch, const std::vector<GateId>& frontier,
    std::vector<GateId>* changed) const {
  // Mark the TFO of the frontier as potentially dirty and re-evaluate it in
  // topological order against the mixed view; gates whose faulty value
  // equals the good value are un-marked to prune propagation.
  std::vector<std::uint8_t> affected(netlist_->num_slots(), 0);
  std::vector<GateId> stack;
  for (GateId g : frontier) {
    for (const FanoutRef& br : netlist_->fanouts(g)) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : netlist_->fanouts(g)) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  std::vector<GateId> order;
  for (GateId g : netlist_->topo_order())
    if (affected[g]) order.push_back(g);

  std::vector<std::uint64_t> diff(static_cast<std::size_t>(num_words_), 0);
  const int shards = word_shards();
  if (shards <= 1 ||
      order.size() * static_cast<std::size_t>(num_words_) < 512) {
    for (GateId g : order) {
      std::uint64_t* faulty =
          scratch.words.data() + static_cast<std::size_t>(g) * num_words_;
      eval_gate_mixed(g, faulty, scratch.dirty.data(), scratch.words.data(), 0,
                      num_words_);
      const std::uint64_t* good =
          values_.data() + static_cast<std::size_t>(g) * num_words_;
      bool any = false;
      for (int w = 0; w < num_words_; ++w)
        if (faulty[w] != good[w]) {
          any = true;
          break;
        }
      if (!any) continue;  // fault effect died here
      scratch.dirty[g] = 1;
      if (changed != nullptr) changed->push_back(g);
      if (netlist_->kind(g) == GateKind::kOutput)
        for (int w = 0; w < num_words_; ++w)
          diff[static_cast<std::size_t>(w)] |= faulty[w] ^ good[w];
    }
    return diff;
  }

  // Sharded: each lane propagates its own word range with its own dirty
  // flags. Pruning may differ per lane — a gate can change only in some
  // word columns — but a lane that prunes a gate has computed scratch words
  // equal to the good values there, so downstream reads see identical bits
  // either way and every lane's slice of `scratch.words` matches the serial
  // computation exactly.
  std::vector<std::vector<std::uint8_t>> lane_dirty(
      static_cast<std::size_t>(shards));
  pool_->for_shards(shards, [&](int shard, int num_shards) {
    const std::size_t n = static_cast<std::size_t>(num_words_);
    const std::size_t lo = n * static_cast<std::size_t>(shard) /
                           static_cast<std::size_t>(num_shards);
    const std::size_t hi = n * (static_cast<std::size_t>(shard) + 1) /
                           static_cast<std::size_t>(num_shards);
    std::vector<std::uint8_t>& dirty = lane_dirty[static_cast<std::size_t>(shard)];
    dirty = scratch.dirty;  // seed flags from the caller
    for (GateId g : order) {
      std::uint64_t* faulty =
          scratch.words.data() + static_cast<std::size_t>(g) * num_words_;
      eval_gate_mixed(g, faulty, dirty.data(), scratch.words.data(),
                      static_cast<int>(lo), static_cast<int>(hi));
      const std::uint64_t* good =
          values_.data() + static_cast<std::size_t>(g) * num_words_;
      bool any = false;
      for (std::size_t w = lo; w < hi; ++w)
        if (faulty[w] != good[w]) {
          any = true;
          break;
        }
      if (any) dirty[g] = 1;
      if (any && netlist_->kind(g) == GateKind::kOutput)
        for (std::size_t w = lo; w < hi; ++w) diff[w] |= faulty[w] ^ good[w];
    }
  });
  // Merge: a gate changed iff any lane saw a change in its word range. The
  // seeds stay set in every lane, and no seed is in `order` (the netlist is
  // acyclic), so OR-ing lane flags over `order` recovers the serial result.
  for (GateId g : order) {
    bool any = false;
    for (const std::vector<std::uint8_t>& d : lane_dirty)
      if (d[g]) {
        any = true;
        break;
      }
    if (!any) continue;
    scratch.dirty[g] = 1;
    if (changed != nullptr) changed->push_back(g);
  }
  return diff;
}

std::vector<std::pair<GateId, double>> Simulator::trial_new_probs(
    GateId site, const FanoutRef* branch,
    std::span<const std::uint64_t> replacement) const {
  POWDER_CHECK(replacement.size() == static_cast<std::size_t>(num_words_));
  ScratchLease lease = acquire_scratch();
  Scratch& s = *lease;
  std::vector<GateId> changed;
  if (branch == nullptr) {
    std::uint64_t* f =
        s.words.data() + static_cast<std::size_t>(site) * num_words_;
    std::copy(replacement.begin(), replacement.end(), f);
    s.dirty[site] = 1;
    (void)propagate_diff(s, {site}, &changed);
  } else {
    // Pre-evaluate the branch's sink against the replacement, then let the
    // generic propagation take over.
    const GateId sink = branch->gate;
    std::uint64_t* f =
        s.words.data() + static_cast<std::size_t>(sink) * num_words_;
    if (netlist_->kind(sink) == GateKind::kOutput) {
      std::copy(replacement.begin(), replacement.end(), f);
    } else {
      const std::span<const GateId> fanins = netlist_->fanins(sink);
      POWDER_DCHECK(fanins.size() <= kMaxEvalArity);
      const std::uint64_t* fi_ptr[kMaxEvalArity];
      std::uint64_t fanin_words[kMaxEvalArity];
      const std::size_t n = fanins.size();
      for (std::size_t k = 0; k < n; ++k)
        fi_ptr[k] =
            values_.data() + static_cast<std::size_t>(fanins[k]) * num_words_;
      const CellId cell = netlist_->cell_id(sink);
      for (int w = 0; w < num_words_; ++w) {
        for (std::size_t k = 0; k < n; ++k) fanin_words[k] = fi_ptr[k][w];
        fanin_words[static_cast<std::size_t>(branch->pin)] =
            replacement[static_cast<std::size_t>(w)];
        f[w] = evaluator_.evaluate(cell, {fanin_words, n});
      }
    }
    const std::uint64_t* good =
        values_.data() + static_cast<std::size_t>(sink) * num_words_;
    bool any = false;
    for (int w = 0; w < num_words_; ++w)
      if (f[w] != good[w]) {
        any = true;
        break;
      }
    if (any) {
      s.dirty[sink] = 1;
      changed.push_back(sink);
      (void)propagate_diff(s, {sink}, &changed);
    }
  }
  std::vector<std::pair<GateId, double>> out;
  out.reserve(changed.size());
  for (GateId g : changed) {
    const std::uint64_t* f =
        s.words.data() + static_cast<std::size_t>(g) * num_words_;
    std::uint64_t ones = 0;
    for (int w = 0; w < num_words_; ++w)
      ones += static_cast<std::uint64_t>(std::popcount(f[w]));
    out.emplace_back(g, static_cast<double>(ones) / (64.0 * num_words_));
  }
  return out;
}

std::vector<std::uint64_t> Simulator::stem_observability(GateId g) const {
  ScratchLease lease = acquire_scratch();
  Scratch& s = *lease;
  std::uint64_t* f = s.words.data() + static_cast<std::size_t>(g) * num_words_;
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w) f[w] = ~good[w];
  s.dirty[g] = 1;
  return propagate_diff(s, {g});
}

std::vector<std::uint64_t> Simulator::branch_observability(
    GateId g, FanoutRef branch) const {
  std::vector<std::uint64_t> flipped(static_cast<std::size_t>(num_words_));
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w)
    flipped[static_cast<std::size_t>(w)] = ~good[w];
  return output_diff_with_replacement(g, &branch, flipped);
}

std::vector<std::uint64_t> Simulator::output_diff_with_replacement(
    GateId site, const FanoutRef* branch,
    std::span<const std::uint64_t> replacement) const {
  POWDER_CHECK(replacement.size() == static_cast<std::size_t>(num_words_));
  ScratchLease lease = acquire_scratch();
  Scratch& s = *lease;
  if (branch == nullptr) {
    // Stem replacement: the whole signal takes the new value.
    std::uint64_t* f =
        s.words.data() + static_cast<std::size_t>(site) * num_words_;
    std::copy(replacement.begin(), replacement.end(), f);
    s.dirty[site] = 1;
    return propagate_diff(s, {site});
  }
  // Branch replacement: only the sink gate sees the new value on one pin.
  const GateId sink = branch->gate;
  std::uint64_t* f =
      s.words.data() + static_cast<std::size_t>(sink) * num_words_;
  if (netlist_->kind(sink) == GateKind::kOutput) {
    std::copy(replacement.begin(), replacement.end(), f);
  } else {
    const std::span<const GateId> fanins = netlist_->fanins(sink);
    POWDER_DCHECK(fanins.size() <= kMaxEvalArity);
    const std::uint64_t* fi_ptr[kMaxEvalArity];
    std::uint64_t fanin_words[kMaxEvalArity];
    const std::size_t n = fanins.size();
    for (std::size_t k = 0; k < n; ++k)
      fi_ptr[k] =
          values_.data() + static_cast<std::size_t>(fanins[k]) * num_words_;
    const CellId cell = netlist_->cell_id(sink);
    for (int w = 0; w < num_words_; ++w) {
      for (std::size_t k = 0; k < n; ++k) fanin_words[k] = fi_ptr[k][w];
      fanin_words[static_cast<std::size_t>(branch->pin)] =
          replacement[static_cast<std::size_t>(w)];
      f[w] = evaluator_.evaluate(cell, {fanin_words, n});
    }
  }
  // Seed dirtiness only if the sink value actually changed.
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(sink) * num_words_;
  std::vector<std::uint64_t> diff(static_cast<std::size_t>(num_words_), 0);
  bool any = false;
  for (int w = 0; w < num_words_; ++w)
    if (f[w] != good[w]) {
      any = true;
      break;
    }
  if (!any) return diff;
  s.dirty[sink] = 1;
  if (netlist_->kind(sink) == GateKind::kOutput)
    for (int w = 0; w < num_words_; ++w)
      diff[static_cast<std::size_t>(w)] |= f[w] ^ good[w];
  std::vector<std::uint64_t> deeper = propagate_diff(s, {sink});
  for (int w = 0; w < num_words_; ++w)
    diff[static_cast<std::size_t>(w)] |= deeper[static_cast<std::size_t>(w)];
  return diff;
}

}  // namespace powder
