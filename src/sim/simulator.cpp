#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

#include "logic/cube.hpp"
#include "util/check.hpp"

namespace powder {

// ---------------------------------------------------------------------------
// CellEvaluator
// ---------------------------------------------------------------------------

CellEvaluator::CellEvaluator(const CellLibrary& library) {
  sops_.resize(static_cast<std::size_t>(library.num_cells()));
  for (CellId id = 0; id < library.num_cells(); ++id) {
    const Cell& c = library.cell(id);
    CellSop& sop = sops_[static_cast<std::size_t>(id)];
    if (c.function.is_constant(true)) {
      sop.const_one = true;
      continue;
    }
    if (c.function.is_constant(false)) continue;  // empty cube list = 0
    const Cover cover = Cover::from_truth_table(c.function);
    for (const Cube& cube : cover.cubes()) {
      WordCube wc;
      for (int v = 0; v < cube.num_vars(); ++v) {
        if (cube.lit(v) == Lit::kDash) continue;
        wc.care |= 1ull << v;
        if (cube.lit(v) == Lit::kOne) wc.value |= 1ull << v;
      }
      sop.cubes.push_back(wc);
    }
  }
}

std::uint64_t CellEvaluator::evaluate(
    CellId cell, std::span<const std::uint64_t> fanin_words) const {
  const CellSop& sop = sops_[static_cast<std::size_t>(cell)];
  if (sop.const_one) return ~0ull;
  std::uint64_t out = 0;
  for (const WordCube& cube : sop.cubes) {
    std::uint64_t term = ~0ull;
    std::uint64_t care = cube.care;
    while (care) {
      const int v = std::countr_zero(care);
      care &= care - 1;
      const std::uint64_t w = fanin_words[static_cast<std::size_t>(v)];
      term &= (cube.value >> v) & 1 ? w : ~w;
      if (!term) break;
    }
    out |= term;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator(const Netlist& netlist, int num_patterns,
                     std::vector<double> pi_probs, std::uint64_t seed)
    : netlist_(&netlist),
      evaluator_(netlist.library()),
      num_words_((num_patterns + 63) / 64),
      pi_probs_(std::move(pi_probs)),
      rng_(seed) {
  POWDER_CHECK(num_patterns > 0);
  if (pi_probs_.empty())
    pi_probs_.assign(static_cast<std::size_t>(netlist.num_inputs()), 0.5);
  POWDER_CHECK(static_cast<int>(pi_probs_.size()) == netlist.num_inputs());
  generate_stimulus();
  resimulate_all();
}

void Simulator::generate_stimulus() {
  pi_stimulus_.assign(
      static_cast<std::size_t>(netlist_->num_inputs()) * num_words_, 0);
  for (int i = 0; i < netlist_->num_inputs(); ++i)
    for (int w = 0; w < num_words_; ++w)
      pi_stimulus_[static_cast<std::size_t>(i) * num_words_ + w] =
          rng_.biased_word(pi_probs_[static_cast<std::size_t>(i)]);
}

void Simulator::use_exhaustive_patterns() {
  const int n = netlist_->num_inputs();
  POWDER_CHECK_MSG(n <= 16, "exhaustive simulation limited to 16 inputs");
  const std::uint64_t total = 1ull << n;
  num_words_ = static_cast<int>((total + 63) / 64);
  pi_stimulus_.assign(static_cast<std::size_t>(n) * num_words_, 0);
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t m = 0; m < static_cast<std::uint64_t>(num_words_) * 64;
         ++m) {
      // Pattern index m assigns input i the bit (m >> i) & 1; indices past
      // 2^n wrap around, which keeps the value distribution exact.
      if (((m & (total - 1)) >> i) & 1)
        pi_stimulus_[static_cast<std::size_t>(i) * num_words_ + (m >> 6)] |=
            1ull << (m & 63);
    }
  }
  resimulate_all();
}

void Simulator::ensure_capacity() {
  const std::size_t need =
      netlist_->num_slots() * static_cast<std::size_t>(num_words_);
  if (values_.size() < need) values_.resize(need, 0);
  if (scratch_.size() < need) scratch_.resize(need, 0);
}

void Simulator::ensure_scratch() const {
  // `values_` must already cover every slot (callers resimulate after any
  // gate insertion); scratch only ever mirrors it.
  POWDER_CHECK(values_.size() >=
               netlist_->num_slots() * static_cast<std::size_t>(num_words_));
  if (scratch_.size() < values_.size()) scratch_.resize(values_.size(), 0);
}

const std::vector<GateId>& Simulator::cached_topo() const {
  if (topo_generation_ != netlist_->generation()) {
    topo_cache_ = netlist_->topo_order();
    topo_generation_ = netlist_->generation();
  }
  return topo_cache_;
}

void Simulator::resimulate_all() {
  ensure_capacity();
  // PIs first.
  for (int i = 0; i < netlist_->num_inputs(); ++i) {
    const GateId g = netlist_->inputs()[static_cast<std::size_t>(i)];
    std::copy_n(pi_stimulus_.data() + static_cast<std::size_t>(i) * num_words_,
                num_words_,
                values_.data() + static_cast<std::size_t>(g) * num_words_);
  }
  static const std::vector<std::uint8_t> kNoDirty;
  for (GateId g : cached_topo()) {
    const Gate& gate = netlist_->gate(g);
    if (gate.kind == GateKind::kInput) continue;
    std::uint64_t* dest =
        values_.data() + static_cast<std::size_t>(g) * num_words_;
    eval_gate_mixed(g, dest, kNoDirty);
  }
}

void Simulator::eval_gate_mixed(GateId g, std::uint64_t* dest,
                                const std::vector<std::uint8_t>& dirty) const {
  const Gate& gate = netlist_->gate(g);
  auto src = [&](GateId fi) -> const std::uint64_t* {
    const bool use_scratch = !dirty.empty() && dirty[fi];
    const auto& from = use_scratch ? scratch_ : values_;
    return from.data() + static_cast<std::size_t>(fi) * num_words_;
  };
  if (gate.kind == GateKind::kOutput) {
    std::copy_n(src(gate.fanins[0]), num_words_, dest);
    return;
  }
  POWDER_DCHECK(gate.kind == GateKind::kCell);
  std::vector<const std::uint64_t*> fi_ptr;
  fi_ptr.reserve(gate.fanins.size());
  for (GateId fi : gate.fanins) fi_ptr.push_back(src(fi));
  std::vector<std::uint64_t> fanin_words(gate.fanins.size());
  for (int w = 0; w < num_words_; ++w) {
    for (std::size_t k = 0; k < fi_ptr.size(); ++k)
      fanin_words[k] = fi_ptr[k][w];
    dest[w] = evaluator_.evaluate(gate.cell, fanin_words);
  }
}

void Simulator::resimulate_from(std::span<const GateId> roots) {
  ensure_capacity();
  std::vector<std::uint8_t> affected(netlist_->num_slots(), 0);
  std::vector<GateId> stack;
  for (GateId r : roots) {
    if (!affected[r]) {
      affected[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : netlist_->gate(g).fanouts) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  static const std::vector<std::uint8_t> kNoDirty;
  for (GateId g : cached_topo()) {
    if (!affected[g]) continue;
    const Gate& gate = netlist_->gate(g);
    if (gate.kind == GateKind::kInput) continue;
    eval_gate_mixed(g, values_.data() + static_cast<std::size_t>(g) * num_words_,
                    kNoDirty);
  }
}

double Simulator::signal_prob(GateId g) const {
  std::uint64_t ones = 0;
  const std::uint64_t* v =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w)
    ones += static_cast<std::uint64_t>(std::popcount(v[w]));
  return static_cast<double>(ones) / (64.0 * num_words_);
}

std::vector<std::uint64_t> Simulator::propagate_diff(
    std::vector<std::uint8_t>& dirty, const std::vector<GateId>& frontier,
    std::vector<GateId>* changed) const {
  // Mark the TFO of the frontier as potentially dirty and re-evaluate it in
  // topological order against the mixed view; gates whose faulty value
  // equals the good value are un-marked to prune propagation.
  std::vector<std::uint8_t> affected(netlist_->num_slots(), 0);
  std::vector<GateId> stack;
  for (GateId g : frontier) {
    for (const FanoutRef& br : netlist_->gate(g).fanouts) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const FanoutRef& br : netlist_->gate(g).fanouts) {
      if (!affected[br.gate]) {
        affected[br.gate] = 1;
        stack.push_back(br.gate);
      }
    }
  }

  std::vector<std::uint64_t> diff(static_cast<std::size_t>(num_words_), 0);
  for (GateId g : cached_topo()) {
    if (!affected[g]) continue;
    const Gate& gate = netlist_->gate(g);
    std::uint64_t* faulty =
        scratch_.data() + static_cast<std::size_t>(g) * num_words_;
    eval_gate_mixed(g, faulty, dirty);
    const std::uint64_t* good =
        values_.data() + static_cast<std::size_t>(g) * num_words_;
    bool any = false;
    for (int w = 0; w < num_words_; ++w)
      if (faulty[w] != good[w]) {
        any = true;
        break;
      }
    if (!any) continue;  // fault effect died here
    dirty[g] = 1;
    if (changed != nullptr) changed->push_back(g);
    if (gate.kind == GateKind::kOutput)
      for (int w = 0; w < num_words_; ++w) diff[static_cast<std::size_t>(w)] |= faulty[w] ^ good[w];
  }
  return diff;
}

std::vector<std::pair<GateId, double>> Simulator::trial_new_probs(
    GateId site, const FanoutRef* branch,
    std::span<const std::uint64_t> replacement) const {
  ensure_scratch();
  POWDER_CHECK(replacement.size() == static_cast<std::size_t>(num_words_));
  std::vector<std::uint8_t> dirty(netlist_->num_slots(), 0);
  std::vector<GateId> changed;
  if (branch == nullptr) {
    std::uint64_t* f =
        scratch_.data() + static_cast<std::size_t>(site) * num_words_;
    std::copy(replacement.begin(), replacement.end(), f);
    dirty[site] = 1;
    (void)propagate_diff(dirty, {site}, &changed);
  } else {
    // Pre-evaluate the branch's sink against the replacement, then let the
    // generic propagation take over.
    const GateId sink = branch->gate;
    const Gate& gate = netlist_->gate(sink);
    std::uint64_t* f =
        scratch_.data() + static_cast<std::size_t>(sink) * num_words_;
    if (gate.kind == GateKind::kOutput) {
      std::copy(replacement.begin(), replacement.end(), f);
    } else {
      std::vector<const std::uint64_t*> fi_ptr;
      for (GateId fi : gate.fanins)
        fi_ptr.push_back(values_.data() +
                         static_cast<std::size_t>(fi) * num_words_);
      std::vector<std::uint64_t> fanin_words(gate.fanins.size());
      for (int w = 0; w < num_words_; ++w) {
        for (std::size_t k = 0; k < fi_ptr.size(); ++k)
          fanin_words[k] = fi_ptr[k][w];
        fanin_words[static_cast<std::size_t>(branch->pin)] =
            replacement[static_cast<std::size_t>(w)];
        f[w] = evaluator_.evaluate(gate.cell, fanin_words);
      }
    }
    const std::uint64_t* good =
        values_.data() + static_cast<std::size_t>(sink) * num_words_;
    bool any = false;
    for (int w = 0; w < num_words_; ++w)
      if (f[w] != good[w]) {
        any = true;
        break;
      }
    if (any) {
      dirty[sink] = 1;
      changed.push_back(sink);
      (void)propagate_diff(dirty, {sink}, &changed);
    }
  }
  std::vector<std::pair<GateId, double>> out;
  out.reserve(changed.size());
  for (GateId g : changed) {
    const std::uint64_t* f =
        scratch_.data() + static_cast<std::size_t>(g) * num_words_;
    std::uint64_t ones = 0;
    for (int w = 0; w < num_words_; ++w)
      ones += static_cast<std::uint64_t>(std::popcount(f[w]));
    out.emplace_back(g, static_cast<double>(ones) / (64.0 * num_words_));
  }
  return out;
}

std::vector<std::uint64_t> Simulator::stem_observability(GateId g) const {
  ensure_scratch();
  std::vector<std::uint8_t> dirty(netlist_->num_slots(), 0);
  std::uint64_t* f = scratch_.data() + static_cast<std::size_t>(g) * num_words_;
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w) f[w] = ~good[w];
  dirty[g] = 1;
  return propagate_diff(dirty, {g});
}

std::vector<std::uint64_t> Simulator::branch_observability(
    GateId g, FanoutRef branch) const {
  std::vector<std::uint64_t> flipped(static_cast<std::size_t>(num_words_));
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(g) * num_words_;
  for (int w = 0; w < num_words_; ++w)
    flipped[static_cast<std::size_t>(w)] = ~good[w];
  return output_diff_with_replacement(g, &branch, flipped);
}

std::vector<std::uint64_t> Simulator::output_diff_with_replacement(
    GateId site, const FanoutRef* branch,
    std::span<const std::uint64_t> replacement) const {
  ensure_scratch();
  POWDER_CHECK(replacement.size() == static_cast<std::size_t>(num_words_));
  std::vector<std::uint8_t> dirty(netlist_->num_slots(), 0);
  if (branch == nullptr) {
    // Stem replacement: the whole signal takes the new value.
    std::uint64_t* f =
        scratch_.data() + static_cast<std::size_t>(site) * num_words_;
    std::copy(replacement.begin(), replacement.end(), f);
    dirty[site] = 1;
    return propagate_diff(dirty, {site});
  }
  // Branch replacement: only the sink gate sees the new value on one pin.
  const GateId sink = branch->gate;
  const Gate& gate = netlist_->gate(sink);
  std::uint64_t* f =
      scratch_.data() + static_cast<std::size_t>(sink) * num_words_;
  if (gate.kind == GateKind::kOutput) {
    std::copy(replacement.begin(), replacement.end(), f);
  } else {
    std::vector<const std::uint64_t*> fi_ptr;
    for (GateId fi : gate.fanins)
      fi_ptr.push_back(values_.data() +
                       static_cast<std::size_t>(fi) * num_words_);
    std::vector<std::uint64_t> fanin_words(gate.fanins.size());
    for (int w = 0; w < num_words_; ++w) {
      for (std::size_t k = 0; k < fi_ptr.size(); ++k)
        fanin_words[k] = fi_ptr[k][w];
      fanin_words[static_cast<std::size_t>(branch->pin)] =
          replacement[static_cast<std::size_t>(w)];
      f[w] = evaluator_.evaluate(gate.cell, fanin_words);
    }
  }
  // Seed dirtiness only if the sink value actually changed.
  const std::uint64_t* good =
      values_.data() + static_cast<std::size_t>(sink) * num_words_;
  std::vector<std::uint64_t> diff(static_cast<std::size_t>(num_words_), 0);
  bool any = false;
  for (int w = 0; w < num_words_; ++w)
    if (f[w] != good[w]) {
      any = true;
      break;
    }
  if (!any) return diff;
  dirty[sink] = 1;
  if (gate.kind == GateKind::kOutput)
    for (int w = 0; w < num_words_; ++w)
      diff[static_cast<std::size_t>(w)] |= f[w] ^ good[w];
  std::vector<std::uint64_t> deeper = propagate_diff(dirty, {sink});
  for (int w = 0; w < num_words_; ++w)
    diff[static_cast<std::size_t>(w)] |= deeper[static_cast<std::size_t>(w)];
  return diff;
}

}  // namespace powder
