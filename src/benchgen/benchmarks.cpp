#include "benchgen/benchmarks.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {

namespace {

std::vector<AigLit> add_bus(Aig& aig, const std::string& prefix, int n) {
  std::vector<AigLit> bus;
  bus.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    bus.push_back(aig.add_input(prefix + std::to_string(i)));
  return bus;
}

/// Full adder on literals; returns (sum, carry).
std::pair<AigLit, AigLit> full_adder(Aig& aig, AigLit a, AigLit b, AigLit c) {
  const AigLit ab = aig.lxor(a, b);
  const AigLit sum = aig.lxor(ab, c);
  const AigLit carry = aig.lor(aig.land(a, b), aig.land(ab, c));
  return {sum, carry};
}

/// Ripple addition of two equal-width buses; returns n+1 bits.
std::vector<AigLit> add_buses(Aig& aig, const std::vector<AigLit>& a,
                              const std::vector<AigLit>& b, AigLit cin) {
  POWDER_CHECK(a.size() == b.size());
  std::vector<AigLit> out;
  AigLit carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(aig, a[i], b[i], carry);
    out.push_back(s);
    carry = c;
  }
  out.push_back(carry);
  return out;
}

}  // namespace

Aig make_comparator(int nbits) {
  Aig aig("comp" + std::to_string(nbits));
  const auto a = add_bus(aig, "a", nbits);
  const auto b = add_bus(aig, "b", nbits);
  // MSB-first iterative compare.
  AigLit gt = kAigFalse, lt = kAigFalse, eq = kAigTrue;
  for (int i = nbits - 1; i >= 0; --i) {
    const AigLit ai = a[static_cast<std::size_t>(i)];
    const AigLit bi = b[static_cast<std::size_t>(i)];
    const AigLit ai_gt = aig.land(ai, aig_not(bi));
    const AigLit ai_lt = aig.land(aig_not(ai), bi);
    gt = aig.lor(gt, aig.land(eq, ai_gt));
    lt = aig.lor(lt, aig.land(eq, ai_lt));
    eq = aig.land(eq, aig_not(aig.lxor(ai, bi)));
  }
  aig.add_output(gt, "gt");
  aig.add_output(eq, "eq");
  aig.add_output(lt, "lt");
  return aig;
}

Aig make_adder(int nbits) {
  Aig aig("add" + std::to_string(nbits));
  const auto a = add_bus(aig, "a", nbits);
  const auto b = add_bus(aig, "b", nbits);
  const AigLit cin = aig.add_input("cin");
  const auto sum = add_buses(aig, a, b, cin);
  for (int i = 0; i < nbits; ++i)
    aig.add_output(sum[static_cast<std::size_t>(i)],
                   "s" + std::to_string(i));
  aig.add_output(sum.back(), "cout");
  return aig;
}

Aig make_multiplier(int nbits) {
  Aig aig("mult" + std::to_string(nbits));
  const auto a = add_bus(aig, "a", nbits);
  const auto b = add_bus(aig, "b", nbits);
  // Partial-product accumulation, 2n product bits.
  std::vector<AigLit> acc(static_cast<std::size_t>(2 * nbits), kAigFalse);
  for (int i = 0; i < nbits; ++i) {
    std::vector<AigLit> pp(static_cast<std::size_t>(2 * nbits), kAigFalse);
    for (int j = 0; j < nbits; ++j)
      pp[static_cast<std::size_t>(i + j)] =
          aig.land(a[static_cast<std::size_t>(j)],
                   b[static_cast<std::size_t>(i)]);
    AigLit carry = kAigFalse;
    for (std::size_t k = 0; k < acc.size(); ++k) {
      auto [s, c] = full_adder(aig, acc[k], pp[k], carry);
      acc[k] = s;
      carry = c;
    }
  }
  for (int k = 0; k < 2 * nbits; ++k)
    aig.add_output(acc[static_cast<std::size_t>(k)],
                   "p" + std::to_string(k));
  return aig;
}

Aig make_rd(int ninputs) {
  Aig aig("rd" + std::to_string(ninputs));
  const auto x = add_bus(aig, "x", ninputs);
  int width = 0;
  while ((1 << width) <= ninputs) ++width;
  std::vector<AigLit> count(static_cast<std::size_t>(width), kAigFalse);
  for (AigLit xi : x) {
    // count += xi (increment by one conditional).
    AigLit carry = xi;
    for (auto& bit : count) {
      const AigLit s = aig.lxor(bit, carry);
      carry = aig.land(bit, carry);
      bit = s;
    }
  }
  for (int i = 0; i < width; ++i)
    aig.add_output(count[static_cast<std::size_t>(i)],
                   "c" + std::to_string(i));
  return aig;
}

Aig make_symmetric(int ninputs, int lo, int hi) {
  Aig aig("sym" + std::to_string(ninputs));
  const auto x = add_bus(aig, "x", ninputs);
  int width = 0;
  while ((1 << width) <= ninputs) ++width;
  std::vector<AigLit> count(static_cast<std::size_t>(width), kAigFalse);
  for (AigLit xi : x) {
    AigLit carry = xi;
    for (auto& bit : count) {
      const AigLit s = aig.lxor(bit, carry);
      carry = aig.land(bit, carry);
      bit = s;
    }
  }
  // lo <= count <= hi via per-value decode (counts are small).
  AigLit in_range = kAigFalse;
  for (int v = lo; v <= hi; ++v) {
    AigLit is_v = kAigTrue;
    for (int bitpos = 0; bitpos < width; ++bitpos) {
      const AigLit bit = count[static_cast<std::size_t>(bitpos)];
      is_v = aig.land(is_v, ((v >> bitpos) & 1) ? bit : aig_not(bit));
    }
    in_range = aig.lor(in_range, is_v);
  }
  aig.add_output(in_range, "f");
  return aig;
}

Aig make_parity(int ninputs) {
  Aig aig("parity" + std::to_string(ninputs));
  const auto x = add_bus(aig, "x", ninputs);
  AigLit p = kAigFalse;
  for (AigLit xi : x) p = aig.lxor(p, xi);
  aig.add_output(p, "par");
  return aig;
}

Aig make_alu(int nbits) {
  Aig aig("alu" + std::to_string(nbits));
  const auto a = add_bus(aig, "a", nbits);
  const auto b = add_bus(aig, "b", nbits);
  const AigLit op0 = aig.add_input("op0");
  const AigLit op1 = aig.add_input("op1");
  // 00: a+b   01: a-b   10: a&b   11: a^b
  std::vector<AigLit> nb;
  for (AigLit bi : b) nb.push_back(aig_not(bi));
  const auto sum = add_buses(aig, a, b, kAigFalse);
  const auto dif = add_buses(aig, a, nb, kAigTrue);
  for (int i = 0; i < nbits; ++i) {
    const AigLit ai = a[static_cast<std::size_t>(i)];
    const AigLit bi = b[static_cast<std::size_t>(i)];
    const AigLit arith =
        aig.lmux(op0, dif[static_cast<std::size_t>(i)],
                 sum[static_cast<std::size_t>(i)]);
    const AigLit logic = aig.lmux(op0, aig.lxor(ai, bi), aig.land(ai, bi));
    aig.add_output(aig.lmux(op1, logic, arith), "y" + std::to_string(i));
  }
  // Carry/zero flags.
  aig.add_output(aig.lmux(op0, dif.back(), sum.back()), "carry");
  AigLit zero = kAigTrue;
  for (int i = 0; i < nbits; ++i) {
    const AigLit arith = aig.lmux(op0, dif[static_cast<std::size_t>(i)],
                                  sum[static_cast<std::size_t>(i)]);
    zero = aig.land(zero, aig_not(arith));
  }
  aig.add_output(zero, "zero");
  return aig;
}

Aig make_clip(int ninputs, int noutputs) {
  Aig aig("clip");
  const auto x = add_bus(aig, "x", ninputs);
  // y = saturate(|X - 2^(n-1)|, noutputs bits): subtract the midpoint,
  // absolute value, then clamp.
  const int n = ninputs;
  std::vector<AigLit> mid(static_cast<std::size_t>(n), kAigFalse);
  mid[static_cast<std::size_t>(n - 1)] = kAigTrue;
  std::vector<AigLit> nmid;
  for (AigLit m : mid) nmid.push_back(aig_not(m));
  const auto diff = add_buses(aig, x, nmid, kAigTrue);  // x - mid (two's c.)
  const AigLit neg = aig_not(diff.back());              // borrow => x < mid
  // Conditional negate for |diff|.
  std::vector<AigLit> mag;
  AigLit carry = neg;
  for (int i = 0; i < n; ++i) {
    const AigLit d = aig.lxor(diff[static_cast<std::size_t>(i)], neg);
    auto [s, c] = full_adder(aig, d, kAigFalse, carry);
    mag.push_back(s);
    carry = c;
  }
  // Saturate: if any bit above the output width is set, all outputs 1.
  AigLit overflow = kAigFalse;
  for (int i = noutputs; i < n; ++i)
    overflow = aig.lor(overflow, mag[static_cast<std::size_t>(i)]);
  for (int i = 0; i < noutputs; ++i)
    aig.add_output(aig.lor(mag[static_cast<std::size_t>(i)], overflow),
                   "y" + std::to_string(i));
  return aig;
}

Aig make_xor_ecc(int ninputs, int noutputs, std::uint64_t seed) {
  // Error-correction-style network: data bits XORed with decode terms
  // built from shared "syndrome" signals. A fraction of the decode logic
  // is rebuilt with a different structure (reversed XOR chains compute the
  // same parity), matching the redundancy real SEC circuits exhibit after
  // synthesis.
  Aig aig("xor_ecc");
  const auto x = add_bus(aig, "x", ninputs);
  Rng rng(seed);

  // Shared syndrome layer.
  std::vector<AigLit> syndrome;
  const int nsyn = std::max(3, ninputs / 6);
  std::vector<std::vector<std::size_t>> syn_taps;
  for (int s = 0; s < nsyn; ++s) {
    std::vector<std::size_t> taps;
    const int k = 3 + static_cast<int>(rng.below(3));
    for (int t = 0; t < k; ++t) taps.push_back(rng.below(x.size()));
    AigLit acc = kAigFalse;
    for (std::size_t t : taps) acc = aig.lxor(acc, x[t]);
    syndrome.push_back(acc);
    syn_taps.push_back(std::move(taps));
  }

  for (int o = 0; o < noutputs; ++o) {
    AigLit acc = x[rng.below(x.size())];
    // Decode term: AND of two syndrome bits (possibly complemented).
    const std::size_t s1 = rng.below(syndrome.size());
    const std::size_t s2 = rng.below(syndrome.size());
    AigLit d1 = syndrome[s1];
    AigLit d2 = syndrome[s2];
    if (rng.flip(0.5)) d1 = aig_not(d1);
    // Structurally different recomputation of syndrome s2 (reversed
    // chain) in a third of the outputs: same function, different nodes.
    if (rng.flip(0.33)) {
      AigLit redo = kAigFalse;
      const auto& taps = syn_taps[s2];
      for (auto it = taps.rbegin(); it != taps.rend(); ++it)
        redo = aig.lxor(redo, x[*it]);
      d2 = redo;
    }
    if (rng.flip(0.5)) d2 = aig_not(d2);
    acc = aig.lxor(acc, aig.land(d1, d2));
    aig.add_output(acc, "y" + std::to_string(o));
  }
  return aig;
}

Aig make_redundant_twin(int ninputs, std::uint64_t seed) {
  // The same random function built twice with different association orders
  // and polarities; the two copies are combined so both drive outputs.
  // Structural hashing cannot merge them, but OS2 substitutions can — this
  // reproduces t481's "drastic collapse" behaviour.
  Aig aig("twin");
  const auto x = add_bus(aig, "x", ninputs);
  Rng rng(seed);

  struct Term {
    std::vector<std::pair<int, bool>> lits;  // (var, complemented)
  };
  std::vector<Term> terms;
  const int nterms = 2 * ninputs;
  for (int t = 0; t < nterms; ++t) {
    Term term;
    const int width = 2 + static_cast<int>(rng.below(3));
    for (int l = 0; l < width; ++l)
      term.lits.emplace_back(static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(ninputs))),
                             rng.flip(0.5));
    terms.push_back(std::move(term));
  }

  auto build = [&](bool reversed, bool demorgan) -> AigLit {
    std::vector<AigLit> ands;
    for (const Term& term : terms) {
      std::vector<AigLit> lits;
      for (auto [v, c] : term.lits) {
        AigLit l = x[static_cast<std::size_t>(v)];
        if (c) l = aig_not(l);
        lits.push_back(l);
      }
      if (reversed) std::reverse(lits.begin(), lits.end());
      ands.push_back(aig.land_many(lits));
    }
    if (reversed) std::reverse(ands.begin(), ands.end());
    if (!demorgan) return aig.lor_many(std::move(ands));
    // OR via linear (not balanced) chain — different structure, same
    // function.
    AigLit acc = kAigFalse;
    for (AigLit a : ands) acc = aig.lor(acc, a);
    return acc;
  };

  const AigLit f1 = build(false, false);
  const AigLit f2 = build(true, true);
  // Both outputs equal f1, but each structurally uses both copies, so the
  // initial mapping keeps the whole doubled cone alive.
  aig.add_output(aig.land(f1, f2), "f");
  aig.add_output(aig.lor(f1, f2), "g");
  return aig;
}

Aig make_priority_interrupt(int channels) {
  Aig aig("pic" + std::to_string(channels));
  const auto req = add_bus(aig, "r", channels);
  const auto mask = add_bus(aig, "m", channels);
  const AigLit master_en = aig.add_input("en");
  int width = 0;
  while ((1 << width) < channels) ++width;

  // active[i] = r[i] & !m[i] & en; highest index wins.
  std::vector<AigLit> active;
  for (int i = 0; i < channels; ++i)
    active.push_back(aig.land(
        aig.land(req[static_cast<std::size_t>(i)],
                 aig_not(mask[static_cast<std::size_t>(i)])),
        master_en));

  // grant[i] = active[i] & none of the higher channels active.
  AigLit higher = kAigFalse;
  std::vector<AigLit> grant(static_cast<std::size_t>(channels), kAigFalse);
  for (int i = channels - 1; i >= 0; --i) {
    grant[static_cast<std::size_t>(i)] =
        aig.land(active[static_cast<std::size_t>(i)], aig_not(higher));
    higher = aig.lor(higher, active[static_cast<std::size_t>(i)]);
  }

  // Encoded index of the granted channel.
  for (int b = 0; b < width; ++b) {
    std::vector<AigLit> ors;
    for (int i = 0; i < channels; ++i)
      if ((i >> b) & 1) ors.push_back(grant[static_cast<std::size_t>(i)]);
    aig.add_output(aig.lor_many(std::move(ors)), "v" + std::to_string(b));
  }
  aig.add_output(higher, "valid");
  // Parity of raw requests (interrupt-bus check bit).
  AigLit par = kAigFalse;
  for (AigLit r : req) par = aig.lxor(par, r);
  aig.add_output(par, "par");
  return aig;
}

Aig make_feistel(int half_width, int rounds, std::uint64_t seed) {
  POWDER_CHECK(half_width % 4 == 0);
  Aig aig("feistel");
  auto left = add_bus(aig, "l", half_width);
  auto right = add_bus(aig, "r", half_width);
  const auto key = add_bus(aig, "k", half_width * rounds);

  // Fixed 4-bit S-box derived from the seed (a permutation of 0..15).
  Rng rng(seed);
  std::array<int, 16> sbox;
  for (int i = 0; i < 16; ++i) sbox[static_cast<std::size_t>(i)] = i;
  for (int i = 15; i > 0; --i)
    std::swap(sbox[static_cast<std::size_t>(i)],
              sbox[rng.below(static_cast<std::uint64_t>(i + 1))]);

  auto sbox_bit = [&](const std::vector<AigLit>& in, int out_bit) {
    // Sum-of-minterms over the 4 inputs.
    std::vector<AigLit> terms;
    for (int m = 0; m < 16; ++m) {
      if (!((sbox[static_cast<std::size_t>(m)] >> out_bit) & 1)) continue;
      std::vector<AigLit> lits;
      for (int b = 0; b < 4; ++b)
        lits.push_back((m >> b) & 1 ? in[static_cast<std::size_t>(b)]
                                    : aig_not(in[static_cast<std::size_t>(b)]));
      terms.push_back(aig.land_many(lits));
    }
    return aig.lor_many(std::move(terms));
  };

  for (int round = 0; round < rounds; ++round) {
    // f(right, k) = P(S(right ^ k)) with a bit-rotation as P.
    std::vector<AigLit> mixed;
    for (int b = 0; b < half_width; ++b)
      mixed.push_back(aig.lxor(
          right[static_cast<std::size_t>(b)],
          key[static_cast<std::size_t>(round * half_width + b)]));
    std::vector<AigLit> substituted(static_cast<std::size_t>(half_width));
    for (int nib = 0; nib < half_width / 4; ++nib) {
      std::vector<AigLit> in(mixed.begin() + 4 * nib,
                             mixed.begin() + 4 * nib + 4);
      for (int b = 0; b < 4; ++b)
        substituted[static_cast<std::size_t>(4 * nib + b)] = sbox_bit(in, b);
    }
    std::vector<AigLit> f(static_cast<std::size_t>(half_width));
    for (int b = 0; b < half_width; ++b)
      f[static_cast<std::size_t>(b)] =
          substituted[static_cast<std::size_t>((b + 5) % half_width)];
    // (L, R) <- (R, L ^ f(R, k)).
    std::vector<AigLit> new_right(static_cast<std::size_t>(half_width));
    for (int b = 0; b < half_width; ++b)
      new_right[static_cast<std::size_t>(b)] =
          aig.lxor(left[static_cast<std::size_t>(b)],
                   f[static_cast<std::size_t>(b)]);
    left = right;
    right = std::move(new_right);
  }
  for (int b = 0; b < half_width; ++b)
    aig.add_output(left[static_cast<std::size_t>(b)],
                   "ol" + std::to_string(b));
  for (int b = 0; b < half_width; ++b)
    aig.add_output(right[static_cast<std::size_t>(b)],
                   "or" + std::to_string(b));
  return aig;
}

Aig make_barrel_rotator(int width) {
  Aig aig("rot" + std::to_string(width));
  const auto data = add_bus(aig, "d", width);
  int stages = 0;
  while ((1 << stages) < width) ++stages;
  const auto amount = add_bus(aig, "s", stages);

  std::vector<AigLit> bus = data;
  for (int st = 0; st < stages; ++st) {
    const int shift = 1 << st;
    std::vector<AigLit> next(static_cast<std::size_t>(width));
    for (int b = 0; b < width; ++b)
      next[static_cast<std::size_t>(b)] =
          aig.lmux(amount[static_cast<std::size_t>(st)],
                   bus[static_cast<std::size_t>((b + width - shift) % width)],
                   bus[static_cast<std::size_t>(b)]);
    bus = std::move(next);
  }
  for (int b = 0; b < width; ++b)
    aig.add_output(bus[static_cast<std::size_t>(b)],
                   "q" + std::to_string(b));
  return aig;
}

SopNetwork make_random_pla(const std::string& name, int ninputs, int noutputs,
                           int ncubes, std::uint64_t seed) {
  Rng rng(seed);
  SopNetwork sop;
  sop.name = name;
  for (int i = 0; i < ninputs; ++i)
    sop.input_names.push_back("x" + std::to_string(i));
  for (int o = 0; o < noutputs; ++o) {
    sop.output_names.push_back("y" + std::to_string(o));
    sop.outputs.emplace_back(ninputs);
  }
  // Controller-class structure: every output has a small *support window*
  // of inputs; neighbouring outputs use overlapping windows. Cubes are
  // dense within the window, so they overlap and contain one another —
  // that is the observability-don't-care-rich character of the MCNC
  // controller PLAs this generator stands in for.
  const int support =
      std::min(ninputs, 9 + static_cast<int>(rng.below(6)));  // 9..14 vars
  auto window_var = [&](int o, int k) {
    // Window of `support` inputs starting at a per-output offset; stride
    // smaller than the window so adjacent outputs share most of it.
    const int stride = std::max(1, support / 3);
    return ((o * stride) % std::max(1, ninputs - support + 1)) + k;
  };
  std::vector<Cube> pool;
  const int cubes_per_output =
      std::clamp(ncubes / std::max(1, noutputs), 2, 7);
  for (int o = 0; o < noutputs; ++o) {
    Cover& cover = sop.outputs[static_cast<std::size_t>(o)];
    for (int c = 0; c < cubes_per_output; ++c) {
      Cube cube(ninputs);
      const int width = 2 + static_cast<int>(rng.below(4));  // 2..5 literals
      for (int l = 0; l < width; ++l) {
        const int v = window_var(
            o, static_cast<int>(rng.below(static_cast<std::uint64_t>(support))));
        cube.set_lit(v, rng.flip(0.5) ? Lit::kOne : Lit::kZero);
      }
      cover.add(cube);
      pool.push_back(cube);
      // Specialization (extra literal) of the same cube on another output:
      // contained wherever both are observed, i.e. a planted ODC.
      if (rng.flip(0.55) && noutputs > 1) {
        Cube narrow = cube;
        const int v = window_var(
            o, static_cast<int>(rng.below(static_cast<std::uint64_t>(support))));
        if (narrow.lit(v) == Lit::kDash)
          narrow.set_lit(v, rng.flip(0.5) ? Lit::kOne : Lit::kZero);
        const int other = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(noutputs)));
        sop.outputs[static_cast<std::size_t>(other)].add(std::move(narrow));
      }
    }
  }
  // Correlated outputs: some outputs are near-copies of a neighbour (cube
  // list with a few drops/additions), the way decoded controller outputs
  // overlap. This feeds OS2/IS2 resubstitution across output cones.
  for (int o = 1; o < noutputs; ++o) {
    if (!rng.flip(0.45)) continue;
    const int src = o - 1;
    Cover derived(ninputs);
    for (const Cube& c : sop.outputs[static_cast<std::size_t>(src)].cubes())
      if (!rng.flip(0.25)) derived.add(c);
    const int extra = static_cast<int>(rng.below(3));
    for (int e = 0; e < extra && !pool.empty(); ++e)
      derived.add(pool[rng.below(pool.size())]);
    if (!derived.empty())
      sop.outputs[static_cast<std::size_t>(o)] = std::move(derived);
  }
  // Guarantee every output is non-trivial.
  for (int o = 0; o < noutputs; ++o) {
    if (!sop.outputs[static_cast<std::size_t>(o)].empty()) continue;
    Cube cube(ninputs);
    cube.set_lit(static_cast<int>(rng.below(
                     static_cast<std::uint64_t>(ninputs))),
                 Lit::kOne);
    cube.set_lit(static_cast<int>(rng.below(
                     static_cast<std::uint64_t>(ninputs))),
                 Lit::kZero);
    sop.outputs[static_cast<std::size_t>(o)].add(cube);
  }
  return sop;
}

Aig make_random_logic(const std::string& name, int ninputs, int noutputs,
                      int nands, std::uint64_t seed) {
  Aig aig(name);
  Rng rng(seed);
  std::vector<AigLit> pool = add_bus(aig, "x", ninputs);
  const std::size_t base = pool.size();
  auto pick = [&]() {
    // Bias toward recent nodes for a layered, deep structure.
    const std::size_t n = pool.size();
    std::size_t idx;
    if (n > base && rng.flip(0.7))
      idx = n - 1 - rng.below(std::min<std::uint64_t>(n - base, 24));
    else
      idx = rng.below(n);
    AigLit l = pool[idx];
    if (rng.flip(0.45)) l = aig_not(l);
    return l;
  };
  while (aig.num_ands() < nands) {
    const double roll = rng.uniform();
    AigLit made;
    if (roll < 0.58) {
      made = aig.land(pick(), pick());
    } else if (roll < 0.70) {
      made = aig.lxor(pick(), pick());
    } else if (roll < 0.78) {
      made = aig.lmux(pick(), pick(), pick());
    } else if (roll < 0.88) {
      // Locally reducible idiom: f = a & (a | b) (== a) or
      // f = a ^ (a & b) (== a & !b). Structural hashing does not simplify
      // these; they are exactly the observability-don't-care food POWDER
      // lives on.
      const AigLit a = pick();
      const AigLit b = pick();
      made = rng.flip(0.5) ? aig.land(a, aig.lor(a, b))
                           : aig.lxor(a, aig.land(a, b));
    } else {
      // Structural twin wider than the mapper's cut size: the same
      // 5-input function built in two different shapes, both kept live.
      // The mapper cannot merge them (different structure, too wide for
      // one cut); only a resubstitution pass like POWDER can — real
      // netlists are full of such cross-module duplication.
      const AigLit a = pick(), b = pick(), c = pick(), d = pick(),
                   e = pick();
      const AigLit p = aig.land(a, b);
      const AigLit q = aig.land(c, d);
      // Two association orders of p | q | e: structural hashing cannot
      // merge them because the intermediate OR nodes differ.
      const AigLit t1 = aig.lor(aig.lor(p, q), e);
      const AigLit t2 = aig.lor(aig.lor(p, e), q);
      if (t1 > kAigTrue && t1 != t2) pool.push_back(t1);
      made = t2;
    }
    if (made > kAigTrue) pool.push_back(made);
  }
  // Outputs from the deep end of the pool, ensuring variety.
  for (int o = 0; o < noutputs; ++o) {
    const std::size_t span = std::max<std::size_t>(pool.size() - base, 1);
    const std::size_t idx =
        base + (span - 1) - rng.below(std::min<std::uint64_t>(span, 64));
    AigLit l = pool[std::min(idx, pool.size() - 1)];
    if (rng.flip(0.3)) l = aig_not(l);
    aig.add_output(l, "y" + std::to_string(o));
  }
  return aig;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ull;
  }
  return h;
}

Aig from_pla(const std::string& name, int in, int out, int cubes) {
  FlowOptions opt;
  return synthesize(make_random_pla(name, in, out, cubes, name_seed(name)),
                    opt);
}

using MakeFn = std::function<Aig()>;

const std::map<std::string, MakeFn>& registry() {
  static const auto* kMap = new std::map<std::string, MakeFn>{
      // --- exact functional generators --------------------------------
      {"comp", [] { return make_comparator(8); }},
      {"Z5xp1", [] { return make_multiplier(3); }},
      {"clip", [] { return make_clip(9, 5); }},
      {"f51m", [] { return make_multiplier(4); }},
      {"rd84", [] { return make_rd(8); }},
      {"9sym", [] { return make_symmetric(9, 3, 6); }},
      {"9symml", [] { return make_symmetric(9, 3, 6); }},
      {"Z9sym", [] { return make_symmetric(9, 2, 5); }},
      {"alu2", [] { return make_alu(2); }},
      {"alu4", [] { return make_alu(4); }},
      {"alu4tl", [] { return make_alu(3); }},
      {"t481", [] { return make_redundant_twin(16, name_seed("t481")); }},
      {"C1355",
       [] { return make_xor_ecc(41, 32, name_seed("C1355")); }},
      {"C1908",
       [] { return make_xor_ecc(33, 25, name_seed("C1908")); }},
      {"dalu", [] { return make_alu(6); }},
      // --- PLA-class (seeded synthetic) --------------------------------
      {"frg1", [] { return from_pla("frg1", 28, 3, 60); }},
      {"term1", [] { return from_pla("term1", 34, 10, 90); }},
      {"bw", [] { return from_pla("bw", 5, 28, 40); }},
      {"ttt2", [] { return from_pla("ttt2", 24, 21, 140); }},
      {"i2", [] { return from_pla("i2", 100, 1, 70); }},
      {"x1", [] { return from_pla("x1", 51, 35, 240); }},
      {"example2", [] { return from_pla("example2", 85, 66, 330); }},
      {"ex5", [] { return from_pla("ex5", 8, 63, 250); }},
      {"x4", [] { return from_pla("x4", 94, 71, 380); }},
      {"duke2", [] { return from_pla("duke2", 22, 29, 180); }},
      {"pdc", [] { return from_pla("pdc", 16, 40, 220); }},
      {"ex4", [] { return from_pla("ex4", 94, 28, 200); }},
      {"spla", [] { return from_pla("spla", 16, 46, 280); }},
      {"vda", [] { return from_pla("vda", 17, 39, 260); }},
      {"misex3", [] { return from_pla("misex3", 14, 14, 160); }},
      {"frg2", [] { return from_pla("frg2", 80, 70, 420); }},
      {"apex5", [] { return from_pla("apex5", 90, 70, 450); }},
      {"i8", [] { return from_pla("i8", 100, 60, 480); }},
      {"table5", [] { return from_pla("table5", 17, 15, 180); }},
      {"cps", [] { return from_pla("cps", 24, 80, 500); }},
      {"k2", [] { return from_pla("k2", 45, 45, 520); }},
      {"apex1", [] { return from_pla("apex1", 45, 45, 560); }},
      {"des", [] { return make_feistel(32, 3, name_seed("des")); }},
      // --- ISCAS-class (seeded synthetic netlists) ---------------------
      {"c8",
       [] { return make_random_logic("c8", 28, 18, 140, name_seed("c8")); }},
      {"C432", [] { return make_priority_interrupt(16); }},
      {"apex7",
       [] {
         return make_random_logic("apex7", 49, 37, 230, name_seed("apex7"));
       }},
      {"C880",
       [] {
         return make_random_logic("C880", 60, 26, 300, name_seed("C880"));
       }},
      {"rot", [] { return make_barrel_rotator(48); }},
      {"apex6",
       [] {
         return make_random_logic("apex6", 120, 90, 430, name_seed("apex6"));
       }},
      {"x3",
       [] { return make_random_logic("x3", 120, 90, 400, name_seed("x3")); }},
      {"C5315",
       [] {
         return make_random_logic("C5315", 140, 100, 650,
                                  name_seed("C5315"));
       }},
      {"pair",
       [] {
         return make_random_logic("pair", 130, 110, 600, name_seed("pair"));
       }},
  };
  return *kMap;
}

}  // namespace

std::vector<std::string> table1_suite() {
  // Paper order (Table 1, sorted by initial area).
  return {
      "comp",   "Z5xp1",    "clip", "frg1",  "c8",     "term1", "f51m",
      "rd84",   "bw",       "ttt2", "C432",  "i2",     "Z9sym", "apex7",
      "alu4tl", "9sym",     "9symml", "x1",  "example2", "ex5", "alu2",
      "x4",     "C880",     "C1355", "duke2", "pdc",   "C1908", "ex4",
      "t481",   "rot",      "spla", "vda",   "misex3", "frg2",  "alu4",
      "apex6",  "x3",       "apex5", "dalu", "i8",     "table5", "cps",
      "k2",     "C5315",    "apex1", "pair", "des",
  };
}

std::vector<std::string> fig6_suite() {
  return {"comp", "Z5xp1", "clip", "f51m", "rd84", "9sym",
          "ttt2", "duke2", "misex3", "alu2", "t481", "bw",
          "spla", "vda",  "table5", "pdc",  "ex5",  "apex1"};
}

std::vector<std::string> quick_suite() {
  return {"comp", "Z5xp1", "rd84", "misex3", "duke2", "t481"};
}

bool is_known_benchmark(const std::string& name) {
  return registry().count(name) > 0;
}

Aig make_benchmark(const std::string& name) {
  const auto it = registry().find(name);
  POWDER_CHECK_MSG(it != registry().end(), "unknown benchmark " << name);
  Aig aig = it->second();
  aig.set_name(name);
  return aig;
}

Netlist make_scale_netlist(int num_gates, std::uint64_t seed) {
  POWDER_CHECK_MSG(num_gates >= 10,
                   "make_scale_netlist needs at least one 10-gate tile, got "
                       << num_gates);
  const std::shared_ptr<const CellLibrary> lib = CellLibrary::standard_shared();
  Netlist nl(lib, "scale" + std::to_string(num_gates));
  const std::vector<CellId>& two_in = lib->two_input_cells();
  POWDER_CHECK(!two_in.empty());
  Rng rng(seed);

  const int tiles = num_gates / 10;
  // Shared PI pool, stride 4: neighbouring tiles overlap on half their
  // inputs, so windows cut mid-tile still see correlated boundary signals.
  const int pool = std::min(4096, std::max(16, num_gates / 50));
  std::vector<GateId> pis;
  pis.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i)
    pis.push_back(nl.add_input("pi" + std::to_string(i)));

  const CellId and2 = lib->find("and2");
  for (int t = 0; t < tiles; ++t) {
    const auto pi = [&](int j) { return pis[(4 * t + j) % pool]; };
    const CellId g = two_in[rng.below(two_in.size())];
    const std::string p = "t" + std::to_string(t) + "_";
    // Ten gates per tile with two planted, provable gains: r1 computes
    // exactly a1, so r2's input is OS2-substitutable by a1 and r1 becomes
    // sweepable (a pair-class win); k2 = and2(and2(pi4,pi5), pi6) computes
    // exactly and3(pi4,pi5,pi6) with a single-fanout intermediate, a cone
    // only a k-input resubstitution (OSK, k=3) can collapse — no pair
    // class can express a 3-input function of primary inputs.
    const GateId a1 = nl.add_gate(g, {pi(0), pi(1)}, p + "a1");
    const GateId a2 = nl.add_gate(g, {pi(2), pi(3)}, p + "a2");
    const GateId a3 = nl.add_gate(g, {pi(6), pi(7)}, p + "a3");
    const GateId b1 = nl.add_gate(g, {a1, a2}, p + "b1");
    const GateId k1 = nl.add_gate(and2, {pi(4), pi(5)}, p + "k1");
    const GateId k2 = nl.add_gate(and2, {k1, pi(6)}, p + "k2");
    const GateId c1 = nl.add_gate(g, {b1, k2}, p + "c1");
    const GateId r1 = nl.add_gate(g, {pi(0), pi(1)}, p + "r1");
    const GateId r2 = nl.add_gate(g, {r1, pi(2)}, p + "r2");
    const GateId c2 = nl.add_gate(g, {r2, a3}, p + "c2");
    nl.add_output(p + "o1", c1);
    nl.add_output(p + "o2", c2);
  }
  return nl;
}

}  // namespace powder
