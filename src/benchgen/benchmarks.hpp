#pragma once
// Deterministic benchmark-circuit generators.
//
// The paper evaluates on MCNC'91 / ISCAS'85 circuits that are not
// redistributable here, so this module builds *synthetic stand-ins* with
// the same names, matched input/output counts, and the same structural
// character (see DESIGN.md §4):
//  * arithmetic/symmetric circuits (comp, rd84, 9sym, f51m, alu*, clip,
//    Z5xp1, t481, C1355-like) are generated exactly from their defining
//    functions;
//  * PLA-class circuits (duke2, misex3, apex*, spla, ...) are seeded
//    random multi-output PLAs with shared cubes;
//  * ISCAS-class netlists (C432 ... C5315, rot, pair, des) are seeded
//    random AIGs with locally reducible (ODC-rich) idioms mixed in.
// Every generator is pure: same name -> same circuit, on every platform.

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "flow/flow.hpp"
#include "netlist/netlist.hpp"

namespace powder {

/// All Table-1 circuit names in the paper's order (sorted by initial area).
std::vector<std::string> table1_suite();

/// The 18-circuit subset used for the Figure-6 power-delay trade-off.
std::vector<std::string> fig6_suite();

/// A small suite for quick smoke runs (seconds, not minutes).
std::vector<std::string> quick_suite();

/// Builds the named benchmark as an AIG. Throws CheckError for unknown
/// names.
Aig make_benchmark(const std::string& name);

/// True if `name` is in the registry.
bool is_known_benchmark(const std::string& name);

// ---- reusable circuit constructors (also handy for tests/examples) ------

/// n-bit magnitude comparator: outputs (a>b, a==b, a<b).
Aig make_comparator(int nbits);
/// Ripple-carry adder: a[n] + b[n] + cin -> sum[n], cout.
Aig make_adder(int nbits);
/// Array multiplier: a[n] * b[n] -> p[2n].
Aig make_multiplier(int nbits);
/// Count-of-ones (rd-class): n inputs -> ceil(log2(n+1)) sum bits.
Aig make_rd(int ninputs);
/// Symmetric threshold: 1 iff popcount(x) in [lo, hi].
Aig make_symmetric(int ninputs, int lo, int hi);
/// Odd parity of n inputs.
Aig make_parity(int ninputs);
/// Small ALU: op(2 bits) selects a+b / a-b / a&b / a^b over n-bit operands.
Aig make_alu(int nbits);
/// Saturating |x - bias| >> shift clipper (clip-like).
Aig make_clip(int ninputs, int noutputs);
/// XOR-dominated ECC-style network (C1355-like).
Aig make_xor_ecc(int ninputs, int noutputs, std::uint64_t seed);
/// Function built twice with different structure and ANDed — massively
/// redundant on purpose (t481-like; POWDER should collapse one copy).
Aig make_redundant_twin(int ninputs, std::uint64_t seed);
/// Priority interrupt controller (C432-like): masked requests, encoded
/// index of the highest-priority active channel, valid + parity flags.
Aig make_priority_interrupt(int channels);
/// Feistel block-cipher round network (des-like): 4-bit S-boxes from a
/// seeded fixed table, XOR key mixing, `rounds` rounds over 2x`half` bits.
Aig make_feistel(int half_width, int rounds, std::uint64_t seed);
/// Barrel rotator (rot-like): log-stage left-rotate of `width` bits by a
/// binary-encoded amount.
Aig make_barrel_rotator(int width);
/// Seeded random multi-output PLA, synthesized through the standard flow
/// front end (two-level minimization off for wide covers).
SopNetwork make_random_pla(const std::string& name, int ninputs, int noutputs,
                           int ncubes, std::uint64_t seed);
/// Seeded random AIG with injected locally-reducible idioms.
Aig make_random_logic(const std::string& name, int ninputs, int noutputs,
                      int nands, std::uint64_t seed);

/// Large already-mapped netlist for scaling experiments (10^5-10^6 gates):
/// `num_gates/10` independent 10-gate tiles over a shared primary-input
/// pool, each containing a duplicated cone (an OS2 opportunity the window
/// optimizer can collapse). The fanout-bounded tile structure keeps proof
/// cones shallow, so runtime scales with per-candidate work, not depth.
/// Built directly against CellLibrary::standard_shared() — no mapping pass,
/// so even a 10^6-gate instance constructs in well under a second.
Netlist make_scale_netlist(int num_gates, std::uint64_t seed = 1);

}  // namespace powder
