#include "power/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace powder {

namespace {

// Mirrors the report writer's table (api.cpp); indexed by ResubClass. Kept
// local so src/power/ stays independent of the optimizer headers.
const char* kClassNames[kAttributionClasses] = {"OS2", "IS2", "OS3", "IS3",
                                                "OSK", "ISK", "FUNCRED"};

void append_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

PowerAttribution::PowerAttribution(int top_k)
    : top_k_(top_k < 0 ? 0 : top_k) {}

PowerAttribution::~PowerAttribution() {
  if (attached_ && netlist_ != nullptr) netlist_->detach_observer(this);
}

void PowerAttribution::begin_run(const Netlist* netlist,
                                 const PowerModel* model) {
  netlist_ = netlist;
  model_ = model;
  model_name_ = power_model_name(model->kind());
  if (!attached_) {
    netlist_->attach_observer(this);
    attached_ = true;
  }
  last_epoch_ = netlist_->epoch();
  sweep(&before_);
}

void PowerAttribution::end_run() {
  if (netlist_ == nullptr) return;
  sweep(&after_);
  if (attached_) {
    netlist_->detach_observer(this);
    attached_ = false;
  }
  // Both the netlist and the power model live on optimize()'s stack; the
  // attribution sink outlives the run (the CLI serializes after optimize()
  // returns), so drop the borrowed pointers the moment the run ends.
  netlist_ = nullptr;
  model_ = nullptr;
}

void PowerAttribution::record_commit(int cls, int window, double power_delta) {
  ledger_.push_back(LedgerEntry{cls, window, power_delta});
  class_gain_[cls] += power_delta;
  class_applied_[cls] += 1;
  WindowAgg& w = by_window_[window];
  w.commits += 1;
  w.gain += power_delta;
  ++commits_recorded_;
}

void PowerAttribution::record_rollback() {
  if (ledger_.empty()) return;
  const LedgerEntry rec = ledger_.back();
  ledger_.pop_back();
  class_gain_[rec.cls] -= rec.power_delta;
  class_applied_[rec.cls] -= 1;
  WindowAgg& w = by_window_[rec.window];
  w.commits -= 1;
  w.gain -= rec.power_delta;
  ++rollbacks_recorded_;
}

void PowerAttribution::on_delta(const NetlistDelta& delta) {
  ++deltas_observed_;
  if (delta.epoch > last_epoch_) last_epoch_ = delta.epoch;
}

void PowerAttribution::sweep(Snapshot* out) const {
  out->taken = true;
  out->sum = 0.0;
  out->gates = 0;
  out->top.clear();
  out->by_cell.clear();

  const Netlist& nl = *netlist_;
  std::vector<std::pair<double, GateId>> ranked;
  // Same iteration set and accumulation order as total_power(): ascending
  // gate id, live gates only, primary outputs excluded. This is what makes
  // `sum == total_power()` a bitwise identity rather than a tolerance.
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g)) continue;
    if (nl.kind(g) == GateKind::kOutput) continue;
    const double p = model_->signal_power(g);
    out->sum += p;
    out->gates += 1;
    ranked.emplace_back(p, g);
    const char* cell = nl.kind(g) == GateKind::kInput
                           ? "<input>"
                           : nl.cell_of(g).name.c_str();
    CellAgg& agg = out->by_cell[cell];
    agg.power += p;
    agg.gates += 1;
  }
  out->total_power = model_->total_power();

  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const std::size_t k =
      std::min(ranked.size(), static_cast<std::size_t>(top_k_));
  out->top.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    TopGate t;
    t.gate = ranked[i].second;
    t.name = std::string(nl.gate_name(t.gate));
    t.cell = nl.kind(t.gate) == GateKind::kInput
                 ? "<input>"
                 : nl.cell_of(t.gate).name;
    t.power = ranked[i].first;
    out->top.push_back(std::move(t));
  }
}

std::string PowerAttribution::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema_version\":" << kAttributionSchemaVersion;
  os << ",\"model\":"
     << json_quote(model_name_.empty() ? "none" : model_name_);
  os << ",\"top_k\":" << top_k_;
  os << ",\"total_power_before\":";
  append_number(os, before_.total_power);
  os << ",\"total_power_after\":";
  append_number(os, after_.total_power);
  os << ",\"contribution_sum_before\":";
  append_number(os, before_.sum);
  os << ",\"contribution_sum_after\":";
  append_number(os, after_.sum);
  os << ",\"gates_before\":" << before_.gates;
  os << ",\"gates_after\":" << after_.gates;
  os << ",\"deltas_observed\":" << deltas_observed_;
  os << ",\"last_epoch\":" << last_epoch_;
  os << ",\"commits_recorded\":" << commits_recorded_;
  os << ",\"rollbacks_recorded\":" << rollbacks_recorded_;

  const auto dump_top = [&os](const char* key,
                              const std::vector<TopGate>& top) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < top.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"gate\":" << top[i].gate << ",\"name\":"
         << json_quote(top[i].name) << ",\"cell\":" << json_quote(top[i].cell)
         << ",\"power\":";
      append_number(os, top[i].power);
      os << "}";
    }
    os << "]";
  };
  dump_top("top_gates_before", before_.top);
  dump_top("top_gates_after", after_.top);

  // Union of cell kinds over both snapshots, in lexicographic order.
  os << ",\"by_cell\":{";
  {
    std::map<std::string, std::pair<CellAgg, CellAgg>> merged;
    for (const auto& [name, agg] : before_.by_cell) merged[name].first = agg;
    for (const auto& [name, agg] : after_.by_cell) merged[name].second = agg;
    bool first = true;
    for (const auto& [name, pair] : merged) {
      if (!first) os << ",";
      first = false;
      os << json_quote(name) << ":{\"power_before\":";
      append_number(os, pair.first.power);
      os << ",\"gates_before\":" << pair.first.gates << ",\"power_after\":";
      append_number(os, pair.second.power);
      os << ",\"gates_after\":" << pair.second.gates << "}";
    }
  }
  os << "}";

  os << ",\"by_class\":{";
  for (int i = 0; i < kAttributionClasses; ++i) {
    if (i != 0) os << ",";
    os << "\"" << kClassNames[i] << "\":{\"applied\":" << class_applied_[i]
       << ",\"gain\":";
    append_number(os, class_gain_[i]);
    os << "}";
  }
  os << "}";

  os << ",\"by_window\":[";
  {
    bool first = true;
    for (const auto& [window, agg] : by_window_) {
      if (!first) os << ",";
      first = false;
      os << "{\"window\":" << window << ",\"commits\":" << agg.commits
         << ",\"gain\":";
      append_number(os, agg.gain);
      os << "}";
    }
  }
  os << "]}";
  return os.str();
}

bool validate_attribution_json(const std::string& text, std::string* error) {
  std::string parse_error;
  const auto root = json_parse(text, &parse_error);
  if (root == nullptr) {
    *error = "attribution: parse failure: " + parse_error;
    return false;
  }
  if (!root->is_object()) {
    *error = "attribution: root is not an object";
    return false;
  }
  const JsonValue* ver = root->find_number("schema_version");
  if (ver == nullptr ||
      ver->as_number() != static_cast<double>(kAttributionSchemaVersion)) {
    *error = "attribution: missing or unexpected schema_version";
    return false;
  }
  if (root->find_string("model") == nullptr) {
    *error = "attribution: missing model";
    return false;
  }
  const char* kNumbers[] = {"total_power_before", "total_power_after",
                            "contribution_sum_before",
                            "contribution_sum_after"};
  double nums[4];
  for (int i = 0; i < 4; ++i) {
    const JsonValue* v = root->find_number(kNumbers[i]);
    if (v == nullptr) {
      *error = std::string("attribution: missing number ") + kNumbers[i];
      return false;
    }
    nums[i] = v->as_number();
  }
  // The hard invariant: the per-gate sweep reproduces total_power()
  // exactly, so the round-tripped doubles must be equal, not close.
  if (nums[2] != nums[0]) {
    *error = "attribution: contribution_sum_before != total_power_before";
    return false;
  }
  if (nums[3] != nums[1]) {
    *error = "attribution: contribution_sum_after != total_power_after";
    return false;
  }

  for (const char* key : {"top_gates_before", "top_gates_after"}) {
    const JsonValue* arr = root->find_array(key);
    if (arr == nullptr) {
      *error = std::string("attribution: missing array ") + key;
      return false;
    }
    double prev = std::numeric_limits<double>::infinity();
    for (const JsonValue& item : arr->items()) {
      if (!item.is_object() || item.find_number("gate") == nullptr ||
          item.find_string("name") == nullptr ||
          item.find_string("cell") == nullptr ||
          item.find_number("power") == nullptr) {
        *error = std::string("attribution: malformed entry in ") + key;
        return false;
      }
      const double p = item.find_number("power")->as_number();
      if (p > prev) {
        *error = std::string("attribution: ") + key + " not sorted";
        return false;
      }
      prev = p;
    }
  }

  const JsonValue* by_class = root->find_object("by_class");
  if (by_class == nullptr) {
    *error = "attribution: missing by_class";
    return false;
  }
  double gain_sum = 0.0;
  for (const char* name : kClassNames) {
    const JsonValue* cls = by_class->find_object(name);
    if (cls == nullptr || cls->find_number("applied") == nullptr ||
        cls->find_number("gain") == nullptr) {
      *error = std::string("attribution: missing class ") + name;
      return false;
    }
    gain_sum += cls->find_number("gain")->as_number();
  }
  // Ledger vs end-to-end drop: telescoped commit deltas and the single
  // subtraction accumulate in different orders, so this one is tolerant.
  const double drop = nums[0] - nums[1];
  const double scale = std::max({1.0, std::fabs(nums[0]), std::fabs(nums[1])});
  if (std::fabs(gain_sum - drop) > 1e-6 * scale) {
    *error = "attribution: class gains do not sum to the power drop";
    return false;
  }

  if (root->find_array("by_window") == nullptr) {
    *error = "attribution: missing by_window";
    return false;
  }
  error->clear();
  return true;
}

}  // namespace powder
