#include "power/glitch.hpp"

#include <span>

#include <algorithm>
#include <map>
#include <queue>

#include "timing/timing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {

namespace {

/// Steady-state (zero-time) evaluation of one input vector.
void settle(const Netlist& nl, const std::vector<GateId>& topo,
            const std::vector<bool>& pi_values, std::vector<std::uint8_t>* val) {
  for (int i = 0; i < nl.num_inputs(); ++i)
    (*val)[nl.inputs()[static_cast<std::size_t>(i)]] =
        pi_values[static_cast<std::size_t>(i)] ? 1 : 0;
  for (GateId g : topo) {
    if (nl.kind(g) == GateKind::kInput) continue;
    if (nl.kind(g) == GateKind::kOutput) {
      (*val)[g] = (*val)[nl.fanin(g, 0)];
      continue;
    }
    const std::span<const GateId> fanins = nl.fanins(g);
    const TruthTable& f = nl.cell_of(g).function;
    std::uint64_t idx = 0;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
      if ((*val)[fanins[static_cast<std::size_t>(pin)]]) idx |= 1ull << pin;
    (*val)[g] = f.bit(idx) ? 1 : 0;
  }
}

}  // namespace

GlitchEstimate estimate_glitch_power(const Netlist& netlist,
                                     const GlitchOptions& options) {
  GlitchEstimate out;
  const std::vector<GateId>& topo = netlist.topo_order();
  const std::size_t slots = netlist.num_slots();

  std::vector<double> pi_probs = options.pi_probs;
  if (pi_probs.empty())
    pi_probs.assign(static_cast<std::size_t>(netlist.num_inputs()), 0.5);
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == netlist.num_inputs());

  // Per-gate propagation delay (fixed load during the analysis).
  std::vector<double> delay(slots, 0.0);
  for (GateId g = 0; g < slots; ++g)
    if (netlist.alive(g)) delay[g] = gate_delay(netlist, g);

  std::vector<double> zero_transitions(slots, 0.0);
  std::vector<double> timed_transitions(slots, 0.0);

  Rng rng(options.seed);
  std::vector<std::uint8_t> val(slots, 0);
  std::vector<bool> v1(static_cast<std::size_t>(netlist.num_inputs()));
  std::vector<bool> v2 = v1;

  for (int pair = 0; pair < options.num_vector_pairs; ++pair) {
    for (int i = 0; i < netlist.num_inputs(); ++i) {
      v1[static_cast<std::size_t>(i)] =
          rng.flip(pi_probs[static_cast<std::size_t>(i)]);
      v2[static_cast<std::size_t>(i)] =
          rng.flip(pi_probs[static_cast<std::size_t>(i)]);
    }
    settle(netlist, topo, v1, &val);
    std::vector<std::uint8_t> initial = val;

    // Event-driven propagation of the v1 -> v2 edge (transport delays).
    // An event (t, g, v) means: at time t, signal g takes value v. When a
    // signal actually changes, each fanout gate is re-evaluated against
    // the *current* signal values and its new output is scheduled after
    // its own propagation delay.
    struct Event {
      double time;
      GateId gate;
      std::uint8_t value;
      bool operator>(const Event& o) const { return time > o.time; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    for (int i = 0; i < netlist.num_inputs(); ++i) {
      const GateId g = netlist.inputs()[static_cast<std::size_t>(i)];
      const std::uint8_t want = v2[static_cast<std::size_t>(i)] ? 1 : 0;
      if (val[g] != want) queue.push(Event{0.0, g, want});
    }
    // Events sharing a timestamp are applied as one batch and the affected
    // gates re-evaluated once — simultaneous input changes must not be
    // serialized into phantom glitches.
    int guard = 0;
    const int guard_limit =
        1000 * static_cast<int>(topo.size()) + 10000;  // glitch storms cap
    std::vector<GateId> dirty_sinks;
    while (!queue.empty() && guard++ < guard_limit) {
      const double now = queue.top().time;
      dirty_sinks.clear();
      while (!queue.empty() && queue.top().time == now) {
        const Event ev = queue.top();
        queue.pop();
        if (val[ev.gate] == ev.value) continue;  // absorbed
        val[ev.gate] = ev.value;
        timed_transitions[ev.gate] += 1.0;
        for (const FanoutRef& br : netlist.fanouts(ev.gate))
          dirty_sinks.push_back(br.gate);
      }
      // Unique-ify cheaply; duplicate evaluations would be harmless but
      // would schedule duplicate (identical) events.
      std::sort(dirty_sinks.begin(), dirty_sinks.end());
      dirty_sinks.erase(std::unique(dirty_sinks.begin(), dirty_sinks.end()),
                        dirty_sinks.end());
      for (GateId s : dirty_sinks) {
        std::uint8_t newval;
        if (netlist.kind(s) == GateKind::kOutput) {
          newval = val[netlist.fanin(s, 0)];
        } else {
          const std::span<const GateId> fanins = netlist.fanins(s);
          const TruthTable& f = netlist.cell_of(s).function;
          std::uint64_t idx = 0;
          for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
            if (val[fanins[static_cast<std::size_t>(pin)]])
              idx |= 1ull << pin;
          newval = f.bit(idx) ? 1 : 0;
        }
        queue.push(Event{now + delay[s], s, newval});
      }
    }

    for (GateId g = 0; g < slots; ++g)
      if (netlist.alive(g) && val[g] != initial[g])
        zero_transitions[g] += 1.0;
  }

  out.timed_activity.assign(slots, 0.0);
  const double n = static_cast<double>(options.num_vector_pairs);
  for (GateId g = 0; g < slots; ++g) {
    if (!netlist.alive(g) || netlist.kind(g) == GateKind::kOutput) continue;
    const double cap = netlist.signal_cap(g);
    out.zero_delay_power += cap * zero_transitions[g] / n;
    out.timed_power += cap * timed_transitions[g] / n;
    out.timed_activity[g] = timed_transitions[g] / n;
  }
  return out;
}

}  // namespace powder
