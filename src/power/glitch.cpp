#include "power/glitch.hpp"

#include <span>

#include <algorithm>
#include <map>
#include <queue>

#include "timing/timing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {

namespace {

/// Steady-state (zero-time) evaluation of one input vector.
void settle(const Netlist& nl, const std::vector<GateId>& topo,
            const std::vector<bool>& pi_values, std::vector<std::uint8_t>* val) {
  for (int i = 0; i < nl.num_inputs(); ++i)
    (*val)[nl.inputs()[static_cast<std::size_t>(i)]] =
        pi_values[static_cast<std::size_t>(i)] ? 1 : 0;
  for (GateId g : topo) {
    if (nl.kind(g) == GateKind::kInput) continue;
    if (nl.kind(g) == GateKind::kOutput) {
      (*val)[g] = (*val)[nl.fanin(g, 0)];
      continue;
    }
    const std::span<const GateId> fanins = nl.fanins(g);
    const TruthTable& f = nl.cell_of(g).function;
    std::uint64_t idx = 0;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
      if ((*val)[fanins[static_cast<std::size_t>(pin)]]) idx |= 1ull << pin;
    (*val)[g] = f.bit(idx) ? 1 : 0;
  }
}

}  // namespace

GlitchEstimate estimate_glitch_power(const Netlist& netlist,
                                     const GlitchOptions& options) {
  GlitchEstimate out;
  const std::vector<GateId>& topo = netlist.topo_order();
  const std::size_t slots = netlist.num_slots();

  // Resolve the stimulus spec: empty = independent 0.5; probabilities
  // without toggle densities = temporally independent chains.
  std::vector<double> pi_probs = options.stimulus.prob;
  if (pi_probs.empty())
    pi_probs.assign(static_cast<std::size_t>(netlist.num_inputs()), 0.5);
  POWDER_CHECK_MSG(static_cast<int>(pi_probs.size()) == netlist.num_inputs(),
                   "glitch stimulus size does not match the input count");
  std::vector<double> pi_toggle = options.stimulus.toggle;
  if (pi_toggle.empty()) {
    pi_toggle.resize(pi_probs.size());
    for (std::size_t i = 0; i < pi_probs.size(); ++i)
      pi_toggle[i] = 2.0 * pi_probs[i] * (1.0 - pi_probs[i]);
  }
  POWDER_CHECK_MSG(pi_toggle.size() == pi_probs.size(),
                   "glitch stimulus toggle size does not match its probs");
  // Per-input chain transition probabilities P(1->0) and P(0->1).
  std::vector<double> fall(pi_probs.size(), 0.0), rise(pi_probs.size(), 0.0);
  for (std::size_t i = 0; i < pi_probs.size(); ++i) {
    const double p = pi_probs[i], d = pi_toggle[i];
    POWDER_CHECK_MSG(d >= 0.0 &&
                         d <= 2.0 * std::min(p, 1.0 - p) + 1e-12,
                     "glitch stimulus toggle density out of range");
    fall[i] = p > 0.0 ? std::min(1.0, d / (2.0 * p)) : 0.0;
    rise[i] = p < 1.0 ? std::min(1.0, d / (2.0 * (1.0 - p))) : 0.0;
  }

  // Per-gate propagation delay (fixed load during the analysis).
  std::vector<double> delay(slots, 0.0);
  for (GateId g = 0; g < slots; ++g)
    if (netlist.alive(g)) delay[g] = gate_delay(netlist, g);

  std::vector<double> zero_transitions(slots, 0.0);
  std::vector<double> timed_transitions(slots, 0.0);
  std::vector<double> ones(slots, 0.0);

  const long event_budget =
      options.max_events_per_pair > 0
          ? options.max_events_per_pair
          : 1000 * static_cast<long>(topo.size()) + 10000;

  Rng rng(options.seed);
  std::vector<std::uint8_t> val(slots, 0);
  std::vector<bool> v1(static_cast<std::size_t>(netlist.num_inputs()));
  std::vector<bool> v2 = v1;

  for (int pair = 0; pair < options.num_vector_pairs; ++pair) {
    for (int i = 0; i < netlist.num_inputs(); ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      v1[si] = rng.flip(pi_probs[si]);
      // One Markov-chain step from v1: toggle with the state-conditional
      // transition probability (reduces to an independent redraw when the
      // stimulus is the independent model).
      const bool toggles = rng.flip(v1[si] ? fall[si] : rise[si]);
      v2[si] = toggles ? !v1[si] : v1[si];
    }
    settle(netlist, topo, v1, &val);
    std::vector<std::uint8_t> initial = val;

    // Event-driven propagation of the v1 -> v2 edge (transport delays).
    // An event (t, g, v) means: at time t, signal g takes value v. When a
    // signal actually changes, each fanout gate is re-evaluated against
    // the *current* signal values and its new output is scheduled after
    // its own propagation delay.
    struct Event {
      double time;
      GateId gate;
      std::uint8_t value;
      bool operator>(const Event& o) const { return time > o.time; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    for (int i = 0; i < netlist.num_inputs(); ++i) {
      const GateId g = netlist.inputs()[static_cast<std::size_t>(i)];
      const std::uint8_t want = v2[static_cast<std::size_t>(i)] ? 1 : 0;
      if (val[g] != want) queue.push(Event{0.0, g, want});
    }
    // Events sharing a timestamp are applied as one batch and the affected
    // gates re-evaluated once — simultaneous input changes must not be
    // serialized into phantom glitches.
    long steps = 0;
    std::vector<GateId> dirty_sinks;
    while (!queue.empty() && steps < event_budget) {
      ++steps;
      const double now = queue.top().time;
      dirty_sinks.clear();
      while (!queue.empty() && queue.top().time == now) {
        const Event ev = queue.top();
        queue.pop();
        if (val[ev.gate] == ev.value) continue;  // absorbed
        val[ev.gate] = ev.value;
        timed_transitions[ev.gate] += 1.0;
        for (const FanoutRef& br : netlist.fanouts(ev.gate))
          dirty_sinks.push_back(br.gate);
      }
      // Unique-ify cheaply; duplicate evaluations would be harmless but
      // would schedule duplicate (identical) events.
      std::sort(dirty_sinks.begin(), dirty_sinks.end());
      dirty_sinks.erase(std::unique(dirty_sinks.begin(), dirty_sinks.end()),
                        dirty_sinks.end());
      for (GateId s : dirty_sinks) {
        std::uint8_t newval;
        if (netlist.kind(s) == GateKind::kOutput) {
          newval = val[netlist.fanin(s, 0)];
        } else {
          const std::span<const GateId> fanins = netlist.fanins(s);
          const TruthTable& f = netlist.cell_of(s).function;
          std::uint64_t idx = 0;
          for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
            if (val[fanins[static_cast<std::size_t>(pin)]])
              idx |= 1ull << pin;
          newval = f.bit(idx) ? 1 : 0;
        }
        queue.push(Event{now + delay[s], s, newval});
      }
    }
    out.total_events += steps;
    if (!queue.empty()) ++out.event_overflows;  // budget ran out mid-storm

    for (GateId g = 0; g < slots; ++g) {
      if (!netlist.alive(g)) continue;
      if (val[g] != initial[g]) zero_transitions[g] += 1.0;
      if (val[g]) ones[g] += 1.0;
    }
  }

  out.timed_activity.assign(slots, 0.0);
  out.settled_prob.assign(slots, 0.0);
  const double n = static_cast<double>(options.num_vector_pairs);
  for (GateId g = 0; g < slots; ++g) {
    if (!netlist.alive(g)) continue;
    out.settled_prob[g] = ones[g] / n;
    if (netlist.kind(g) == GateKind::kOutput) continue;
    const double cap = netlist.signal_cap(g);
    out.zero_delay_power += cap * zero_transitions[g] / n;
    // Round the per-gate activity first and accumulate cap * activity, so
    // that `timed_power` equals the sum of per-gate `signal_power(g)` terms
    // bitwise — the attribution plane reconciles against exactly that sum.
    out.timed_activity[g] = timed_transitions[g] / n;
    out.timed_power += cap * out.timed_activity[g];
  }
  return out;
}

}  // namespace powder
