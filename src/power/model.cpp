#include "power/model.hpp"

#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace powder {

const char* power_model_name(PowerModelKind kind) {
  switch (kind) {
    case PowerModelKind::kZeroDelay:
      return "zero-delay";
    case PowerModelKind::kTimed:
      return "timed";
  }
  POWDER_CHECK(false);
}

TimedPowerModel::TimedPowerModel(PowerEstimator* base, GlitchOptions options)
    : netlist_(&base->simulator().netlist()),
      base_(base),
      options_(std::move(options)) {
  POWDER_CHECK(base_ != nullptr);
  netlist_->attach_observer(this);
  refresh();
}

TimedPowerModel::~TimedPowerModel() { netlist_->detach_observer(this); }

const Simulator& TimedPowerModel::simulator() const {
  return base_->simulator();
}

Simulator& TimedPowerModel::simulator() { return base_->simulator(); }

void TimedPowerModel::on_delta(const NetlistDelta& delta) {
  // Re-sizing swaps a cell for a functionally identical one, but its delay
  // changes, which moves glitches around — every delta kind invalidates.
  (void)delta;
  dirty_ = true;
}

void TimedPowerModel::refresh() {
  base_->refresh();
  if (!dirty_) return;
  estimate_ = estimate_glitch_power(*netlist_, options_);
  overflows_total_ += estimate_.event_overflows;
  ++resims_;
  dirty_ = false;
}

double TimedPowerModel::activity(GateId g) const {
  return g < estimate_.timed_activity.size() ? estimate_.timed_activity[g]
                                             : 0.0;
}

double TimedPowerModel::probability(GateId g) const {
  return base_->probability(g);
}

double TimedPowerModel::signal_power(GateId g) const {
  return netlist_->signal_cap(g) * activity(g);
}

}  // namespace powder
