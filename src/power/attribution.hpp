// Per-gate power attribution: the "where did the savings come from" plane.
//
// The optimizer reports *totals* (initial/final power, per-class deltas);
// this subsystem keeps the per-gate, per-cell, per-window, per-class
// breakdown behind them. It is an opt-in sink wired through TraceOptions
// like the audit log and metrics registry: a null pointer costs one branch
// per probe site, so the default path stays inside the observability
// budget (DESIGN.md §10).
//
// Reconciliation is a hard invariant, not a best-effort estimate:
//
//  * `contribution_sum_before/after` are accumulated by sweeping
//    `PowerModel::signal_power(g)` over live non-PO gates in ascending
//    gate-id order — the exact iteration set and summation order of
//    `PowerEstimator::total_power()` (and, after the activity-first fix in
//    glitch.cpp, of `TimedPowerModel::total_power()`), so the sum equals
//    `total_power()` *bitwise*, for both models.
//  * The per-class applied-gain ledger is fed the very doubles the
//    optimizer pushes into its commit log, and unwound at the same
//    end-of-run guard-walk pops, so each class gain equals
//    `diagnostics.resub.by_class[i].gain` bitwise.
//
// The subsystem also subscribes to the netlist delta bus for lifecycle
// accounting (mutation churn, last journal epoch); activities across a
// re-simulated transitive fanout are captured by the sweeps, not by
// replaying deltas.
#ifndef POWDER_POWER_ATTRIBUTION_HPP
#define POWDER_POWER_ATTRIBUTION_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/model.hpp"

namespace powder {

/// Document version of the `--attribution-out` JSON. Stability rules follow
/// DESIGN.md §11.4: adding keys does not bump, removing/redefining does.
inline constexpr int kAttributionSchemaVersion = 1;

/// Number of resubstitution classes the ledger tracks. Kept as a local
/// constant so `src/power/` does not depend on the optimizer headers; the
/// optimizer static_asserts it against `kNumResubClasses`.
inline constexpr int kAttributionClasses = 7;

class PowerAttribution final : public NetlistObserver {
 public:
  /// One gate in a heatmap snapshot. Names and cell kinds are copied at
  /// sweep time because the gate may be dead by the time JSON is written.
  struct TopGate {
    GateId gate = kNullGate;
    std::string name;
    std::string cell;
    double power = 0.0;
  };

  /// Per-cell-kind aggregate within one snapshot.
  struct CellAgg {
    double power = 0.0;
    long gates = 0;
  };

  /// One sweep over the live netlist (taken at run start and run end).
  struct Snapshot {
    bool taken = false;
    double sum = 0.0;          ///< == model->total_power(), bitwise
    double total_power = 0.0;  ///< model->total_power() at sweep time
    long gates = 0;            ///< live non-PO gates swept
    std::vector<TopGate> top;  ///< top-K by power desc, ties by id asc
    std::map<std::string, CellAgg> by_cell;
  };

  /// Per-window aggregate of the applied-gain ledger (window -1 = global
  /// loop and the funcred pre-pass).
  struct WindowAgg {
    long commits = 0;
    double gain = 0.0;
  };

  explicit PowerAttribution(int top_k = 16);
  ~PowerAttribution() override;

  PowerAttribution(const PowerAttribution&) = delete;
  PowerAttribution& operator=(const PowerAttribution&) = delete;

  /// Binds to a run: attaches to the delta bus and takes the "before"
  /// sweep. Called by the optimizer once the power model is constructed
  /// and refreshed.
  void begin_run(const Netlist* netlist, const PowerModel* model);

  /// Takes the "after" sweep and detaches from the delta bus. Safe to
  /// call once after begin_run; the optimizer calls it right after the
  /// final `total_power()` read.
  void end_run();

  /// Ledger feed: called at every commit-log push with the same class tag,
  /// window id (-1 = global), and power delta the optimizer records.
  void record_commit(int cls, int window, double power_delta);

  /// Ledger unwind: called at every end-of-run guard-walk pop (last
  /// recorded commit first), mirroring the optimizer's own `-=`.
  void record_rollback();

  // NetlistObserver: lifecycle accounting only.
  void on_delta(const NetlistDelta& delta) override;

  const Snapshot& before() const { return before_; }
  const Snapshot& after() const { return after_; }
  double class_gain(int cls) const { return class_gain_[cls]; }
  long class_applied(int cls) const { return class_applied_[cls]; }
  long commits_recorded() const { return commits_recorded_; }
  long rollbacks_recorded() const { return rollbacks_recorded_; }
  long long deltas_observed() const { return deltas_observed_; }

  /// Serializes the whole attribution document (single line, key order
  /// fixed, doubles at %.17g so bitwise-equal values render identically).
  std::string to_json() const;

 private:
  struct LedgerEntry {
    int cls = 0;
    int window = -1;
    double power_delta = 0.0;
  };

  void sweep(Snapshot* out) const;

  int top_k_;
  const Netlist* netlist_ = nullptr;   ///< borrowed; null outside a run
  const PowerModel* model_ = nullptr;  ///< borrowed; null outside a run
  std::string model_name_;             ///< captured at begin_run
  bool attached_ = false;

  Snapshot before_;
  Snapshot after_;

  std::vector<LedgerEntry> ledger_;  ///< aligned with the commit log
  double class_gain_[kAttributionClasses] = {};
  long class_applied_[kAttributionClasses] = {};
  std::map<int, WindowAgg> by_window_;
  long commits_recorded_ = 0;
  long rollbacks_recorded_ = 0;
  long long deltas_observed_ = 0;
  std::uint64_t last_epoch_ = 0;
};

/// Validates an `--attribution-out` document: schema shape, the exact
/// sum == total_power reconciliation on both snapshots, descending top-K
/// order, all seven classes present, and the class-gain ledger summing to
/// the observed power drop (FP-tolerant; the telescoped commit deltas and
/// the end-to-end subtraction accumulate in different orders). Returns
/// true on success; fills `*error` otherwise.
bool validate_attribution_json(const std::string& text, std::string* error);

}  // namespace powder

#endif  // POWDER_POWER_ATTRIBUTION_HPP
