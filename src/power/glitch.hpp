#pragma once
// Glitch-aware power estimation — the extension the paper's §2 explicitly
// leaves out ("we assume a zero-delay power estimation model ... glitches
// typically contribute about 20% to the total power consumption").
//
// Event-driven timed simulation under the same linear delay model as the
// STA (transport delays, no inertial filtering — an upper-bound-ish glitch
// count): random input-vector pairs are applied and every output
// transition of every signal is counted, not just the net final change.
// Comparing against the zero-delay count isolates the glitch share.
//
// The input stimulus is the same TemporalInputModel every other estimator
// consumes: vector pairs are one step of the per-input Markov chains, so a
// chain with toggle density d produces correlated (v1, v2) pairs instead
// of two independent draws. TemporalInputModel::independent(probs) (or an
// empty model: all inputs at 0.5) recovers the uncorrelated sampling.

#include <vector>

#include "netlist/netlist.hpp"
#include "power/temporal.hpp"

namespace powder {

struct GlitchEstimate {
  /// sum_i C(i) * E_zero_delay(i): transitions counting only initial vs
  /// final value per vector pair (the paper's model).
  double zero_delay_power = 0.0;
  /// sum_i C(i) * E_timed(i): all transitions observed by the timed
  /// simulation, glitches included.
  double timed_power = 0.0;
  /// Per-gate average transitions per vector pair (indexed by GateId).
  std::vector<double> timed_activity;
  /// Per-gate observed P(final value = 1) across the sampled pairs.
  std::vector<double> settled_prob;
  /// Vector pairs whose event budget ran out: their transition counts are
  /// truncated, so a non-zero value means the estimate is a lower bound.
  long event_overflows = 0;
  /// Events processed across all pairs (diagnostic for budget tuning).
  long total_events = 0;

  double glitch_share() const {
    return timed_power > 0.0
               ? (timed_power - zero_delay_power) / timed_power
               : 0.0;
  }
};

struct GlitchOptions {
  int num_vector_pairs = 256;
  /// Input stimulus, shared with estimate_temporal_activity: stationary
  /// probability and toggle density per primary input. Empty = all inputs
  /// independent at 0.5. A model with probabilities but an empty toggle
  /// vector is completed to the temporally independent chain d = 2p(1-p).
  TemporalInputModel stimulus;
  /// Event budget per vector pair; 0 = auto-scale (1000 * live gates +
  /// 10000, the old hardwired glitch-storm cap). Exhausted budgets are no
  /// longer silent: they increment GlitchEstimate::event_overflows.
  long max_events_per_pair = 0;
  std::uint64_t seed = 0x611DC4ull;
};

GlitchEstimate estimate_glitch_power(const Netlist& netlist,
                                     const GlitchOptions& options = {});

}  // namespace powder
