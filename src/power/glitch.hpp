#pragma once
// Glitch-aware power estimation — the extension the paper's §2 explicitly
// leaves out ("we assume a zero-delay power estimation model ... glitches
// typically contribute about 20% to the total power consumption").
//
// Event-driven timed simulation under the same linear delay model as the
// STA (transport delays, no inertial filtering — an upper-bound-ish glitch
// count): random input-vector pairs are applied and every output
// transition of every signal is counted, not just the net final change.
// Comparing against the zero-delay count isolates the glitch share.

#include <vector>

#include "netlist/netlist.hpp"

namespace powder {

struct GlitchEstimate {
  /// sum_i C(i) * E_zero_delay(i): transitions counting only initial vs
  /// final value per vector pair (the paper's model).
  double zero_delay_power = 0.0;
  /// sum_i C(i) * E_timed(i): all transitions observed by the timed
  /// simulation, glitches included.
  double timed_power = 0.0;
  /// Per-gate average transitions per vector pair (indexed by GateId).
  std::vector<double> timed_activity;

  double glitch_share() const {
    return timed_power > 0.0
               ? (timed_power - zero_delay_power) / timed_power
               : 0.0;
  }
};

struct GlitchOptions {
  int num_vector_pairs = 256;
  std::vector<double> pi_probs;  ///< empty = all 0.5
  std::uint64_t seed = 0x611DC4ull;
};

GlitchEstimate estimate_glitch_power(const Netlist& netlist,
                                     const GlitchOptions& options = {});

}  // namespace powder
