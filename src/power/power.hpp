#pragma once
// Zero-delay switched-capacitance power estimation (paper §2).
//
// The reported "power" is sum_i C(i)*E(i) over all signals, exactly like
// Table 1 of the paper (the constant 1/2 V^2 f factor is dropped; it
// cancels in every ratio the experiments report). E(s) = 2 p(s) (1-p(s)).
//
// Three estimators for p(s):
//  * simulation-based (default; supports incremental TFO re-estimation and
//    is what POWDER uses, matching the paper's "reestimate the transitive
//    fanout" step),
//  * independence propagation (gate inputs assumed independent; cheap,
//    used for cross-checks and the power-driven mapper),
//  * exact via BDDs (tests; exponential worst case).

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace powder {

/// Simulation-backed estimator with incremental update.
class PowerEstimator {
 public:
  /// Borrows `simulator` (which must outlive the estimator) and computes
  /// the initial estimate from its current values.
  explicit PowerEstimator(Simulator* simulator);

  const Simulator& simulator() const { return *sim_; }
  Simulator& simulator() { return *sim_; }

  /// Recomputes everything from the simulator's current values.
  void estimate_all();

  /// Re-simulates `changed_roots` plus transitive fanout and refreshes the
  /// cached activities of exactly those gates (paper:
  /// power_estimate_update). Also refreshes totals.
  void update_after_change(std::span<const GateId> changed_roots);

  /// Cached activity E(s) of the signal driven by `g`.
  double activity(GateId g) const { return activity_[g]; }
  /// Cached signal probability p(s).
  double probability(GateId g) const { return prob_[g]; }

  /// C(s) * E(s) for one signal, with C taken live from the netlist.
  double signal_power(GateId g) const;

  /// sum_i C(i)*E(i) over all live signals.
  double total_power() const;

 private:
  Simulator* sim_;
  std::vector<double> activity_;
  std::vector<double> prob_;

  void refresh_gate(GateId g);
};

/// Independence-assumption propagation: output probability of each gate
/// computed from its cell function and fanin probabilities (inputs treated
/// as independent). Returns p(s) indexed by GateId.
std::vector<double> propagate_signal_probs(const Netlist& netlist,
                                           const std::vector<double>& pi_probs);

/// Exact signal probabilities via global BDDs (small circuits / tests).
std::vector<double> exact_signal_probs(const Netlist& netlist,
                                       const std::vector<double>& pi_probs);

/// sum_i C(i)*E(i) from a probability vector (any of the above sources).
double switched_capacitance(const Netlist& netlist,
                            const std::vector<double>& probs);

}  // namespace powder
