#pragma once
// Zero-delay switched-capacitance power estimation (paper §2).
//
// The reported "power" is sum_i C(i)*E(i) over all signals, exactly like
// Table 1 of the paper (the constant 1/2 V^2 f factor is dropped; it
// cancels in every ratio the experiments report). E(s) = 2 p(s) (1-p(s)).
//
// Three estimators for p(s):
//  * simulation-based (default; supports incremental TFO re-estimation and
//    is what POWDER uses, matching the paper's "reestimate the transitive
//    fanout" step),
//  * independence propagation (gate inputs assumed independent; cheap,
//    used for cross-checks and the power-driven mapper),
//  * exact via BDDs (tests; exponential worst case).

#include <vector>

#include "netlist/netlist.hpp"
#include "power/model.hpp"
#include "sim/simulator.hpp"
#include "util/gate_map.hpp"

namespace powder {

/// Simulation-backed zero-delay estimator with incremental update — the
/// default PowerModel implementation. The estimator rides the netlist
/// delta bus through its simulator: after any sequence of mutations, one
/// `refresh()` re-simulates the dirty region and re-derives the cached
/// probabilities/activities of exactly the gates whose value vectors were
/// recomputed (paper: power_estimate_update).
class PowerEstimator : public PowerModel {
 public:
  /// Borrows `simulator` (which must outlive the estimator) and computes
  /// the initial estimate from its current values.
  explicit PowerEstimator(Simulator* simulator);

  PowerModelKind kind() const override { return PowerModelKind::kZeroDelay; }

  const Simulator& simulator() const override { return *sim_; }
  Simulator& simulator() override { return *sim_; }

  /// Recomputes everything from the simulator's current values.
  void estimate_all();

  /// Brings the simulator and the cached activities up to date with every
  /// netlist delta observed since the last refresh. Cheap no-op when the
  /// netlist is unchanged.
  void refresh() override;

  /// Cached activity E(s) of the signal driven by `g`.
  double activity(GateId g) const override { return activity_[g]; }
  /// Cached signal probability p(s).
  double probability(GateId g) const override { return prob_[g]; }

  /// C(s) * E(s) for one signal, with C taken live from the netlist.
  double signal_power(GateId g) const override;

  /// sum_i C(i)*E(i) over all live signals.
  double total_power() const override;

 private:
  Simulator* sim_;
  GateMap<double> activity_;
  GateMap<double> prob_;

  void refresh_gate(GateId g);
};

/// Independence-assumption propagation: output probability of each gate
/// computed from its cell function and fanin probabilities (inputs treated
/// as independent). Returns p(s) indexed by GateId.
std::vector<double> propagate_signal_probs(const Netlist& netlist,
                                           const std::vector<double>& pi_probs);

/// Exact signal probabilities via global BDDs (small circuits / tests).
std::vector<double> exact_signal_probs(const Netlist& netlist,
                                       const std::vector<double>& pi_probs);

/// sum_i C(i)*E(i) from a probability vector (any of the above sources).
double switched_capacitance(const Netlist& netlist,
                            const std::vector<double>& probs);

/// Reset-state-aware signal probabilities for sequential netlists: latch Q
/// probabilities start from the reset state (0 -> 0.0, 1 -> 1.0,
/// don't-care/unknown -> 0.5) and are damped toward their D probabilities
/// through repeated independence propagation until the fixed point
/// converges (or `max_iterations` runs out). `primary_pi_probs` covers the
/// *non-latch* PIs in inputs() order (empty = all 0.5). Deterministic:
/// same netlist + same probs -> bit-identical result.
std::vector<double> sequential_signal_probs(
    const Netlist& netlist, const std::vector<double>& primary_pi_probs,
    int max_iterations = 64, double damping = 0.5, double tolerance = 1e-9);

/// Expands user-facing PI probabilities (sized to the non-latch PIs, or
/// empty for all 0.5) into a full inputs()-sized stimulus: latch Q entries
/// take their sequential fixed-point probabilities. Combinational netlists
/// pass through unchanged (an empty vector stays empty), keeping the
/// default path bit-identical.
std::vector<double> expand_pi_probs(const Netlist& netlist,
                                    const std::vector<double>& user_probs);

}  // namespace powder
