#include "power/power.hpp"

#include <span>

#include <algorithm>
#include <cmath>

#include "bdd/netlist_bdd.hpp"
#include "util/check.hpp"

namespace powder {

PowerEstimator::PowerEstimator(Simulator* simulator) : sim_(simulator) {
  POWDER_CHECK(sim_ != nullptr);
  estimate_all();
}

void PowerEstimator::refresh_gate(GateId g) {
  const double p = sim_->signal_prob(g);
  prob_[g] = p;
  activity_[g] = 2.0 * p * (1.0 - p);
}

void PowerEstimator::estimate_all() {
  const Netlist& nl = sim_->netlist();
  prob_.assign(nl.num_slots(), 0.0);
  activity_.assign(nl.num_slots(), 0.0);
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput) refresh_gate(g);
}

void PowerEstimator::refresh() {
  const Netlist& nl = sim_->netlist();
  const Simulator::RefreshResult r = sim_->refresh();
  if (r.full) {
    estimate_all();
    return;
  }
  prob_.ensure(nl.num_slots());
  activity_.ensure(nl.num_slots());
  for (GateId g : r.gates)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput) refresh_gate(g);
}

double PowerEstimator::signal_power(GateId g) const {
  const Netlist& nl = sim_->netlist();
  return nl.signal_cap(g) * activity_[g];
}

double PowerEstimator::total_power() const {
  const Netlist& nl = sim_->netlist();
  double total = 0.0;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput)
      total += signal_power(g);
  return total;
}

std::vector<double> propagate_signal_probs(
    const Netlist& netlist, const std::vector<double>& pi_probs) {
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == netlist.num_inputs());
  std::vector<double> p(netlist.num_slots(), 0.0);
  for (int i = 0; i < netlist.num_inputs(); ++i)
    p[netlist.inputs()[static_cast<std::size_t>(i)]] =
        pi_probs[static_cast<std::size_t>(i)];
  for (GateId g : netlist.topo_order()) {
    if (netlist.kind(g) == GateKind::kInput) continue;
    if (netlist.kind(g) == GateKind::kOutput) {
      p[g] = p[netlist.fanin(g, 0)];
      continue;
    }
    const std::span<const GateId> fanins = netlist.fanins(g);
    const TruthTable& f = netlist.cell_of(g).function;
    const int k = f.num_vars();
    double out = 0.0;
    for (std::uint64_t m = 0; m < (1ull << k); ++m) {
      if (!f.bit(m)) continue;
      double pm = 1.0;
      for (int v = 0; v < k; ++v) {
        const double pv = p[fanins[static_cast<std::size_t>(v)]];
        pm *= ((m >> v) & 1) ? pv : (1.0 - pv);
      }
      out += pm;
    }
    p[g] = out;
  }
  return p;
}

std::vector<double> exact_signal_probs(const Netlist& netlist,
                                       const std::vector<double>& pi_probs) {
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == netlist.num_inputs());
  NetlistBdds bdds(netlist);
  std::vector<double> p(netlist.num_slots(), 0.0);
  for (GateId g = 0; g < netlist.num_slots(); ++g)
    if (netlist.alive(g))
      p[g] = bdds.manager.probability(bdds.gate_function[g], pi_probs);
  return p;
}

double switched_capacitance(const Netlist& netlist,
                            const std::vector<double>& probs) {
  double total = 0.0;
  for (GateId g = 0; g < netlist.num_slots(); ++g) {
    if (!netlist.alive(g) || netlist.kind(g) == GateKind::kOutput) continue;
    const double p = probs[g];
    total += netlist.signal_cap(g) * 2.0 * p * (1.0 - p);
  }
  return total;
}

std::vector<double> sequential_signal_probs(
    const Netlist& netlist, const std::vector<double>& primary_pi_probs,
    int max_iterations, double damping, double tolerance) {
  // Position of each input gate inside inputs(), and which positions are
  // latch Q pseudo-PIs (paired with their D sample gate).
  const std::vector<GateId>& ins = netlist.inputs();
  std::vector<double> pi(ins.size(), 0.5);
  std::vector<std::size_t> latch_pos(netlist.latches().size(), 0);
  std::vector<std::uint8_t> is_latch(ins.size(), 0);
  for (std::size_t li = 0; li < netlist.latches().size(); ++li) {
    const Latch& l = netlist.latches()[li];
    for (std::size_t i = 0; i < ins.size(); ++i)
      if (ins[i] == l.output) {
        latch_pos[li] = i;
        is_latch[i] = 1;
      }
    const int init = l.init;
    pi[latch_pos[li]] = init == 0 ? 0.0 : init == 1 ? 1.0 : 0.5;
  }
  std::size_t next_primary = 0;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (is_latch[i]) continue;
    if (next_primary < primary_pi_probs.size())
      pi[i] = primary_pi_probs[next_primary];
    ++next_primary;
  }
  POWDER_CHECK_MSG(primary_pi_probs.empty() ||
                       primary_pi_probs.size() == next_primary,
                   "pi_probs must cover the non-latch primary inputs");

  std::vector<double> p = propagate_signal_probs(netlist, pi);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double worst = 0.0;
    for (std::size_t li = 0; li < netlist.latches().size(); ++li) {
      const Latch& l = netlist.latches()[li];
      const double target = p[l.input];  // PO gate mirrors its D driver
      const double cur = pi[latch_pos[li]];
      const double next = cur + damping * (target - cur);
      worst = std::max(worst, std::abs(next - cur));
      pi[latch_pos[li]] = next;
    }
    p = propagate_signal_probs(netlist, pi);
    if (worst < tolerance) break;
  }
  return p;
}

std::vector<double> expand_pi_probs(const Netlist& netlist,
                                    const std::vector<double>& user_probs) {
  if (netlist.num_latches() == 0) return user_probs;
  const std::vector<double> p =
      sequential_signal_probs(netlist, user_probs);
  std::vector<double> full;
  full.reserve(netlist.inputs().size());
  std::size_t next_primary = 0;
  for (const GateId g : netlist.inputs()) {
    if (netlist.is_latch_output(g)) {
      full.push_back(p[g]);
    } else if (next_primary < user_probs.size()) {
      full.push_back(user_probs[next_primary++]);
    } else {
      full.push_back(0.5);
    }
  }
  return full;
}

}  // namespace powder
