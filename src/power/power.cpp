#include "power/power.hpp"

#include <span>

#include "bdd/netlist_bdd.hpp"
#include "util/check.hpp"

namespace powder {

PowerEstimator::PowerEstimator(Simulator* simulator) : sim_(simulator) {
  POWDER_CHECK(sim_ != nullptr);
  estimate_all();
}

void PowerEstimator::refresh_gate(GateId g) {
  const double p = sim_->signal_prob(g);
  prob_[g] = p;
  activity_[g] = 2.0 * p * (1.0 - p);
}

void PowerEstimator::estimate_all() {
  const Netlist& nl = sim_->netlist();
  prob_.assign(nl.num_slots(), 0.0);
  activity_.assign(nl.num_slots(), 0.0);
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput) refresh_gate(g);
}

void PowerEstimator::refresh() {
  const Netlist& nl = sim_->netlist();
  const Simulator::RefreshResult r = sim_->refresh();
  if (r.full) {
    estimate_all();
    return;
  }
  prob_.ensure(nl.num_slots());
  activity_.ensure(nl.num_slots());
  for (GateId g : r.gates)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput) refresh_gate(g);
}

double PowerEstimator::signal_power(GateId g) const {
  const Netlist& nl = sim_->netlist();
  return nl.signal_cap(g) * activity_[g];
}

double PowerEstimator::total_power() const {
  const Netlist& nl = sim_->netlist();
  double total = 0.0;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput)
      total += signal_power(g);
  return total;
}

std::vector<double> propagate_signal_probs(
    const Netlist& netlist, const std::vector<double>& pi_probs) {
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == netlist.num_inputs());
  std::vector<double> p(netlist.num_slots(), 0.0);
  for (int i = 0; i < netlist.num_inputs(); ++i)
    p[netlist.inputs()[static_cast<std::size_t>(i)]] =
        pi_probs[static_cast<std::size_t>(i)];
  for (GateId g : netlist.topo_order()) {
    if (netlist.kind(g) == GateKind::kInput) continue;
    if (netlist.kind(g) == GateKind::kOutput) {
      p[g] = p[netlist.fanin(g, 0)];
      continue;
    }
    const std::span<const GateId> fanins = netlist.fanins(g);
    const TruthTable& f = netlist.cell_of(g).function;
    const int k = f.num_vars();
    double out = 0.0;
    for (std::uint64_t m = 0; m < (1ull << k); ++m) {
      if (!f.bit(m)) continue;
      double pm = 1.0;
      for (int v = 0; v < k; ++v) {
        const double pv = p[fanins[static_cast<std::size_t>(v)]];
        pm *= ((m >> v) & 1) ? pv : (1.0 - pv);
      }
      out += pm;
    }
    p[g] = out;
  }
  return p;
}

std::vector<double> exact_signal_probs(const Netlist& netlist,
                                       const std::vector<double>& pi_probs) {
  POWDER_CHECK(static_cast<int>(pi_probs.size()) == netlist.num_inputs());
  NetlistBdds bdds(netlist);
  std::vector<double> p(netlist.num_slots(), 0.0);
  for (GateId g = 0; g < netlist.num_slots(); ++g)
    if (netlist.alive(g))
      p[g] = bdds.manager.probability(bdds.gate_function[g], pi_probs);
  return p;
}

double switched_capacitance(const Netlist& netlist,
                            const std::vector<double>& probs) {
  double total = 0.0;
  for (GateId g = 0; g < netlist.num_slots(); ++g) {
    if (!netlist.alive(g) || netlist.kind(g) == GateKind::kOutput) continue;
    const double p = probs[g];
    total += netlist.signal_cap(g) * 2.0 * p * (1.0 - p);
  }
  return total;
}

}  // namespace powder
