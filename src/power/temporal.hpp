#pragma once
// Temporal-correlation-aware activity estimation.
//
// The base power model assumes temporal independence of the primary
// inputs, giving E(s) = 2 p(s)(1 - p(s)) (paper §2). The paper notes that
// "other estimation methods considering temporal and spatial correlations
// could also be used"; this module provides one: every primary input is a
// two-state Markov chain with stationary probability p and *transition
// density* d (expected toggles per cycle), and activities are measured by
// simulating the chains bit-parallel through the netlist.
//
// With d = 2 p (1-p) the chains reduce to the independence model and the
// measured activities converge to the base estimator's — a property the
// tests pin down.

#include <vector>

#include "netlist/netlist.hpp"

namespace powder {

/// Per-input Markov model. `toggle[i]` must satisfy
/// 0 <= toggle[i] <= 2 min(prob[i], 1-prob[i]) for a valid chain.
struct TemporalInputModel {
  std::vector<double> prob;    ///< stationary P(input = 1)
  std::vector<double> toggle;  ///< expected transitions per cycle

  /// The temporally independent model: toggle = 2 p (1-p).
  static TemporalInputModel independent(const std::vector<double>& probs);
};

struct TemporalActivity {
  std::vector<double> activity;  ///< per GateId: transitions per cycle
  std::vector<double> prob;      ///< per GateId: observed P(signal = 1)
};

struct TemporalOptions {
  int num_cycles = 4096;  ///< simulated cycles (x64 parallel chains)
  int warmup_cycles = 16;
  std::uint64_t seed = 0x7E3900D5ull;
};

/// Measures switching activity under the Markov input model.
TemporalActivity estimate_temporal_activity(const Netlist& netlist,
                                            const TemporalInputModel& model,
                                            const TemporalOptions& options = {});

/// sum_i C(i) * activity(i) — the temporal analogue of the power metric.
double temporal_switched_capacitance(const Netlist& netlist,
                                     const TemporalActivity& activity);

}  // namespace powder
