#pragma once
// Pluggable power models (DESIGN.md §13).
//
// The optimizer's economics — PG_A/PG_B preselection, the PG_C shortlist,
// window boundary sampling, reported totals — are written against this
// interface instead of the concrete zero-delay estimator. Two
// implementations exist:
//
//  * PowerEstimator (power.hpp): the paper's zero-delay model,
//    E(s) = 2 p(s)(1-p(s)), incrementally maintained through the
//    simulator. The default; bit-identical to the pre-refactor behavior.
//  * TimedPowerModel (below): the event-driven transport-delay model
//    promoted out of estimate_glitch_power, whose activities include
//    glitches. It layers over a PowerEstimator: signal probabilities are
//    delay-independent and keep coming from the base simulator, while
//    activities and totals come from the timed event simulation.
//
// Both models ride the netlist delta bus. The zero-delay model refreshes
// incrementally (dirty-region resimulation); the timed model invalidates
// its cached estimate on any structural delta and recomputes it lazily on
// refresh() — a full event-driven pass with a fixed seed, so the estimate
// is a pure function of (netlist, options) and identical at any thread
// count.

#include "netlist/netlist.hpp"
#include "power/glitch.hpp"

namespace powder {

class Simulator;
class PowerEstimator;

enum class PowerModelKind : std::uint8_t {
  kZeroDelay,  ///< the paper's model: E(s) = 2 p(s)(1-p(s))
  kTimed,      ///< event-driven transport-delay model, glitches included
};

/// Stable spelling for reports, CLI flags and diagnostics.
const char* power_model_name(PowerModelKind kind);

/// Abstract activity/power oracle the optimization stack is written
/// against. All cached quantities follow the refresh() contract of the
/// zero-delay estimator: call refresh() after mutations, then read.
class PowerModel {
 public:
  virtual ~PowerModel() = default;

  virtual PowerModelKind kind() const = 0;

  /// The pattern simulator backing the model: word-parallel signatures for
  /// candidate harvesting, replacement evaluation and trial re-estimation.
  virtual const Simulator& simulator() const = 0;
  virtual Simulator& simulator() = 0;

  /// Brings the model (and its simulator) up to date with every netlist
  /// delta observed since the last refresh.
  virtual void refresh() = 0;

  /// Cached switching activity of the signal driven by `g` — transitions
  /// per cycle under this model's semantics (may exceed 1 for the timed
  /// model: glitches).
  virtual double activity(GateId g) const = 0;
  /// Cached signal probability p(s) (delay-independent).
  virtual double probability(GateId g) const = 0;
  /// C(s) * activity(s) for one signal.
  virtual double signal_power(GateId g) const = 0;
  /// sum_i C(i) * activity(i) over all live non-PO signals.
  virtual double total_power() const = 0;
};

/// Event-driven timed power model. Borrows a zero-delay estimator (which
/// must outlive it) for probabilities and simulator access, and maintains
/// the glitch-inclusive activity estimate on top, invalidated through the
/// delta bus and recomputed lazily by refresh().
class TimedPowerModel final : public PowerModel, public NetlistObserver {
 public:
  TimedPowerModel(PowerEstimator* base, GlitchOptions options);
  ~TimedPowerModel() override;
  TimedPowerModel(const TimedPowerModel&) = delete;
  TimedPowerModel& operator=(const TimedPowerModel&) = delete;

  PowerModelKind kind() const override { return PowerModelKind::kTimed; }
  const Simulator& simulator() const override;
  Simulator& simulator() override;
  void refresh() override;
  double activity(GateId g) const override;
  double probability(GateId g) const override;
  double signal_power(GateId g) const override;
  double total_power() const override { return estimate_.timed_power; }

  void on_delta(const NetlistDelta& delta) override;

  /// The engine options, reused by the gain analysis for trial estimates
  /// of mutated scratch copies (same stimulus, same seed, same budget).
  const GlitchOptions& glitch_options() const { return options_; }
  const GlitchEstimate& estimate() const { return estimate_; }

  // Diagnostics: full event-driven recomputations performed, and vector
  // pairs truncated by the event budget across all of them.
  long resim_count() const { return resims_; }
  long event_overflows() const { return overflows_total_; }

 private:
  const Netlist* netlist_;
  PowerEstimator* base_;
  GlitchOptions options_;
  GlitchEstimate estimate_;
  bool dirty_ = true;
  long resims_ = 0;
  long overflows_total_ = 0;
};

}  // namespace powder
