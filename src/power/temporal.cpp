#include "power/temporal.hpp"

#include <bit>

#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace powder {

TemporalInputModel TemporalInputModel::independent(
    const std::vector<double>& probs) {
  TemporalInputModel m;
  m.prob = probs;
  m.toggle.reserve(probs.size());
  for (double p : probs) m.toggle.push_back(2.0 * p * (1.0 - p));
  return m;
}

TemporalActivity estimate_temporal_activity(const Netlist& netlist,
                                            const TemporalInputModel& model,
                                            const TemporalOptions& options) {
  const int n = netlist.num_inputs();
  POWDER_CHECK(static_cast<int>(model.prob.size()) == n);
  POWDER_CHECK(static_cast<int>(model.toggle.size()) == n);
  for (int i = 0; i < n; ++i) {
    const double p = model.prob[static_cast<std::size_t>(i)];
    const double d = model.toggle[static_cast<std::size_t>(i)];
    POWDER_CHECK_MSG(p >= 0.0 && p <= 1.0, "invalid probability");
    POWDER_CHECK_MSG(
        d >= -1e-12 && d <= 2.0 * std::min(p, 1.0 - p) + 1e-12,
        "invalid toggle density " << d << " for p=" << p);
  }

  // Per-input Markov transition probabilities: a chain at 1 falls with
  // P(1->0) = d / (2p); a chain at 0 rises with P(0->1) = d / (2(1-p)).
  std::vector<double> fall(static_cast<std::size_t>(n), 0.0);
  std::vector<double> rise(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const double p = model.prob[static_cast<std::size_t>(i)];
    const double d = model.toggle[static_cast<std::size_t>(i)];
    fall[static_cast<std::size_t>(i)] = p > 1e-12 ? d / (2.0 * p) : 0.0;
    rise[static_cast<std::size_t>(i)] =
        p < 1.0 - 1e-12 ? d / (2.0 * (1.0 - p)) : 0.0;
  }

  // 64 independent chains run in parallel (one per bit).
  const std::size_t slots = netlist.num_slots();
  const CellEvaluator evaluator(netlist.library());
  const std::vector<GateId>& topo = netlist.topo_order();
  Rng rng(options.seed);

  std::vector<std::uint64_t> value(slots, 0);
  // Initialize inputs from the stationary distribution.
  for (int i = 0; i < n; ++i)
    value[netlist.inputs()[static_cast<std::size_t>(i)]] =
        rng.biased_word(model.prob[static_cast<std::size_t>(i)]);

  std::vector<std::uint64_t> toggles;  // accumulated per gate (counts)
  std::vector<std::uint64_t> ones;
  std::vector<double> tog_acc(slots, 0.0), ones_acc(slots, 0.0);

  std::vector<std::uint64_t> fanin_words;
  auto eval_all = [&]() {
    for (GateId g : topo) {
      if (netlist.kind(g) == GateKind::kInput) continue;
      if (netlist.kind(g) == GateKind::kOutput) {
        value[g] = value[netlist.fanin(g, 0)];
        continue;
      }
      fanin_words.clear();
      for (GateId fi : netlist.fanins(g)) fanin_words.push_back(value[fi]);
      value[g] = evaluator.evaluate(netlist.cell_id(g), fanin_words);
    }
  };
  eval_all();

  std::vector<std::uint64_t> prev(slots, 0);
  for (int cycle = 0; cycle < options.warmup_cycles + options.num_cycles;
       ++cycle) {
    prev = value;
    // Advance the input chains.
    for (int i = 0; i < n; ++i) {
      const GateId g = netlist.inputs()[static_cast<std::size_t>(i)];
      const std::uint64_t cur = value[g];
      const std::uint64_t flip =
          (cur & rng.biased_word(fall[static_cast<std::size_t>(i)])) |
          (~cur & rng.biased_word(rise[static_cast<std::size_t>(i)]));
      value[g] = cur ^ flip;
    }
    eval_all();
    if (cycle < options.warmup_cycles) continue;
    for (GateId g = 0; g < slots; ++g) {
      if (!netlist.alive(g)) continue;
      tog_acc[g] +=
          static_cast<double>(std::popcount(prev[g] ^ value[g]));
      ones_acc[g] += static_cast<double>(std::popcount(value[g]));
    }
  }

  TemporalActivity out;
  out.activity.assign(slots, 0.0);
  out.prob.assign(slots, 0.0);
  const double total =
      64.0 * static_cast<double>(options.num_cycles);
  for (GateId g = 0; g < slots; ++g) {
    out.activity[g] = tog_acc[g] / total;
    out.prob[g] = ones_acc[g] / total;
  }
  return out;
}

double temporal_switched_capacitance(const Netlist& netlist,
                                     const TemporalActivity& activity) {
  double totalc = 0.0;
  for (GateId g = 0; g < netlist.num_slots(); ++g)
    if (netlist.alive(g) && netlist.kind(g) != GateKind::kOutput)
      totalc += netlist.signal_cap(g) * activity.activity[g];
  return totalc;
}

}  // namespace powder
