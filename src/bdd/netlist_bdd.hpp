#pragma once
// Global BDD construction for netlists (test oracle / exact estimator).

#include <vector>

#include "bdd/bdd.hpp"
#include "logic/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace powder {

/// Global BDDs of every live gate in `netlist`, over one BDD variable per
/// primary input (in netlist.inputs() order).
struct NetlistBdds {
  BddManager manager;
  std::vector<BddRef> gate_function;  // indexed by GateId; dead gates = 0

  explicit NetlistBdds(const Netlist& netlist);
};

/// Applies truth table `tt` to argument BDDs (arg[i] substitutes variable i).
BddRef bdd_from_truth_table(BddManager& mgr, const TruthTable& tt,
                            const std::vector<BddRef>& args);

/// True if the two netlists compute identical functions at corresponding
/// outputs. They must have the same number of inputs and outputs; inputs
/// correspond positionally.
bool functionally_equivalent(const Netlist& a, const Netlist& b);

}  // namespace powder
