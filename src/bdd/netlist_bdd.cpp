#include "bdd/netlist_bdd.hpp"

#include <span>

#include "util/check.hpp"

namespace powder {

BddRef bdd_from_truth_table(BddManager& mgr, const TruthTable& tt,
                            const std::vector<BddRef>& args) {
  POWDER_CHECK(static_cast<int>(args.size()) == tt.num_vars());
  // Shannon expansion over the truth table's variables, highest first so
  // the recursion can work on plain cofactors.
  auto rec = [&](auto&& self, const TruthTable& f, int var) -> BddRef {
    if (f.is_constant(false)) return kBddFalse;
    if (f.is_constant(true)) return kBddTrue;
    POWDER_DCHECK(var >= 0);
    if (!f.depends_on(var)) return self(self, f.cofactor(var, false), var - 1);
    const BddRef lo = self(self, f.cofactor(var, false), var - 1);
    const BddRef hi = self(self, f.cofactor(var, true), var - 1);
    return mgr.ite(args[static_cast<std::size_t>(var)], hi, lo);
  };
  return rec(rec, tt, tt.num_vars() - 1);
}

NetlistBdds::NetlistBdds(const Netlist& netlist)
    : manager(netlist.num_inputs()),
      gate_function(netlist.num_slots(), kBddFalse) {
  for (int i = 0; i < netlist.num_inputs(); ++i)
    gate_function[netlist.inputs()[static_cast<std::size_t>(i)]] =
        manager.var(i);

  for (GateId g : netlist.topo_order()) {
    switch (netlist.kind(g)) {
      case GateKind::kInput:
        break;  // already set
      case GateKind::kOutput:
        gate_function[g] = gate_function[netlist.fanin(g, 0)];
        break;
      case GateKind::kCell: {
        const std::span<const GateId> fanins = netlist.fanins(g);
        std::vector<BddRef> args;
        args.reserve(fanins.size());
        for (GateId fi : fanins) args.push_back(gate_function[fi]);
        gate_function[g] =
            bdd_from_truth_table(manager, netlist.cell_of(g).function, args);
        break;
      }
    }
  }
}

bool functionally_equivalent(const Netlist& a, const Netlist& b) {
  POWDER_CHECK(a.num_inputs() == b.num_inputs());
  POWDER_CHECK(a.num_outputs() == b.num_outputs());
  // Build both circuits in one manager so equality is pointer equality.
  BddManager mgr(a.num_inputs());

  auto build = [&](const Netlist& n) {
    std::vector<BddRef> fn(n.num_slots(), kBddFalse);
    for (int i = 0; i < n.num_inputs(); ++i)
      fn[n.inputs()[static_cast<std::size_t>(i)]] = mgr.var(i);
    for (GateId g : n.topo_order()) {
      if (n.kind(g) == GateKind::kOutput) {
        fn[g] = fn[n.fanin(g, 0)];
      } else if (n.kind(g) == GateKind::kCell) {
        std::vector<BddRef> args;
        for (GateId fi : n.fanins(g)) args.push_back(fn[fi]);
        fn[g] = bdd_from_truth_table(mgr, n.cell_of(g).function, args);
      }
    }
    std::vector<BddRef> outs;
    for (GateId o : n.outputs()) outs.push_back(fn[o]);
    return outs;
  };

  const std::vector<BddRef> oa = build(a);
  const std::vector<BddRef> ob = build(b);
  return oa == ob;
}

}  // namespace powder
