#include "bdd/netlist_bdd.hpp"

#include "util/check.hpp"

namespace powder {

BddRef bdd_from_truth_table(BddManager& mgr, const TruthTable& tt,
                            const std::vector<BddRef>& args) {
  POWDER_CHECK(static_cast<int>(args.size()) == tt.num_vars());
  // Shannon expansion over the truth table's variables, highest first so
  // the recursion can work on plain cofactors.
  auto rec = [&](auto&& self, const TruthTable& f, int var) -> BddRef {
    if (f.is_constant(false)) return kBddFalse;
    if (f.is_constant(true)) return kBddTrue;
    POWDER_DCHECK(var >= 0);
    if (!f.depends_on(var)) return self(self, f.cofactor(var, false), var - 1);
    const BddRef lo = self(self, f.cofactor(var, false), var - 1);
    const BddRef hi = self(self, f.cofactor(var, true), var - 1);
    return mgr.ite(args[static_cast<std::size_t>(var)], hi, lo);
  };
  return rec(rec, tt, tt.num_vars() - 1);
}

NetlistBdds::NetlistBdds(const Netlist& netlist)
    : manager(netlist.num_inputs()),
      gate_function(netlist.num_slots(), kBddFalse) {
  for (int i = 0; i < netlist.num_inputs(); ++i)
    gate_function[netlist.inputs()[static_cast<std::size_t>(i)]] =
        manager.var(i);

  for (GateId g : netlist.topo_order()) {
    const Gate& gate = netlist.gate(g);
    switch (gate.kind) {
      case GateKind::kInput:
        break;  // already set
      case GateKind::kOutput:
        gate_function[g] = gate_function[gate.fanins[0]];
        break;
      case GateKind::kCell: {
        std::vector<BddRef> args;
        args.reserve(gate.fanins.size());
        for (GateId fi : gate.fanins) args.push_back(gate_function[fi]);
        gate_function[g] =
            bdd_from_truth_table(manager, netlist.cell_of(g).function, args);
        break;
      }
    }
  }
}

bool functionally_equivalent(const Netlist& a, const Netlist& b) {
  POWDER_CHECK(a.num_inputs() == b.num_inputs());
  POWDER_CHECK(a.num_outputs() == b.num_outputs());
  // Build both circuits in one manager so equality is pointer equality.
  BddManager mgr(a.num_inputs());

  auto build = [&](const Netlist& n) {
    std::vector<BddRef> fn(n.num_slots(), kBddFalse);
    for (int i = 0; i < n.num_inputs(); ++i)
      fn[n.inputs()[static_cast<std::size_t>(i)]] = mgr.var(i);
    for (GateId g : n.topo_order()) {
      const Gate& gate = n.gate(g);
      if (gate.kind == GateKind::kOutput) {
        fn[g] = fn[gate.fanins[0]];
      } else if (gate.kind == GateKind::kCell) {
        std::vector<BddRef> args;
        for (GateId fi : gate.fanins) args.push_back(fn[fi]);
        fn[g] = bdd_from_truth_table(mgr, n.cell_of(g).function, args);
      }
    }
    std::vector<BddRef> outs;
    for (GateId o : n.outputs()) outs.push_back(fn[o]);
    return outs;
  };

  const std::vector<BddRef> oa = build(a);
  const std::vector<BddRef> ob = build(b);
  return oa == ob;
}

}  // namespace powder
