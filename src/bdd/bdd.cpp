#include "bdd/bdd.hpp"
#include <algorithm>

#include "util/check.hpp"

namespace powder {

BddManager::BddManager(int num_vars) : num_vars_(num_vars) {
  POWDER_CHECK(num_vars >= 0);
  nodes_.push_back(Node{num_vars_, kBddFalse, kBddFalse});  // terminal 0
  nodes_.push_back(Node{num_vars_, kBddTrue, kBddTrue});    // terminal 1
}

BddRef BddManager::make_node(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(lo) * 0xC2B2AE3D27D4EB4Full) ^
      (static_cast<std::uint64_t>(hi) * 0x165667B19E3779F9ull);
  std::vector<BddRef>& chain = unique_[key];
  for (BddRef r : chain) {
    const Node& n = nodes_[r];
    if (n.var == var && n.lo == lo && n.hi == hi) return r;
  }
  const BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  chain.push_back(r);
  return r;
}

BddRef BddManager::var(int v) {
  POWDER_CHECK(v >= 0 && v < num_vars_);
  return make_node(v, kBddFalse, kBddTrue);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  const std::uint64_t key =
      (static_cast<std::uint64_t>(f) * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(g) * 0xC2B2AE3D27D4EB4Full) ^
      (static_cast<std::uint64_t>(h) * 0x165667B19E3779F9ull);
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end())
    for (const IteEntry& e : it->second)
      if (e.f == f && e.g == g && e.h == h) return e.result;

  const int top = std::min({var_of(f), var_of(g), var_of(h)});
  auto cof = [&](BddRef x, bool hi) -> BddRef {
    if (var_of(x) != top) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  const BddRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef r = make_node(top, lo, hi);
  ite_cache_[key].push_back(IteEntry{f, g, h, r});
  return r;
}

double BddManager::probability(BddRef f,
                               const std::vector<double>& var_prob) const {
  POWDER_CHECK(static_cast<int>(var_prob.size()) == num_vars_);
  std::unordered_map<BddRef, double> memo;
  // Iterative post-order would be fine; recursion depth is bounded by the
  // variable count which is small here.
  auto rec = [&](auto&& self, BddRef x) -> double {
    if (x == kBddFalse) return 0.0;
    if (x == kBddTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    const double p = var_prob[static_cast<std::size_t>(n.var)];
    const double val =
        (1.0 - p) * self(self, n.lo) + p * self(self, n.hi);
    memo.emplace(x, val);
    return val;
  };
  return rec(rec, f);
}

std::uint64_t BddManager::sat_count(BddRef f) const {
  POWDER_CHECK(num_vars_ <= 63);
  std::unordered_map<BddRef, double> memo;
  std::vector<double> half(static_cast<std::size_t>(num_vars_), 0.5);
  const double frac = probability(f, half);
  return static_cast<std::uint64_t>(frac * static_cast<double>(1ull << num_vars_) +
                                    0.5);
}

bool BddManager::evaluate(BddRef f, std::uint64_t input) const {
  while (f != kBddFalse && f != kBddTrue) {
    const Node& n = nodes_[f];
    f = ((input >> n.var) & 1) ? n.hi : n.lo;
  }
  return f == kBddTrue;
}

}  // namespace powder
