#pragma once
// A small hash-consed ROBDD package.
//
// Used for exact signal-probability computation and as an independent
// functional-equivalence oracle in the test suite. POWDER itself never
// needs global BDDs (that is one of the paper's selling points); keeping
// this package separate makes that dependency boundary explicit.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace powder {

/// Index into the manager's node array. 0 and 1 are the terminals.
using BddRef = std::uint32_t;
inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  /// `num_vars` is fixed up front; variable order is the index order.
  explicit BddManager(int num_vars);

  int num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  BddRef var(int v);
  BddRef nvar(int v) { return bdd_not(var(v)); }

  BddRef bdd_and(BddRef a, BddRef b) { return ite(a, b, kBddFalse); }
  BddRef bdd_or(BddRef a, BddRef b) { return ite(a, kBddTrue, b); }
  BddRef bdd_xor(BddRef a, BddRef b) { return ite(a, bdd_not(b), b); }
  BddRef bdd_not(BddRef a) { return ite(a, kBddFalse, kBddTrue); }
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// P(f = 1) when variable v is 1 with probability `var_prob[v]`,
  /// independently.
  double probability(BddRef f, const std::vector<double>& var_prob) const;

  /// Number of satisfying assignments over all num_vars() variables.
  /// Valid for num_vars() <= 63.
  std::uint64_t sat_count(BddRef f) const;

  /// Evaluate under a full assignment (bit v of `input` is variable v).
  bool evaluate(BddRef f, std::uint64_t input) const;

 private:
  struct Node {
    int var;      // terminals use var = num_vars_
    BddRef lo, hi;
  };

  int num_vars_;
  std::vector<Node> nodes_;
  // Unique table: hash -> chain of node indices (exact match verified).
  std::unordered_map<std::uint64_t, std::vector<BddRef>> unique_;
  // ITE memo: hash -> (operands, result) chain; exact match verified so a
  // hash collision can never return a wrong node.
  struct IteEntry {
    BddRef f, g, h, result;
  };
  std::unordered_map<std::uint64_t, std::vector<IteEntry>> ite_cache_;

  BddRef make_node(int var, BddRef lo, BddRef hi);
  int var_of(BddRef f) const { return nodes_[f].var; }
};

}  // namespace powder
