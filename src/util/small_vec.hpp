#pragma once

// Inline small-buffer vector for hot-path value types. The first N elements
// live inside the object; pushing past N spills to a single heap block.
// NetlistDelta stores its fanin snapshot in one of these so that publishing
// a delta for a typical (<= 8 input) gate performs zero heap allocations —
// asserted by layout_test.cpp via the global spill counter below.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace powder {

namespace detail {
/// Counts heap spills across every SmallVec instantiation (test hook).
inline std::atomic<std::uint64_t>& small_vec_heap_allocations() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for trivially copyable pin types");
  static_assert(N > 0);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec& other) { assign(other.data(), other.size_); }
  SmallVec(SmallVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = static_cast<std::uint32_t>(N);
      other.size_ = 0;
    } else {
      assign(other.data(), other.size_);
    }
  }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = nullptr;
    cap_ = static_cast<std::uint32_t>(N);
    size_ = 0;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = static_cast<std::uint32_t>(N);
      other.size_ = 0;
    } else {
      assign(other.data(), other.size_);
    }
    return *this;
  }
  ~SmallVec() { delete[] heap_; }

  void push_back(const T& value) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = value;
  }
  void assign(const T* src, std::size_t n) {
    if (n > cap_) grow(static_cast<std::uint32_t>(n));
    if (n > 0) std::memcpy(data(), src, n * sizeof(T));
    size_ = static_cast<std::uint32_t>(n);
  }
  template <typename Range>
  void assign_range(const Range& range) {
    clear();
    for (const T& v : range) push_back(v);
  }
  void clear() { size_ = 0; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow(std::uint32_t want) {
    const std::uint32_t new_cap = std::max<std::uint32_t>(want, cap_ * 2);
    T* block = new T[new_cap];
    detail::small_vec_heap_allocations().fetch_add(
        1, std::memory_order_relaxed);
    if (size_ > 0) std::memcpy(block, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = block;
    cap_ = new_cap;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = static_cast<std::uint32_t>(N);
};

}  // namespace powder
