#pragma once
// Small string utilities shared by the parsers and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace powder {

/// Splits on any run of characters from `delims`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims = " \t\r\n");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace powder
