#pragma once
// Bounded single-producer / single-consumer ring buffer.
//
// The trace plane gives every thread its own ring: the owning thread is the
// only producer, and the draining TraceSession (which serializes drains
// under its own mutex) is the only consumer. With that contract the ring is
// wait-free on both sides — one release store per push, one release store
// per drain, no CAS, no locks — which is what keeps instrumentation cheap
// enough to leave compiled into hot loops.
//
// A full ring rejects the push (try_push returns false) instead of blocking
// or overwriting: dropping a trace event is always preferable to stalling
// the optimizer. Callers count rejects themselves.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace powder {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full (event dropped).
  bool try_push(const T& item) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = item;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every available item to `out` and returns how
  /// many were popped. Safe to run concurrently with try_push; concurrent
  /// pop_all calls must be serialized by the caller.
  std::size_t pop_all(std::vector<T>* out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i)
      out->push_back(slots_[i & mask_]);
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

  /// Items currently readable (racy by nature; exact when quiescent).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer-owned
};

}  // namespace powder
