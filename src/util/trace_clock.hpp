#pragma once
// Monotonic nanosecond clock for the trace/metrics plane. One inline
// function so every span, histogram observation, and audit record agrees
// on the time base (steady_clock — wall-clock adjustments never produce
// negative span durations).

#include <chrono>
#include <cstdint>

namespace powder {

inline std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace powder
