#include "util/fault_injection.hpp"

namespace powder {

namespace {
FaultInjector* g_injector = nullptr;
}  // namespace

FaultInjector* FaultInjector::installed() { return g_injector; }

void FaultInjector::install(FaultInjector* injector) { g_injector = injector; }

void FaultInjector::arm(Site site, int skip, int count) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  s.skip = skip;
  s.count = count;
  s.seen.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm(Site site) {
  sites_[static_cast<std::size_t>(site)].armed.store(
      false, std::memory_order_release);
}

bool FaultInjector::fire(Site site) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  const int occurrence = s.seen.fetch_add(1, std::memory_order_relaxed);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  if (occurrence < s.skip ||
      occurrence >= static_cast<long>(s.skip) + s.count)
    return false;
  s.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int FaultInjector::occurrences(Site site) const {
  return sites_[static_cast<std::size_t>(site)].seen.load(
      std::memory_order_relaxed);
}

int FaultInjector::fired(Site site) const {
  return sites_[static_cast<std::size_t>(site)].fired.load(
      std::memory_order_relaxed);
}

}  // namespace powder
