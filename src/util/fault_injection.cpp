#include "util/fault_injection.hpp"

namespace powder {

namespace {
FaultInjector* g_injector = nullptr;
}  // namespace

FaultInjector* FaultInjector::installed() { return g_injector; }

void FaultInjector::install(FaultInjector* injector) { g_injector = injector; }

void FaultInjector::arm(Site site, int skip, int count) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  s = SiteState{};
  s.armed = true;
  s.skip = skip;
  s.count = count;
}

void FaultInjector::disarm(Site site) {
  sites_[static_cast<std::size_t>(site)].armed = false;
}

bool FaultInjector::fire(Site site) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  const int occurrence = s.seen++;
  if (!s.armed) return false;
  if (occurrence < s.skip ||
      occurrence >= static_cast<long>(s.skip) + s.count)
    return false;
  ++s.fired;
  return true;
}

int FaultInjector::occurrences(Site site) const {
  return sites_[static_cast<std::size_t>(site)].seen;
}

int FaultInjector::fired(Site site) const {
  return sites_[static_cast<std::size_t>(site)].fired;
}

}  // namespace powder
