#pragma once
// Fixed-size thread pool for data-parallel sharding.
//
// The pool owns `workers` long-lived threads; `for_shards(n, fn)` runs
// fn(shard, n) for every shard in [0, n) across the workers *and* the
// calling thread, returning only when every shard finished and every
// worker left the region. Exceptions thrown inside a shard are captured
// and rethrown on the caller.
//
// The pool is deliberately minimal: one parallel region at a time (POWDER's
// phases are strictly bracketed), no futures, no work stealing. Nested
// calls from inside a worker run the region inline on that worker — the
// simulator's word-sharded kernels can therefore be called freely from
// already-sharded harvest code without deadlock or oversubscription.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace powder {

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 0). Total parallelism of a region is
  /// workers + 1 because the caller participates.
  explicit ThreadPool(int workers) {
    workers_ = workers < 0 ? 0 : workers;
    threads_.reserve(static_cast<std::size_t>(workers_));
    for (int i = 0; i < workers_; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes a region can use (workers + caller).
  int parallelism() const { return workers_ + 1; }

  /// True while the current thread is executing a shard of *any* pool's
  /// region — as a pool worker or as the participating caller. Nested
  /// parallel entry points check this and degrade to inline execution.
  static bool in_parallel_region() { return in_region_flag(); }

  /// Runs fn(shard, num_shards) for every shard in [0, num_shards).
  /// Blocks until all shards are done; rethrows the first exception.
  void for_shards(int num_shards, const std::function<void(int, int)>& fn) {
    if (num_shards <= 0) return;
    if (workers_ == 0 || num_shards == 1 || in_parallel_region()) {
      for (int s = 0; s < num_shards; ++s) fn(s, num_shards);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &fn;
      num_shards_ = num_shards;
      next_shard_.store(0, std::memory_order_relaxed);
      pending_shards_ = num_shards;
      error_ = nullptr;
      ++generation_;
    }
    wake_workers_.notify_all();
    run_lane(fn);
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for the shards *and* for every worker to leave the region, so
    // the next region can safely reset the shared counters.
    done_.wait(lock,
               [this] { return pending_shards_ == 0 && active_workers_ == 0; });
    task_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

  /// Splits [0, n) into contiguous chunks of at least `min_grain` and runs
  /// fn(begin, end) on each in parallel.
  void parallel_for(std::size_t n, std::size_t min_grain,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (min_grain == 0) min_grain = 1;
    const std::size_t max_shards = (n + min_grain - 1) / min_grain;
    const int shards = static_cast<int>(std::min<std::size_t>(
        max_shards, static_cast<std::size_t>(parallelism())));
    if (shards <= 1) {
      fn(0, n);
      return;
    }
    for_shards(shards, [&](int shard, int num_shards) {
      const std::size_t lo = n * static_cast<std::size_t>(shard) /
                             static_cast<std::size_t>(num_shards);
      const std::size_t hi = n * (static_cast<std::size_t>(shard) + 1) /
                             static_cast<std::size_t>(num_shards);
      if (lo < hi) fn(lo, hi);
    });
  }

 private:
  static bool& in_region_flag() {
    thread_local bool flag = false;
    return flag;
  }

  /// Claims shards until none are left, with the region flag raised so any
  /// nested parallel call from inside a shard — whether this lane is a
  /// worker or the participating caller — runs inline instead of
  /// re-entering the (busy) region machinery. `num_shards_` is stable for
  /// the whole region: workers read it after the wake-up handshake and the
  /// caller only resets it once pending_shards_ and active_workers_ both
  /// reached zero.
  void run_lane(const std::function<void(int, int)>& fn) {
    in_region_flag() = true;
    for (;;) {
      const int s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= num_shards_) break;
      try {
        fn(s, num_shards_);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_shards_ == 0) done_.notify_all();
    }
    in_region_flag() = false;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(int, int)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock, [&] {
          return stop_ || (task_ != nullptr && generation_ != seen_generation);
        });
        if (stop_) return;
        seen_generation = generation_;
        task = task_;
        ++active_workers_;
      }
      run_lane(*task);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0 && pending_shards_ == 0) done_.notify_all();
    }
  }

  int workers_ = 0;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable done_;
  bool stop_ = false;
  const std::function<void(int, int)>* task_ = nullptr;
  int num_shards_ = 0;
  int pending_shards_ = 0;
  int active_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::atomic<int> next_shard_{0};
  std::exception_ptr error_;
};

}  // namespace powder
