#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace powder {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const char* msg) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s at byte %zu", msg, pos);
    *error = buf;
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        *out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        *out = JsonValue::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.substr(pos, n) != lit) return fail("bad literal");
    pos += n;
    return true;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0') {
      pos = start;
      return fail("bad number");
    }
    *out = JsonValue::make_number(v);
    return true;
  }

  bool parse_hex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return fail("bad \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      c = text[pos++];
      switch (c) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Our own writers never emit non-BMP escapes; decode the BMP code
          // point as UTF-8 and pass surrogates through as-is.
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos;  // consume '['
    std::vector<JsonValue> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      *out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      const char c = text[pos++];
      if (c == ']') break;
      if (c != ',') {
        --pos;
        return fail("expected ',' or ']'");
      }
    }
    *out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos;  // consume '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      *out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end()) return fail("unterminated object");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (at_end() || text[pos++] != ':') return fail("expected ':'");
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      const char c = text[pos++];
      if (c == '}') break;
      if (c != ',') {
        --pos;
        return fail("expected ',' or '}'");
      }
    }
    *out = JsonValue::make_object(std::move(members));
    return true;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) hit = &v;
  }
  return hit;
}

const JsonValue* JsonValue::find_number(std::string_view key) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number() && std::isfinite(v->as_number()))
             ? v
             : nullptr;
}

const JsonValue* JsonValue::find_string(std::string_view key) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v : nullptr;
}

const JsonValue* JsonValue::find_array(std::string_view key) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_array()) ? v : nullptr;
}

const JsonValue* JsonValue::find_object(std::string_view key) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_object()) ? v : nullptr;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(v);
  return j;
}

std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error) {
  error->clear();
  Parser p{text, 0, error};
  auto root = std::make_unique<JsonValue>();
  if (!p.parse_value(root.get(), 0)) return nullptr;
  p.skip_ws();
  if (!p.at_end()) {
    p.fail("trailing garbage");
    return nullptr;
  }
  return root;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace powder
